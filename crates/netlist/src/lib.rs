//! # qgdp-netlist
//!
//! Quantum netlist model for the qGDP placement engine.
//!
//! The paper defines a quantum netlist as an undirected graph `G(Q, E)` whose vertices
//! are transmon qubits and whose edges are resonators coupling two qubits.  Each
//! resonator is partitioned into wire-block *segments* (paper Eq. 6) so the global
//! placer can treat the resonator's reserved area as a set of movable standard cells;
//! the legalizer must then re-integrate those segments into as few *clusters* (groups of
//! mutually touching blocks) as possible.
//!
//! This crate provides:
//!
//! * strongly-typed identifiers ([`QubitId`], [`ResonatorId`], [`SegmentId`],
//!   [`ComponentId`]),
//! * component records ([`Qubit`], [`Resonator`], [`WireBlock`]) and the
//!   [`QuantumNetlist`] container,
//! * [`Frequency`] and the greedy frequency allocator used for fixed-frequency
//!   transmon chips,
//! * [`Placement`] — a positional assignment for every component, kept separate from
//!   the netlist so the same netlist can carry GP, LG and DP solutions,
//! * connectivity nets for the global placer, including the paper's **pseudo
//!   connections** (§III-D) that bias GP towards rectangular resonator clumps,
//! * cluster analysis ([`clusters::resonator_clusters`]) implementing the
//!   `C¹ ∪ C² ∪ … = S_e` decomposition used by the integration objective (Eq. 3),
//! * the clique→star decomposition machinery for high-degree nets
//!   ([`NetDecomposition`], [`star_forces`], [`clique_forces`]) used by the global
//!   placer's quadratic force model.
//!
//! # Paper map
//!
//! §III preliminaries: the quantum netlist `G(Q, E)`, the Eq. 6 wire-block
//! partitioning, the Eq. 3 cluster decomposition, and the §III-D pseudo connections
//! (Fig. 5).  Geometry primitives come from [`qgdp_geometry`] (§III layout model);
//! the placement engines consuming this model live downstream in `qgdp-placer`
//! (global placement substrate), `qgdp-legalize` (classical baselines) and the
//! `qgdp` core crate (§III-C/D/E).
//!
//! # Example
//!
//! ```
//! use qgdp_netlist::{ComponentGeometry, NetModel, NetlistBuilder};
//!
//! // A 3-qubit chain: q0 - q1 - q2.
//! let netlist = NetlistBuilder::new(ComponentGeometry::default())
//!     .qubits(3)
//!     .couple(0, 1)
//!     .couple(1, 2)
//!     .net_model(NetModel::Pseudo)
//!     .build()
//!     .expect("valid netlist");
//! assert_eq!(netlist.num_qubits(), 3);
//! assert_eq!(netlist.num_resonators(), 2);
//! assert!(netlist.num_segments() > 0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod clusters;
pub mod components;
pub mod error;
pub mod frequency;
pub mod ids;
pub mod netlist;
pub mod nets;
pub mod placement;

pub use clusters::{resonator_clusters, ClusterReport};
pub use components::{ComponentGeometry, Qubit, Resonator, WireBlock};
pub use error::NetlistError;
pub use frequency::{Frequency, FrequencyAllocator, FrequencyPlan};
pub use ids::{ComponentId, QubitId, ResonatorId, SegmentId};
pub use netlist::{NetlistBuilder, QuantumNetlist};
pub use nets::{
    clique_forces, pin_centroid, quadratic_wirelength, star_forces, star_wirelength, Net,
    NetDecomposition, NetModel,
};
pub use placement::Placement;
