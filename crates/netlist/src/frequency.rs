//! Component operating frequencies and the fixed-frequency allocation scheme.
//!
//! Fixed-frequency transmon architectures (the paper's target, §II-A) fabricate each
//! qubit at one of a small palette of design frequencies and each readout/coupling
//! resonator in a higher band.  Crosstalk is worst when two spatially-close components
//! sit at (nearly) the same frequency, which is exactly what the frequency-hotspot
//! metric `P_h` (Eq. 4) measures.  The allocator below reproduces the standard
//! frequency-collision-avoidance heuristic: greedy graph colouring of the coupling
//! graph over the qubit palette, with resonator frequencies spread over their own band.

use crate::{QubitId, ResonatorId};
use std::fmt;

/// An operating frequency in gigahertz.
///
/// # Example
///
/// ```
/// use qgdp_netlist::Frequency;
///
/// let a = Frequency::ghz(5.00);
/// let b = Frequency::ghz(5.04);
/// assert!(a.detuning(b) < 0.05);
/// assert!(a.is_near(b, 0.05));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Frequency(f64);

impl Frequency {
    /// Creates a frequency from a value in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is negative or non-finite.
    #[must_use]
    pub fn ghz(ghz: f64) -> Self {
        assert!(
            ghz >= 0.0 && ghz.is_finite(),
            "frequency must be non-negative and finite (got {ghz})"
        );
        Frequency(ghz)
    }

    /// The frequency value in GHz.
    #[must_use]
    pub fn as_ghz(self) -> f64 {
        self.0
    }

    /// Absolute detuning `|ω_i − ω_j|` in GHz.
    #[must_use]
    pub fn detuning(self, other: Frequency) -> f64 {
        (self.0 - other.0).abs()
    }

    /// Returns `true` when the detuning from `other` is within `threshold_ghz` —
    /// the `τ(ω_i, ω_j, Δ_c)` predicate of the hotspot metric.
    #[must_use]
    pub fn is_near(self, other: Frequency, threshold_ghz: f64) -> bool {
        self.detuning(other) <= threshold_ghz
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} GHz", self.0)
    }
}

/// The frequency palettes used when assigning component frequencies.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyPlan {
    /// Candidate qubit frequencies in GHz (the fabrication palette).
    pub qubit_palette: Vec<f64>,
    /// Lower edge of the resonator band in GHz.
    pub resonator_band_start: f64,
    /// Spacing between consecutive resonator frequencies in GHz.
    pub resonator_band_step: f64,
    /// Number of distinct resonator frequencies before the band wraps around.
    pub resonator_band_slots: usize,
}

impl FrequencyPlan {
    /// The default plan: five qubit frequencies between 5.00 and 5.28 GHz (70 MHz
    /// steps, matching typical IBM fixed-frequency lattices) and resonators from
    /// 6.2 GHz upward in 50 MHz steps over 8 slots.
    #[must_use]
    pub fn new() -> Self {
        FrequencyPlan {
            qubit_palette: vec![5.00, 5.07, 5.14, 5.21, 5.28],
            resonator_band_start: 6.20,
            resonator_band_step: 0.05,
            resonator_band_slots: 8,
        }
    }
}

impl Default for FrequencyPlan {
    fn default() -> Self {
        FrequencyPlan::new()
    }
}

/// Greedy frequency allocator over a coupling graph.
///
/// Qubit frequencies are assigned by greedy graph colouring in id order: each qubit
/// takes the first palette entry not used by an already-coloured neighbour (wrapping to
/// the least-used entry when the palette is exhausted, as happens on high-degree
/// topologies).  Resonators cycle through their band slots, so resonators sharing a
/// qubit rarely collide.
#[derive(Debug, Clone, Default)]
pub struct FrequencyAllocator {
    plan: FrequencyPlan,
}

impl FrequencyAllocator {
    /// Creates an allocator with the given plan.
    #[must_use]
    pub fn new(plan: FrequencyPlan) -> Self {
        FrequencyAllocator { plan }
    }

    /// The plan used by this allocator.
    #[must_use]
    pub fn plan(&self) -> &FrequencyPlan {
        &self.plan
    }

    /// Assigns a frequency to every qubit given the coupling edges.
    ///
    /// `num_qubits` is the number of qubits; `couplings` lists the resonator edges as
    /// qubit-id pairs.  The result is indexed by qubit id.
    #[must_use]
    pub fn assign_qubits(
        &self,
        num_qubits: usize,
        couplings: &[(QubitId, QubitId)],
    ) -> Vec<Frequency> {
        let palette = &self.plan.qubit_palette;
        assert!(!palette.is_empty(), "qubit palette must not be empty");
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); num_qubits];
        for &(a, b) in couplings {
            if a.index() < num_qubits && b.index() < num_qubits {
                adjacency[a.index()].push(b.index());
                adjacency[b.index()].push(a.index());
            }
        }
        let mut colors: Vec<Option<usize>> = vec![None; num_qubits];
        let mut usage = vec![0usize; palette.len()];
        for q in 0..num_qubits {
            let mut forbidden = vec![false; palette.len()];
            for &n in &adjacency[q] {
                if let Some(c) = colors[n] {
                    forbidden[c] = true;
                }
            }
            let choice = (0..palette.len())
                .find(|&c| !forbidden[c])
                .unwrap_or_else(|| {
                    // Palette exhausted: pick the globally least-used colour.
                    (0..palette.len())
                        .min_by_key(|&c| usage[c])
                        .expect("palette is non-empty")
                });
            colors[q] = Some(choice);
            usage[choice] += 1;
        }
        colors
            .into_iter()
            .map(|c| Frequency::ghz(palette[c.expect("every qubit coloured")]))
            .collect()
    }

    /// Assigns a frequency to every resonator, cycling over the resonator band.
    ///
    /// The result is indexed by resonator id.
    #[must_use]
    pub fn assign_resonators(&self, num_resonators: usize) -> Vec<Frequency> {
        (0..num_resonators)
            .map(|i| {
                let slot = i % self.plan.resonator_band_slots.max(1);
                Frequency::ghz(
                    self.plan.resonator_band_start + slot as f64 * self.plan.resonator_band_step,
                )
            })
            .collect()
    }

    /// Convenience helper returning the frequency of resonator `r` under this plan.
    #[must_use]
    pub fn resonator_frequency(&self, r: ResonatorId) -> Frequency {
        let slot = r.index() % self.plan.resonator_band_slots.max(1);
        Frequency::ghz(self.plan.resonator_band_start + slot as f64 * self.plan.resonator_band_step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn frequency_basics() {
        let f = Frequency::ghz(5.1);
        assert_eq!(f.as_ghz(), 5.1);
        assert!(f.is_near(Frequency::ghz(5.15), 0.06));
        assert!(!f.is_near(Frequency::ghz(5.2), 0.06));
        assert_eq!(f.to_string(), "5.100 GHz");
    }

    #[test]
    #[should_panic(expected = "frequency must be non-negative")]
    fn negative_frequency_panics() {
        let _ = Frequency::ghz(-1.0);
    }

    #[test]
    fn coloring_avoids_neighbor_collisions_on_a_path() {
        let alloc = FrequencyAllocator::default();
        let couplings: Vec<(QubitId, QubitId)> =
            (0..9).map(|i| (QubitId(i), QubitId(i + 1))).collect();
        let freqs = alloc.assign_qubits(10, &couplings);
        assert_eq!(freqs.len(), 10);
        for &(a, b) in &couplings {
            assert!(
                freqs[a.index()].detuning(freqs[b.index()]) > 1e-9,
                "adjacent qubits {a} and {b} share a frequency"
            );
        }
    }

    #[test]
    fn coloring_avoids_neighbor_collisions_on_a_grid() {
        // 5x5 grid coupling graph.
        let mut couplings = Vec::new();
        let id = |r: usize, c: usize| QubitId(r * 5 + c);
        for r in 0..5 {
            for c in 0..5 {
                if c + 1 < 5 {
                    couplings.push((id(r, c), id(r, c + 1)));
                }
                if r + 1 < 5 {
                    couplings.push((id(r, c), id(r + 1, c)));
                }
            }
        }
        let freqs = FrequencyAllocator::default().assign_qubits(25, &couplings);
        for &(a, b) in &couplings {
            assert!(freqs[a.index()].detuning(freqs[b.index()]) > 1e-9);
        }
    }

    #[test]
    fn resonator_band_is_above_qubit_band() {
        let alloc = FrequencyAllocator::default();
        let rf = alloc.assign_resonators(20);
        let qf = alloc.assign_qubits(4, &[(QubitId(0), QubitId(1))]);
        let max_q = qf.iter().map(|f| f.as_ghz()).fold(0.0f64, f64::max);
        for f in &rf {
            assert!(
                f.as_ghz() > max_q,
                "resonators must sit above the qubit band"
            );
        }
        assert_eq!(alloc.resonator_frequency(ResonatorId(3)), rf[3]);
    }

    #[test]
    fn resonator_frequencies_cycle() {
        let alloc = FrequencyAllocator::default();
        let rf = alloc.assign_resonators(10);
        assert_eq!(rf[0], rf[8]);
        assert_ne!(rf[0], rf[1]);
    }

    proptest! {
        #[test]
        fn prop_every_qubit_gets_a_palette_frequency(
            n in 1usize..60,
            edges in proptest::collection::vec((0usize..60, 0usize..60), 0..120),
        ) {
            let alloc = FrequencyAllocator::default();
            let couplings: Vec<(QubitId, QubitId)> = edges
                .into_iter()
                .filter(|(a, b)| a != b && *a < n && *b < n)
                .map(|(a, b)| (QubitId(a), QubitId(b)))
                .collect();
            let freqs = alloc.assign_qubits(n, &couplings);
            prop_assert_eq!(freqs.len(), n);
            for f in &freqs {
                prop_assert!(alloc
                    .plan()
                    .qubit_palette
                    .iter()
                    .any(|&p| (p - f.as_ghz()).abs() < 1e-12));
            }
        }
    }
}
