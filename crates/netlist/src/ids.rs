//! Strongly-typed identifiers for netlist components.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub usize);

        impl $name {
            /// The underlying index value.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(value: usize) -> Self {
                $name(value)
            }
        }

        impl From<$name> for usize {
            fn from(value: $name) -> Self {
                value.0
            }
        }
    };
}

id_type!(
    /// Identifier of a transmon qubit (a vertex of the quantum netlist graph).
    QubitId,
    "q"
);
id_type!(
    /// Identifier of a resonator (an edge of the quantum netlist graph).
    ResonatorId,
    "r"
);
id_type!(
    /// Identifier of a resonator wire-block segment (a movable standard cell).
    SegmentId,
    "s"
);

/// Identifier of any placeable component — either a qubit macro or a wire-block cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ComponentId {
    /// A transmon qubit.
    Qubit(QubitId),
    /// A resonator wire block.
    Segment(SegmentId),
}

impl ComponentId {
    /// Returns the qubit id if this component is a qubit.
    #[must_use]
    pub fn as_qubit(self) -> Option<QubitId> {
        match self {
            ComponentId::Qubit(q) => Some(q),
            ComponentId::Segment(_) => None,
        }
    }

    /// Returns the segment id if this component is a wire block.
    #[must_use]
    pub fn as_segment(self) -> Option<SegmentId> {
        match self {
            ComponentId::Segment(s) => Some(s),
            ComponentId::Qubit(_) => None,
        }
    }

    /// Returns `true` if this component is a qubit.
    #[must_use]
    pub fn is_qubit(self) -> bool {
        matches!(self, ComponentId::Qubit(_))
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentId::Qubit(q) => write!(f, "{q}"),
            ComponentId::Segment(s) => write!(f, "{s}"),
        }
    }
}

impl From<QubitId> for ComponentId {
    fn from(value: QubitId) -> Self {
        ComponentId::Qubit(value)
    }
}

impl From<SegmentId> for ComponentId {
    fn from(value: SegmentId) -> Self {
        ComponentId::Segment(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(QubitId(3).to_string(), "q3");
        assert_eq!(ResonatorId(7).to_string(), "r7");
        assert_eq!(SegmentId(11).to_string(), "s11");
        assert_eq!(ComponentId::Qubit(QubitId(1)).to_string(), "q1");
        assert_eq!(ComponentId::Segment(SegmentId(2)).to_string(), "s2");
    }

    #[test]
    fn conversions_round_trip() {
        let q: QubitId = 5usize.into();
        assert_eq!(usize::from(q), 5);
        assert_eq!(q.index(), 5);
        let c: ComponentId = q.into();
        assert_eq!(c.as_qubit(), Some(q));
        assert!(c.is_qubit());
        assert_eq!(c.as_segment(), None);
        let s: ComponentId = SegmentId(2).into();
        assert_eq!(s.as_segment(), Some(SegmentId(2)));
        assert!(!s.is_qubit());
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(QubitId(1) < QubitId(2));
        assert!(ComponentId::Qubit(QubitId(9)) < ComponentId::Segment(SegmentId(0)));
    }
}
