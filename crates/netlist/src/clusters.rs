//! Cluster analysis of resonator wire blocks.
//!
//! Wire blocks of an edge are "grouped into clusters if they physically touch,
//! indicating integration and minimizing crossing points"; a non-unified edge consists
//! of multiple clusters `C¹ ∪ C² ∪ … ∪ Cⁿ = S_e` (paper §III-B).  Minimising the total
//! cluster count `Σ_e |C_e|` (Eq. 3) is the integration objective of the resonator
//! legalizer, and the fraction of *unified* resonators (`|C_e| = 1`) is the `I_edge`
//! column of Table III.

use crate::{Placement, QuantumNetlist, ResonatorId, SegmentId};

/// Disjoint-set union used to group touching wire blocks.
#[derive(Debug, Clone)]
struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
    }
}

/// Tolerance used when deciding whether two wire blocks "physically touch".
///
/// Legalized blocks sit on a bin grid and either abut exactly or are at least one bin
/// apart, so a small positive slack only absorbs floating-point noise.
const TOUCH_TOLERANCE: f64 = 1e-6;

/// Computes the clusters (maximal groups of mutually touching wire blocks) of one
/// resonator under `placement`.
///
/// Each inner vector is one cluster; their union is exactly the resonator's segment
/// set.  Blocks touch when their rectangles abut or overlap (gap ≤ a small tolerance).
///
/// # Example
///
/// ```
/// use qgdp_geometry::Point;
/// use qgdp_netlist::{resonator_clusters, ComponentGeometry, NetlistBuilder, Placement, ResonatorId};
///
/// let netlist = NetlistBuilder::new(ComponentGeometry::default())
///     .qubits(2)
///     .couple(0, 1)
///     .build()?;
/// let mut placement = Placement::new(&netlist);
/// // Lay the 12 blocks out in an abutting row: one cluster.
/// for (i, &s) in netlist.resonator(ResonatorId(0)).segments().iter().enumerate() {
///     placement.set_segment(s, Point::new(5.0 + 10.0 * i as f64, 5.0));
/// }
/// let clusters = resonator_clusters(&netlist, &placement, ResonatorId(0));
/// assert_eq!(clusters.len(), 1);
/// # Ok::<(), qgdp_netlist::NetlistError>(())
/// ```
#[must_use]
pub fn resonator_clusters(
    netlist: &QuantumNetlist,
    placement: &Placement,
    resonator: ResonatorId,
) -> Vec<Vec<SegmentId>> {
    let segments = netlist.resonator(resonator).segments();
    let n = segments.len();
    if n == 0 {
        return Vec::new();
    }
    let rects: Vec<_> = segments
        .iter()
        .map(|&s| {
            netlist
                .block(s)
                .rect_at(placement.segment(s))
                .inflated(TOUCH_TOLERANCE)
        })
        .collect();
    let mut dsu = UnionFind::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rects[i].touches(&rects[j]) {
                dsu.union(i, j);
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<SegmentId>> =
        std::collections::BTreeMap::new();
    for (i, &s) in segments.iter().enumerate() {
        groups.entry(dsu.find(i)).or_default().push(s);
    }
    groups.into_values().collect()
}

/// Summary of the cluster structure of every resonator in a placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterReport {
    /// `|C_e|` for each resonator, indexed by resonator id.
    pub cluster_counts: Vec<usize>,
}

impl ClusterReport {
    /// Analyses every resonator of `netlist` under `placement`.
    #[must_use]
    pub fn analyze(netlist: &QuantumNetlist, placement: &Placement) -> Self {
        let cluster_counts = netlist
            .resonator_ids()
            .map(|r| resonator_clusters(netlist, placement, r).len())
            .collect();
        ClusterReport { cluster_counts }
    }

    /// Total cluster count `Σ_e |C_e|` — the objective of Eq. 3.
    #[must_use]
    pub fn total_clusters(&self) -> usize {
        self.cluster_counts.iter().sum()
    }

    /// Number of unified resonators (`|C_e| = 1`).
    #[must_use]
    pub fn unified_count(&self) -> usize {
        self.cluster_counts.iter().filter(|&&c| c == 1).count()
    }

    /// Total number of resonators.
    #[must_use]
    pub fn total_resonators(&self) -> usize {
        self.cluster_counts.len()
    }

    /// The resonators that are *not* unified (`|C_e| > 1`) — the `E_c` set of
    /// Algorithm 2.
    #[must_use]
    pub fn non_unified(&self) -> Vec<ResonatorId> {
        self.cluster_counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 1)
            .map(|(i, _)| ResonatorId(i))
            .collect()
    }

    /// The `I_edge` ratio of Table III as a `(unified, total)` pair.
    #[must_use]
    pub fn integration_ratio(&self) -> (usize, usize) {
        (self.unified_count(), self.total_resonators())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ComponentGeometry, NetlistBuilder};
    use qgdp_geometry::Point;

    fn two_qubit_netlist() -> QuantumNetlist {
        NetlistBuilder::new(ComponentGeometry::default())
            .qubits(2)
            .couple(0, 1)
            .build()
            .expect("valid netlist")
    }

    #[test]
    fn abutting_row_is_one_cluster() {
        let nl = two_qubit_netlist();
        let mut p = Placement::new(&nl);
        for (i, &s) in nl.resonator(ResonatorId(0)).segments().iter().enumerate() {
            p.set_segment(s, Point::new(5.0 + 10.0 * i as f64, 5.0));
        }
        let clusters = resonator_clusters(&nl, &p, ResonatorId(0));
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 12);
        let report = ClusterReport::analyze(&nl, &p);
        assert_eq!(report.total_clusters(), 1);
        assert_eq!(report.unified_count(), 1);
        assert_eq!(report.integration_ratio(), (1, 1));
        assert!(report.non_unified().is_empty());
    }

    #[test]
    fn separated_blocks_form_multiple_clusters() {
        let nl = two_qubit_netlist();
        let mut p = Placement::new(&nl);
        let segs = nl.resonator(ResonatorId(0)).segments().to_vec();
        for (i, &s) in segs.iter().enumerate() {
            // Two groups 500 µm apart, blocks abutting within each group.
            let group_offset = if i < 6 { 0.0 } else { 500.0 };
            p.set_segment(s, Point::new(group_offset + 10.0 * (i % 6) as f64, 5.0));
        }
        let clusters = resonator_clusters(&nl, &p, ResonatorId(0));
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters.iter().map(Vec::len).sum::<usize>(), 12);
        let report = ClusterReport::analyze(&nl, &p);
        assert_eq!(report.non_unified(), vec![ResonatorId(0)]);
        assert_eq!(report.unified_count(), 0);
    }

    #[test]
    fn fully_scattered_blocks_are_all_singletons() {
        let nl = two_qubit_netlist();
        let mut p = Placement::new(&nl);
        for (i, &s) in nl.resonator(ResonatorId(0)).segments().iter().enumerate() {
            p.set_segment(s, Point::new(100.0 * i as f64, 300.0 * i as f64));
        }
        let clusters = resonator_clusters(&nl, &p, ResonatorId(0));
        assert_eq!(clusters.len(), 12);
        assert!(clusters.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn diagonal_corner_touch_counts_as_touching() {
        // Blocks meeting only at a corner share a zero-length boundary; the paper's
        // "physically touch" is satisfied, and the DSU groups them.
        let nl = two_qubit_netlist();
        let mut p = Placement::new(&nl);
        let segs = nl.resonator(ResonatorId(0)).segments().to_vec();
        // Scatter everything far away first.
        for (i, &s) in segs.iter().enumerate() {
            p.set_segment(s, Point::new(1000.0 + 100.0 * i as f64, 1000.0));
        }
        p.set_segment(segs[0], Point::new(5.0, 5.0));
        p.set_segment(segs[1], Point::new(15.0, 15.0));
        let clusters = resonator_clusters(&nl, &p, ResonatorId(0));
        let cluster_of_first = clusters
            .iter()
            .find(|c| c.contains(&segs[0]))
            .expect("first block is in some cluster");
        assert!(cluster_of_first.contains(&segs[1]));
    }

    #[test]
    fn clusters_partition_the_segment_set() {
        let nl = two_qubit_netlist();
        let mut p = Placement::new(&nl);
        for (i, &s) in nl.resonator(ResonatorId(0)).segments().iter().enumerate() {
            p.set_segment(s, Point::new((i as f64) * 15.0, 0.0));
        }
        let clusters = resonator_clusters(&nl, &p, ResonatorId(0));
        let mut all: Vec<SegmentId> = clusters.into_iter().flatten().collect();
        all.sort();
        let mut expected = nl.resonator(ResonatorId(0)).segments().to_vec();
        expected.sort();
        assert_eq!(all, expected);
    }
}
