//! The [`QuantumNetlist`] container and its builder.

use crate::components::{ComponentGeometry, Qubit, Resonator, WireBlock};
use crate::frequency::{Frequency, FrequencyAllocator, FrequencyPlan};
use crate::ids::{ComponentId, QubitId, ResonatorId, SegmentId};
use crate::nets::{resonator_nets, Net, NetModel};
use crate::NetlistError;
use qgdp_geometry::{Point, Rect};
use std::collections::HashSet;

/// A quantum netlist `G(Q, E)`: qubits, resonators, their wire-block segments and the
/// connectivity nets used by the global placer.
///
/// The netlist is immutable once built; positional solutions live in
/// [`crate::Placement`] values so the same netlist can carry the GP, LG and DP layouts
/// side by side.
///
/// # Example
///
/// ```
/// use qgdp_netlist::{ComponentGeometry, NetlistBuilder};
///
/// let netlist = NetlistBuilder::new(ComponentGeometry::default())
///     .qubits(4)
///     .couple(0, 1)
///     .couple(1, 2)
///     .couple(2, 3)
///     .build()?;
/// assert_eq!(netlist.num_qubits(), 4);
/// assert_eq!(netlist.num_resonators(), 3);
/// assert_eq!(
///     netlist.num_segments(),
///     3 * netlist.geometry().segments_per_resonator()
/// );
/// # Ok::<(), qgdp_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantumNetlist {
    geometry: ComponentGeometry,
    qubits: Vec<Qubit>,
    resonators: Vec<Resonator>,
    blocks: Vec<WireBlock>,
    nets: Vec<Net>,
    net_model: NetModel,
}

impl QuantumNetlist {
    /// The shared component geometry.
    #[must_use]
    pub fn geometry(&self) -> &ComponentGeometry {
        &self.geometry
    }

    /// The net model the netlist was built with.
    #[must_use]
    pub fn net_model(&self) -> NetModel {
        self.net_model
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Number of resonators (netlist edges).
    #[must_use]
    pub fn num_resonators(&self) -> usize {
        self.resonators.len()
    }

    /// Number of wire-block segments across all resonators.
    #[must_use]
    pub fn num_segments(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of placeable components (qubits + segments) — the "#Cells" column
    /// of the paper's Table III.
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.num_qubits() + self.num_segments()
    }

    /// Looks up a qubit record.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn qubit(&self, id: QubitId) -> &Qubit {
        &self.qubits[id.index()]
    }

    /// Looks up a resonator record.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn resonator(&self, id: ResonatorId) -> &Resonator {
        &self.resonators[id.index()]
    }

    /// Looks up a wire-block record.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn block(&self, id: SegmentId) -> &WireBlock {
        &self.blocks[id.index()]
    }

    /// Iterator over all qubits.
    pub fn qubits(&self) -> impl Iterator<Item = &Qubit> {
        self.qubits.iter()
    }

    /// Iterator over all resonators.
    pub fn resonators(&self) -> impl Iterator<Item = &Resonator> {
        self.resonators.iter()
    }

    /// Iterator over all wire blocks.
    pub fn blocks(&self) -> impl Iterator<Item = &WireBlock> {
        self.blocks.iter()
    }

    /// Iterator over all qubit ids.
    pub fn qubit_ids(&self) -> impl Iterator<Item = QubitId> {
        (0..self.qubits.len()).map(QubitId)
    }

    /// Iterator over all resonator ids.
    pub fn resonator_ids(&self) -> impl Iterator<Item = ResonatorId> {
        (0..self.resonators.len()).map(ResonatorId)
    }

    /// Iterator over all segment ids.
    pub fn segment_ids(&self) -> impl Iterator<Item = SegmentId> {
        (0..self.blocks.len()).map(SegmentId)
    }

    /// Iterator over all component ids (qubits first, then segments).
    pub fn component_ids(&self) -> impl Iterator<Item = ComponentId> + '_ {
        self.qubit_ids()
            .map(ComponentId::Qubit)
            .chain(self.segment_ids().map(ComponentId::Segment))
    }

    /// The connectivity nets used by the global placer.
    #[must_use]
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The coupling edges as qubit-id pairs, in resonator-id order.
    #[must_use]
    pub fn couplings(&self) -> Vec<(QubitId, QubitId)> {
        self.resonators.iter().map(|r| r.endpoints()).collect()
    }

    /// Finds the resonator coupling `a` and `b`, if any.
    #[must_use]
    pub fn resonator_between(&self, a: QubitId, b: QubitId) -> Option<ResonatorId> {
        self.resonators
            .iter()
            .find(|r| {
                let (x, y) = r.endpoints();
                (x == a && y == b) || (x == b && y == a)
            })
            .map(Resonator::id)
    }

    /// Returns `true` if qubits `a` and `b` are directly coupled.
    #[must_use]
    pub fn are_coupled(&self, a: QubitId, b: QubitId) -> bool {
        self.resonator_between(a, b).is_some()
    }

    /// The qubits directly coupled to `qubit`.
    #[must_use]
    pub fn neighbors(&self, qubit: QubitId) -> Vec<QubitId> {
        self.resonators
            .iter()
            .filter_map(|r| r.other_endpoint(qubit))
            .collect()
    }

    /// The resonators incident to `qubit`.
    #[must_use]
    pub fn incident_resonators(&self, qubit: QubitId) -> Vec<ResonatorId> {
        self.resonators
            .iter()
            .filter(|r| r.other_endpoint(qubit).is_some())
            .map(Resonator::id)
            .collect()
    }

    /// The dimensions (width, height) of a component's bounding polygon.
    #[must_use]
    pub fn component_dims(&self, id: ComponentId) -> (f64, f64) {
        match id {
            ComponentId::Qubit(q) => {
                let q = self.qubit(q);
                (q.width(), q.height())
            }
            ComponentId::Segment(s) => {
                let b = self.block(s);
                (b.size(), b.size())
            }
        }
    }

    /// The bounding rectangle of a component centred at `center`.
    #[must_use]
    pub fn component_rect_at(&self, id: ComponentId, center: Point) -> Rect {
        let (w, h) = self.component_dims(id);
        Rect::from_center(center, w, h)
    }

    /// The operating frequency of a component.
    #[must_use]
    pub fn component_frequency(&self, id: ComponentId) -> Frequency {
        match id {
            ComponentId::Qubit(q) => self.qubit(q).frequency(),
            ComponentId::Segment(s) => self.block(s).frequency(),
        }
    }

    /// The resonator owning a component, if the component is a wire block.
    #[must_use]
    pub fn owning_resonator(&self, id: ComponentId) -> Option<ResonatorId> {
        id.as_segment().map(|s| self.block(s).resonator())
    }

    /// Total component area `Σ w_n · h_n` — the normaliser of the hotspot metric
    /// (Eq. 4).
    #[must_use]
    pub fn total_component_area(&self) -> f64 {
        let qubit_area: f64 = self.qubits.iter().map(|q| q.width() * q.height()).sum();
        let block_area: f64 = self.blocks.iter().map(|b| b.size() * b.size()).sum();
        qubit_area + block_area
    }

    /// A die rectangle sized so that the total component area fills `utilization` of it
    /// (anchored at the origin, side snapped up to a whole number of wire blocks).
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not in `(0, 1]`.
    #[must_use]
    pub fn suggested_die(&self, utilization: f64) -> Rect {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1], got {utilization}"
        );
        let lb = self.geometry.wire_block_size;
        let raw_side = (self.total_component_area() / utilization).sqrt();
        // Never smaller than the widest single component plus one block of margin.
        let min_side = self
            .component_ids()
            .map(|c| {
                let (w, h) = self.component_dims(c);
                w.max(h)
            })
            .fold(0.0f64, f64::max)
            + 2.0 * lb;
        let side = (raw_side.max(min_side) / lb).ceil() * lb;
        Rect::from_lower_left(Point::ORIGIN, side, side)
    }
}

/// Builder for [`QuantumNetlist`].
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    geometry: ComponentGeometry,
    num_qubits: usize,
    couplings: Vec<(QubitId, QubitId)>,
    net_model: NetModel,
    frequency_plan: FrequencyPlan,
}

impl NetlistBuilder {
    /// Starts a builder with the given component geometry.
    #[must_use]
    pub fn new(geometry: ComponentGeometry) -> Self {
        NetlistBuilder {
            geometry,
            num_qubits: 0,
            couplings: Vec::new(),
            net_model: NetModel::default(),
            frequency_plan: FrequencyPlan::default(),
        }
    }

    /// Declares the number of qubits.
    #[must_use]
    pub fn qubits(mut self, num_qubits: usize) -> Self {
        self.num_qubits = num_qubits;
        self
    }

    /// Adds a resonator coupling qubits `a` and `b` (by index).
    #[must_use]
    pub fn couple(mut self, a: usize, b: usize) -> Self {
        self.couplings.push((QubitId(a), QubitId(b)));
        self
    }

    /// Adds many couplings at once.
    #[must_use]
    pub fn couple_all<I: IntoIterator<Item = (usize, usize)>>(mut self, pairs: I) -> Self {
        self.couplings
            .extend(pairs.into_iter().map(|(a, b)| (QubitId(a), QubitId(b))));
        self
    }

    /// Selects the net model (chain vs pseudo connections).
    #[must_use]
    pub fn net_model(mut self, model: NetModel) -> Self {
        self.net_model = model;
        self
    }

    /// Overrides the frequency plan.
    #[must_use]
    pub fn frequency_plan(mut self, plan: FrequencyPlan) -> Self {
        self.frequency_plan = plan;
        self
    }

    /// Builds the netlist: validates the coupling graph, assigns frequencies,
    /// partitions each resonator into wire blocks (Eq. 6) and generates the GP nets.
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] when the geometry is invalid, the netlist is empty,
    /// a coupling references an unknown qubit, couples a qubit to itself, or duplicates
    /// an existing coupling.
    pub fn build(self) -> Result<QuantumNetlist, NetlistError> {
        self.geometry.validate()?;
        if self.num_qubits == 0 {
            return Err(NetlistError::Empty);
        }
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        for &(a, b) in &self.couplings {
            if a.index() >= self.num_qubits {
                return Err(NetlistError::UnknownQubit {
                    qubit: a,
                    num_qubits: self.num_qubits,
                });
            }
            if b.index() >= self.num_qubits {
                return Err(NetlistError::UnknownQubit {
                    qubit: b,
                    num_qubits: self.num_qubits,
                });
            }
            if a == b {
                return Err(NetlistError::SelfCoupling { qubit: a });
            }
            let key = (a.index().min(b.index()), a.index().max(b.index()));
            if !seen.insert(key) {
                return Err(NetlistError::DuplicateCoupling { a, b });
            }
        }

        let allocator = FrequencyAllocator::new(self.frequency_plan);
        let qubit_freqs = allocator.assign_qubits(self.num_qubits, &self.couplings);
        let resonator_freqs = allocator.assign_resonators(self.couplings.len());

        let qubits: Vec<Qubit> = (0..self.num_qubits)
            .map(|i| {
                Qubit::new(
                    QubitId(i),
                    self.geometry.qubit_width,
                    self.geometry.qubit_height,
                    qubit_freqs[i],
                )
            })
            .collect();

        let n_segments = self.geometry.segments_per_resonator();
        let mut blocks = Vec::with_capacity(self.couplings.len() * n_segments);
        let mut resonators = Vec::with_capacity(self.couplings.len());
        let mut nets = Vec::new();
        for (ri, &(a, b)) in self.couplings.iter().enumerate() {
            let rid = ResonatorId(ri);
            let freq = resonator_freqs[ri];
            let segments: Vec<SegmentId> = (0..n_segments)
                .map(|_| {
                    let sid = SegmentId(blocks.len());
                    blocks.push(WireBlock::new(
                        sid,
                        rid,
                        self.geometry.wire_block_size,
                        freq,
                    ));
                    sid
                })
                .collect();
            if segments.is_empty() {
                return Err(NetlistError::EmptyResonator { resonator: rid });
            }
            nets.extend(resonator_nets(rid, a, b, &segments, self.net_model));
            resonators.push(Resonator::new(
                rid,
                (a, b),
                freq,
                self.geometry.resonator_wirelength,
                segments,
            ));
        }

        Ok(QuantumNetlist {
            geometry: self.geometry,
            qubits,
            resonators,
            blocks,
            nets,
            net_model: self.net_model,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> QuantumNetlist {
        NetlistBuilder::new(ComponentGeometry::default())
            .qubits(n)
            .couple_all((0..n).map(|i| (i, (i + 1) % n)))
            .build()
            .expect("valid ring netlist")
    }

    #[test]
    fn build_basic_ring() {
        let netlist = ring(5);
        assert_eq!(netlist.num_qubits(), 5);
        assert_eq!(netlist.num_resonators(), 5);
        assert_eq!(netlist.num_segments(), 5 * 12);
        assert_eq!(netlist.num_components(), 5 + 60);
        assert!(netlist.are_coupled(QubitId(0), QubitId(1)));
        assert!(netlist.are_coupled(QubitId(4), QubitId(0)));
        assert!(!netlist.are_coupled(QubitId(0), QubitId(2)));
        assert_eq!(netlist.neighbors(QubitId(0)).len(), 2);
        assert_eq!(netlist.incident_resonators(QubitId(0)).len(), 2);
    }

    #[test]
    fn segment_ownership_and_frequency_inheritance() {
        let netlist = ring(4);
        for r in netlist.resonators() {
            for &s in r.segments() {
                assert_eq!(netlist.block(s).resonator(), r.id());
                assert_eq!(netlist.block(s).frequency(), r.frequency());
                assert_eq!(
                    netlist.owning_resonator(ComponentId::Segment(s)),
                    Some(r.id())
                );
            }
        }
        assert_eq!(
            netlist.owning_resonator(ComponentId::Qubit(QubitId(0))),
            None
        );
    }

    #[test]
    fn coupled_qubits_have_distinct_frequencies() {
        let netlist = ring(8);
        for (a, b) in netlist.couplings() {
            assert!(
                netlist
                    .qubit(a)
                    .frequency()
                    .detuning(netlist.qubit(b).frequency())
                    > 1e-9
            );
        }
    }

    #[test]
    fn validation_errors() {
        let geom = ComponentGeometry::default();
        assert_eq!(
            NetlistBuilder::new(geom).qubits(0).build().unwrap_err(),
            NetlistError::Empty
        );
        assert!(matches!(
            NetlistBuilder::new(geom)
                .qubits(2)
                .couple(0, 5)
                .build()
                .unwrap_err(),
            NetlistError::UnknownQubit { .. }
        ));
        assert!(matches!(
            NetlistBuilder::new(geom)
                .qubits(2)
                .couple(1, 1)
                .build()
                .unwrap_err(),
            NetlistError::SelfCoupling { .. }
        ));
        assert!(matches!(
            NetlistBuilder::new(geom)
                .qubits(3)
                .couple(0, 1)
                .couple(1, 0)
                .build()
                .unwrap_err(),
            NetlistError::DuplicateCoupling { .. }
        ));
        let bad_geom = ComponentGeometry {
            resonator_wirelength: -3.0,
            ..ComponentGeometry::default()
        };
        assert!(matches!(
            NetlistBuilder::new(bad_geom).qubits(2).build().unwrap_err(),
            NetlistError::InvalidGeometry { .. }
        ));
    }

    #[test]
    fn nets_cover_all_segments() {
        let netlist = ring(4);
        let mut touched: HashSet<SegmentId> = HashSet::new();
        for net in netlist.nets() {
            for &c in net.components() {
                if let ComponentId::Segment(s) = c {
                    touched.insert(s);
                }
            }
        }
        assert_eq!(touched.len(), netlist.num_segments());
    }

    #[test]
    fn pseudo_model_has_more_nets_than_chain() {
        let chain = NetlistBuilder::new(ComponentGeometry::default())
            .qubits(3)
            .couple(0, 1)
            .couple(1, 2)
            .net_model(NetModel::Chain)
            .build()
            .unwrap();
        let pseudo = NetlistBuilder::new(ComponentGeometry::default())
            .qubits(3)
            .couple(0, 1)
            .couple(1, 2)
            .net_model(NetModel::Pseudo)
            .build()
            .unwrap();
        assert!(pseudo.nets().len() > chain.nets().len());
        assert_eq!(chain.net_model(), NetModel::Chain);
        assert_eq!(pseudo.net_model(), NetModel::Pseudo);
    }

    #[test]
    fn suggested_die_fits_components() {
        let netlist = ring(6);
        let die = netlist.suggested_die(0.5);
        assert!(die.area() >= netlist.total_component_area() / 0.5 * 0.99);
        // Side is a whole number of wire blocks.
        let lb = netlist.geometry().wire_block_size;
        let side = die.width();
        assert!((side / lb - (side / lb).round()).abs() < 1e-9);
        assert_eq!(die.width(), die.height());
    }

    #[test]
    #[should_panic(expected = "utilization must be in (0, 1]")]
    fn suggested_die_rejects_bad_utilization() {
        let _ = ring(3).suggested_die(0.0);
    }

    #[test]
    fn total_area_matches_hand_computation() {
        let netlist = ring(3);
        let expected = 3.0 * 40.0 * 40.0 + (3 * 12) as f64 * 10.0 * 10.0;
        assert!((netlist.total_component_area() - expected).abs() < 1e-9);
    }

    #[test]
    fn component_lookup_helpers() {
        let netlist = ring(3);
        let q = ComponentId::Qubit(QubitId(0));
        let s = ComponentId::Segment(SegmentId(0));
        assert_eq!(netlist.component_dims(q), (40.0, 40.0));
        assert_eq!(netlist.component_dims(s), (10.0, 10.0));
        let rect = netlist.component_rect_at(q, Point::new(50.0, 50.0));
        assert_eq!(rect.center(), Point::new(50.0, 50.0));
        assert_eq!(netlist.component_ids().count(), netlist.num_components());
    }
}
