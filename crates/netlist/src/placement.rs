//! Positional solutions for a netlist: the [`Placement`] type.

use crate::{ComponentId, QuantumNetlist, QubitId, SegmentId};
use qgdp_geometry::{Point, Rect, Vector};

/// A positional assignment (component centre coordinates) for every component of a
/// [`QuantumNetlist`].
///
/// Placements are deliberately separate from the netlist: the qGDP flow produces a
/// sequence of placements (global placement → qubit legalization → resonator
/// legalization → detailed placement) over the same netlist, and quality metrics such
/// as total displacement are defined *between* placements.
///
/// # Example
///
/// ```
/// use qgdp_geometry::Point;
/// use qgdp_netlist::{ComponentGeometry, NetlistBuilder, Placement, QubitId};
///
/// let netlist = NetlistBuilder::new(ComponentGeometry::default())
///     .qubits(2)
///     .couple(0, 1)
///     .build()?;
/// let mut placement = Placement::new(&netlist);
/// placement.set_qubit(QubitId(0), Point::new(10.0, 10.0));
/// placement.set_qubit(QubitId(1), Point::new(90.0, 10.0));
/// assert_eq!(placement.qubit(QubitId(1)), Point::new(90.0, 10.0));
/// # Ok::<(), qgdp_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    qubit_positions: Vec<Point>,
    segment_positions: Vec<Point>,
}

impl Placement {
    /// Creates a placement with every component at the origin.
    #[must_use]
    pub fn new(netlist: &QuantumNetlist) -> Self {
        Placement {
            qubit_positions: vec![Point::ORIGIN; netlist.num_qubits()],
            segment_positions: vec![Point::ORIGIN; netlist.num_segments()],
        }
    }

    /// Number of qubit positions stored.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.qubit_positions.len()
    }

    /// Number of segment positions stored.
    #[must_use]
    pub fn num_segments(&self) -> usize {
        self.segment_positions.len()
    }

    /// Position (centre) of a qubit.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn qubit(&self, id: QubitId) -> Point {
        self.qubit_positions[id.index()]
    }

    /// Position (centre) of a wire-block segment.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn segment(&self, id: SegmentId) -> Point {
        self.segment_positions[id.index()]
    }

    /// Position (centre) of any component.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn component(&self, id: ComponentId) -> Point {
        match id {
            ComponentId::Qubit(q) => self.qubit(q),
            ComponentId::Segment(s) => self.segment(s),
        }
    }

    /// Sets the position of a qubit.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_qubit(&mut self, id: QubitId, position: Point) {
        self.qubit_positions[id.index()] = position;
    }

    /// Sets the position of a wire-block segment.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_segment(&mut self, id: SegmentId, position: Point) {
        self.segment_positions[id.index()] = position;
    }

    /// Sets the position of any component.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_component(&mut self, id: ComponentId, position: Point) {
        match id {
            ComponentId::Qubit(q) => self.set_qubit(q, position),
            ComponentId::Segment(s) => self.set_segment(s, position),
        }
    }

    /// The placed bounding rectangle of a component.
    #[must_use]
    pub fn rect(&self, netlist: &QuantumNetlist, id: ComponentId) -> Rect {
        netlist.component_rect_at(id, self.component(id))
    }

    /// Translates every component by `offset`.
    pub fn translate_all(&mut self, offset: Vector) {
        for p in &mut self.qubit_positions {
            *p += offset;
        }
        for p in &mut self.segment_positions {
            *p += offset;
        }
    }

    /// Clamps every component inside `die` (the border constraint, Eq. 2).
    pub fn clamp_within(&mut self, netlist: &QuantumNetlist, die: &Rect) {
        for id in netlist.component_ids() {
            let rect = self.rect(netlist, id).clamped_within(die);
            self.set_component(id, rect.center());
        }
    }

    /// Total Euclidean displacement of every component relative to `reference`
    /// (the objective of Eq. 5, extended to all components).
    ///
    /// # Panics
    ///
    /// Panics if the two placements have different component counts.
    #[must_use]
    pub fn total_displacement_from(&self, reference: &Placement) -> f64 {
        assert_eq!(self.qubit_positions.len(), reference.qubit_positions.len());
        assert_eq!(
            self.segment_positions.len(),
            reference.segment_positions.len()
        );
        let q: f64 = self
            .qubit_positions
            .iter()
            .zip(&reference.qubit_positions)
            .map(|(a, b)| a.distance(*b))
            .sum();
        let s: f64 = self
            .segment_positions
            .iter()
            .zip(&reference.segment_positions)
            .map(|(a, b)| a.distance(*b))
            .sum();
        q + s
    }

    /// Total displacement of the qubits only, relative to `reference` (Eq. 5).
    #[must_use]
    pub fn qubit_displacement_from(&self, reference: &Placement) -> f64 {
        self.qubit_positions
            .iter()
            .zip(&reference.qubit_positions)
            .map(|(a, b)| a.distance(*b))
            .sum()
    }

    /// Maximum single-component displacement relative to `reference`.
    #[must_use]
    pub fn max_displacement_from(&self, reference: &Placement) -> f64 {
        self.qubit_positions
            .iter()
            .zip(&reference.qubit_positions)
            .chain(
                self.segment_positions
                    .iter()
                    .zip(&reference.segment_positions),
            )
            .map(|(a, b)| a.distance(*b))
            .fold(0.0, f64::max)
    }

    /// Returns `true` if every component lies fully inside `die`.
    #[must_use]
    pub fn is_within(&self, netlist: &QuantumNetlist, die: &Rect) -> bool {
        netlist
            .component_ids()
            .all(|id| die.contains_rect(&self.rect(netlist, id)))
    }

    /// Counts pairs of components whose rectangles overlap.
    ///
    /// Runs a sort-by-x sweepline ([`qgdp_geometry::count_overlapping_pairs`]), so the
    /// global-placement overlap statistic costs `O(n log n)` on realistic layouts
    /// instead of the O(n²) of the retained
    /// [`count_overlaps_reference`](Placement::count_overlaps_reference) — the two are
    /// equal by construction (same [`Rect::overlaps`] predicate pair by pair).
    #[must_use]
    pub fn count_overlaps(&self, netlist: &QuantumNetlist) -> usize {
        let rects: Vec<Rect> = netlist
            .component_ids()
            .map(|id| self.rect(netlist, id))
            .collect();
        qgdp_geometry::count_overlapping_pairs(&rects)
    }

    /// The brute-force O(n²) formulation of
    /// [`count_overlaps`](Placement::count_overlaps), retained as its executable
    /// specification for equivalence tests and the `bench_legalize` record.
    #[must_use]
    pub fn count_overlaps_reference(&self, netlist: &QuantumNetlist) -> usize {
        let ids: Vec<ComponentId> = netlist.component_ids().collect();
        let rects: Vec<Rect> = ids.iter().map(|&id| self.rect(netlist, id)).collect();
        let mut count = 0;
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                if rects[i].overlaps(&rects[j]) {
                    count += 1;
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ComponentGeometry, NetlistBuilder};
    use proptest::prelude::*;

    fn netlist() -> QuantumNetlist {
        NetlistBuilder::new(ComponentGeometry::default())
            .qubits(3)
            .couple(0, 1)
            .couple(1, 2)
            .build()
            .expect("valid netlist")
    }

    #[test]
    fn set_and_get_positions() {
        let nl = netlist();
        let mut p = Placement::new(&nl);
        assert_eq!(p.num_qubits(), 3);
        assert_eq!(p.num_segments(), 24);
        p.set_qubit(QubitId(1), Point::new(5.0, 6.0));
        p.set_segment(SegmentId(3), Point::new(1.0, 2.0));
        assert_eq!(p.qubit(QubitId(1)), Point::new(5.0, 6.0));
        assert_eq!(p.segment(SegmentId(3)), Point::new(1.0, 2.0));
        assert_eq!(
            p.component(ComponentId::Qubit(QubitId(1))),
            Point::new(5.0, 6.0)
        );
        p.set_component(ComponentId::Segment(SegmentId(0)), Point::new(9.0, 9.0));
        assert_eq!(p.segment(SegmentId(0)), Point::new(9.0, 9.0));
    }

    #[test]
    fn displacement_metrics() {
        let nl = netlist();
        let a = Placement::new(&nl);
        let mut b = Placement::new(&nl);
        b.set_qubit(QubitId(0), Point::new(3.0, 4.0));
        b.set_segment(SegmentId(0), Point::new(0.0, 2.0));
        assert_eq!(b.total_displacement_from(&a), 7.0);
        assert_eq!(b.qubit_displacement_from(&a), 5.0);
        assert_eq!(b.max_displacement_from(&a), 5.0);
    }

    #[test]
    fn translate_and_clamp() {
        let nl = netlist();
        let die = Rect::from_lower_left(Point::ORIGIN, 500.0, 500.0);
        let mut p = Placement::new(&nl);
        p.translate_all(Vector::new(-100.0, 250.0));
        assert!(!p.is_within(&nl, &die));
        p.clamp_within(&nl, &die);
        assert!(p.is_within(&nl, &die));
    }

    #[test]
    fn overlap_counting() {
        let nl = netlist();
        let p = Placement::new(&nl);
        // Everything at the origin overlaps pairwise.
        let n = nl.num_components();
        assert_eq!(p.count_overlaps(&nl), n * (n - 1) / 2);
        assert_eq!(p.count_overlaps_reference(&nl), n * (n - 1) / 2);
        // Spread the qubits and segments far apart: no overlaps.
        let mut q = Placement::new(&nl);
        for (i, id) in nl.component_ids().enumerate() {
            q.set_component(id, Point::new(i as f64 * 100.0, 0.0));
        }
        assert_eq!(q.count_overlaps(&nl), 0);
        assert_eq!(q.count_overlaps_reference(&nl), 0);
    }

    proptest! {
        #[test]
        fn prop_sweepline_overlaps_match_reference(
            positions in proptest::collection::vec(
                (0.0..400.0f64, 0.0..400.0f64),
                27..28,
            ),
        ) {
            // 3 qubits + 24 wire blocks scattered at random densities: the sweepline
            // statistic must equal the brute-force reference exactly.
            let nl = netlist();
            let mut p = Placement::new(&nl);
            for (id, &(x, y)) in nl.component_ids().zip(&positions) {
                p.set_component(id, Point::new(x, y));
            }
            prop_assert_eq!(p.count_overlaps(&nl), p.count_overlaps_reference(&nl));
        }
    }
}
