//! Connectivity nets used by the global placer, including pseudo connections.

use crate::{ComponentId, QubitId, ResonatorId, SegmentId};

/// How a resonator's wire blocks are wired into nets for global placement.
///
/// The paper (§III-D, Fig. 5) contrasts the snake-like chain connection used by the
/// original QPlacer partitioning — which lets the density force smear blocks into long
/// thin lines — with its **pseudo connection** strategy, where every block is also
/// connected to its neighbours in a virtual rectangular arrangement, biasing GP towards
/// compact, legalization-friendly clumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NetModel {
    /// Snake-like chain: `q_a — s_1 — s_2 — … — s_n — q_b` (the baseline of \[12\]).
    Chain,
    /// Chain plus pseudo connections between all virtually-adjacent blocks (the
    /// paper's approach; default).
    #[default]
    Pseudo,
}

/// A (hyper)net connecting two or more placeable components.
///
/// Nets pull their components together during global placement; the `weight` scales the
/// attraction.  Pseudo-connection nets are tagged with a lower weight than real chain
/// nets so they shape the cluster without dominating the qubit anchors.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    components: Vec<ComponentId>,
    weight: f64,
    resonator: Option<ResonatorId>,
    pseudo: bool,
}

impl Net {
    /// Creates a two-pin net.
    #[must_use]
    pub fn two_pin(a: ComponentId, b: ComponentId, weight: f64) -> Self {
        Net {
            components: vec![a, b],
            weight,
            resonator: None,
            pseudo: false,
        }
    }

    /// Creates a net from an arbitrary pin list.
    #[must_use]
    pub fn new(components: Vec<ComponentId>, weight: f64) -> Self {
        Net {
            components,
            weight,
            resonator: None,
            pseudo: false,
        }
    }

    /// Tags the net with the resonator it belongs to.
    #[must_use]
    pub fn with_resonator(mut self, resonator: ResonatorId) -> Self {
        self.resonator = Some(resonator);
        self
    }

    /// Marks the net as a pseudo connection.
    #[must_use]
    pub fn as_pseudo(mut self) -> Self {
        self.pseudo = true;
        self
    }

    /// The components connected by this net.
    #[must_use]
    pub fn components(&self) -> &[ComponentId] {
        &self.components
    }

    /// The attraction weight of this net.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The resonator this net belongs to, if any.
    #[must_use]
    pub fn resonator(&self) -> Option<ResonatorId> {
        self.resonator
    }

    /// Returns `true` if this net is a pseudo connection.
    #[must_use]
    pub fn is_pseudo(&self) -> bool {
        self.pseudo
    }
}

/// Default weight of a real (chain) net.
pub const CHAIN_NET_WEIGHT: f64 = 1.0;
/// Default weight of a pseudo-connection net.
pub const PSEUDO_NET_WEIGHT: f64 = 0.5;

/// Builds the nets for a single resonator under the chosen [`NetModel`].
///
/// `segments` are the resonator's wire blocks in order; `(qa, qb)` are its endpoint
/// qubits.  In [`NetModel::Pseudo`] the blocks are laid out on a virtual
/// `rows × cols` grid (rows ≈ √n) and every horizontally- or vertically-adjacent pair
/// receives an extra pseudo net, exactly the red dotted arrows of the paper's Fig. 5-d.
#[must_use]
pub fn resonator_nets(
    resonator: ResonatorId,
    qa: QubitId,
    qb: QubitId,
    segments: &[SegmentId],
    model: NetModel,
) -> Vec<Net> {
    let mut nets = Vec::new();
    if segments.is_empty() {
        nets.push(Net::two_pin(qa.into(), qb.into(), CHAIN_NET_WEIGHT).with_resonator(resonator));
        return nets;
    }

    // Chain backbone: qa — s_1 — … — s_n — qb.
    nets.push(
        Net::two_pin(qa.into(), segments[0].into(), CHAIN_NET_WEIGHT).with_resonator(resonator),
    );
    for pair in segments.windows(2) {
        nets.push(
            Net::two_pin(pair[0].into(), pair[1].into(), CHAIN_NET_WEIGHT)
                .with_resonator(resonator),
        );
    }
    nets.push(
        Net::two_pin(
            segments[segments.len() - 1].into(),
            qb.into(),
            CHAIN_NET_WEIGHT,
        )
        .with_resonator(resonator),
    );

    if model == NetModel::Pseudo {
        let n = segments.len();
        let rows = (n as f64).sqrt().ceil() as usize;
        let cols = n.div_ceil(rows);
        let at = |r: usize, c: usize| -> Option<SegmentId> {
            let idx = r * cols + c;
            (idx < n).then(|| segments[idx])
        };
        for r in 0..rows {
            for c in 0..cols {
                let Some(here) = at(r, c) else { continue };
                // Right neighbour (skip pairs already joined by the chain backbone,
                // which connects consecutive indices).
                if let Some(right) = at(r, c + 1) {
                    if right.index() != here.index() + 1 {
                        nets.push(
                            Net::two_pin(here.into(), right.into(), PSEUDO_NET_WEIGHT)
                                .with_resonator(resonator)
                                .as_pseudo(),
                        );
                    }
                }
                // Up neighbour.
                if let Some(up) = at(r + 1, c) {
                    nets.push(
                        Net::two_pin(here.into(), up.into(), PSEUDO_NET_WEIGHT)
                            .with_resonator(resonator)
                            .as_pseudo(),
                    );
                }
            }
        }
    }
    nets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segs(n: usize) -> Vec<SegmentId> {
        (0..n).map(SegmentId).collect()
    }

    #[test]
    fn chain_model_builds_backbone_only() {
        let nets = resonator_nets(
            ResonatorId(0),
            QubitId(0),
            QubitId(1),
            &segs(4),
            NetModel::Chain,
        );
        // qa-s0, s0-s1, s1-s2, s2-s3, s3-qb
        assert_eq!(nets.len(), 5);
        assert!(nets.iter().all(|n| !n.is_pseudo()));
        assert!(nets.iter().all(|n| n.resonator() == Some(ResonatorId(0))));
        assert!(nets.iter().all(|n| n.components().len() == 2));
    }

    #[test]
    fn pseudo_model_adds_grid_adjacency() {
        let chain = resonator_nets(
            ResonatorId(0),
            QubitId(0),
            QubitId(1),
            &segs(6),
            NetModel::Chain,
        );
        let pseudo = resonator_nets(
            ResonatorId(0),
            QubitId(0),
            QubitId(1),
            &segs(6),
            NetModel::Pseudo,
        );
        assert!(pseudo.len() > chain.len());
        let pseudo_count = pseudo.iter().filter(|n| n.is_pseudo()).count();
        // 6 blocks on a 3x2 virtual grid: 3 vertical links per column pair boundary...
        // at minimum the vertical links (n - cols) exist.
        assert!(
            pseudo_count >= 3,
            "expected vertical pseudo links, got {pseudo_count}"
        );
        for net in pseudo.iter().filter(|n| n.is_pseudo()) {
            assert_eq!(net.weight(), PSEUDO_NET_WEIGHT);
        }
    }

    #[test]
    fn empty_resonator_still_connects_endpoints() {
        let nets = resonator_nets(
            ResonatorId(2),
            QubitId(3),
            QubitId(4),
            &[],
            NetModel::Pseudo,
        );
        assert_eq!(nets.len(), 1);
        assert_eq!(
            nets[0].components(),
            &[
                ComponentId::Qubit(QubitId(3)),
                ComponentId::Qubit(QubitId(4))
            ]
        );
    }

    #[test]
    fn single_segment_resonator() {
        let nets = resonator_nets(
            ResonatorId(0),
            QubitId(0),
            QubitId(1),
            &segs(1),
            NetModel::Pseudo,
        );
        assert_eq!(nets.len(), 2);
    }

    #[test]
    fn pseudo_nets_never_duplicate_chain_links() {
        let nets = resonator_nets(
            ResonatorId(0),
            QubitId(0),
            QubitId(1),
            &segs(9),
            NetModel::Pseudo,
        );
        for net in nets.iter().filter(|n| n.is_pseudo()) {
            let c = net.components();
            let (a, b) = (c[0], c[1]);
            if let (ComponentId::Segment(sa), ComponentId::Segment(sb)) = (a, b) {
                assert_ne!(
                    sa.index().abs_diff(sb.index()),
                    1,
                    "pseudo net duplicates a chain link between {sa} and {sb}"
                );
            }
        }
    }
}
