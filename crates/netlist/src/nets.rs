//! Connectivity nets used by the global placer, including pseudo connections and the
//! clique→star decomposition of high-degree nets.

use crate::{ComponentId, QubitId, ResonatorId, SegmentId};
use qgdp_geometry::{Point, Vector};

/// How a resonator's wire blocks are wired into nets for global placement.
///
/// The paper (§III-D, Fig. 5) contrasts the snake-like chain connection used by the
/// original QPlacer partitioning — which lets the density force smear blocks into long
/// thin lines — with its **pseudo connection** strategy, where every block is also
/// connected to its neighbours in a virtual rectangular arrangement, biasing GP towards
/// compact, legalization-friendly clumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NetModel {
    /// Snake-like chain: `q_a — s_1 — s_2 — … — s_n — q_b` (the baseline of \[12\]).
    Chain,
    /// Chain plus pseudo connections between all virtually-adjacent blocks (the
    /// paper's approach; default).
    #[default]
    Pseudo,
    /// Chain plus one high-degree hypernet per resonator joining both endpoint qubits
    /// and every wire block.
    ///
    /// The hypernet has clique semantics — every pin attracts every other pin — which
    /// pulls each block towards the resonator centroid instead of towards its virtual
    /// grid neighbours.  A naive pairwise expansion of a `k`-pin clique costs
    /// `O(k²)` per placement iteration; the placer decomposes cliques above its
    /// configured `star_threshold` into the exactly-equivalent star form (see
    /// [`star_forces`]), which costs `O(k)`.
    Clique,
}

/// A (hyper)net connecting two or more placeable components.
///
/// Nets pull their components together during global placement; the `weight` scales the
/// attraction.  Pseudo-connection nets are tagged with a lower weight than real chain
/// nets so they shape the cluster without dominating the qubit anchors.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    components: Vec<ComponentId>,
    weight: f64,
    resonator: Option<ResonatorId>,
    pseudo: bool,
}

impl Net {
    /// Creates a two-pin net.
    #[must_use]
    pub fn two_pin(a: ComponentId, b: ComponentId, weight: f64) -> Self {
        Net {
            components: vec![a, b],
            weight,
            resonator: None,
            pseudo: false,
        }
    }

    /// Creates a net from an arbitrary pin list.
    #[must_use]
    pub fn new(components: Vec<ComponentId>, weight: f64) -> Self {
        Net {
            components,
            weight,
            resonator: None,
            pseudo: false,
        }
    }

    /// Tags the net with the resonator it belongs to.
    #[must_use]
    pub fn with_resonator(mut self, resonator: ResonatorId) -> Self {
        self.resonator = Some(resonator);
        self
    }

    /// Marks the net as a pseudo connection.
    #[must_use]
    pub fn as_pseudo(mut self) -> Self {
        self.pseudo = true;
        self
    }

    /// The components connected by this net.
    #[must_use]
    pub fn components(&self) -> &[ComponentId] {
        &self.components
    }

    /// The attraction weight of this net.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The resonator this net belongs to, if any.
    #[must_use]
    pub fn resonator(&self) -> Option<ResonatorId> {
        self.resonator
    }

    /// Returns `true` if this net is a pseudo connection.
    #[must_use]
    pub fn is_pseudo(&self) -> bool {
        self.pseudo
    }

    /// Number of pins on this net.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.components.len()
    }

    /// How the global placer should expand this net into force terms, given its
    /// clique→star threshold.
    #[must_use]
    pub fn decomposition(&self, star_threshold: usize) -> NetDecomposition {
        NetDecomposition::for_degree(self.degree(), star_threshold)
    }
}

/// How a net is expanded into placement force/wirelength terms.
///
/// Small nets use the exact pairwise (clique) form; nets whose degree exceeds the
/// placer's `star_threshold` use the star form, which for the quadratic wirelength
/// model is *analytically identical* to the clique form (see [`star_forces`]) but costs
/// `O(k)` instead of `O(k²)` per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetDecomposition {
    /// Exact pairwise expansion: `k(k−1)/2` spring terms.
    Clique,
    /// Star expansion: `k` spoke terms against the pin centroid.
    Star,
}

impl NetDecomposition {
    /// Chooses the decomposition for a net of `degree` pins under `star_threshold`:
    /// nets with more than `star_threshold` pins are decomposed clique→star.
    #[must_use]
    pub fn for_degree(degree: usize, star_threshold: usize) -> Self {
        if degree > star_threshold {
            NetDecomposition::Star
        } else {
            NetDecomposition::Clique
        }
    }
}

/// Quadratic wirelength of a net under the clique model:
/// `W = w · Σ_{i<j} |p_i − p_j|²`.
#[must_use]
pub fn quadratic_wirelength(points: &[Point], weight: f64) -> f64 {
    let mut total = 0.0;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            total += points[i].distance_squared(points[j]);
        }
    }
    weight * total
}

/// Quadratic wirelength of a net under the star model:
/// `W = w · k · Σ_i |p_i − x̄|²` where `x̄` is the pin centroid.
///
/// By the standard variance identity `Σ_{i<j} |p_i − p_j|² = k · Σ_i |p_i − x̄|²`,
/// this equals [`quadratic_wirelength`] exactly (up to floating-point rounding) while
/// costing `O(k)` instead of `O(k²)`.
#[must_use]
pub fn star_wirelength(points: &[Point], weight: f64) -> f64 {
    let Some(centroid) = pin_centroid(points) else {
        return 0.0;
    };
    let k = points.len() as f64;
    weight
        * k
        * points
            .iter()
            .map(|p| p.distance_squared(centroid))
            .sum::<f64>()
}

/// Accumulates the clique-model attraction force of one net into `forces`:
/// `F_i += w · Σ_{j≠i} (p_j − p_i)`, the negative gradient of
/// `½ · w · Σ_{i<j} |p_i − p_j|²`.
///
/// `forces` must have the same length as `points`.
///
/// # Panics
///
/// Panics if `forces.len() != points.len()`.
pub fn clique_forces(points: &[Point], weight: f64, forces: &mut [Vector]) {
    assert_eq!(points.len(), forces.len(), "one force slot per pin");
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let pull = (points[j] - points[i]) * weight;
            forces[i] += pull;
            forces[j] -= pull;
        }
    }
}

/// Accumulates the star-model attraction force of one net into `forces`:
/// `F_i += w · k · (x̄ − p_i)` where `x̄` is the pin centroid.
///
/// For the quadratic model this is *exactly* the clique force: summing the pairwise
/// pulls on pin `i` gives `w · Σ_j (p_j − p_i) = w · (S − k·p_i) = w · k · (x̄ − p_i)`,
/// so the star spoke with weight `w · k` reproduces the clique gradient without
/// enumerating the `k(k−1)/2` pairs.
///
/// # Panics
///
/// Panics if `forces.len() != points.len()`.
pub fn star_forces(points: &[Point], weight: f64, forces: &mut [Vector]) {
    assert_eq!(points.len(), forces.len(), "one force slot per pin");
    let Some(centroid) = pin_centroid(points) else {
        return;
    };
    let spoke = weight * points.len() as f64;
    for (p, f) in points.iter().zip(forces.iter_mut()) {
        *f += (centroid - *p) * spoke;
    }
}

/// The centroid `x̄ = Σ p_i / k` of a pin list, or `None` when the list is empty.
#[must_use]
pub fn pin_centroid(points: &[Point]) -> Option<Point> {
    if points.is_empty() {
        return None;
    }
    let (sx, sy) = points
        .iter()
        .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
    let k = points.len() as f64;
    Some(Point::new(sx / k, sy / k))
}

/// Default weight of a real (chain) net.
pub const CHAIN_NET_WEIGHT: f64 = 1.0;
/// Default weight of a pseudo-connection net.
pub const PSEUDO_NET_WEIGHT: f64 = 0.5;

/// Builds the nets for a single resonator under the chosen [`NetModel`].
///
/// `segments` are the resonator's wire blocks in order; `(qa, qb)` are its endpoint
/// qubits.  In [`NetModel::Pseudo`] the blocks are laid out on a virtual
/// `rows × cols` grid (rows ≈ √n) and every horizontally- or vertically-adjacent pair
/// receives an extra pseudo net, exactly the red dotted arrows of the paper's Fig. 5-d.
/// In [`NetModel::Clique`] the pseudo mesh is replaced by one high-degree hypernet over
/// the endpoints and every block, with its per-pair weight normalised by the degree so
/// the centroid pull on each pin stays comparable to two pseudo links
/// (`w = 2·`[`PSEUDO_NET_WEIGHT`]`/k` gives a spoke force of
/// `2·`[`PSEUDO_NET_WEIGHT`]`·(x̄ − p)` under the star identity of [`star_forces`]).
#[must_use]
pub fn resonator_nets(
    resonator: ResonatorId,
    qa: QubitId,
    qb: QubitId,
    segments: &[SegmentId],
    model: NetModel,
) -> Vec<Net> {
    let mut nets = Vec::new();
    if segments.is_empty() {
        nets.push(Net::two_pin(qa.into(), qb.into(), CHAIN_NET_WEIGHT).with_resonator(resonator));
        return nets;
    }

    // Chain backbone: qa — s_1 — … — s_n — qb.
    nets.push(
        Net::two_pin(qa.into(), segments[0].into(), CHAIN_NET_WEIGHT).with_resonator(resonator),
    );
    for pair in segments.windows(2) {
        nets.push(
            Net::two_pin(pair[0].into(), pair[1].into(), CHAIN_NET_WEIGHT)
                .with_resonator(resonator),
        );
    }
    nets.push(
        Net::two_pin(
            segments[segments.len() - 1].into(),
            qb.into(),
            CHAIN_NET_WEIGHT,
        )
        .with_resonator(resonator),
    );

    if model == NetModel::Clique {
        let mut pins: Vec<ComponentId> = Vec::with_capacity(segments.len() + 2);
        pins.push(qa.into());
        pins.extend(segments.iter().map(|&s| ComponentId::from(s)));
        pins.push(qb.into());
        let weight = 2.0 * PSEUDO_NET_WEIGHT / pins.len() as f64;
        nets.push(Net::new(pins, weight).with_resonator(resonator).as_pseudo());
    }

    if model == NetModel::Pseudo {
        let n = segments.len();
        let rows = (n as f64).sqrt().ceil() as usize;
        let cols = n.div_ceil(rows);
        let at = |r: usize, c: usize| -> Option<SegmentId> {
            let idx = r * cols + c;
            (idx < n).then(|| segments[idx])
        };
        for r in 0..rows {
            for c in 0..cols {
                let Some(here) = at(r, c) else { continue };
                // Right neighbour (skip pairs already joined by the chain backbone,
                // which connects consecutive indices).
                if let Some(right) = at(r, c + 1) {
                    if right.index() != here.index() + 1 {
                        nets.push(
                            Net::two_pin(here.into(), right.into(), PSEUDO_NET_WEIGHT)
                                .with_resonator(resonator)
                                .as_pseudo(),
                        );
                    }
                }
                // Up neighbour.
                if let Some(up) = at(r + 1, c) {
                    nets.push(
                        Net::two_pin(here.into(), up.into(), PSEUDO_NET_WEIGHT)
                            .with_resonator(resonator)
                            .as_pseudo(),
                    );
                }
            }
        }
    }
    nets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segs(n: usize) -> Vec<SegmentId> {
        (0..n).map(SegmentId).collect()
    }

    #[test]
    fn chain_model_builds_backbone_only() {
        let nets = resonator_nets(
            ResonatorId(0),
            QubitId(0),
            QubitId(1),
            &segs(4),
            NetModel::Chain,
        );
        // qa-s0, s0-s1, s1-s2, s2-s3, s3-qb
        assert_eq!(nets.len(), 5);
        assert!(nets.iter().all(|n| !n.is_pseudo()));
        assert!(nets.iter().all(|n| n.resonator() == Some(ResonatorId(0))));
        assert!(nets.iter().all(|n| n.components().len() == 2));
    }

    #[test]
    fn pseudo_model_adds_grid_adjacency() {
        let chain = resonator_nets(
            ResonatorId(0),
            QubitId(0),
            QubitId(1),
            &segs(6),
            NetModel::Chain,
        );
        let pseudo = resonator_nets(
            ResonatorId(0),
            QubitId(0),
            QubitId(1),
            &segs(6),
            NetModel::Pseudo,
        );
        assert!(pseudo.len() > chain.len());
        let pseudo_count = pseudo.iter().filter(|n| n.is_pseudo()).count();
        // 6 blocks on a 3x2 virtual grid: 3 vertical links per column pair boundary...
        // at minimum the vertical links (n - cols) exist.
        assert!(
            pseudo_count >= 3,
            "expected vertical pseudo links, got {pseudo_count}"
        );
        for net in pseudo.iter().filter(|n| n.is_pseudo()) {
            assert_eq!(net.weight(), PSEUDO_NET_WEIGHT);
        }
    }

    #[test]
    fn empty_resonator_still_connects_endpoints() {
        let nets = resonator_nets(
            ResonatorId(2),
            QubitId(3),
            QubitId(4),
            &[],
            NetModel::Pseudo,
        );
        assert_eq!(nets.len(), 1);
        assert_eq!(
            nets[0].components(),
            &[
                ComponentId::Qubit(QubitId(3)),
                ComponentId::Qubit(QubitId(4))
            ]
        );
    }

    #[test]
    fn single_segment_resonator() {
        let nets = resonator_nets(
            ResonatorId(0),
            QubitId(0),
            QubitId(1),
            &segs(1),
            NetModel::Pseudo,
        );
        assert_eq!(nets.len(), 2);
    }

    #[test]
    fn clique_model_builds_backbone_plus_one_hypernet() {
        let nets = resonator_nets(
            ResonatorId(0),
            QubitId(0),
            QubitId(1),
            &segs(6),
            NetModel::Clique,
        );
        // 7 chain nets + 1 hypernet.
        assert_eq!(nets.len(), 8);
        let hyper: Vec<_> = nets.iter().filter(|n| n.degree() > 2).collect();
        assert_eq!(hyper.len(), 1);
        assert_eq!(hyper[0].degree(), 8); // qa + 6 segments + qb
        assert!(hyper[0].is_pseudo());
        assert!((hyper[0].weight() - 2.0 * PSEUDO_NET_WEIGHT / 8.0).abs() < 1e-12);
        assert_eq!(hyper[0].decomposition(4), NetDecomposition::Star);
        assert_eq!(hyper[0].decomposition(8), NetDecomposition::Clique);
    }

    #[test]
    fn decomposition_threshold_is_exclusive() {
        assert_eq!(NetDecomposition::for_degree(2, 4), NetDecomposition::Clique);
        assert_eq!(NetDecomposition::for_degree(4, 4), NetDecomposition::Clique);
        assert_eq!(NetDecomposition::for_degree(5, 4), NetDecomposition::Star);
    }

    fn sample_pins(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Point::new(3.0 * t - 0.7 * t * t, 40.0 - 5.0 * t + 0.3 * t * t)
            })
            .collect()
    }

    #[test]
    fn star_wirelength_equals_clique_wirelength() {
        for n in [0usize, 1, 2, 3, 7, 14, 30] {
            let pins = sample_pins(n);
            let clique = quadratic_wirelength(&pins, 0.37);
            let star = star_wirelength(&pins, 0.37);
            assert!(
                (clique - star).abs() <= 1e-9 * clique.abs().max(1.0),
                "degree {n}: clique {clique} vs star {star}"
            );
        }
    }

    #[test]
    fn star_forces_equal_clique_forces() {
        for n in [1usize, 2, 3, 7, 14, 30] {
            let pins = sample_pins(n);
            let mut clique = vec![Vector::ZERO; n];
            let mut star = vec![Vector::ZERO; n];
            clique_forces(&pins, 0.42, &mut clique);
            star_forces(&pins, 0.42, &mut star);
            for (i, (c, s)) in clique.iter().zip(&star).enumerate() {
                let d = (*c - *s).length();
                assert!(
                    d <= 1e-9 * (c.length().max(1.0)),
                    "degree {n} pin {i}: clique {c:?} vs star {s:?}"
                );
            }
        }
    }

    #[test]
    fn two_pin_clique_force_is_a_plain_spring() {
        let pins = [Point::new(0.0, 0.0), Point::new(4.0, 0.0)];
        let mut f = vec![Vector::ZERO; 2];
        clique_forces(&pins, 0.5, &mut f);
        assert!((f[0].dx - 2.0).abs() < 1e-12 && f[0].dy.abs() < 1e-12);
        assert!((f[1].dx + 2.0).abs() < 1e-12);
    }

    #[test]
    fn pin_centroid_of_empty_list_is_none() {
        assert!(pin_centroid(&[]).is_none());
        let mut f: Vec<Vector> = Vec::new();
        star_forces(&[], 1.0, &mut f); // must not panic
        assert_eq!(star_wirelength(&[], 1.0), 0.0);
    }

    #[test]
    fn pseudo_nets_never_duplicate_chain_links() {
        let nets = resonator_nets(
            ResonatorId(0),
            QubitId(0),
            QubitId(1),
            &segs(9),
            NetModel::Pseudo,
        );
        for net in nets.iter().filter(|n| n.is_pseudo()) {
            let c = net.components();
            let (a, b) = (c[0], c[1]);
            if let (ComponentId::Segment(sa), ComponentId::Segment(sb)) = (a, b) {
                assert_ne!(
                    sa.index().abs_diff(sb.index()),
                    1,
                    "pseudo net duplicates a chain link between {sa} and {sb}"
                );
            }
        }
    }
}
