//! Physical component records: qubits, resonators and resonator wire blocks.

use crate::{Frequency, NetlistError, QubitId, ResonatorId, SegmentId};
use qgdp_geometry::{Point, Rect};

/// Geometric parameters shared by every component of a netlist.
///
/// Dimensions are in micrometres.  The defaults follow the QPlacer-style setup the
/// paper refers to for "qubit geometry features": a 40 µm square transmon pad, 10 µm
/// wire blocks, and a padded resonator whose area partitions into 12 blocks
/// (Eq. 6: `l_pad · L = n · l_b²` with `l_pad = 3`, `L = 400`, `l_b = 10`), which
/// reproduces the ≈11–12 cells-per-resonator densities of the paper's Table III.
///
/// # Example
///
/// ```
/// use qgdp_netlist::ComponentGeometry;
///
/// let geom = ComponentGeometry::default();
/// assert_eq!(geom.segments_per_resonator(), 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentGeometry {
    /// Width of a qubit pad.
    pub qubit_width: f64,
    /// Height of a qubit pad.
    pub qubit_height: f64,
    /// Side length `l_b` of a (square) resonator wire block — the "standard cell" size.
    pub wire_block_size: f64,
    /// Padding length `l_pad` applied to the resonator when reshaping it into a compact
    /// rectangle (Eq. 6).
    pub padding_length: f64,
    /// Resonator wire length `L` (Eq. 6).
    pub resonator_wirelength: f64,
    /// Minimum spacing to enforce between adjacent qubits during legalization, in
    /// multiples of [`ComponentGeometry::wire_block_size`] (the paper enforces "at
    /// least one standard cell size").
    pub min_qubit_spacing_cells: f64,
}

impl ComponentGeometry {
    /// Creates the default geometry (see the type-level documentation).
    #[must_use]
    pub fn new() -> Self {
        ComponentGeometry {
            qubit_width: 40.0,
            qubit_height: 40.0,
            wire_block_size: 10.0,
            padding_length: 3.0,
            resonator_wirelength: 400.0,
            min_qubit_spacing_cells: 1.0,
        }
    }

    /// Validates that every parameter is positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidGeometry`] naming the first offending parameter.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let checks = [
            ("qubit_width", self.qubit_width),
            ("qubit_height", self.qubit_height),
            ("wire_block_size", self.wire_block_size),
            ("padding_length", self.padding_length),
            ("resonator_wirelength", self.resonator_wirelength),
        ];
        for (parameter, value) in checks {
            if !(value > 0.0 && value.is_finite()) {
                return Err(NetlistError::InvalidGeometry { parameter, value });
            }
        }
        if !(self.min_qubit_spacing_cells >= 0.0 && self.min_qubit_spacing_cells.is_finite()) {
            return Err(NetlistError::InvalidGeometry {
                parameter: "min_qubit_spacing_cells",
                value: self.min_qubit_spacing_cells,
            });
        }
        Ok(())
    }

    /// Number of wire blocks each resonator partitions into (Eq. 6):
    /// `n = ⌈ l_pad · L / l_b² ⌉`.
    #[must_use]
    pub fn segments_per_resonator(&self) -> usize {
        let n = (self.padding_length * self.resonator_wirelength)
            / (self.wire_block_size * self.wire_block_size);
        n.ceil().max(1.0) as usize
    }

    /// The minimum qubit-to-qubit edge spacing in micrometres.
    #[must_use]
    pub fn min_qubit_spacing(&self) -> f64 {
        self.min_qubit_spacing_cells * self.wire_block_size
    }
}

impl Default for ComponentGeometry {
    fn default() -> Self {
        ComponentGeometry::new()
    }
}

/// A transmon qubit: the macro-sized, fixed-frequency component of the layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Qubit {
    id: QubitId,
    width: f64,
    height: f64,
    frequency: Frequency,
}

impl Qubit {
    /// Creates a qubit record.
    #[must_use]
    pub fn new(id: QubitId, width: f64, height: f64, frequency: Frequency) -> Self {
        Qubit {
            id,
            width,
            height,
            frequency,
        }
    }

    /// The qubit's identifier.
    #[must_use]
    pub fn id(&self) -> QubitId {
        self.id
    }

    /// Pad width.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Pad height.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Operating frequency.
    #[must_use]
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// The qubit's bounding rectangle when centred at `center`.
    #[must_use]
    pub fn rect_at(&self, center: Point) -> Rect {
        Rect::from_center(center, self.width, self.height)
    }
}

/// A resonator wire block: one of the `n` standard-cell-sized segments a resonator is
/// partitioned into (Eq. 6) so its reserved area can be placed flexibly.
#[derive(Debug, Clone, PartialEq)]
pub struct WireBlock {
    id: SegmentId,
    resonator: ResonatorId,
    size: f64,
    frequency: Frequency,
}

impl WireBlock {
    /// Creates a wire block record.
    #[must_use]
    pub fn new(id: SegmentId, resonator: ResonatorId, size: f64, frequency: Frequency) -> Self {
        WireBlock {
            id,
            resonator,
            size,
            frequency,
        }
    }

    /// The block's identifier.
    #[must_use]
    pub fn id(&self) -> SegmentId {
        self.id
    }

    /// The resonator this block belongs to.
    #[must_use]
    pub fn resonator(&self) -> ResonatorId {
        self.resonator
    }

    /// Side length of the (square) block.
    #[must_use]
    pub fn size(&self) -> f64 {
        self.size
    }

    /// Operating frequency (inherited from the owning resonator).
    #[must_use]
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// The block's bounding rectangle when centred at `center`.
    #[must_use]
    pub fn rect_at(&self, center: Point) -> Rect {
        Rect::from_center(center, self.size, self.size)
    }
}

/// A resonator: an edge `(q_i, q_j, S_ij)` of the quantum netlist coupling two qubits,
/// realised on chip as a set of wire-block segments.
#[derive(Debug, Clone, PartialEq)]
pub struct Resonator {
    id: ResonatorId,
    endpoints: (QubitId, QubitId),
    frequency: Frequency,
    wirelength: f64,
    segments: Vec<SegmentId>,
}

impl Resonator {
    /// Creates a resonator record.
    #[must_use]
    pub fn new(
        id: ResonatorId,
        endpoints: (QubitId, QubitId),
        frequency: Frequency,
        wirelength: f64,
        segments: Vec<SegmentId>,
    ) -> Self {
        Resonator {
            id,
            endpoints,
            frequency,
            wirelength,
            segments,
        }
    }

    /// The resonator's identifier.
    #[must_use]
    pub fn id(&self) -> ResonatorId {
        self.id
    }

    /// The two qubits this resonator couples.
    #[must_use]
    pub fn endpoints(&self) -> (QubitId, QubitId) {
        self.endpoints
    }

    /// Returns the other endpoint given one of the two coupled qubits, or `None` if
    /// `qubit` is not an endpoint.
    #[must_use]
    pub fn other_endpoint(&self, qubit: QubitId) -> Option<QubitId> {
        if self.endpoints.0 == qubit {
            Some(self.endpoints.1)
        } else if self.endpoints.1 == qubit {
            Some(self.endpoints.0)
        } else {
            None
        }
    }

    /// Operating (fundamental) frequency.
    #[must_use]
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// Wire length `L` of the resonator before partitioning.
    #[must_use]
    pub fn wirelength(&self) -> f64 {
        self.wirelength
    }

    /// The wire-block segments `S_e` this resonator is partitioned into.
    #[must_use]
    pub fn segments(&self) -> &[SegmentId] {
        &self.segments
    }

    /// Number of wire blocks.
    #[must_use]
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_matches_paper_density() {
        let geom = ComponentGeometry::default();
        assert!(geom.validate().is_ok());
        assert_eq!(geom.segments_per_resonator(), 12);
        assert_eq!(geom.min_qubit_spacing(), 10.0);
    }

    #[test]
    fn geometry_validation_rejects_nonpositive() {
        let geom = ComponentGeometry {
            wire_block_size: 0.0,
            ..ComponentGeometry::default()
        };
        assert_eq!(
            geom.validate(),
            Err(NetlistError::InvalidGeometry {
                parameter: "wire_block_size",
                value: 0.0
            })
        );
        let geom = ComponentGeometry {
            qubit_width: f64::NAN,
            ..ComponentGeometry::default()
        };
        assert!(geom.validate().is_err());
        let geom = ComponentGeometry {
            min_qubit_spacing_cells: -1.0,
            ..ComponentGeometry::default()
        };
        assert!(geom.validate().is_err());
    }

    #[test]
    fn partition_count_follows_eq6() {
        let mut geom = ComponentGeometry {
            padding_length: 5.0,
            resonator_wirelength: 120.0,
            wire_block_size: 10.0,
            ..ComponentGeometry::default()
        };
        // 5 * 120 / 100 = 6 — the n = 6 example of Fig. 5.
        assert_eq!(geom.segments_per_resonator(), 6);
        geom.resonator_wirelength = 121.0;
        assert_eq!(geom.segments_per_resonator(), 7, "partial blocks round up");
    }

    #[test]
    fn qubit_and_block_rects() {
        let q = Qubit::new(QubitId(0), 40.0, 30.0, Frequency::ghz(5.0));
        let r = q.rect_at(Point::new(100.0, 100.0));
        assert_eq!(r.width(), 40.0);
        assert_eq!(r.height(), 30.0);
        assert_eq!(r.center(), Point::new(100.0, 100.0));
        let b = WireBlock::new(SegmentId(0), ResonatorId(0), 10.0, Frequency::ghz(6.2));
        assert_eq!(b.rect_at(Point::ORIGIN).area(), 100.0);
        assert_eq!(b.resonator(), ResonatorId(0));
    }

    #[test]
    fn resonator_endpoints() {
        let r = Resonator::new(
            ResonatorId(0),
            (QubitId(1), QubitId(2)),
            Frequency::ghz(6.3),
            400.0,
            vec![SegmentId(0), SegmentId(1)],
        );
        assert_eq!(r.other_endpoint(QubitId(1)), Some(QubitId(2)));
        assert_eq!(r.other_endpoint(QubitId(2)), Some(QubitId(1)));
        assert_eq!(r.other_endpoint(QubitId(3)), None);
        assert_eq!(r.num_segments(), 2);
    }
}
