//! Error type for netlist construction and validation.

use crate::{QubitId, ResonatorId};
use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a [`crate::QuantumNetlist`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A coupling references a qubit index that does not exist.
    UnknownQubit {
        /// The offending qubit id.
        qubit: QubitId,
        /// Number of qubits declared in the netlist.
        num_qubits: usize,
    },
    /// A resonator couples a qubit to itself.
    SelfCoupling {
        /// The qubit coupled to itself.
        qubit: QubitId,
    },
    /// The same pair of qubits is coupled by more than one resonator.
    DuplicateCoupling {
        /// First endpoint.
        a: QubitId,
        /// Second endpoint.
        b: QubitId,
    },
    /// A geometry parameter is non-positive or non-finite.
    InvalidGeometry {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A resonator ended up with zero wire-block segments after partitioning.
    EmptyResonator {
        /// The offending resonator.
        resonator: ResonatorId,
    },
    /// The netlist has no qubits.
    Empty,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownQubit { qubit, num_qubits } => write!(
                f,
                "coupling references {qubit} but the netlist declares only {num_qubits} qubits"
            ),
            NetlistError::SelfCoupling { qubit } => {
                write!(f, "resonator couples {qubit} to itself")
            }
            NetlistError::DuplicateCoupling { a, b } => {
                write!(f, "duplicate resonator between {a} and {b}")
            }
            NetlistError::InvalidGeometry { parameter, value } => {
                write!(
                    f,
                    "geometry parameter `{parameter}` must be positive and finite, got {value}"
                )
            }
            NetlistError::EmptyResonator { resonator } => {
                write!(f, "resonator {resonator} has no wire-block segments")
            }
            NetlistError::Empty => write!(f, "netlist has no qubits"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetlistError::UnknownQubit {
            qubit: QubitId(9),
            num_qubits: 4,
        };
        assert!(e.to_string().contains("q9"));
        assert!(e.to_string().contains('4'));
        let e = NetlistError::DuplicateCoupling {
            a: QubitId(1),
            b: QubitId(2),
        };
        assert!(e.to_string().contains("q1"));
        let e = NetlistError::InvalidGeometry {
            parameter: "wire_block_size",
            value: -1.0,
        };
        assert!(e.to_string().contains("wire_block_size"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
