//! Detailed placement (paper §III-E, Algorithm 2).
//!
//! The detailed placer never moves qubits.  It scans the legalized layout for
//! *non-unified* resonators (more than one wire-block cluster) and resonators involved
//! in *frequency hotspots*, builds a processing window around each problematic
//! resonator and its neighbours, rips the window's wire blocks up and re-places each
//! resonator along a maze-routed path of free bins between its two endpoint qubits.
//! The window is accepted only if neither the cumulative cluster count nor the hotspot
//! measure got worse — otherwise the previous positions are restored, exactly the
//! guard of Algorithm 2.
//!
//! # Fidelity-guided mode
//!
//! With [`DetailedPlacerConfig::fidelity_guided`] set (default **off**), the placer
//! scores windows through one incrementally-maintained [`ReportDelta`] instead of
//! re-running the from-scratch violation/crossing scans per window: candidate moves
//! are mirrored into the delta engine, windows are accepted on the global
//! `(cluster count, crossing count, crosstalk cost)` triple, and rejected windows are
//! reverted *through* the delta (a revert is just a move back).  The default-off path
//! is byte-for-byte the historical algorithm.

use qgdp_geometry::{BinGrid, BinId, BinState, Point, Rect};
use qgdp_metrics::{
    find_violations, CrosstalkConfig, CrosstalkModel, ReportDelta, SpatialViolation,
};
use qgdp_netlist::{
    resonator_clusters, ComponentId, Placement, QuantumNetlist, ResonatorId, SegmentId,
};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Exposure time (ns) at which the fidelity-guided mode prices crosstalk: the order
/// of a deep benchmark's schedule makespan, so the Eq. 8 error terms are weighted as
/// the fidelity model would weight them.
const GUIDED_EXPOSURE_NS: f64 = 10_000.0;

/// Configuration of the detailed placer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetailedPlacerConfig {
    /// Margin added around the problematic resonator's bounding box when building the
    /// processing window, in wire-block units.
    pub window_margin_cells: f64,
    /// Maximum number of windows processed in one pass (a safety bound; the default is
    /// high enough that every problematic resonator is visited).
    pub max_windows: usize,
    /// Number of refinement passes over the problem list.
    pub passes: usize,
    /// Crosstalk thresholds used to detect hotspots.
    pub crosstalk: CrosstalkConfig,
    /// Score windows through an incremental [`ReportDelta`] on the global
    /// `(clusters, crossings, crosstalk cost)` objective instead of the local
    /// from-scratch measures.  Default **off**: the historical Algorithm 2 guard.
    pub fidelity_guided: bool,
}

impl DetailedPlacerConfig {
    /// The default configuration (4-cell margin, 2 passes, fidelity guidance off).
    #[must_use]
    pub fn new() -> Self {
        DetailedPlacerConfig {
            window_margin_cells: 4.0,
            max_windows: 4096,
            passes: 2,
            crosstalk: CrosstalkConfig::default(),
            fidelity_guided: false,
        }
    }

    /// Toggles [`DetailedPlacerConfig::fidelity_guided`] (builder style).
    #[must_use]
    pub fn with_fidelity_guided(mut self, enabled: bool) -> Self {
        self.fidelity_guided = enabled;
        self
    }
}

impl Default for DetailedPlacerConfig {
    fn default() -> Self {
        DetailedPlacerConfig::new()
    }
}

/// The result of a detailed-placement pass.
#[derive(Debug, Clone, PartialEq)]
pub struct DetailedPlacementOutcome {
    /// The refined placement (qubits identical to the input).
    pub placement: Placement,
    /// Number of processing windows examined.
    pub windows_processed: usize,
    /// Number of windows whose re-placement was accepted.
    pub windows_accepted: usize,
}

/// The qGDP detailed placer (Algorithm 2).
#[derive(Debug, Clone, Default)]
pub struct DetailedPlacer {
    config: DetailedPlacerConfig,
}

impl DetailedPlacer {
    /// Creates a detailed placer with the default configuration.
    #[must_use]
    pub fn new() -> Self {
        DetailedPlacer {
            config: DetailedPlacerConfig::default(),
        }
    }

    /// Creates a detailed placer with an explicit configuration.
    #[must_use]
    pub fn with_config(config: DetailedPlacerConfig) -> Self {
        DetailedPlacer { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DetailedPlacerConfig {
        &self.config
    }

    /// Runs detailed placement on `legalized` and returns the refined layout.
    ///
    /// The input must already be legal (no overlaps); the output preserves legality,
    /// never moves qubits, and never regresses the cluster count or hotspot measure.
    #[must_use]
    pub fn place(
        &self,
        netlist: &QuantumNetlist,
        die: &Rect,
        legalized: &Placement,
    ) -> DetailedPlacementOutcome {
        if self.config.fidelity_guided {
            return self.place_guided(netlist, die, legalized);
        }
        let mut placement = legalized.clone();
        let mut processed = 0usize;
        let mut accepted = 0usize;

        for _ in 0..self.config.passes {
            let problems = self.problem_resonators(netlist, &placement);
            if problems.is_empty() {
                break;
            }
            for &resonator in &problems {
                if processed >= self.config.max_windows {
                    break;
                }
                processed += 1;
                if self.optimize_window(netlist, die, &mut placement, resonator) {
                    accepted += 1;
                }
            }
        }

        DetailedPlacementOutcome {
            placement,
            windows_processed: processed,
            windows_accepted: accepted,
        }
    }

    /// The fidelity-guided variant of [`DetailedPlacer::place`]: one incremental
    /// [`ReportDelta`] is threaded through every window, so per-window scoring costs
    /// only the moved components' spatial neighbourhoods instead of a full layout
    /// re-scan, and the acceptance guard prices violations and crossings with the
    /// Eq. 8 physics the fidelity model uses.
    fn place_guided(
        &self,
        netlist: &QuantumNetlist,
        die: &Rect,
        legalized: &Placement,
    ) -> DetailedPlacementOutcome {
        let mut placement = legalized.clone();
        let mut delta = ReportDelta::new(netlist, &placement, &self.config.crosstalk);
        let model = CrosstalkModel::default();
        let mut processed = 0usize;
        let mut accepted = 0usize;

        for _ in 0..self.config.passes {
            // The problem set comes straight out of the delta state — no fresh
            // `find_violations` walk per pass.
            let problems = self.problem_resonators_from_delta(netlist, &delta);
            if problems.is_empty() {
                break;
            }
            for &resonator in &problems {
                if processed >= self.config.max_windows {
                    break;
                }
                processed += 1;
                if self.optimize_window_guided(
                    netlist,
                    die,
                    &mut placement,
                    &mut delta,
                    &model,
                    resonator,
                ) {
                    accepted += 1;
                }
            }
        }

        DetailedPlacementOutcome {
            placement,
            windows_processed: processed,
            windows_accepted: accepted,
        }
    }

    /// The `E_c ∪ E_h` set of Algorithm 2: non-unified resonators plus resonators
    /// involved in at least one spatial violation.
    fn problem_resonators(
        &self,
        netlist: &QuantumNetlist,
        placement: &Placement,
    ) -> Vec<ResonatorId> {
        let violations = find_violations(netlist, placement, &self.config.crosstalk);
        let mut set: BTreeSet<ResonatorId> = BTreeSet::new();
        for r in netlist.resonator_ids() {
            if resonator_clusters(netlist, placement, r).len() > 1 {
                set.insert(r);
            }
        }
        for v in &violations {
            for id in [v.a, v.b] {
                if let ComponentId::Segment(s) = id {
                    set.insert(netlist.block(s).resonator());
                }
            }
        }
        set.into_iter().collect()
    }

    /// Hotspot measure restricted to a set of resonators: the Eq. 4 numerator summed
    /// over violations that touch any segment of those resonators.
    fn local_hotspot_measure(
        violations: &[SpatialViolation],
        netlist: &QuantumNetlist,
        resonators: &BTreeSet<ResonatorId>,
    ) -> f64 {
        violations
            .iter()
            .filter(|v| {
                [v.a, v.b].iter().any(|id| match id {
                    ComponentId::Segment(s) => resonators.contains(&netlist.block(*s).resonator()),
                    ComponentId::Qubit(_) => false,
                })
            })
            .map(|v| v.adjacency_length * v.centroid_distance)
            .sum()
    }

    /// Crossing count restricted to pairs involving at least one of the given
    /// resonators (each unordered pair counted once).
    fn local_crossings(
        netlist: &QuantumNetlist,
        placement: &Placement,
        resonators: &BTreeSet<ResonatorId>,
    ) -> usize {
        qgdp_metrics::crossing_pairs(netlist, placement)
            .into_iter()
            .filter(|(a, b, _)| resonators.contains(a) || resonators.contains(b))
            .map(|(_, _, n)| n)
            .sum()
    }

    /// Total cluster count over a set of resonators.
    fn local_cluster_count(
        netlist: &QuantumNetlist,
        placement: &Placement,
        resonators: &BTreeSet<ResonatorId>,
    ) -> usize {
        resonators
            .iter()
            .map(|&r| resonator_clusters(netlist, placement, r).len())
            .sum()
    }

    /// The guided-mode problem set: identical in meaning to
    /// [`DetailedPlacer::problem_resonators`], but read out of the delta engine's
    /// incrementally-maintained cluster counts and violation set.
    fn problem_resonators_from_delta(
        &self,
        netlist: &QuantumNetlist,
        delta: &ReportDelta<'_>,
    ) -> Vec<ResonatorId> {
        let scan = delta.to_scan();
        let mut set: BTreeSet<ResonatorId> = BTreeSet::new();
        for (i, &count) in scan.clusters.cluster_counts.iter().enumerate() {
            if count > 1 {
                set.insert(ResonatorId(i));
            }
        }
        for v in &scan.violations {
            for id in [v.a, v.b] {
                if let ComponentId::Segment(s) = id {
                    set.insert(netlist.block(s).resonator());
                }
            }
        }
        set.into_iter().collect()
    }

    /// The window around `resonator` — the problem resonator plus every resonator
    /// with at least one block inside the inflated bounding box of its blocks and
    /// endpoint qubits — and a rollback snapshot of all window blocks.
    fn build_window(
        &self,
        netlist: &QuantumNetlist,
        placement: &Placement,
        resonator: ResonatorId,
    ) -> Option<(BTreeSet<ResonatorId>, HashMap<SegmentId, Point>)> {
        let lb = netlist.geometry().wire_block_size;
        let margin = self.config.window_margin_cells * lb;

        let res = netlist.resonator(resonator);
        let (qa, qb) = res.endpoints();
        let mut rects: Vec<Rect> = res
            .segments()
            .iter()
            .map(|&s| placement.rect(netlist, ComponentId::Segment(s)))
            .collect();
        rects.push(placement.rect(netlist, ComponentId::Qubit(qa)));
        rects.push(placement.rect(netlist, ComponentId::Qubit(qb)));
        let bbox = Rect::bounding_box(rects.iter())?;
        let window = bbox.inflated(margin);

        let mut window_resonators: BTreeSet<ResonatorId> = BTreeSet::new();
        window_resonators.insert(resonator);
        for r in netlist.resonator_ids() {
            if netlist
                .resonator(r)
                .segments()
                .iter()
                .any(|&s| window.contains_point(placement.segment(s)))
            {
                window_resonators.insert(r);
            }
        }

        let snapshot: HashMap<SegmentId, Point> = window_resonators
            .iter()
            .flat_map(|&r| netlist.resonator(r).segments().iter().copied())
            .map(|s| (s, placement.segment(s)))
            .collect();
        Some((window_resonators, snapshot))
    }

    /// Rips up the window's blocks and re-places each window resonator along a
    /// maze-routed path (the problem resonator first).  Returns `false` when any
    /// resonator could not be placed; the caller reverts from its snapshot.
    fn reroute_window(
        &self,
        netlist: &QuantumNetlist,
        die: &Rect,
        placement: &mut Placement,
        window_resonators: &BTreeSet<ResonatorId>,
        resonator: ResonatorId,
    ) -> bool {
        let lb = netlist.geometry().wire_block_size;

        // Occupancy grid: qubits and all blocks outside the window resonators are fixed.
        let mut grid = BinGrid::new(die, lb);
        for q in netlist.qubit_ids() {
            grid.block_rect(&netlist.qubit(q).rect_at(placement.qubit(q)));
        }
        for s in netlist.segment_ids() {
            if !window_resonators.contains(&netlist.block(s).resonator()) {
                if let Some(bin) = grid.bin_at(placement.segment(s)) {
                    grid.set_state(bin, BinState::Occupied);
                }
            }
        }

        // Re-place the problem resonator first, then its window neighbours.
        let mut order: Vec<ResonatorId> = vec![resonator];
        order.extend(
            window_resonators
                .iter()
                .copied()
                .filter(|&r| r != resonator),
        );
        for r in order {
            if !self.reroute_resonator(netlist, &mut grid, placement, r) {
                return false;
            }
        }
        true
    }

    /// Processes one window centred on `resonator`.  Returns `true` if the
    /// re-placement was accepted.
    fn optimize_window(
        &self,
        netlist: &QuantumNetlist,
        die: &Rect,
        placement: &mut Placement,
        resonator: ResonatorId,
    ) -> bool {
        let Some((window_resonators, snapshot)) = self.build_window(netlist, placement, resonator)
        else {
            return false;
        };

        // The "before" objective, from from-scratch scans (the historical path).
        let violations_before = find_violations(netlist, placement, &self.config.crosstalk);
        let clusters_before = Self::local_cluster_count(netlist, placement, &window_resonators);
        let hotspots_before =
            Self::local_hotspot_measure(&violations_before, netlist, &window_resonators);
        let crossings_before = Self::local_crossings(netlist, placement, &window_resonators);

        let ok = self.reroute_window(netlist, die, placement, &window_resonators, resonator);

        // Evaluate and accept / revert (Algorithm 2, lines 7–9).
        let mut accept = ok;
        if ok {
            let violations_after = find_violations(netlist, placement, &self.config.crosstalk);
            let clusters_after = Self::local_cluster_count(netlist, placement, &window_resonators);
            let hotspots_after =
                Self::local_hotspot_measure(&violations_after, netlist, &window_resonators);
            let crossings_after = Self::local_crossings(netlist, placement, &window_resonators);
            let not_worse = clusters_after <= clusters_before
                && hotspots_after <= hotspots_before + 1e-12
                && crossings_after <= crossings_before;
            let strictly_better = clusters_after < clusters_before
                || hotspots_after < hotspots_before - 1e-12
                || crossings_after < crossings_before;
            accept = not_worse && strictly_better;
        }
        if !accept {
            for (s, p) in snapshot {
                placement.set_segment(s, p);
            }
        }
        accept
    }

    /// The guided variant of [`DetailedPlacer::optimize_window`]: the same window
    /// construction and maze reroute, but scored on the **global**
    /// `(cluster count, crossing count, crosstalk cost)` triple maintained
    /// incrementally by `delta`, and reverted through the delta on rejection.
    fn optimize_window_guided(
        &self,
        netlist: &QuantumNetlist,
        die: &Rect,
        placement: &mut Placement,
        delta: &mut ReportDelta<'_>,
        model: &CrosstalkModel,
        resonator: ResonatorId,
    ) -> bool {
        let Some((window_resonators, snapshot)) = self.build_window(netlist, placement, resonator)
        else {
            return false;
        };

        let clusters_before = delta.total_clusters();
        let crossings_before = delta.crossing_count();
        let cost_before = delta.crosstalk_cost(model, GUIDED_EXPOSURE_NS);

        if !self.reroute_window(netlist, die, placement, &window_resonators, resonator) {
            // Reroute failed part-way: the delta never saw these moves, so only the
            // placement needs restoring.
            for (s, p) in snapshot {
                placement.set_segment(s, p);
            }
            return false;
        }

        // Mirror the accepted-candidate moves into the delta engine.  The final
        // delta state depends only on the final positions, not on the order the
        // moves are applied in.
        let moved: Vec<SegmentId> = snapshot
            .iter()
            .filter(|&(&s, &old)| placement.segment(s) != old)
            .map(|(&s, _)| s)
            .collect();
        for &s in &moved {
            delta.apply_move(ComponentId::Segment(s), placement.segment(s));
        }

        // Both cost readings are canonical-order sums over the delta's maps, so the
        // comparison is exact and deterministic — no epsilon guard needed.
        let clusters_after = delta.total_clusters();
        let crossings_after = delta.crossing_count();
        let cost_after = delta.crosstalk_cost(model, GUIDED_EXPOSURE_NS);
        let not_worse = clusters_after <= clusters_before
            && crossings_after <= crossings_before
            && cost_after <= cost_before;
        let strictly_better = clusters_after < clusters_before
            || crossings_after < crossings_before
            || cost_after < cost_before;
        let accept = not_worse && strictly_better;

        if !accept {
            // A revert is just a move back — the delta stays exact either way.
            for &s in &moved {
                let original = snapshot[&s];
                delta.apply_move(ComponentId::Segment(s), original);
                placement.set_segment(s, original);
            }
        }
        accept
    }

    /// Re-places one resonator's blocks along a maze-routed path of free bins between
    /// its endpoint qubits.  Returns `false` when not enough free bins exist.
    fn reroute_resonator(
        &self,
        netlist: &QuantumNetlist,
        grid: &mut BinGrid,
        placement: &mut Placement,
        resonator: ResonatorId,
    ) -> bool {
        let res = netlist.resonator(resonator);
        let (qa, qb) = res.endpoints();
        let n = res.num_segments();
        if n == 0 {
            return true;
        }
        let start = nearest_free_bin(grid, placement.qubit(qa));
        let goal = nearest_free_bin(grid, placement.qubit(qb));
        let (Some(start), Some(goal)) = (start, goal) else {
            return false;
        };

        // Maze route (BFS over free bins).
        let path = bfs_path(grid, start, goal);
        let mut chosen: Vec<BinId> = match path {
            Some(path) if path.len() >= n => {
                // Take the n bins centred on the middle of the path so the reserved
                // area sits between the two qubits.
                let skip = (path.len() - n) / 2;
                path.into_iter().skip(skip).take(n).collect()
            }
            Some(path) => path,
            None => vec![start],
        };
        // Grow with free neighbours until we have n bins.
        if chosen.len() < n {
            let mut seen: BTreeSet<BinId> = chosen.iter().copied().collect();
            let mut queue: VecDeque<BinId> = chosen.iter().copied().collect();
            while chosen.len() < n {
                let Some(bin) = queue.pop_front() else { break };
                for nb in grid.neighbors4(bin) {
                    if grid.state(nb) == BinState::Free && seen.insert(nb) {
                        chosen.push(nb);
                        queue.push_back(nb);
                        if chosen.len() == n {
                            break;
                        }
                    }
                }
            }
        }
        if chosen.len() < n {
            return false;
        }
        for (&s, &bin) in res.segments().iter().zip(chosen.iter()) {
            placement.set_segment(s, grid.bin_center(bin));
            grid.set_state(bin, BinState::Occupied);
        }
        true
    }
}

/// The free bin nearest to `point` (linear scan; windows are small so this is cheap
/// relative to the BFS that follows).
fn nearest_free_bin(grid: &BinGrid, point: Point) -> Option<BinId> {
    grid.bins_in_state(BinState::Free)
        .map(|b| (grid.bin_center(b).distance_squared(point), b))
        .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
        .map(|(_, b)| b)
}

/// Breadth-first maze route over free bins from `start` to `goal` (4-connected).
fn bfs_path(grid: &BinGrid, start: BinId, goal: BinId) -> Option<Vec<BinId>> {
    if start == goal {
        return Some(vec![start]);
    }
    let mut parent: HashMap<BinId, BinId> = HashMap::new();
    let mut queue = VecDeque::from([start]);
    parent.insert(start, start);
    while let Some(bin) = queue.pop_front() {
        for n in grid.neighbors4(bin) {
            if grid.state(n) != BinState::Free || parent.contains_key(&n) {
                continue;
            }
            parent.insert(n, bin);
            if n == goal {
                // Reconstruct.
                let mut path = vec![n];
                let mut cur = n;
                while cur != start {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(n);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QuantumQubitLegalizer, ResonatorLegalizer};
    use qgdp_legalize::{is_legal, CellLegalizer as _, QubitLegalizer as _};
    use qgdp_metrics::LayoutReport;
    use qgdp_netlist::{ClusterReport, ComponentGeometry, NetModel};
    use qgdp_placer::{GlobalPlacer, GlobalPlacerConfig};
    use qgdp_topology::StandardTopology;

    fn legalized(topology: StandardTopology) -> (QuantumNetlist, Rect, Placement) {
        let topo = topology.build();
        let netlist = topo
            .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
            .unwrap();
        let gp = GlobalPlacer::new(GlobalPlacerConfig::default().with_iterations(50))
            .place(&netlist, &topo);
        let qubits = QuantumQubitLegalizer::new()
            .legalize_qubits(&netlist, &gp.die, &gp.placement)
            .unwrap();
        let legal = ResonatorLegalizer::new()
            .legalize_cells(&netlist, &gp.die, &qubits)
            .unwrap();
        (netlist, gp.die, legal)
    }

    #[test]
    fn output_remains_legal_and_qubits_fixed() {
        let (netlist, die, legal) = legalized(StandardTopology::Grid);
        let outcome = DetailedPlacer::new().place(&netlist, &die, &legal);
        assert!(is_legal(&netlist, &die, &outcome.placement));
        for q in netlist.qubit_ids() {
            assert_eq!(outcome.placement.qubit(q), legal.qubit(q));
        }
    }

    #[test]
    fn never_regresses_cluster_count_or_hotspots() {
        for topology in [StandardTopology::Grid, StandardTopology::Aspen11] {
            let (netlist, die, legal) = legalized(topology);
            let cfg = CrosstalkConfig::default();
            let before = LayoutReport::evaluate(&netlist, &legal, &cfg);
            let outcome = DetailedPlacer::new().place(&netlist, &die, &legal);
            let after = LayoutReport::evaluate(&netlist, &outcome.placement, &cfg);
            assert!(
                after.total_clusters <= before.total_clusters,
                "{topology:?}: clusters regressed {} -> {}",
                before.total_clusters,
                after.total_clusters
            );
            assert!(
                after.hotspot_proportion_percent <= before.hotspot_proportion_percent + 1e-9,
                "{topology:?}: hotspots regressed"
            );
            assert!(after.unified_resonators >= before.unified_resonators);
        }
    }

    #[test]
    fn fidelity_guided_defaults_off_and_off_path_is_unchanged() {
        let config = DetailedPlacerConfig::new();
        assert!(!config.fidelity_guided);
        assert!(
            DetailedPlacerConfig::new()
                .with_fidelity_guided(true)
                .fidelity_guided
        );
        // An explicitly-off config routes through the historical path and matches
        // the default placer exactly.
        let (netlist, die, legal) = legalized(StandardTopology::Grid);
        let default_outcome = DetailedPlacer::new().place(&netlist, &die, &legal);
        let off_outcome =
            DetailedPlacer::with_config(DetailedPlacerConfig::new().with_fidelity_guided(false))
                .place(&netlist, &die, &legal);
        assert_eq!(default_outcome, off_outcome);
    }

    #[test]
    fn fidelity_guided_mode_is_legal_and_never_regresses() {
        for topology in [StandardTopology::Grid, StandardTopology::Aspen11] {
            let (netlist, die, legal) = legalized(topology);
            let config = DetailedPlacerConfig::new().with_fidelity_guided(true);
            let outcome = DetailedPlacer::with_config(config).place(&netlist, &die, &legal);
            assert!(
                is_legal(&netlist, &die, &outcome.placement),
                "{topology:?}: guided output must stay legal"
            );
            for q in netlist.qubit_ids() {
                assert_eq!(outcome.placement.qubit(q), legal.qubit(q));
            }
            assert!(outcome.windows_accepted <= outcome.windows_processed);
            // The guided guard: clusters, crossings and crosstalk cost never regress.
            let cfg = CrosstalkConfig::default();
            let model = CrosstalkModel::default();
            let before = ReportDelta::new(&netlist, &legal, &cfg);
            let after = ReportDelta::new(&netlist, &outcome.placement, &cfg);
            assert!(
                after.total_clusters() <= before.total_clusters(),
                "{topology:?}: clusters regressed {} -> {}",
                before.total_clusters(),
                after.total_clusters()
            );
            assert!(after.crossing_count() <= before.crossing_count());
            assert!(
                after.crosstalk_cost(&model, GUIDED_EXPOSURE_NS)
                    <= before.crosstalk_cost(&model, GUIDED_EXPOSURE_NS),
                "{topology:?}: crosstalk cost regressed"
            );
        }
    }

    #[test]
    fn clean_layout_is_left_untouched() {
        // Build a layout that is already perfect: every resonator unified, no hotspots.
        let (netlist, die, legal) = legalized(StandardTopology::Grid);
        let report = ClusterReport::analyze(&netlist, &legal);
        let outcome = DetailedPlacer::new().place(&netlist, &die, &legal);
        if report.non_unified().is_empty() && outcome.windows_processed == 0 {
            assert_eq!(outcome.placement, legal);
        }
        // Either way the accepted count never exceeds the processed count.
        assert!(outcome.windows_accepted <= outcome.windows_processed);
    }

    #[test]
    fn bfs_path_finds_shortest_route() {
        let die = Rect::from_lower_left(Point::ORIGIN, 50.0, 50.0);
        let mut grid = BinGrid::new(&die, 10.0);
        // Block the middle column except the top row.
        for row in 0..4 {
            let bin = grid.bin_id(2, row).unwrap();
            grid.set_state(bin, BinState::Blocked);
        }
        let start = grid.bin_id(0, 0).unwrap();
        let goal = grid.bin_id(4, 0).unwrap();
        let path = bfs_path(&grid, start, goal).expect("a detour exists");
        assert_eq!(path.first(), Some(&start));
        assert_eq!(path.last(), Some(&goal));
        // Detour over the top row: 4 right + 4 up/down somewhere = 13 bins total.
        assert_eq!(path.len(), 13);
        // Consecutive bins are 4-neighbours.
        for w in path.windows(2) {
            assert!(grid.neighbors4(w[0]).contains(&w[1]));
        }
    }

    #[test]
    fn bfs_path_returns_none_when_walled_off() {
        let die = Rect::from_lower_left(Point::ORIGIN, 50.0, 50.0);
        let mut grid = BinGrid::new(&die, 10.0);
        for row in 0..5 {
            let bin = grid.bin_id(2, row).unwrap();
            grid.set_state(bin, BinState::Blocked);
        }
        let start = grid.bin_id(0, 0).unwrap();
        let goal = grid.bin_id(4, 0).unwrap();
        assert!(bfs_path(&grid, start, goal).is_none());
        assert_eq!(bfs_path(&grid, start, start), Some(vec![start]));
    }

    #[test]
    fn nearest_free_bin_prefers_closest() {
        let die = Rect::from_lower_left(Point::ORIGIN, 30.0, 30.0);
        let mut grid = BinGrid::new(&die, 10.0);
        grid.set_state(grid.bin_id(0, 0).unwrap(), BinState::Blocked);
        let b = nearest_free_bin(&grid, Point::new(0.0, 0.0)).unwrap();
        // The blocked origin bin is skipped; one of its neighbours is returned.
        assert!(grid.neighbors8(grid.bin_id(0, 0).unwrap()).contains(&b));
    }
}
