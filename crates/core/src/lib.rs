//! # qgdp — Quantum Legalization and Detailed Placement
//!
//! A Rust implementation of **qGDP**, the legalization and detailed-placement engine
//! for superconducting quantum computers (DATE 2025).  Starting from a global placement
//! of transmon qubits (macros) and resonator wire blocks (standard cells), qGDP:
//!
//! 1. **legalizes the qubits** (§III-C, [`QuantumQubitLegalizer`]) with a minimum
//!    inter-qubit spacing of one standard cell, relaxed greedily only when the die is
//!    too dense, while minimising displacement from the global placement;
//! 2. **legalizes the resonators** (§III-D, Algorithm 1, [`ResonatorLegalizer`]) with
//!    an integration-aware, bin-aided sweep that keeps the wire blocks of each
//!    resonator in as few touching clusters as possible;
//! 3. **runs detailed placement** (§III-E, Algorithm 2, [`DetailedPlacer`]) on windows
//!    around non-unified resonators and frequency hotspots, rerouting their wire blocks
//!    with a maze router and accepting a window only when the cluster count and hotspot
//!    measure do not regress.
//!
//! The crate also exposes the paper's five-way strategy matrix
//! ([`LegalizationStrategy`]: Tetris, Abacus, Q-Tetris, Q-Abacus, qGDP-LG) behind a
//! **staged pipeline API**: a [`Session`] over a topology produces typed, immutable
//! stage artifacts — [`GlobalPlacement`] → [`QubitLegalized`] → [`CellLegalized`] →
//! [`Detailed`] — each a cheap `Arc`-shared handle that can be forked (one GP feeds
//! all five strategies, one legalized layout feeds many detailed-placer
//! configurations) with lazily-computed, cached reports.  [`Session::try_run_batch`]
//! / [`Session::try_run_matrix`] fan a strategy × config request set over the
//! `QGDP_THREADS` worker pool with **per-request fault isolation**: a failing or
//! panicking strategy poisons only its own requests (one contextful
//! [`FlowError`] per poisoned slot), while every sibling still returns its
//! artifact; [`Session::run_batch`] / [`Session::run_matrix`] are all-or-nothing
//! shims over the same engine.  The monolithic [`run_flow`] survives as a thin,
//! bit-identical compatibility shim — everything the `qgdp-bench` harness needs to
//! regenerate the paper's figures and tables.
//!
//! # Quick start
//!
//! ```
//! use qgdp::prelude::*;
//!
//! let topology = StandardTopology::Grid.build();
//! let session = Session::new(&topology, FlowConfig::default())?;
//! let gp = session.global_place();                      // runs once…
//! let lg = gp.legalize(LegalizationStrategy::Qgdp)?;    // …feeds every strategy
//! let dp = lg.detail();
//! assert!(lg.report().total_clusters >= session.netlist().num_resonators());
//! assert!(dp.is_legal());
//! # Ok::<(), qgdp::FlowError>(())
//! ```
//!
//! Migrating from `run_flow`: `run_flow(&topo, strategy, &cfg)?` is exactly
//! `Session::new(&topo, cfg)?.run(strategy)?.into_flow_result()`; the artifact
//! methods ([`CellLegalized::report`], [`CellLegalized::placement`],
//! [`FlowArtifact::mean_benchmark_fidelity`]) replace the eager [`FlowResult`]
//! fields.
//!
//! # Paper map
//!
//! The paper's own contributions, §III-C through §III-E: qubit legalization
//! ([`QuantumQubitLegalizer`]), integration-aware resonator legalization
//! (Algorithm 1, [`ResonatorLegalizer`]) and detailed placement (Algorithm 2,
//! [`DetailedPlacer`]) — together the qGDP-LG and qGDP-DP flows of the evaluation,
//! staged as the [`Session`] artifact pipeline.  The crate composes the whole
//! workspace: global placement from [`qgdp_placer`] (with the §III-D pseudo
//! connections from [`qgdp_netlist`]), classical baselines from [`qgdp_legalize`],
//! devices from [`qgdp_topology`] (Table I), benchmarks from [`qgdp_circuits`] and
//! metrics from [`qgdp_metrics`] (Eq. 4/7).  The substrate crates are re-exported
//! under stable names ([`geometry`], [`netlist`], [`topology`], [`circuits`],
//! [`legalize`], [`placer`], [`metrics`]) so downstream users can depend on `qgdp`
//! alone.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod artifact;
pub mod detail;
pub mod digest;
pub mod error;
pub mod pipeline;
pub mod prelude;
pub mod qubit_lg;
pub mod resonator_lg;
pub mod session;
pub mod strategy;

pub use artifact::{
    CellLegalized, Detailed, FlowArtifact, GlobalPlacement, QubitLegalized, Stage, StageEvent,
};
pub use detail::{DetailedPlacementOutcome, DetailedPlacer, DetailedPlacerConfig};
pub use digest::{placement_fingerprint, stable_digest, ArtifactKey, StableHasher};
pub use error::FlowError;
pub use pipeline::{run_flow, FaultInjection, FlowConfig, FlowResult, StageTiming};
pub use qubit_lg::QuantumQubitLegalizer;
pub use resonator_lg::ResonatorLegalizer;
pub use session::{FlowRequest, Session};
pub use strategy::LegalizationStrategy;

// Re-export the substrate crates under stable names so downstream users (and the
// examples/benches in this repository) can depend on `qgdp` alone.
pub use qgdp_circuits as circuits;
pub use qgdp_geometry as geometry;
pub use qgdp_legalize as legalize;
pub use qgdp_metrics as metrics;
pub use qgdp_netlist as netlist;
pub use qgdp_placer as placer;
pub use qgdp_topology as topology;
