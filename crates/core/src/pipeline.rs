//! The end-to-end qGDP flow: GP → qubit LG → resonator LG → (optional) DP → metrics.

use crate::{DetailedPlacer, DetailedPlacerConfig, FlowError, LegalizationStrategy};
use qgdp_circuits::{random_mappings, Benchmark};
use qgdp_geometry::Rect;
use qgdp_legalize::is_legal;
use qgdp_metrics::{mean_fidelity, CrosstalkConfig, LayoutReport, NoiseModel};
use qgdp_netlist::{ComponentGeometry, NetModel, Placement, QuantumNetlist};
use qgdp_placer::{GlobalPlacer, GlobalPlacerConfig};
use qgdp_topology::Topology;
use std::time::{Duration, Instant};

/// Configuration of the full flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowConfig {
    /// Component geometry used to build the netlist.
    pub geometry: ComponentGeometry,
    /// Net model (pseudo connections on or off).
    pub net_model: NetModel,
    /// Global-placer configuration.
    pub gp: GlobalPlacerConfig,
    /// Crosstalk detection thresholds.
    pub crosstalk: CrosstalkConfig,
    /// Whether to run the detailed placer after legalization.
    pub detailed_placement: bool,
    /// Detailed-placer configuration.
    pub detail: DetailedPlacerConfig,
}

impl FlowConfig {
    /// The default flow configuration (pseudo connections, no detailed placement).
    #[must_use]
    pub fn new() -> Self {
        FlowConfig {
            geometry: ComponentGeometry::default(),
            net_model: NetModel::Pseudo,
            gp: GlobalPlacerConfig::default(),
            crosstalk: CrosstalkConfig::default(),
            detailed_placement: false,
            detail: DetailedPlacerConfig::default(),
        }
    }

    /// Enables or disables the detailed-placement stage.
    #[must_use]
    pub fn with_detailed_placement(mut self, enabled: bool) -> Self {
        self.detailed_placement = enabled;
        self
    }

    /// Overrides the global-placer seed (useful for repeated experiments).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.gp = self.gp.with_seed(seed);
        self
    }

    /// Overrides the net model.
    #[must_use]
    pub fn with_net_model(mut self, net_model: NetModel) -> Self {
        self.net_model = net_model;
        self
    }
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig::new()
    }
}

/// Wall-clock duration of each stage of the flow (the quantities of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTiming {
    /// Global placement runtime.
    pub global_placement: Duration,
    /// Qubit legalization runtime (`t_q` of Table II).
    pub qubit_legalization: Duration,
    /// Resonator legalization runtime (`t_e` of Table II).
    pub resonator_legalization: Duration,
    /// Detailed placement runtime, when the stage ran.
    pub detailed_placement: Option<Duration>,
}

/// Everything produced by one run of the flow.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The device topology the flow was run for.
    pub topology: Topology,
    /// The legalization strategy used.
    pub strategy: LegalizationStrategy,
    /// The netlist built from the topology.
    pub netlist: QuantumNetlist,
    /// The die outline.
    pub die: Rect,
    /// The global-placement positions.
    pub gp_placement: Placement,
    /// Positions after qubit legalization (wire blocks still at GP positions).
    pub qubit_legalized: Placement,
    /// Positions after wire-block legalization.
    pub legalized: Placement,
    /// Positions after detailed placement, when the stage ran.
    pub detailed: Option<Placement>,
    /// Per-stage wall-clock timings.
    pub timing: StageTiming,
    /// Crosstalk configuration the reports were computed with.
    pub crosstalk: CrosstalkConfig,
    /// Layout metrics of the raw global placement.
    pub gp_report: LayoutReport,
    /// Layout metrics after legalization.
    pub legalized_report: LayoutReport,
    /// Layout metrics after detailed placement, when the stage ran.
    pub detailed_report: Option<LayoutReport>,
}

impl FlowResult {
    /// The final placement of the flow (detailed placement when it ran, otherwise the
    /// legalized layout).
    #[must_use]
    pub fn final_placement(&self) -> &Placement {
        self.detailed.as_ref().unwrap_or(&self.legalized)
    }

    /// The layout report of the final placement.
    #[must_use]
    pub fn final_report(&self) -> &LayoutReport {
        self.detailed_report
            .as_ref()
            .unwrap_or(&self.legalized_report)
    }

    /// Returns `true` if the final placement is fully legal (inside the die, no
    /// overlapping components).
    #[must_use]
    pub fn is_legal(&self) -> bool {
        is_legal(&self.netlist, &self.die, self.final_placement())
    }

    /// Mean worst-case program fidelity of `benchmark` on the final layout, averaged
    /// over `mappings` random qubit mappings (the Fig. 8 protocol).
    #[must_use]
    pub fn mean_benchmark_fidelity(
        &self,
        benchmark: Benchmark,
        mappings: usize,
        noise: &NoiseModel,
        seed: u64,
    ) -> f64 {
        let circuit = benchmark.circuit();
        let maps = random_mappings(&circuit, &self.topology, mappings, seed);
        mean_fidelity(
            &self.netlist,
            self.final_placement(),
            &maps,
            noise,
            &self.crosstalk,
        )
    }
}

/// Runs the full qGDP flow for `topology` under `strategy`.
///
/// # Errors
///
/// Returns a [`FlowError`] when the netlist cannot be built or a legalization stage
/// fails to find a legal layout.
pub fn run_flow(
    topology: &Topology,
    strategy: LegalizationStrategy,
    config: &FlowConfig,
) -> Result<FlowResult, FlowError> {
    let netlist = topology.to_netlist(config.geometry, config.net_model)?;

    // Global placement.
    let gp_start = Instant::now();
    let gp = GlobalPlacer::new(config.gp).place(&netlist, topology);
    let gp_time = gp_start.elapsed();

    // Qubit legalization.
    let q_start = Instant::now();
    let qubit_legalized =
        strategy
            .qubit_legalizer()
            .legalize_qubits(&netlist, &gp.die, &gp.placement)?;
    let q_time = q_start.elapsed();

    // Wire-block (resonator) legalization.
    let e_start = Instant::now();
    let legalized =
        strategy
            .cell_legalizer()
            .legalize_cells(&netlist, &gp.die, &qubit_legalized)?;
    let e_time = e_start.elapsed();

    // Detailed placement (optional).
    let mut detailed = None;
    let mut detailed_time = None;
    if config.detailed_placement {
        let d_start = Instant::now();
        let outcome =
            DetailedPlacer::with_config(config.detail).place(&netlist, &gp.die, &legalized);
        detailed_time = Some(d_start.elapsed());
        detailed = Some(outcome.placement);
    }

    // Reports.
    let gp_report = LayoutReport::evaluate(&netlist, &gp.placement, &config.crosstalk);
    let legalized_report = LayoutReport::evaluate(&netlist, &legalized, &config.crosstalk);
    let detailed_report = detailed
        .as_ref()
        .map(|p| LayoutReport::evaluate(&netlist, p, &config.crosstalk));

    Ok(FlowResult {
        topology: topology.clone(),
        strategy,
        netlist,
        die: gp.die,
        gp_placement: gp.placement,
        qubit_legalized,
        legalized,
        detailed,
        timing: StageTiming {
            global_placement: gp_time,
            qubit_legalization: q_time,
            resonator_legalization: e_time,
            detailed_placement: detailed_time,
        },
        crosstalk: config.crosstalk,
        gp_report,
        legalized_report,
        detailed_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp_topology::StandardTopology;

    #[test]
    fn flow_runs_for_qgdp_on_grid() {
        let topo = StandardTopology::Grid.build();
        let cfg = FlowConfig::default().with_seed(3);
        let result = run_flow(&topo, LegalizationStrategy::Qgdp, &cfg).unwrap();
        assert!(result.is_legal());
        assert_eq!(result.strategy, LegalizationStrategy::Qgdp);
        assert!(result.timing.qubit_legalization > Duration::ZERO);
        assert!(result.timing.resonator_legalization > Duration::ZERO);
        assert!(result.detailed.is_none());
        assert!(result.final_report().total_clusters >= result.netlist.num_resonators());
    }

    #[test]
    fn flow_with_detailed_placement_never_regresses() {
        let topo = StandardTopology::Grid.build();
        let cfg = FlowConfig::default()
            .with_detailed_placement(true)
            .with_seed(5);
        let result = run_flow(&topo, LegalizationStrategy::Qgdp, &cfg).unwrap();
        assert!(result.is_legal());
        let dp = result.detailed_report.as_ref().expect("DP ran");
        assert!(dp.total_clusters <= result.legalized_report.total_clusters);
        assert!(
            dp.hotspot_proportion_percent
                <= result.legalized_report.hotspot_proportion_percent + 1e-9
        );
        assert!(result.timing.detailed_placement.is_some());
    }

    #[test]
    fn all_strategies_produce_legal_layouts_on_falcon() {
        let topo = StandardTopology::Falcon.build();
        let cfg = FlowConfig::default().with_seed(11);
        for strategy in LegalizationStrategy::all() {
            let result = run_flow(&topo, strategy, &cfg).unwrap();
            assert!(result.is_legal(), "{strategy} produced an illegal layout");
        }
    }

    #[test]
    fn qgdp_produces_fewer_clusters_than_classical_baselines() {
        let topo = StandardTopology::Grid.build();
        let cfg = FlowConfig::default().with_seed(17);
        let qgdp = run_flow(&topo, LegalizationStrategy::Qgdp, &cfg).unwrap();
        let tetris = run_flow(&topo, LegalizationStrategy::Tetris, &cfg).unwrap();
        assert!(
            qgdp.legalized_report.total_clusters <= tetris.legalized_report.total_clusters,
            "qGDP {} clusters vs Tetris {}",
            qgdp.legalized_report.total_clusters,
            tetris.legalized_report.total_clusters
        );
    }

    #[test]
    fn fidelity_evaluation_runs() {
        let topo = StandardTopology::Grid.build();
        let cfg = FlowConfig::default().with_seed(23);
        let result = run_flow(&topo, LegalizationStrategy::Qgdp, &cfg).unwrap();
        let f = result.mean_benchmark_fidelity(Benchmark::Bv4, 3, &NoiseModel::default(), 1);
        assert!(f > 0.0 && f <= 1.0);
    }
}
