//! The monolithic flow entry point, kept as a thin compatibility shim over the
//! staged [`Session`] API.
//!
//! [`run_flow`] drives GP → qubit LG → resonator LG → (optional) DP → metrics in one
//! call and returns the eager [`FlowResult`] view.  New code should prefer the
//! staged API — [`crate::Session`] / [`crate::GlobalPlacement`] /
//! [`crate::CellLegalized`] — which shares the global placement across strategies,
//! computes reports lazily and batches strategy matrices over the worker pool; this
//! module's outputs are bit-identical to the staged path by construction (the
//! `session_equivalence` golden suite proves it).

use crate::{DetailedPlacerConfig, FlowError, LegalizationStrategy, Session};
use qgdp_circuits::Benchmark;
use qgdp_geometry::Rect;
use qgdp_legalize::is_legal;
use qgdp_metrics::{CrosstalkConfig, LayoutReport, NoiseModel};
use qgdp_netlist::{ComponentGeometry, NetModel, Placement, QuantumNetlist};
use qgdp_placer::GlobalPlacerConfig;
use qgdp_topology::Topology;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic fault injection into the legalization stage — the testing/chaos
/// hook behind the fault-isolation contract of
/// [`Session::try_run_batch`](crate::Session::try_run_batch).
///
/// Both hooks trigger at the entry of the qubit-legalization stage of the named
/// strategy, on every path that legalizes it (single flows and batches alike), so
/// tests and bench scenarios can poison exactly one strategy of a matrix and
/// assert its siblings survive.  The default injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultInjection {
    /// Fail this strategy's qubit legalization with a
    /// [`LegalizeError::NoSpace`](qgdp_legalize::LegalizeError::NoSpace) error.
    pub fail_legalization: Option<LegalizationStrategy>,
    /// Panic inside this strategy's qubit-legalization worker.  On the batch
    /// `try_` surface the unwind is contained to the poisoned request
    /// ([`FlowError::Worker`]); on single-flow paths
    /// ([`Session::run`], [`crate::run_flow`]) it propagates to the caller.
    pub panic_in_legalization: Option<LegalizationStrategy>,
}

/// Configuration of the full flow (and of a [`Session`]).
///
/// Every field has a builder-style setter, so no field needs struct-literal access:
/// [`with_geometry`](FlowConfig::with_geometry), [`with_net_model`](FlowConfig::with_net_model),
/// [`with_gp`](FlowConfig::with_gp), [`with_crosstalk`](FlowConfig::with_crosstalk),
/// [`with_detailed_placement`](FlowConfig::with_detailed_placement),
/// [`with_detail`](FlowConfig::with_detail),
/// [`with_fault_injection`](FlowConfig::with_fault_injection) and the
/// [`with_seed`](FlowConfig::with_seed) shorthand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowConfig {
    /// Component geometry used to build the netlist.
    pub geometry: ComponentGeometry,
    /// Net model (pseudo connections on or off).
    pub net_model: NetModel,
    /// Global-placer configuration.
    pub gp: GlobalPlacerConfig,
    /// Crosstalk detection thresholds.
    pub crosstalk: CrosstalkConfig,
    /// Whether to run the detailed placer after legalization.
    pub detailed_placement: bool,
    /// Detailed-placer configuration.
    pub detail: DetailedPlacerConfig,
    /// Deterministic fault injection (testing/chaos hook; injects nothing by
    /// default).
    pub fault: FaultInjection,
}

impl FlowConfig {
    /// The default flow configuration (pseudo connections, no detailed placement).
    #[must_use]
    pub fn new() -> Self {
        FlowConfig {
            geometry: ComponentGeometry::default(),
            net_model: NetModel::Pseudo,
            gp: GlobalPlacerConfig::default(),
            crosstalk: CrosstalkConfig::default(),
            detailed_placement: false,
            detail: DetailedPlacerConfig::default(),
            fault: FaultInjection::default(),
        }
    }

    /// Enables or disables the detailed-placement stage.
    #[must_use]
    pub fn with_detailed_placement(mut self, enabled: bool) -> Self {
        self.detailed_placement = enabled;
        self
    }

    /// Overrides the global-placer seed (useful for repeated experiments).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.gp = self.gp.with_seed(seed);
        self
    }

    /// Overrides the net model.
    #[must_use]
    pub fn with_net_model(mut self, net_model: NetModel) -> Self {
        self.net_model = net_model;
        self
    }

    /// Overrides the component geometry used to build the netlist.
    #[must_use]
    pub fn with_geometry(mut self, geometry: ComponentGeometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Overrides the whole global-placer configuration.
    #[must_use]
    pub fn with_gp(mut self, gp: GlobalPlacerConfig) -> Self {
        self.gp = gp;
        self
    }

    /// Overrides the crosstalk detection thresholds.
    #[must_use]
    pub fn with_crosstalk(mut self, crosstalk: CrosstalkConfig) -> Self {
        self.crosstalk = crosstalk;
        self
    }

    /// Overrides the detailed-placer configuration (does not toggle the stage; see
    /// [`with_detailed_placement`](FlowConfig::with_detailed_placement)).
    #[must_use]
    pub fn with_detail(mut self, detail: DetailedPlacerConfig) -> Self {
        self.detail = detail;
        self
    }

    /// Overrides the fault-injection hooks (see [`FaultInjection`]).
    #[must_use]
    pub fn with_fault_injection(mut self, fault: FaultInjection) -> Self {
        self.fault = fault;
        self
    }

    /// Returns `true` when results of this configuration may be cached and shared
    /// across sessions: every field is then part of the content identity
    /// ([`crate::ArtifactKey`]).  Fault-injected configurations are **not**
    /// cacheable — their outcomes are deliberately wrong for their identity, so
    /// the serve layer must bypass its artifact store for them entirely.
    #[must_use]
    pub fn is_cacheable(&self) -> bool {
        self.fault == FaultInjection::default()
    }
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig::new()
    }
}

/// Wall-clock duration of each stage of the flow (the quantities of Table II).
///
/// This is the legacy aggregate view; the staged artifacts record the same
/// information as [`StageEvent`](crate::StageEvent) traces
/// ([`CellLegalized::events`](crate::CellLegalized::events)), from which this struct
/// is assembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTiming {
    /// Global placement runtime.
    pub global_placement: Duration,
    /// Qubit legalization runtime (`t_q` of Table II).
    pub qubit_legalization: Duration,
    /// Resonator legalization runtime (`t_e` of Table II).
    pub resonator_legalization: Duration,
    /// Detailed placement runtime, when the stage ran.
    pub detailed_placement: Option<Duration>,
}

/// Everything produced by one run of the monolithic flow — the eager, owned
/// compatibility view of the staged artifacts.
///
/// The topology and netlist are [`Arc`]-shared with the session that produced the
/// flow (no per-result deep copies); both deref to the underlying type, so existing
/// `&result.netlist` / `&result.topology` call sites keep working.  Reports are
/// computed eagerly here — use the staged API for lazy evaluation.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The device topology the flow was run for (shared, not cloned per flow).
    pub topology: Arc<Topology>,
    /// The legalization strategy used.
    pub strategy: LegalizationStrategy,
    /// The netlist built from the topology (shared, not cloned per flow).
    pub netlist: Arc<QuantumNetlist>,
    /// The die outline.
    pub die: Rect,
    /// The global-placement positions.
    pub gp_placement: Placement,
    /// Positions after qubit legalization (wire blocks still at GP positions).
    pub qubit_legalized: Placement,
    /// Positions after wire-block legalization.
    pub legalized: Placement,
    /// Positions after detailed placement, when the stage ran.
    pub detailed: Option<Placement>,
    /// Per-stage wall-clock timings.
    pub timing: StageTiming,
    /// Crosstalk configuration the reports were computed with.
    pub crosstalk: CrosstalkConfig,
    /// Layout metrics of the raw global placement.
    pub gp_report: LayoutReport,
    /// Layout metrics after legalization.
    pub legalized_report: LayoutReport,
    /// Layout metrics after detailed placement, when the stage ran.
    pub detailed_report: Option<LayoutReport>,
}

impl FlowResult {
    /// The final placement of the flow (detailed placement when it ran, otherwise the
    /// legalized layout).
    #[must_use]
    pub fn final_placement(&self) -> &Placement {
        self.detailed.as_ref().unwrap_or(&self.legalized)
    }

    /// The layout report of the final placement.
    #[must_use]
    pub fn final_report(&self) -> &LayoutReport {
        self.detailed_report
            .as_ref()
            .unwrap_or(&self.legalized_report)
    }

    /// Returns `true` if the final placement is fully legal (inside the die, no
    /// overlapping components).
    #[must_use]
    pub fn is_legal(&self) -> bool {
        is_legal(&self.netlist, &self.die, self.final_placement())
    }

    /// Mean worst-case program fidelity of `benchmark` on the final layout, averaged
    /// over `mappings` random qubit mappings (the Fig. 8 protocol).
    #[must_use]
    pub fn mean_benchmark_fidelity(
        &self,
        benchmark: Benchmark,
        mappings: usize,
        noise: &NoiseModel,
        seed: u64,
    ) -> f64 {
        let circuit = benchmark.circuit();
        let maps = qgdp_circuits::random_mappings(&circuit, &self.topology, mappings, seed);
        qgdp_metrics::mean_fidelity(
            &self.netlist,
            self.final_placement(),
            &maps,
            noise,
            &self.crosstalk,
        )
    }
}

/// Runs the full qGDP flow for `topology` under `strategy`.
///
/// This is a compatibility shim: it builds a one-shot [`Session`], runs the staged
/// pipeline and converts the terminal artifact into the eager [`FlowResult`] view.
/// Outputs are bit-identical to driving the stages by hand.  Callers that run more
/// than one strategy or configuration on the same device should hold a [`Session`]
/// and fork its [`global_place`](Session::global_place) artifact instead — that
/// skips the redundant netlist builds and GP runs this shim pays per call.
///
/// # Errors
///
/// Returns a [`FlowError`] when the netlist cannot be built or a legalization stage
/// fails to find a legal layout.
pub fn run_flow(
    topology: &Topology,
    strategy: LegalizationStrategy,
    config: &FlowConfig,
) -> Result<FlowResult, FlowError> {
    Session::new(topology, *config)?
        .run(strategy)
        .map(crate::FlowArtifact::into_flow_result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp_topology::StandardTopology;

    #[test]
    fn flow_runs_for_qgdp_on_grid() {
        let topo = StandardTopology::Grid.build();
        let cfg = FlowConfig::default().with_seed(3);
        let result = run_flow(&topo, LegalizationStrategy::Qgdp, &cfg).unwrap();
        assert!(result.is_legal());
        assert_eq!(result.strategy, LegalizationStrategy::Qgdp);
        assert!(result.timing.qubit_legalization > Duration::ZERO);
        assert!(result.timing.resonator_legalization > Duration::ZERO);
        assert!(result.detailed.is_none());
        assert!(result.final_report().total_clusters >= result.netlist.num_resonators());
    }

    #[test]
    fn flow_with_detailed_placement_never_regresses() {
        let topo = StandardTopology::Grid.build();
        let cfg = FlowConfig::default()
            .with_detailed_placement(true)
            .with_seed(5);
        let result = run_flow(&topo, LegalizationStrategy::Qgdp, &cfg).unwrap();
        assert!(result.is_legal());
        let dp = result.detailed_report.as_ref().expect("DP ran");
        assert!(dp.total_clusters <= result.legalized_report.total_clusters);
        assert!(
            dp.hotspot_proportion_percent
                <= result.legalized_report.hotspot_proportion_percent + 1e-9
        );
        assert!(result.timing.detailed_placement.is_some());
    }

    #[test]
    fn all_strategies_produce_legal_layouts_on_falcon() {
        let topo = StandardTopology::Falcon.build();
        let cfg = FlowConfig::default().with_seed(11);
        for strategy in LegalizationStrategy::all() {
            let result = run_flow(&topo, strategy, &cfg).unwrap();
            assert!(result.is_legal(), "{strategy} produced an illegal layout");
        }
    }

    #[test]
    fn qgdp_produces_fewer_clusters_than_classical_baselines() {
        let topo = StandardTopology::Grid.build();
        let cfg = FlowConfig::default().with_seed(17);
        let qgdp = run_flow(&topo, LegalizationStrategy::Qgdp, &cfg).unwrap();
        let tetris = run_flow(&topo, LegalizationStrategy::Tetris, &cfg).unwrap();
        assert!(
            qgdp.legalized_report.total_clusters <= tetris.legalized_report.total_clusters,
            "qGDP {} clusters vs Tetris {}",
            qgdp.legalized_report.total_clusters,
            tetris.legalized_report.total_clusters
        );
    }

    #[test]
    fn fidelity_evaluation_runs() {
        let topo = StandardTopology::Grid.build();
        let cfg = FlowConfig::default().with_seed(23);
        let result = run_flow(&topo, LegalizationStrategy::Qgdp, &cfg).unwrap();
        let f = result.mean_benchmark_fidelity(Benchmark::Bv4, 3, &NoiseModel::default(), 1);
        assert!(f > 0.0 && f <= 1.0);
    }

    #[test]
    fn builder_setters_cover_every_field() {
        let gp = GlobalPlacerConfig::default().with_seed(99);
        let detail = DetailedPlacerConfig::new();
        let crosstalk = CrosstalkConfig::default();
        let geometry = ComponentGeometry::default();
        let fault = FaultInjection {
            fail_legalization: Some(LegalizationStrategy::Tetris),
            panic_in_legalization: None,
        };
        let cfg = FlowConfig::new()
            .with_geometry(geometry)
            .with_net_model(NetModel::Chain)
            .with_gp(gp)
            .with_crosstalk(crosstalk)
            .with_detailed_placement(true)
            .with_detail(detail)
            .with_fault_injection(fault);
        assert_eq!(cfg.gp.seed, 99);
        assert_eq!(cfg.net_model, NetModel::Chain);
        assert!(cfg.detailed_placement);
        assert_eq!(cfg.detail, detail);
        assert_eq!(cfg.crosstalk, crosstalk);
        assert_eq!(cfg.geometry, geometry);
        assert_eq!(cfg.fault, fault);
        assert_eq!(FlowConfig::default().fault, FaultInjection::default());
    }

    #[test]
    fn flow_result_shares_topology_and_netlist_instead_of_cloning() {
        let topo = StandardTopology::Grid.build();
        let cfg = FlowConfig::default().with_seed(29);
        let result = run_flow(&topo, LegalizationStrategy::Qgdp, &cfg).unwrap();
        // The Arc handles are the only owners the caller sees; cloning the result
        // must not deep-copy the topology or netlist.
        let clone = result.clone();
        assert!(Arc::ptr_eq(&result.topology, &clone.topology));
        assert!(Arc::ptr_eq(&result.netlist, &clone.netlist));
        assert_eq!(*result.topology, topo);
    }
}
