//! Stable content identities for flow artifacts — the addressing scheme of the
//! `qgdp-serve` cross-session artifact cache.
//!
//! A stage artifact is a deterministic function of a **stage prefix** of its
//! inputs: a [`GlobalPlacement`](crate::GlobalPlacement) depends on the topology,
//! the netlist-shaping config fields and the global-placer config, but *not* on
//! which legalization strategy or detailed-placer configuration will consume it; a
//! [`CellLegalized`](crate::CellLegalized) adds the strategy; a
//! [`Detailed`](crate::Detailed) adds the detail config.  [`ArtifactKey`] encodes
//! exactly that prefix, canonically, into bytes:
//!
//! ```text
//! ArtifactKey::session(topology, config)   →  GP-level identity
//!     .for_strategy(strategy)              →  legalized-level identity
//!     .for_detail(&detail_config)          →  detailed-level identity
//! ```
//!
//! Two keys are equal **iff their canonical byte encodings are equal** — the
//! 64-bit [FNV-1a] digest is only a fast bucketing hint, so a digest collision
//! between differing configurations is harmless *by construction*: the byte
//! comparison still tells them apart.  Every `f64` is encoded via
//! [`f64::to_bits`], making the identity exactly as strict as the bit-identity
//! contracts the rest of the repository tests against.
//!
//! Fault-injected configurations ([`FlowConfig::is_cacheable`] is `false`) must
//! never be cached; the serve layer bypasses its store entirely for them, so they
//! need no key representation.
//!
//! [FNV-1a]: http://www.isthe.com/chongo/tech/comp/fnv/

use crate::detail::DetailedPlacerConfig;
use crate::pipeline::FlowConfig;
use crate::strategy::LegalizationStrategy;
use qgdp_topology::{Topology, TopologyKind};
use std::fmt;
use std::hash::{Hash, Hasher};

/// The 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A tiny, dependency-free FNV-1a 64-bit streaming hasher.
///
/// Used wherever the repository needs a *stable* digest (cache bucketing,
/// snapshot checksums, placement fingerprints on the serve wire) — unlike
/// [`std::collections::hash_map::DefaultHasher`], the output is identical across
/// processes, platforms and releases.
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl StableHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        StableHasher(FNV_OFFSET)
    }

    /// Feeds raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one `u64` (little-endian).
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Feeds one `f64` as its IEEE-754 bit pattern.
    pub fn update_f64(&mut self, v: f64) {
        self.update_u64(v.to_bits());
    }

    /// The current digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

/// Stable FNV-1a digest of a byte slice (one-shot convenience).
#[must_use]
pub fn stable_digest(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.update(bytes);
    h.finish()
}

/// Stable fingerprint of a placement: the FNV-1a digest of every coordinate's bit
/// pattern, qubits first then segments, in id order.
///
/// Two placements have equal fingerprints iff they are bit-identical (up to FNV
/// collisions — the serve protocol uses this as a cheap wire-level bit-identity
/// witness, while the test layers compare the placements themselves).
#[must_use]
pub fn placement_fingerprint(placement: &qgdp_netlist::Placement) -> u64 {
    let mut h = StableHasher::new();
    h.update_u64(placement.num_qubits() as u64);
    for q in 0..placement.num_qubits() {
        let p = placement.qubit(qgdp_netlist::QubitId(q));
        h.update_f64(p.x);
        h.update_f64(p.y);
    }
    h.update_u64(placement.num_segments() as u64);
    for s in 0..placement.num_segments() {
        let p = placement.segment(qgdp_netlist::SegmentId(s));
        h.update_f64(p.x);
        h.update_f64(p.y);
    }
    h.finish()
}

/// Level-tag bytes separating the stage-prefix sections of a key encoding, so a
/// session key can never be a prefix-ambiguous encoding of a legalized key.
const TAG_SESSION: u8 = b'S';
const TAG_STRATEGY: u8 = b'L';
const TAG_DETAIL: u8 = b'D';

/// The content-addressed identity of one stage artifact (see the [module
/// docs](self)).
///
/// Equality and ordering are over the full canonical byte encoding; [`Hash`]
/// feeds only the precomputed 64-bit digest (cheap bucketing).
#[derive(Clone)]
pub struct ArtifactKey {
    bytes: Vec<u8>,
    digest: u64,
}

impl ArtifactKey {
    fn from_bytes(bytes: Vec<u8>) -> Self {
        let digest = stable_digest(&bytes);
        ArtifactKey { bytes, digest }
    }

    /// The GP-level (session) identity: topology plus every [`FlowConfig`] field
    /// that shapes the netlist, the global placement or the cached reports —
    /// geometry, net model, GP config and crosstalk thresholds.  The detail
    /// config, the `detailed_placement` flag and the fault hooks are *not* part
    /// of this prefix: they cannot change what a GP or legalization produces.
    #[must_use]
    pub fn session(topology: &Topology, config: &FlowConfig) -> Self {
        let mut out = Vec::with_capacity(256);
        out.push(TAG_SESSION);
        encode_topology(topology, &mut out);
        encode_gp_prefix(config, &mut out);
        ArtifactKey::from_bytes(out)
    }

    /// The legalized-level identity: this key's stage prefix plus `strategy`.
    #[must_use]
    pub fn for_strategy(&self, strategy: LegalizationStrategy) -> Self {
        let mut out = self.bytes.clone();
        out.push(TAG_STRATEGY);
        out.push(strategy_tag(strategy));
        ArtifactKey::from_bytes(out)
    }

    /// The detailed-level identity: this key's stage prefix plus the full
    /// detailed-placer configuration.
    #[must_use]
    pub fn for_detail(&self, detail: &DetailedPlacerConfig) -> Self {
        let mut out = self.bytes.clone();
        out.push(TAG_DETAIL);
        push_f64(&mut out, detail.window_margin_cells);
        push_u64(&mut out, detail.max_windows as u64);
        push_u64(&mut out, detail.passes as u64);
        push_f64(&mut out, detail.crosstalk.proximity_threshold);
        push_f64(&mut out, detail.crosstalk.detuning_threshold_ghz);
        out.push(u8::from(detail.fidelity_guided));
        ArtifactKey::from_bytes(out)
    }

    /// The canonical byte encoding (the identity itself).
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The FNV-1a digest of the encoding (a bucketing hint, not the identity).
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

impl PartialEq for ArtifactKey {
    fn eq(&self, other: &Self) -> bool {
        // The digest check is a fast negative path; equality is the bytes.
        self.digest == other.digest && self.bytes == other.bytes
    }
}

impl Eq for ArtifactKey {}

impl PartialOrd for ArtifactKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ArtifactKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bytes.cmp(&other.bytes)
    }
}

impl Hash for ArtifactKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.digest);
    }
}

impl fmt::Debug for ArtifactKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ArtifactKey({:016x}, {} bytes)",
            self.digest,
            self.bytes.len()
        )
    }
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    push_u64(out, v.to_bits());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// A stable tag byte per [`LegalizationStrategy`] variant (wire/key encoding).
#[must_use]
pub fn strategy_tag(strategy: LegalizationStrategy) -> u8 {
    match strategy {
        LegalizationStrategy::Qgdp => 0,
        LegalizationStrategy::QAbacus => 1,
        LegalizationStrategy::QTetris => 2,
        LegalizationStrategy::Abacus => 3,
        LegalizationStrategy::Tetris => 4,
    }
}

/// The inverse of [`strategy_tag`]; `None` for unknown tags.
#[must_use]
pub fn strategy_from_tag(tag: u8) -> Option<LegalizationStrategy> {
    Some(match tag {
        0 => LegalizationStrategy::Qgdp,
        1 => LegalizationStrategy::QAbacus,
        2 => LegalizationStrategy::QTetris,
        3 => LegalizationStrategy::Abacus,
        4 => LegalizationStrategy::Tetris,
        _ => return None,
    })
}

fn kind_tag(kind: TopologyKind) -> u8 {
    match kind {
        TopologyKind::Grid => 0,
        TopologyKind::HeavyHex => 1,
        TopologyKind::Octagon => 2,
        TopologyKind::Xtree => 3,
        // `TopologyKind` is non-exhaustive; any future variant lands on the
        // custom tag — the graph and coordinates encoded next still separate
        // structurally distinct devices.
        _ => 4,
    }
}

/// Canonically encodes a topology: name, kind, qubit count, couplings
/// (normalised order, as stored) and lattice coordinates (bit patterns).
fn encode_topology(topology: &Topology, out: &mut Vec<u8>) {
    push_str(out, topology.name());
    out.push(kind_tag(topology.kind()));
    push_u64(out, topology.num_qubits() as u64);
    push_u64(out, topology.couplings().len() as u64);
    for &(a, b) in topology.couplings() {
        push_u64(out, a as u64);
        push_u64(out, b as u64);
    }
    for p in topology.coords() {
        push_f64(out, p.x);
        push_f64(out, p.y);
    }
}

/// Encodes the GP-stage prefix of a [`FlowConfig`]: geometry, net model, GP
/// config, crosstalk thresholds — every field earlier stages read.
fn encode_gp_prefix(config: &FlowConfig, out: &mut Vec<u8>) {
    let g = &config.geometry;
    push_f64(out, g.qubit_width);
    push_f64(out, g.qubit_height);
    push_f64(out, g.wire_block_size);
    push_f64(out, g.padding_length);
    push_f64(out, g.resonator_wirelength);
    push_f64(out, g.min_qubit_spacing_cells);
    out.push(match config.net_model {
        qgdp_netlist::NetModel::Chain => 0,
        qgdp_netlist::NetModel::Pseudo => 1,
        qgdp_netlist::NetModel::Clique => 2,
    });
    let gp = &config.gp;
    push_f64(out, gp.utilization);
    push_u64(out, gp.iterations as u64);
    push_f64(out, gp.attraction);
    push_f64(out, gp.anchor);
    push_f64(out, gp.repulsion);
    push_f64(out, gp.damping);
    push_f64(out, gp.jitter);
    push_f64(out, gp.qubit_padding_cells);
    push_u64(out, gp.star_threshold as u64);
    push_u64(out, gp.seed);
    push_f64(out, config.crosstalk.proximity_threshold);
    push_f64(out, config.crosstalk.detuning_threshold_ghz);
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp_topology::StandardTopology;

    #[test]
    fn fnv_vectors_are_stable() {
        // Classic FNV-1a test vectors.
        assert_eq!(stable_digest(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_digest(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(stable_digest(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn session_keys_separate_every_prefix_field() {
        let topo = StandardTopology::Grid.build();
        let base = FlowConfig::default().with_seed(7);
        let base_key = ArtifactKey::session(&topo, &base);
        // Same inputs → same key, bit for bit.
        assert_eq!(base_key, ArtifactKey::session(&topo, &base));
        assert_eq!(
            base_key.digest(),
            ArtifactKey::session(&topo, &base).digest()
        );

        // Differing prefix fields → differing canonical bytes (not merely
        // differing digests), so a cache can never conflate them.
        let variants = [
            ArtifactKey::session(&topo, &base.with_seed(8)),
            ArtifactKey::session(&topo, &base.with_net_model(qgdp_netlist::NetModel::Chain)),
            ArtifactKey::session(
                &topo,
                &base.with_crosstalk(qgdp_metrics::CrosstalkConfig {
                    proximity_threshold: 11.0,
                    ..Default::default()
                }),
            ),
            ArtifactKey::session(&StandardTopology::Falcon.build(), &base),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base_key.bytes(), v.bytes(), "variant {i} collided");
        }
        // Fields *outside* the GP stage prefix must NOT change the identity:
        // a session key is shared by detail-on and detail-off requests.
        let detail_on = base
            .with_detailed_placement(true)
            .with_detail(crate::DetailedPlacerConfig::new().with_fidelity_guided(true));
        assert_eq!(base_key, ArtifactKey::session(&topo, &detail_on));
    }

    #[test]
    fn stage_levels_nest_without_ambiguity() {
        let topo = StandardTopology::Grid.build();
        let session = ArtifactKey::session(&topo, &FlowConfig::default());
        let qgdp = session.for_strategy(LegalizationStrategy::Qgdp);
        let tetris = session.for_strategy(LegalizationStrategy::Tetris);
        assert_ne!(qgdp, tetris);
        assert_ne!(session, qgdp);
        let detail = qgdp.for_detail(&crate::DetailedPlacerConfig::new());
        let guided =
            qgdp.for_detail(&crate::DetailedPlacerConfig::new().with_fidelity_guided(true));
        assert_ne!(detail, guided);
        assert_ne!(detail, qgdp);
        // The legalized key literally extends the session key's bytes.
        assert!(qgdp.bytes().starts_with(session.bytes()));
        assert!(detail.bytes().starts_with(qgdp.bytes()));
    }

    #[test]
    fn strategy_tags_round_trip() {
        for s in LegalizationStrategy::all() {
            assert_eq!(strategy_from_tag(strategy_tag(s)), Some(s));
        }
        assert_eq!(strategy_from_tag(250), None);
    }

    #[test]
    fn placement_fingerprint_tracks_bits() {
        let topo = StandardTopology::Grid.build();
        let session = crate::Session::new(&topo, FlowConfig::default().with_seed(3)).unwrap();
        let gp = session.global_place();
        let fp = placement_fingerprint(gp.placement());
        assert_eq!(fp, placement_fingerprint(gp.placement()));
        let mut moved = gp.placement().clone();
        moved.set_qubit(
            qgdp_netlist::QubitId(0),
            qgdp_geometry::Point::new(1.0, 2.0),
        );
        assert_ne!(fp, placement_fingerprint(&moved));
    }
}
