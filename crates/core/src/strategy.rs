//! The five-way legalization strategy matrix of the paper's evaluation.

use crate::{QuantumQubitLegalizer, ResonatorLegalizer};
use qgdp_legalize::{
    AbacusLegalizer, CellLegalizer, MacroLegalizer, QubitLegalizer, TetrisLegalizer,
};
use std::fmt;

/// The legalization strategies compared in Figs. 8–9 and Table II.
///
/// | strategy | qubit stage | wire-block stage |
/// |----------|-------------|------------------|
/// | `Tetris`  | classical macro legalizer | Tetris |
/// | `Abacus`  | classical macro legalizer | Abacus |
/// | `QTetris` | qGDP qubit legalizer (§III-C) | Tetris |
/// | `QAbacus` | qGDP qubit legalizer (§III-C) | Abacus |
/// | `Qgdp`    | qGDP qubit legalizer (§III-C) | integration-aware resonator legalizer (Alg. 1) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LegalizationStrategy {
    /// qGDP-LG: the paper's full quantum legalizer.
    Qgdp,
    /// Q-Abacus: quantum qubit legalizer + Abacus cell legalizer.
    QAbacus,
    /// Q-Tetris: quantum qubit legalizer + Tetris cell legalizer.
    QTetris,
    /// Abacus: classical macro legalizer + Abacus cell legalizer.
    Abacus,
    /// Tetris: classical macro legalizer + Tetris cell legalizer.
    Tetris,
}

impl LegalizationStrategy {
    /// All five strategies, in the order the paper's figures list them.
    #[must_use]
    pub fn all() -> [LegalizationStrategy; 5] {
        [
            LegalizationStrategy::Qgdp,
            LegalizationStrategy::QAbacus,
            LegalizationStrategy::QTetris,
            LegalizationStrategy::Abacus,
            LegalizationStrategy::Tetris,
        ]
    }

    /// The display name used in the paper's legends.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LegalizationStrategy::Qgdp => "qGDP-LG",
            LegalizationStrategy::QAbacus => "Q-Abacus",
            LegalizationStrategy::QTetris => "Q-Tetris",
            LegalizationStrategy::Abacus => "Abacus",
            LegalizationStrategy::Tetris => "Tetris",
        }
    }

    /// Returns `true` for the strategies that use the quantum-aware qubit legalizer.
    #[must_use]
    pub fn is_quantum_aware(self) -> bool {
        !matches!(
            self,
            LegalizationStrategy::Abacus | LegalizationStrategy::Tetris
        )
    }

    /// The qubit-stage legalizer of this strategy.
    #[must_use]
    pub fn qubit_legalizer(self) -> Box<dyn QubitLegalizer> {
        if self.is_quantum_aware() {
            Box::new(QuantumQubitLegalizer::new())
        } else {
            Box::new(MacroLegalizer::new())
        }
    }

    /// The wire-block-stage legalizer of this strategy.
    #[must_use]
    pub fn cell_legalizer(self) -> Box<dyn CellLegalizer> {
        match self {
            LegalizationStrategy::Qgdp => Box::new(ResonatorLegalizer::new()),
            LegalizationStrategy::QAbacus | LegalizationStrategy::Abacus => {
                Box::new(AbacusLegalizer::new())
            }
            LegalizationStrategy::QTetris | LegalizationStrategy::Tetris => {
                Box::new(TetrisLegalizer::new())
            }
        }
    }
}

impl fmt::Display for LegalizationStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_five_distinct_strategies() {
        let all = LegalizationStrategy::all();
        assert_eq!(all.len(), 5);
        let names: std::collections::BTreeSet<&str> = all.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 5);
        assert_eq!(all[0], LegalizationStrategy::Qgdp);
    }

    #[test]
    fn quantum_awareness_split() {
        assert!(LegalizationStrategy::Qgdp.is_quantum_aware());
        assert!(LegalizationStrategy::QTetris.is_quantum_aware());
        assert!(LegalizationStrategy::QAbacus.is_quantum_aware());
        assert!(!LegalizationStrategy::Tetris.is_quantum_aware());
        assert!(!LegalizationStrategy::Abacus.is_quantum_aware());
    }

    #[test]
    fn legalizer_names_match_strategy_components() {
        assert_eq!(
            LegalizationStrategy::Qgdp.cell_legalizer().name(),
            "qgdp-resonator-lg"
        );
        assert_eq!(
            LegalizationStrategy::Tetris.cell_legalizer().name(),
            "tetris"
        );
        assert_eq!(
            LegalizationStrategy::QAbacus.cell_legalizer().name(),
            "abacus"
        );
        assert_eq!(
            LegalizationStrategy::Tetris.qubit_legalizer().name(),
            "macro-lg"
        );
        assert_eq!(
            LegalizationStrategy::Qgdp.qubit_legalizer().name(),
            "q-macro-lg"
        );
        assert_eq!(LegalizationStrategy::Qgdp.to_string(), "qGDP-LG");
    }
}
