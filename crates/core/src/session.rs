//! The staged [`Session`] API: build once, fork stage artifacts, batch strategy
//! matrices.
//!
//! A `Session` owns everything that is constant across a device's placement runs —
//! the [`Topology`], the [`QuantumNetlist`] built from it, and the [`FlowConfig`] —
//! behind one [`Arc`], so every artifact derived from it is a cheap handle.  The
//! monolithic [`crate::run_flow`] is a thin compatibility shim over this API.
//!
//! ```
//! use qgdp::prelude::*;
//!
//! let topology = StandardTopology::Grid.build();
//! let session = Session::new(&topology, FlowConfig::default().with_seed(7))?;
//! let gp = session.global_place();                    // one GP…
//! let qgdp = gp.legalize(LegalizationStrategy::Qgdp)?; // …feeds any number of
//! let tetris = gp.legalize(LegalizationStrategy::Tetris)?; // legalizations
//! assert!(qgdp.is_legal() && tetris.is_legal());
//! # Ok::<(), qgdp::FlowError>(())
//! ```
//!
//! # Batching
//!
//! [`Session::run_batch`] / [`Session::run_matrix`] fan a `(strategy × detail
//! config)` request set over the `QGDP_THREADS` worker pool
//! ([`qgdp_metrics::parallel`]): the GP runs once, each distinct strategy is
//! legalized once, and detailed-placement forks run concurrently.  Results come back
//! in request order and are bit-identical for every worker count (each stage is a
//! deterministic function of its inputs and the collection points are
//! index-ordered).

use crate::artifact::{CellLegalized, FlowArtifact, GlobalPlacement, GpData};
use crate::pipeline::FlowConfig;
use crate::{DetailedPlacerConfig, FlowError, LegalizationStrategy};
use qgdp_metrics::{parallel_map, worker_threads};
use qgdp_netlist::QuantumNetlist;
use qgdp_topology::Topology;
use std::sync::{Arc, OnceLock};

/// The shared, immutable context of one placement session.
#[derive(Debug)]
pub(crate) struct SessionContext {
    pub(crate) topology: Arc<Topology>,
    pub(crate) netlist: Arc<QuantumNetlist>,
    pub(crate) config: FlowConfig,
    /// One-shot cache of the global-placement run: the GP is a deterministic
    /// function of the (immutable) context, so every `global_place()` call after
    /// the first returns a handle to the same cached result.  Holds the
    /// context-free [`GpData`] rather than a [`GlobalPlacement`] (which owns an
    /// `Arc<SessionContext>`) to avoid an `Arc` reference cycle.
    pub(crate) gp_cache: OnceLock<GpData>,
}

/// One request of a batched flow: a legalization strategy plus an optional
/// detailed-placement configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowRequest {
    /// The legalization strategy to run.
    pub strategy: LegalizationStrategy,
    /// Detailed-placement configuration; `None` stops after legalization.
    pub detail: Option<DetailedPlacerConfig>,
}

impl FlowRequest {
    /// A request that stops after legalization.
    #[must_use]
    pub fn legalize(strategy: LegalizationStrategy) -> Self {
        FlowRequest {
            strategy,
            detail: None,
        }
    }

    /// A request that runs detailed placement with `detail` after legalization.
    #[must_use]
    pub fn detailed(strategy: LegalizationStrategy, detail: DetailedPlacerConfig) -> Self {
        FlowRequest {
            strategy,
            detail: Some(detail),
        }
    }
}

/// A staged placement session over one device topology (see the [module-level
/// docs](self)).
///
/// Cloning a `Session` is cheap (one `Arc` bump) and every clone shares the same
/// topology, netlist and config.
#[derive(Debug, Clone)]
pub struct Session {
    ctx: Arc<SessionContext>,
}

impl Session {
    /// Builds a session for `topology`: the netlist is constructed once here and
    /// shared by every artifact the session produces.
    ///
    /// The topology is cloned once into shared ownership; use [`Session::over`] to
    /// avoid even that copy when you already hold an `Arc<Topology>`.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] when the netlist cannot be built from the topology.
    pub fn new(topology: &Topology, config: FlowConfig) -> Result<Self, FlowError> {
        Session::over(Arc::new(topology.clone()), config)
    }

    /// Builds a session over an already-shared topology (no clone).
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] when the netlist cannot be built from the topology.
    pub fn over(topology: Arc<Topology>, config: FlowConfig) -> Result<Self, FlowError> {
        let netlist = Arc::new(topology.to_netlist(config.geometry, config.net_model)?);
        Ok(Session {
            ctx: Arc::new(SessionContext {
                topology,
                netlist,
                config,
                gp_cache: OnceLock::new(),
            }),
        })
    }

    /// The device topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.ctx.topology
    }

    /// The netlist every stage of this session places.
    #[must_use]
    pub fn netlist(&self) -> &QuantumNetlist {
        &self.ctx.netlist
    }

    /// The flow configuration.
    #[must_use]
    pub fn config(&self) -> &FlowConfig {
        &self.ctx.config
    }

    /// Runs global placement and returns the artifact every later stage forks from.
    ///
    /// The placer is a deterministic function of the session's (immutable) context,
    /// so the run is cached on the session: the first call pays for the GP, and
    /// every later call — including the ones inside [`Session::run`] and
    /// [`Session::run_batch`] — returns a cheap handle to the same shared result,
    /// bit-identical by construction.
    #[must_use]
    pub fn global_place(&self) -> GlobalPlacement {
        GlobalPlacement::compute(Arc::clone(&self.ctx))
    }

    /// Runs one full flow for `strategy`, honouring the config's
    /// `detailed_placement` flag — the staged equivalent of [`crate::run_flow`].
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] when a legalization stage fails.
    pub fn run(&self, strategy: LegalizationStrategy) -> Result<FlowArtifact, FlowError> {
        let legalized = self.global_place().legalize(strategy)?;
        Ok(if self.ctx.config.detailed_placement {
            FlowArtifact::Detailed(legalized.detail())
        } else {
            FlowArtifact::Legalized(legalized)
        })
    }

    /// Runs `requests` as one batch off a single shared global placement, fanned
    /// over the `QGDP_THREADS` worker pool.  See
    /// [`Session::run_batch_with_threads`].
    ///
    /// # Errors
    ///
    /// Returns the first [`FlowError`] (in strategy order) if a legalization fails.
    pub fn run_batch(&self, requests: &[FlowRequest]) -> Result<Vec<FlowArtifact>, FlowError> {
        self.run_batch_with_threads(requests, worker_threads())
    }

    /// [`Session::run_batch`] with an explicit worker count.
    ///
    /// One GP run feeds the whole batch; each *distinct* strategy in `requests` is
    /// legalized exactly once (concurrently), then the per-request detailed
    /// placements fork off the shared legalized artifacts (concurrently).  Results
    /// are returned in request order and are bit-identical for every `threads`
    /// value.
    ///
    /// # Errors
    ///
    /// Returns the first [`FlowError`] (in strategy order) if a legalization fails.
    pub fn run_batch_with_threads(
        &self,
        requests: &[FlowRequest],
        threads: usize,
    ) -> Result<Vec<FlowArtifact>, FlowError> {
        let gp = self.global_place();
        batch_from_gp(&gp, requests, threads)
    }

    /// Runs the `strategies × details` cross product as one batch (strategy-major
    /// request order) off a single shared global placement — the Table II/III
    /// strategy matrix in one call.
    ///
    /// Each entry of `details` is `None` to stop after legalization or
    /// `Some(config)` to run detailed placement with that configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`FlowError`] (in strategy order) if a legalization fails.
    pub fn run_matrix(
        &self,
        strategies: &[LegalizationStrategy],
        details: &[Option<DetailedPlacerConfig>],
    ) -> Result<Vec<FlowArtifact>, FlowError> {
        let requests: Vec<FlowRequest> = strategies
            .iter()
            .flat_map(|&strategy| {
                details
                    .iter()
                    .map(move |&detail| FlowRequest { strategy, detail })
            })
            .collect();
        self.run_batch(&requests)
    }
}

/// The batch engine: legalize each distinct strategy once, then fork the per-request
/// detailed placements, both levels on up to `threads` workers.
fn batch_from_gp(
    gp: &GlobalPlacement,
    requests: &[FlowRequest],
    threads: usize,
) -> Result<Vec<FlowArtifact>, FlowError> {
    // Distinct strategies in first-appearance order (≤ 5 entries; linear scan keeps
    // the order deterministic without a hash map).
    let mut strategies: Vec<LegalizationStrategy> = Vec::new();
    for request in requests {
        if !strategies.contains(&request.strategy) {
            strategies.push(request.strategy);
        }
    }

    let legalized: Vec<Result<CellLegalized, FlowError>> =
        parallel_map(&strategies, threads, |&strategy| gp.legalize(strategy));
    let mut by_strategy: Vec<(LegalizationStrategy, CellLegalized)> = Vec::new();
    for (strategy, outcome) in strategies.iter().zip(legalized) {
        by_strategy.push((*strategy, outcome?));
    }
    let lookup = |strategy: LegalizationStrategy| -> &CellLegalized {
        &by_strategy
            .iter()
            .find(|(s, _)| *s == strategy)
            .expect("every request strategy was legalized")
            .1
    };

    // Detail-free requests are pure handle clones — not worth spawning workers for.
    if requests.iter().all(|r| r.detail.is_none()) {
        return Ok(requests
            .iter()
            .map(|r| FlowArtifact::Legalized(lookup(r.strategy).clone()))
            .collect());
    }
    Ok(parallel_map(requests, threads, |request| {
        let cell = lookup(request.strategy).clone();
        match request.detail {
            None => FlowArtifact::Legalized(cell),
            Some(config) => FlowArtifact::Detailed(cell.detail_with(config)),
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp_topology::StandardTopology;

    fn session() -> Session {
        let topo = StandardTopology::Grid.build();
        Session::new(&topo, FlowConfig::default().with_seed(11)).expect("session builds")
    }

    #[test]
    fn session_builds_the_netlist_once_and_shares_it() {
        let s = session();
        let gp1 = s.global_place();
        let gp2 = s.global_place();
        assert!(std::ptr::eq(s.netlist(), gp1.netlist()));
        assert_eq!(gp1.placement(), gp2.placement(), "GP is seed-deterministic");
        assert_eq!(s.topology().num_qubits(), 25);
        assert_eq!(s.config().gp.seed, 11);
    }

    #[test]
    fn global_place_is_cached_on_the_session() {
        let s = session();
        let gp1 = s.global_place();
        let gp2 = s.global_place();
        // Not merely equal: the same allocation — the second call hit the cache.
        assert!(std::ptr::eq(gp1.placement(), gp2.placement()));
        assert_eq!(gp1.elapsed(), gp2.elapsed(), "cached run, cached timing");
        // Session clones share the cache too (one Arc'd context).
        let clone = s.clone();
        assert!(std::ptr::eq(
            clone.global_place().placement(),
            gp1.placement()
        ));
        // The lazy GP report is shared through the cache as well.
        let report = gp1.report().clone();
        assert!(std::ptr::eq(s.global_place().report(), gp1.report()));
        assert_eq!(gp2.report(), &report);
    }

    #[test]
    fn run_honours_the_detailed_placement_flag() {
        let topo = StandardTopology::Grid.build();
        let lg_only = Session::new(&topo, FlowConfig::default().with_seed(5))
            .unwrap()
            .run(LegalizationStrategy::Qgdp)
            .unwrap();
        assert!(lg_only.detailed().is_none());
        let with_dp = Session::new(
            &topo,
            FlowConfig::default()
                .with_seed(5)
                .with_detailed_placement(true),
        )
        .unwrap()
        .run(LegalizationStrategy::Qgdp)
        .unwrap();
        assert!(with_dp.detailed().is_some());
        assert!(with_dp.is_legal());
    }

    #[test]
    fn batch_results_come_back_in_request_order() {
        let s = session();
        let requests = [
            FlowRequest::legalize(LegalizationStrategy::Tetris),
            FlowRequest::detailed(LegalizationStrategy::Qgdp, DetailedPlacerConfig::new()),
            FlowRequest::legalize(LegalizationStrategy::Qgdp),
        ];
        let artifacts = s.run_batch_with_threads(&requests, 2).unwrap();
        assert_eq!(artifacts.len(), 3);
        assert_eq!(artifacts[0].strategy(), LegalizationStrategy::Tetris);
        assert_eq!(artifacts[1].strategy(), LegalizationStrategy::Qgdp);
        assert!(artifacts[1].detailed().is_some());
        assert!(artifacts[2].detailed().is_none());
        // Duplicate-strategy requests share one legalization (same allocation).
        assert!(std::ptr::eq(
            artifacts[1].legalized().placement(),
            artifacts[2].legalized().placement()
        ));
    }

    #[test]
    fn batch_is_bit_identical_for_every_worker_count() {
        let s = session();
        let requests: Vec<FlowRequest> = LegalizationStrategy::all()
            .into_iter()
            .map(FlowRequest::legalize)
            .collect();
        let serial = s.run_batch_with_threads(&requests, 1).unwrap();
        for threads in [2, 4, 16] {
            let parallel = s.run_batch_with_threads(&requests, threads).unwrap();
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(
                    a.final_placement(),
                    b.final_placement(),
                    "threads={threads}"
                );
                assert_eq!(a.report(), b.report(), "threads={threads}");
            }
        }
    }

    #[test]
    fn run_matrix_is_the_strategy_major_cross_product() {
        let s = session();
        let strategies = [LegalizationStrategy::Qgdp, LegalizationStrategy::Tetris];
        let details = [None, Some(DetailedPlacerConfig::new())];
        let artifacts = s.run_matrix(&strategies, &details).unwrap();
        assert_eq!(artifacts.len(), 4);
        assert_eq!(artifacts[0].strategy(), LegalizationStrategy::Qgdp);
        assert!(artifacts[0].detailed().is_none());
        assert!(artifacts[1].detailed().is_some());
        assert_eq!(artifacts[2].strategy(), LegalizationStrategy::Tetris);
        assert!(artifacts[3].detailed().is_some());
    }

    #[test]
    fn empty_batch_is_an_empty_vec() {
        let artifacts = session().run_batch(&[]).unwrap();
        assert!(artifacts.is_empty());
    }
}
