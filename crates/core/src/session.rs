//! The staged [`Session`] API: build once, fork stage artifacts, batch strategy
//! matrices.
//!
//! A `Session` owns everything that is constant across a device's placement runs —
//! the [`Topology`], the [`QuantumNetlist`] built from it, and the [`FlowConfig`] —
//! behind one [`Arc`], so every artifact derived from it is a cheap handle.  The
//! monolithic [`crate::run_flow`] is a thin compatibility shim over this API.
//!
//! ```
//! use qgdp::prelude::*;
//!
//! let topology = StandardTopology::Grid.build();
//! let session = Session::new(&topology, FlowConfig::default().with_seed(7))?;
//! let gp = session.global_place();                    // one GP…
//! let qgdp = gp.legalize(LegalizationStrategy::Qgdp)?; // …feeds any number of
//! let tetris = gp.legalize(LegalizationStrategy::Tetris)?; // legalizations
//! assert!(qgdp.is_legal() && tetris.is_legal());
//! # Ok::<(), qgdp::FlowError>(())
//! ```
//!
//! # Batching
//!
//! [`Session::try_run_batch`] / [`Session::try_run_matrix`] fan a `(strategy ×
//! detail config)` request set over the `QGDP_THREADS` worker pool
//! ([`qgdp_metrics::parallel`]): the GP runs once, each distinct strategy is
//! legalized once, each distinct `(strategy, detail)` pair is detailed once, and
//! the forks run concurrently.  Results come back **one `Result` per request, in
//! request order**, and are bit-identical for every worker count (each stage is a
//! deterministic function of its inputs and the collection points are
//! index-ordered).
//!
//! The `try_` surface is **fault-isolated**: a request whose legalization fails —
//! or whose worker outright panics — poisons only its own slot
//! ([`qgdp_metrics::parallel_try_map`] contains the unwind per item), and every
//! sibling request still returns its artifact, bit-identical to an all-success
//! run of those siblings.  Errors carry the failing [`Stage`], strategy, request
//! index and the [`StageEvent`](crate::StageEvent) trace of the stages that
//! completed ([`FlowError::Legalize`] / [`FlowError::Worker`]).
//! [`Session::run_batch`] / [`Session::run_matrix`] remain as thin all-or-nothing
//! shims over the same engine.

use crate::artifact::{CellLegalized, Detailed, FlowArtifact, GlobalPlacement, GpData, Stage};
use crate::pipeline::FlowConfig;
use crate::{DetailedPlacerConfig, FlowError, LegalizationStrategy};
use qgdp_geometry::Rect;
use qgdp_metrics::{parallel_try_map, worker_threads, ReportDelta};
use qgdp_netlist::{ComponentId, Placement, QuantumNetlist, SegmentId};
use qgdp_placer::GpStats;
use qgdp_topology::Topology;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// The shared, immutable context of one placement session.
#[derive(Debug)]
pub(crate) struct SessionContext {
    pub(crate) topology: Arc<Topology>,
    pub(crate) netlist: Arc<QuantumNetlist>,
    pub(crate) config: FlowConfig,
    /// One-shot cache of the global-placement run: the GP is a deterministic
    /// function of the (immutable) context, so every `global_place()` call after
    /// the first returns a handle to the same cached result.  Holds the
    /// context-free [`GpData`] rather than a [`GlobalPlacement`] (which owns an
    /// `Arc<SessionContext>`) to avoid an `Arc` reference cycle.
    pub(crate) gp_cache: OnceLock<GpData>,
}

/// One request of a batched flow: a legalization strategy plus an optional
/// detailed-placement configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowRequest {
    /// The legalization strategy to run.
    pub strategy: LegalizationStrategy,
    /// Detailed-placement configuration; `None` stops after legalization.
    pub detail: Option<DetailedPlacerConfig>,
}

impl FlowRequest {
    /// A request that stops after legalization.
    #[must_use]
    pub fn legalize(strategy: LegalizationStrategy) -> Self {
        FlowRequest {
            strategy,
            detail: None,
        }
    }

    /// A request that runs detailed placement with `detail` after legalization.
    #[must_use]
    pub fn detailed(strategy: LegalizationStrategy, detail: DetailedPlacerConfig) -> Self {
        FlowRequest {
            strategy,
            detail: Some(detail),
        }
    }
}

/// A staged placement session over one device topology (see the [module-level
/// docs](self)).
///
/// Cloning a `Session` is cheap (one `Arc` bump) and every clone shares the same
/// topology, netlist and config.
#[derive(Debug, Clone)]
pub struct Session {
    ctx: Arc<SessionContext>,
}

impl Session {
    /// Builds a session for `topology`: the netlist is constructed once here and
    /// shared by every artifact the session produces.
    ///
    /// The topology is cloned once into shared ownership; use [`Session::over`] to
    /// avoid even that copy when you already hold an `Arc<Topology>`.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] when the netlist cannot be built from the topology.
    pub fn new(topology: &Topology, config: FlowConfig) -> Result<Self, FlowError> {
        Session::over(Arc::new(topology.clone()), config)
    }

    /// Builds a session over an already-shared topology (no clone).
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] when the netlist cannot be built from the topology.
    pub fn over(topology: Arc<Topology>, config: FlowConfig) -> Result<Self, FlowError> {
        let netlist = Arc::new(topology.to_netlist(config.geometry, config.net_model)?);
        Ok(Session {
            ctx: Arc::new(SessionContext {
                topology,
                netlist,
                config,
                gp_cache: OnceLock::new(),
            }),
        })
    }

    /// The device topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.ctx.topology
    }

    /// The netlist every stage of this session places.
    #[must_use]
    pub fn netlist(&self) -> &QuantumNetlist {
        &self.ctx.netlist
    }

    /// The flow configuration.
    #[must_use]
    pub fn config(&self) -> &FlowConfig {
        &self.ctx.config
    }

    /// Runs global placement and returns the artifact every later stage forks from.
    ///
    /// The placer is a deterministic function of the session's (immutable) context,
    /// so the run is cached on the session: the first call pays for the GP, and
    /// every later call — including the ones inside [`Session::run`] and
    /// [`Session::run_batch`] — returns a cheap handle to the same shared result,
    /// bit-identical by construction.
    #[must_use]
    pub fn global_place(&self) -> GlobalPlacement {
        GlobalPlacement::compute(Arc::clone(&self.ctx))
    }

    /// Returns the global-placement artifact **only if** the session's GP cache
    /// is already populated (by [`Session::global_place`], a batch run, or
    /// [`Session::restore_global`]) — never triggers a placer run.  The serving
    /// layer's snapshot export uses this to persist exactly what was computed.
    #[must_use]
    pub fn cached_global(&self) -> Option<GlobalPlacement> {
        self.ctx.gp_cache.get().map(|_| self.global_place())
    }

    /// Seeds the session's global-placement cache with a previously-computed
    /// result instead of running the placer — the snapshot-restore path of the
    /// serving layer — and returns the artifact handle.
    ///
    /// The inputs **must** be the bit-exact outputs of a GP run of an identical
    /// session (same topology, same [`FlowConfig`] stage prefix); the content
    /// identity of [`crate::ArtifactKey`] is what guarantees this at the call
    /// sites.  When the cache is already populated the provided data is ignored
    /// and the live handle is returned, so racing a restore against a live run is
    /// harmless.
    #[must_use]
    pub fn restore_global(
        &self,
        die: Rect,
        placement: Placement,
        stats: GpStats,
        elapsed: Duration,
    ) -> GlobalPlacement {
        self.ctx
            .gp_cache
            .get_or_init(|| GpData::restored(die, placement, stats, elapsed));
        self.global_place()
    }

    /// Runs one full flow for `strategy`, honouring the config's
    /// `detailed_placement` flag — the staged equivalent of [`crate::run_flow`].
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] when a legalization stage fails.
    pub fn run(&self, strategy: LegalizationStrategy) -> Result<FlowArtifact, FlowError> {
        let legalized = self.global_place().legalize(strategy)?;
        Ok(if self.ctx.config.detailed_placement {
            FlowArtifact::Detailed(legalized.detail())
        } else {
            FlowArtifact::Legalized(legalized)
        })
    }

    /// Fault-isolated batching: runs `requests` as one batch off a single shared
    /// global placement, fanned over the `QGDP_THREADS` worker pool, and returns
    /// **one `Result` per request, in request order**.  See
    /// [`Session::try_run_batch_with_threads`].
    #[must_use]
    pub fn try_run_batch(&self, requests: &[FlowRequest]) -> Vec<Result<FlowArtifact, FlowError>> {
        self.try_run_batch_with_threads(requests, worker_threads())
    }

    /// [`Session::try_run_batch`] with an explicit worker count.
    ///
    /// One GP run feeds the whole batch; each *distinct* strategy in `requests` is
    /// legalized exactly once (concurrently), then each *distinct* `(strategy,
    /// detail)` pair is detailed exactly once off the shared legalized artifacts
    /// (concurrently) — duplicate requests share the resulting artifact handles.
    ///
    /// The batch is **fault-isolated**: a failing legalization poisons only the
    /// requests of that strategy, a panicking worker is contained to its own
    /// request ([`qgdp_metrics::parallel_try_map`] catches the unwind per item and
    /// surfaces it as [`FlowError::Worker`]), and every sibling request returns its
    /// artifact bit-identically to an all-success run of those siblings.  Each
    /// per-request error is tagged with its request index, failing stage and
    /// strategy.  The outcome vector — successes *and* errors — is identical for
    /// every `threads` value.
    #[must_use]
    pub fn try_run_batch_with_threads(
        &self,
        requests: &[FlowRequest],
        threads: usize,
    ) -> Vec<Result<FlowArtifact, FlowError>> {
        let gp = self.global_place();
        try_batch_from_gp(&gp, requests, threads)
    }

    /// Fault-isolated form of [`Session::run_matrix`]: runs the `strategies ×
    /// details` cross product (strategy-major request order) and returns one
    /// `Result` per cell, in request order — a partial matrix survives a poisoned
    /// strategy column.
    ///
    /// Each entry of `details` is `None` to stop after legalization or
    /// `Some(config)` to run detailed placement with that configuration.
    #[must_use]
    pub fn try_run_matrix(
        &self,
        strategies: &[LegalizationStrategy],
        details: &[Option<DetailedPlacerConfig>],
    ) -> Vec<Result<FlowArtifact, FlowError>> {
        self.try_run_batch(&matrix_requests(strategies, details))
    }

    /// All-or-nothing batching over [`Session::try_run_batch`]: runs `requests` as
    /// one batch off a single shared global placement, fanned over the
    /// `QGDP_THREADS` worker pool.  See [`Session::run_batch_with_threads`].
    ///
    /// # Errors
    ///
    /// Returns the error of the **first failing strategy in request
    /// first-appearance order** (within that strategy, the lowest failing request
    /// index) — *not* the first error in request order, because legalizations are
    /// fanned out per distinct strategy.  Use [`Session::try_run_batch`] to keep
    /// the surviving siblings instead of discarding them.
    pub fn run_batch(&self, requests: &[FlowRequest]) -> Result<Vec<FlowArtifact>, FlowError> {
        self.run_batch_with_threads(requests, worker_threads())
    }

    /// [`Session::run_batch`] with an explicit worker count.
    ///
    /// A thin all-or-nothing shim over
    /// [`Session::try_run_batch_with_threads`]: on an all-success batch the
    /// artifacts are identical (the `session_equivalence` golden suite proves
    /// bit-identity with serial staging); on any failure the whole batch is
    /// discarded.  Results are returned in request order and are bit-identical for
    /// every `threads` value.
    ///
    /// # Errors
    ///
    /// Returns the error of the first failing strategy in request
    /// first-appearance order (within that strategy, the lowest failing request
    /// index).
    pub fn run_batch_with_threads(
        &self,
        requests: &[FlowRequest],
        threads: usize,
    ) -> Result<Vec<FlowArtifact>, FlowError> {
        all_or_nothing(requests, self.try_run_batch_with_threads(requests, threads))
    }

    /// Runs the `strategies × details` cross product as one batch (strategy-major
    /// request order) off a single shared global placement — the Table II/III
    /// strategy matrix in one call.
    ///
    /// Each entry of `details` is `None` to stop after legalization or
    /// `Some(config)` to run detailed placement with that configuration.
    ///
    /// # Errors
    ///
    /// Returns the error of the first failing strategy in request
    /// first-appearance order — for the strategy-major request order built here,
    /// the first failing entry of `strategies` — discarding the surviving columns;
    /// [`Session::try_run_matrix`] returns them instead.
    pub fn run_matrix(
        &self,
        strategies: &[LegalizationStrategy],
        details: &[Option<DetailedPlacerConfig>],
    ) -> Result<Vec<FlowArtifact>, FlowError> {
        self.run_batch(&matrix_requests(strategies, details))
    }
}

/// Expands a `strategies × details` cross product into strategy-major requests.
fn matrix_requests(
    strategies: &[LegalizationStrategy],
    details: &[Option<DetailedPlacerConfig>],
) -> Vec<FlowRequest> {
    strategies
        .iter()
        .flat_map(|&strategy| {
            details
                .iter()
                .map(move |&detail| FlowRequest { strategy, detail })
        })
        .collect()
}

/// Distinct strategies of `requests` in first-appearance order (≤ 5 entries; linear
/// scan keeps the order deterministic without a hash map).
fn distinct_strategies(requests: &[FlowRequest]) -> Vec<LegalizationStrategy> {
    let mut strategies: Vec<LegalizationStrategy> = Vec::new();
    for request in requests {
        if !strategies.contains(&request.strategy) {
            strategies.push(request.strategy);
        }
    }
    strategies
}

/// Stage codes for the per-job panic-attribution marker: a legalization worker
/// advances its marker as it crosses the stage boundary, so a contained panic can
/// still be attributed to the stage it unwound from.
const MARK_QUBIT_LG: u8 = 0;
const MARK_RESONATOR_LG: u8 = 1;

fn marker_stage(code: u8) -> Stage {
    if code == MARK_RESONATOR_LG {
        Stage::ResonatorLegalization
    } else {
        Stage::QubitLegalization
    }
}

/// The fault-isolated batch engine: legalize each distinct strategy once, then
/// fork each distinct `(strategy, detail)` pair, both levels on up to `threads`
/// workers with per-item panic containment, and assemble one `Result` per request
/// in request order.
fn try_batch_from_gp(
    gp: &GlobalPlacement,
    requests: &[FlowRequest],
    threads: usize,
) -> Vec<Result<FlowArtifact, FlowError>> {
    // Level 1: one legalization per distinct strategy.  Each job carries a stage
    // marker its worker advances at the qubit→resonator boundary; the marker is
    // only read back when the worker's unwind was contained.
    let jobs: Vec<(LegalizationStrategy, AtomicU8)> = distinct_strategies(requests)
        .into_iter()
        .map(|s| (s, AtomicU8::new(MARK_QUBIT_LG)))
        .collect();
    let legalized = parallel_try_map(&jobs, threads, |(strategy, marker)| {
        let qubits = gp.legalize_qubits(*strategy)?;
        marker.store(MARK_RESONATOR_LG, Ordering::Relaxed);
        qubits.legalize_cells()
    });
    let by_strategy: Vec<(LegalizationStrategy, Result<CellLegalized, FlowError>)> = jobs
        .iter()
        .zip(legalized)
        .map(|((strategy, marker), outcome)| {
            let outcome = outcome.unwrap_or_else(|message| {
                Err(FlowError::Worker {
                    stage: marker_stage(marker.load(Ordering::Relaxed)),
                    message,
                    strategy: Some(*strategy),
                    request: None,
                })
            });
            (*strategy, outcome)
        })
        .collect();
    let lookup = |strategy: LegalizationStrategy| -> &Result<CellLegalized, FlowError> {
        &by_strategy
            .iter()
            .find(|(s, _)| *s == strategy)
            .expect("every request strategy was legalized")
            .1
    };

    // Level 2: one detailed placement per distinct `(strategy, detail)` pair of a
    // successfully legalized strategy — duplicate requests share the artifact
    // handle, like duplicate strategies share one legalization above.  A batch
    // with no detail requests fans out nothing here.
    let mut detail_jobs: Vec<(LegalizationStrategy, DetailedPlacerConfig)> = Vec::new();
    for request in requests {
        if let Some(config) = request.detail {
            let job = (request.strategy, config);
            if lookup(request.strategy).is_ok() && !detail_jobs.contains(&job) {
                detail_jobs.push(job);
            }
        }
    }
    // Scoring bases: one incremental ReportDelta per strategy that is detailed
    // more than once, built off the legalized layout.  Each of that strategy's DP
    // workers clones the base, replays its artifact's component moves and primes
    // the artifact's scan cache with the delta-assembled scan — bit-identical to a
    // from-scratch `LayoutScan` by the `ReportDelta` contract — so sibling detail
    // configs share one full layout walk instead of paying one each when their
    // reports are read.  Single-job strategies keep the lazy from-scratch path
    // (an incremental base would cost a full walk anyway).
    let delta_bases: Vec<(LegalizationStrategy, ReportDelta<'_>)> = distinct_strategies(requests)
        .into_iter()
        .filter(|&s| detail_jobs.iter().filter(|(js, _)| *js == s).count() >= 2)
        .filter_map(|s| {
            lookup(s).as_ref().ok().map(|cell| {
                let base = ReportDelta::new(gp.netlist(), cell.placement(), &gp.config().crosstalk);
                (s, base)
            })
        })
        .collect();
    let detailed: Vec<Result<Detailed, FlowError>> =
        parallel_try_map(&detail_jobs, threads, |&(strategy, config)| {
            let cell = lookup(strategy)
                .as_ref()
                .expect("only successfully legalized strategies are detailed");
            let dp = cell.detail_with(config);
            if let Some((_, base)) = delta_bases.iter().find(|(s, _)| *s == strategy) {
                let mut delta = base.clone();
                let before = cell.placement();
                let after = dp.placement();
                for s in 0..after.num_segments() {
                    let id = SegmentId(s);
                    if before.segment(id) != after.segment(id) {
                        delta.apply_move(ComponentId::Segment(id), after.segment(id));
                    }
                }
                dp.prime_scan(Arc::new(delta.to_scan()));
            }
            dp
        })
        .into_iter()
        .zip(&detail_jobs)
        .map(|(outcome, &(strategy, _))| {
            outcome.map_err(|message| FlowError::Worker {
                stage: Stage::DetailedPlacement,
                message,
                strategy: Some(strategy),
                request: None,
            })
        })
        .collect();
    let lookup_detail = |strategy: LegalizationStrategy,
                         config: DetailedPlacerConfig|
     -> &Result<Detailed, FlowError> {
        detail_jobs
            .iter()
            .zip(&detailed)
            .find(|((s, c), _)| *s == strategy && *c == config)
            .expect("every detail request pair was processed")
            .1
    };

    // Assembly: request order, errors tagged with the request index they poison.
    requests
        .iter()
        .enumerate()
        .map(|(index, request)| match lookup(request.strategy) {
            Err(error) => Err(error.clone().with_request(index)),
            Ok(cell) => match request.detail {
                None => Ok(FlowArtifact::Legalized(cell.clone())),
                Some(config) => match lookup_detail(request.strategy, config) {
                    Ok(dp) => Ok(FlowArtifact::Detailed(dp.clone())),
                    Err(error) => Err(error.clone().with_request(index)),
                },
            },
        })
        .collect()
}

/// The all-or-nothing contract of [`Session::run_batch`]: every artifact, or the
/// error of the first failing strategy in request first-appearance order (within
/// that strategy, the lowest failing request index) — the same order the
/// pre-fault-isolation engine produced, proven by the shim contract tests.
fn all_or_nothing(
    requests: &[FlowRequest],
    results: Vec<Result<FlowArtifact, FlowError>>,
) -> Result<Vec<FlowArtifact>, FlowError> {
    for strategy in distinct_strategies(requests) {
        let first_failure = requests.iter().zip(&results).find_map(|(request, result)| {
            (request.strategy == strategy)
                .then(|| result.as_ref().err())
                .flatten()
        });
        if let Some(error) = first_failure {
            return Err(error.clone());
        }
    }
    Ok(results
        .into_iter()
        .map(|result| result.expect("no request failed"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp_topology::StandardTopology;

    fn session() -> Session {
        let topo = StandardTopology::Grid.build();
        Session::new(&topo, FlowConfig::default().with_seed(11)).expect("session builds")
    }

    #[test]
    fn session_builds_the_netlist_once_and_shares_it() {
        let s = session();
        let gp1 = s.global_place();
        let gp2 = s.global_place();
        assert!(std::ptr::eq(s.netlist(), gp1.netlist()));
        assert_eq!(gp1.placement(), gp2.placement(), "GP is seed-deterministic");
        assert_eq!(s.topology().num_qubits(), 25);
        assert_eq!(s.config().gp.seed, 11);
    }

    #[test]
    fn global_place_is_cached_on_the_session() {
        let s = session();
        let gp1 = s.global_place();
        let gp2 = s.global_place();
        // Not merely equal: the same allocation — the second call hit the cache.
        assert!(std::ptr::eq(gp1.placement(), gp2.placement()));
        assert_eq!(gp1.elapsed(), gp2.elapsed(), "cached run, cached timing");
        // Session clones share the cache too (one Arc'd context).
        let clone = s.clone();
        assert!(std::ptr::eq(
            clone.global_place().placement(),
            gp1.placement()
        ));
        // The lazy GP report is shared through the cache as well.
        let report = gp1.report().clone();
        assert!(std::ptr::eq(s.global_place().report(), gp1.report()));
        assert_eq!(gp2.report(), &report);
    }

    #[test]
    fn run_honours_the_detailed_placement_flag() {
        let topo = StandardTopology::Grid.build();
        let lg_only = Session::new(&topo, FlowConfig::default().with_seed(5))
            .unwrap()
            .run(LegalizationStrategy::Qgdp)
            .unwrap();
        assert!(lg_only.detailed().is_none());
        let with_dp = Session::new(
            &topo,
            FlowConfig::default()
                .with_seed(5)
                .with_detailed_placement(true),
        )
        .unwrap()
        .run(LegalizationStrategy::Qgdp)
        .unwrap();
        assert!(with_dp.detailed().is_some());
        assert!(with_dp.is_legal());
    }

    #[test]
    fn batch_results_come_back_in_request_order() {
        let s = session();
        let requests = [
            FlowRequest::legalize(LegalizationStrategy::Tetris),
            FlowRequest::detailed(LegalizationStrategy::Qgdp, DetailedPlacerConfig::new()),
            FlowRequest::legalize(LegalizationStrategy::Qgdp),
        ];
        let artifacts = s.run_batch_with_threads(&requests, 2).unwrap();
        assert_eq!(artifacts.len(), 3);
        assert_eq!(artifacts[0].strategy(), LegalizationStrategy::Tetris);
        assert_eq!(artifacts[1].strategy(), LegalizationStrategy::Qgdp);
        assert!(artifacts[1].detailed().is_some());
        assert!(artifacts[2].detailed().is_none());
        // Duplicate-strategy requests share one legalization (same allocation).
        assert!(std::ptr::eq(
            artifacts[1].legalized().placement(),
            artifacts[2].legalized().placement()
        ));
    }

    #[test]
    fn batch_is_bit_identical_for_every_worker_count() {
        let s = session();
        let requests: Vec<FlowRequest> = LegalizationStrategy::all()
            .into_iter()
            .map(FlowRequest::legalize)
            .collect();
        let serial = s.run_batch_with_threads(&requests, 1).unwrap();
        for threads in [2, 4, 16] {
            let parallel = s.run_batch_with_threads(&requests, threads).unwrap();
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(
                    a.final_placement(),
                    b.final_placement(),
                    "threads={threads}"
                );
                assert_eq!(a.report(), b.report(), "threads={threads}");
            }
        }
    }

    #[test]
    fn run_matrix_is_the_strategy_major_cross_product() {
        let s = session();
        let strategies = [LegalizationStrategy::Qgdp, LegalizationStrategy::Tetris];
        let details = [None, Some(DetailedPlacerConfig::new())];
        let artifacts = s.run_matrix(&strategies, &details).unwrap();
        assert_eq!(artifacts.len(), 4);
        assert_eq!(artifacts[0].strategy(), LegalizationStrategy::Qgdp);
        assert!(artifacts[0].detailed().is_none());
        assert!(artifacts[1].detailed().is_some());
        assert_eq!(artifacts[2].strategy(), LegalizationStrategy::Tetris);
        assert!(artifacts[3].detailed().is_some());
    }

    #[test]
    fn empty_batch_is_an_empty_vec() {
        let artifacts = session().run_batch(&[]).unwrap();
        assert!(artifacts.is_empty());
        assert!(session().try_run_batch(&[]).is_empty());
    }

    #[test]
    fn duplicate_requests_share_one_detailed_placement_run() {
        let s = session();
        let config = DetailedPlacerConfig::new();
        let requests = [
            FlowRequest::detailed(LegalizationStrategy::Qgdp, config),
            FlowRequest::legalize(LegalizationStrategy::Qgdp),
            FlowRequest::detailed(LegalizationStrategy::Qgdp, config),
        ];
        let artifacts = s.run_batch_with_threads(&requests, 2).unwrap();
        // Identical (strategy, detail) requests share the artifact handle — the
        // same allocation, not merely equal values.
        assert!(std::ptr::eq(
            artifacts[0].final_placement(),
            artifacts[2].final_placement()
        ));
        // The legalization level shares as before.
        assert!(std::ptr::eq(
            artifacts[0].legalized().placement(),
            artifacts[1].legalized().placement()
        ));
    }

    #[test]
    fn delta_scored_matrix_reports_are_bit_identical_to_evaluate() {
        // Two detail configs per strategy trigger the shared ReportDelta scoring
        // base; the primed reports must be bit-identical to both a from-scratch
        // evaluate and the serially-staged artifact path.
        let s = session();
        let strategies = [LegalizationStrategy::Qgdp, LegalizationStrategy::Tetris];
        let details = [
            Some(DetailedPlacerConfig::new()),
            Some(DetailedPlacerConfig::new().with_fidelity_guided(true)),
        ];
        let artifacts = s.run_matrix(&strategies, &details).unwrap();
        assert_eq!(artifacts.len(), 4);
        for (index, artifact) in artifacts.iter().enumerate() {
            let dp = artifact.detailed().expect("every request ran DP");
            let fresh = qgdp_metrics::LayoutReport::evaluate(
                dp.netlist(),
                dp.placement(),
                &s.config().crosstalk,
            );
            assert_eq!(dp.report(), &fresh, "request {index}");
            assert_eq!(
                dp.report().hotspot_proportion_percent.to_bits(),
                fresh.hotspot_proportion_percent.to_bits(),
                "request {index}"
            );
            // The serially-staged path (no delta engine) agrees bit for bit.
            let config = details[index % details.len()].unwrap();
            let serial = s
                .global_place()
                .legalize(dp.strategy())
                .unwrap()
                .detail_with(config);
            assert_eq!(dp.placement(), serial.placement(), "request {index}");
            assert_eq!(dp.report(), serial.report(), "request {index}");
        }
    }

    #[test]
    fn restored_artifacts_are_bit_identical_to_live_runs() {
        let topo = StandardTopology::Grid.build();
        let cfg = FlowConfig::default().with_seed(11);
        let live = Session::new(&topo, cfg).unwrap();
        let gp = live.global_place();
        let cell = gp.legalize(LegalizationStrategy::Qgdp).unwrap();
        let dp = cell.detail();

        let fresh = Session::new(&topo, cfg).unwrap();
        let rgp = fresh.restore_global(gp.die(), gp.placement().clone(), gp.stats(), gp.elapsed());
        assert_eq!(rgp.placement(), gp.placement());
        assert_eq!(rgp.elapsed(), gp.elapsed());
        // The restore seeded the session cache: global_place() now returns the
        // restored allocation instead of running the placer.
        assert!(std::ptr::eq(
            fresh.global_place().placement(),
            rgp.placement()
        ));
        // A restore into an already-placed session is ignored.
        let ignored = live.restore_global(
            gp.die(),
            Placement::new(live.netlist()),
            gp.stats(),
            Duration::ZERO,
        );
        assert!(std::ptr::eq(ignored.placement(), gp.placement()));

        let rcell = rgp.restore_legalized(
            LegalizationStrategy::Qgdp,
            cell.qubit_stage().placement().clone(),
            cell.qubit_stage().elapsed(),
            cell.placement().clone(),
            cell.elapsed(),
        );
        assert_eq!(rcell.strategy(), LegalizationStrategy::Qgdp);
        assert_eq!(rcell.placement(), cell.placement());
        assert_eq!(rcell.report(), cell.report());
        assert!(rcell.is_legal());

        let rdp = rcell.restore_detailed(
            dp.placement().clone(),
            dp.windows_processed(),
            dp.windows_accepted(),
            dp.elapsed(),
        );
        assert_eq!(rdp.placement(), dp.placement());
        assert_eq!(rdp.report(), dp.report());
        assert_eq!(rdp.windows_accepted(), dp.windows_accepted());
        assert_eq!(rdp.timing(), dp.timing());
    }

    #[test]
    fn injected_failure_poisons_only_its_own_requests() {
        let topo = StandardTopology::Grid.build();
        let fault = crate::FaultInjection {
            fail_legalization: Some(LegalizationStrategy::QTetris),
            panic_in_legalization: None,
        };
        let poisoned = Session::new(
            &topo,
            FlowConfig::default()
                .with_seed(11)
                .with_fault_injection(fault),
        )
        .unwrap();
        let clean = session();
        let requests: Vec<FlowRequest> = LegalizationStrategy::all()
            .into_iter()
            .map(FlowRequest::legalize)
            .collect();
        let results = poisoned.try_run_batch_with_threads(&requests, 2);
        let baseline = clean.run_batch_with_threads(&requests, 2).unwrap();
        assert_eq!(results.len(), 5);
        for (index, (request, result)) in requests.iter().zip(&results).enumerate() {
            if request.strategy == LegalizationStrategy::QTetris {
                let error = result.as_ref().unwrap_err();
                assert_eq!(error.stage(), Some(Stage::QubitLegalization));
                assert_eq!(error.strategy(), Some(LegalizationStrategy::QTetris));
                assert_eq!(error.request(), Some(index));
                // The trace covers every stage that completed before the failure.
                assert_eq!(
                    error.events().iter().map(|e| e.stage).collect::<Vec<_>>(),
                    vec![Stage::GlobalPlacement]
                );
            } else {
                let artifact = result.as_ref().unwrap();
                assert_eq!(
                    artifact.final_placement(),
                    baseline[index].final_placement(),
                    "sibling {index} diverged from the all-success run"
                );
            }
        }
    }

    #[test]
    fn injected_panic_is_contained_to_its_request() {
        let topo = StandardTopology::Grid.build();
        let fault = crate::FaultInjection {
            fail_legalization: None,
            panic_in_legalization: Some(LegalizationStrategy::Abacus),
        };
        let s = Session::new(
            &topo,
            FlowConfig::default()
                .with_seed(11)
                .with_fault_injection(fault),
        )
        .unwrap();
        let requests: Vec<FlowRequest> = LegalizationStrategy::all()
            .into_iter()
            .map(FlowRequest::legalize)
            .collect();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let results = s.try_run_batch_with_threads(&requests, 3);
        std::panic::set_hook(hook);
        let poisoned_index = 3; // Abacus is the 4th strategy of `all()`.
        match &results[poisoned_index] {
            Err(FlowError::Worker {
                stage,
                message,
                strategy,
                request,
            }) => {
                assert_eq!(*stage, Stage::QubitLegalization);
                assert!(message.contains("injected fault"), "message: {message}");
                assert_eq!(*strategy, Some(LegalizationStrategy::Abacus));
                assert_eq!(*request, Some(poisoned_index));
            }
            other => panic!("expected a contained Worker error, got {other:?}"),
        }
        for (index, result) in results.iter().enumerate() {
            if index != poisoned_index {
                assert!(result.is_ok(), "sibling {index} was lost: {result:?}");
            }
        }
    }

    #[test]
    fn injected_panic_propagates_on_the_single_flow_path() {
        let topo = StandardTopology::Grid.build();
        let fault = crate::FaultInjection {
            fail_legalization: None,
            panic_in_legalization: Some(LegalizationStrategy::Qgdp),
        };
        let s = Session::new(
            &topo,
            FlowConfig::default()
                .with_seed(11)
                .with_fault_injection(fault),
        )
        .unwrap();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.run(LegalizationStrategy::Qgdp)
        }));
        std::panic::set_hook(hook);
        assert!(outcome.is_err(), "Session::run must not contain panics");
    }

    #[test]
    fn all_or_nothing_shim_returns_the_first_failing_strategy_in_appearance_order() {
        // Poison one strategy and order the requests so request order disagrees
        // with the canonical LegalizationStrategy::all() order: the shim must key
        // on request first-appearance order.
        let topo = StandardTopology::Grid.build();
        let fault = crate::FaultInjection {
            fail_legalization: Some(LegalizationStrategy::Tetris),
            panic_in_legalization: None,
        };
        let s = Session::new(
            &topo,
            FlowConfig::default()
                .with_seed(11)
                .with_fault_injection(fault),
        )
        .unwrap();
        let requests = [
            FlowRequest::legalize(LegalizationStrategy::Tetris),
            FlowRequest::legalize(LegalizationStrategy::Qgdp),
            FlowRequest::legalize(LegalizationStrategy::Tetris),
        ];
        let error = s.run_batch_with_threads(&requests, 2).unwrap_err();
        assert_eq!(error.strategy(), Some(LegalizationStrategy::Tetris));
        // The error instance is the poisoned strategy's lowest request index.
        assert_eq!(error.request(), Some(0));
    }

    #[test]
    fn try_batch_outcomes_are_worker_count_invariant_under_faults() {
        let topo = StandardTopology::Grid.build();
        let fault = crate::FaultInjection {
            fail_legalization: Some(LegalizationStrategy::QAbacus),
            panic_in_legalization: None,
        };
        let s = Session::new(
            &topo,
            FlowConfig::default()
                .with_seed(11)
                .with_fault_injection(fault),
        )
        .unwrap();
        let requests: Vec<FlowRequest> = LegalizationStrategy::all()
            .into_iter()
            .flat_map(|strategy| {
                [
                    FlowRequest::legalize(strategy),
                    FlowRequest::detailed(strategy, DetailedPlacerConfig::new()),
                ]
            })
            .collect();
        let serial = s.try_run_batch_with_threads(&requests, 1);
        for threads in [2, 4, 16] {
            let parallel = s.try_run_batch_with_threads(&requests, threads);
            assert_eq!(serial.len(), parallel.len());
            for (index, (a, b)) in serial.iter().zip(&parallel).enumerate() {
                match (a, b) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(
                            a.final_placement(),
                            b.final_placement(),
                            "request {index}, threads={threads}"
                        );
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b, "request {index}, threads={threads}"),
                    other => {
                        panic!("request {index} outcome flipped at threads={threads}: {other:?}")
                    }
                }
            }
        }
    }
}
