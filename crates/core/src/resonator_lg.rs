//! Integration-aware resonator legalization (paper §III-D, Algorithm 1).
//!
//! After the qubits are fixed, each resonator's wire blocks are legalized onto a bin
//! grid (one bin = one wire block).  Within a resonator the first block goes to the
//! free bin nearest its global-placement position; every subsequent block goes to the
//! nearest bin in the *adjacent-available* set `B_aa` — free bins bordering the blocks
//! of the same resonator placed so far — falling back to the global free set `B_a`
//! only when `B_aa` is empty.  The adjacent-available set is maintained incrementally
//! and the global free set is the hierarchical per-row index of
//! [`qgdp_geometry::FreeBinIndex`], reproducing the paper's bin-aided `O(log n)` query
//! structure.  The effect is that every resonator stays a single touching cluster
//! whenever space permits, which is the Eq. 3 objective.

use qgdp_geometry::{BinGrid, BinId, BinState, Rect};
use qgdp_legalize::{CellLegalizer, LegalizeError};
use qgdp_netlist::{Placement, QuantumNetlist, ResonatorId};
use std::collections::BTreeSet;

/// The order in which resonators are processed by Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResonatorOrder {
    /// Netlist id order (the paper's `for e ∈ E`).
    #[default]
    Id,
    /// Shortest endpoint-to-endpoint distance first; compact resonators claim their
    /// space before long ones have to route around them (used by the ablation bench).
    EndpointDistance,
}

/// The integration-aware resonator legalizer (Algorithm 1).
///
/// Besides integration (keeping each resonator a single cluster), bin selection is
/// *frequency-aware*: a candidate bin that abuts already-placed blocks of a **different**
/// resonator whose frequency is within the detuning threshold is charged a penalty, so
/// near-resonant resonators end up separated by at least one empty bin whenever space
/// allows — directly reducing the `P_h` hotspot metric.
///
/// # Example
///
/// ```
/// use qgdp::prelude::*;
/// use qgdp::{QuantumQubitLegalizer, ResonatorLegalizer};
/// use qgdp_legalize::{CellLegalizer as _, QubitLegalizer as _};
///
/// let topology = StandardTopology::Grid.build();
/// let netlist = topology.to_netlist(ComponentGeometry::default(), NetModel::Pseudo)?;
/// let gp = GlobalPlacer::new(GlobalPlacerConfig::default().with_iterations(40))
///     .place(&netlist, &topology);
/// let qubits = QuantumQubitLegalizer::new().legalize_qubits(&netlist, &gp.die, &gp.placement)?;
/// let legal = ResonatorLegalizer::new().legalize_cells(&netlist, &gp.die, &qubits)?;
/// assert_eq!(legal.count_overlaps(&netlist), 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ResonatorLegalizer {
    order: ResonatorOrder,
    /// Penalty (in wire-block units of distance) per adjacent near-resonant foreign
    /// block when scoring a candidate bin.
    frequency_penalty_cells: f64,
    /// Detuning threshold (GHz) below which two resonators count as near-resonant.
    detuning_threshold_ghz: f64,
    /// Radius (in bins) of the candidate neighbourhood examined around the target
    /// position when the adjacent-available set is empty.
    search_radius_bins: usize,
}

impl Default for ResonatorLegalizer {
    fn default() -> Self {
        ResonatorLegalizer::new()
    }
}

impl ResonatorLegalizer {
    /// Creates the legalizer with the default (netlist id) processing order.
    #[must_use]
    pub fn new() -> Self {
        ResonatorLegalizer {
            order: ResonatorOrder::Id,
            frequency_penalty_cells: 3.0,
            detuning_threshold_ghz: 0.06,
            search_radius_bins: 3,
        }
    }

    /// Overrides the resonator processing order.
    #[must_use]
    pub fn with_order(mut self, order: ResonatorOrder) -> Self {
        self.order = order;
        self
    }

    /// Overrides the frequency-adjacency penalty (in wire-block units); zero disables
    /// frequency awareness entirely (used by the ablation bench).
    #[must_use]
    pub fn with_frequency_penalty(mut self, cells: f64) -> Self {
        self.frequency_penalty_cells = cells;
        self
    }

    /// The processing order in use.
    #[must_use]
    pub fn order(&self) -> ResonatorOrder {
        self.order
    }

    /// Scores a candidate bin for a block of `resonator`: Euclidean displacement from
    /// the block's GP position plus the frequency-adjacency penalty.
    fn bin_cost(
        &self,
        netlist: &QuantumNetlist,
        grid: &BinGrid,
        occupied_by: &std::collections::HashMap<BinId, ResonatorId>,
        resonator: ResonatorId,
        bin: BinId,
        target: qgdp_geometry::Point,
    ) -> f64 {
        let lb = netlist.geometry().wire_block_size;
        let mut cost = grid.bin_center(bin).distance(target);
        if self.frequency_penalty_cells > 0.0 {
            let own_freq = netlist.resonator(resonator).frequency();
            for n in grid.neighbors4(bin) {
                if let Some(&other) = occupied_by.get(&n) {
                    if other != resonator
                        && netlist.resonator(other).frequency().detuning(own_freq)
                            <= self.detuning_threshold_ghz
                    {
                        cost += self.frequency_penalty_cells * lb;
                    }
                }
            }
        }
        cost
    }

    fn resonator_order(&self, netlist: &QuantumNetlist, placement: &Placement) -> Vec<ResonatorId> {
        let mut order: Vec<ResonatorId> = netlist.resonator_ids().collect();
        if self.order == ResonatorOrder::EndpointDistance {
            order.sort_by(|&a, &b| {
                let d = |r: ResonatorId| {
                    let (qa, qb) = netlist.resonator(r).endpoints();
                    placement.qubit(qa).distance(placement.qubit(qb))
                };
                d(a).total_cmp(&d(b)).then(a.cmp(&b))
            });
        }
        order
    }
}

impl CellLegalizer for ResonatorLegalizer {
    fn name(&self) -> &'static str {
        "qgdp-resonator-lg"
    }

    fn legalize_cells(
        &self,
        netlist: &QuantumNetlist,
        die: &Rect,
        placement: &Placement,
    ) -> Result<Placement, LegalizeError> {
        let lb = netlist.geometry().wire_block_size;

        // B ← all bins; B_f ← bins under fixed qubits; B_a ← B − B_f.
        let mut grid = BinGrid::new(die, lb);
        for q in netlist.qubit_ids() {
            grid.block_rect(&netlist.qubit(q).rect_at(placement.qubit(q)));
        }
        let mut available = grid.free_index();
        let mut occupied_by: std::collections::HashMap<BinId, ResonatorId> =
            std::collections::HashMap::new();

        let mut out = placement.clone();
        for r in self.resonator_order(netlist, placement) {
            // B_aa ← ∅ for every new resonator.
            let mut adjacent_available: BTreeSet<BinId> = BTreeSet::new();
            for &s in netlist.resonator(r).segments() {
                let target = placement.segment(s);
                // Candidate bins: the adjacent-available set when non-empty, otherwise
                // the free bins in a small neighbourhood of the target (plus the
                // globally nearest free bin as a fallback).
                let mut candidates: Vec<BinId> = if adjacent_available.is_empty() {
                    let mut c: Vec<BinId> = Vec::new();
                    if let Some(center) = grid.bin_at(target) {
                        let (col, row) = grid.col_row(center);
                        let radius = self.search_radius_bins as i64;
                        for dr in -radius..=radius {
                            for dc in -radius..=radius {
                                let (nc, nr) = (col as i64 + dc, row as i64 + dr);
                                if nc >= 0 && nr >= 0 {
                                    if let Some(b) = grid.bin_id(nc as usize, nr as usize) {
                                        if grid.state(b) == BinState::Free {
                                            c.push(b);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    if let Some(nearest) = available.nearest_free(target) {
                        if !c.contains(&nearest) {
                            c.push(nearest);
                        }
                    }
                    c
                } else {
                    adjacent_available.iter().copied().collect()
                };
                if candidates.is_empty() {
                    if let Some(nearest) = available.nearest_free(target) {
                        candidates.push(nearest);
                    }
                }
                let chosen = candidates
                    .into_iter()
                    .map(|b| (self.bin_cost(netlist, &grid, &occupied_by, r, b, target), b))
                    .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                    .map(|(_, b)| b);
                let Some(bin) = chosen else {
                    return Err(LegalizeError::NoSpace {
                        component: format!("wire block {s} of resonator {r}"),
                    });
                };
                // Legalize the segment and update B_a / B_aa.
                out.set_segment(s, grid.bin_center(bin));
                grid.set_state(bin, BinState::Occupied);
                occupied_by.insert(bin, r);
                available.remove(bin);
                adjacent_available.remove(&bin);
                for n in grid.neighbors4(bin) {
                    if grid.state(n) == BinState::Free {
                        adjacent_available.insert(n);
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QuantumQubitLegalizer;
    use qgdp_legalize::{is_legal, QubitLegalizer as _};
    use qgdp_netlist::{ClusterReport, ComponentGeometry, NetModel, QubitId};
    use qgdp_placer::{GlobalPlacer, GlobalPlacerConfig};
    use qgdp_topology::StandardTopology;

    /// Runs GP + qubit LG + resonator LG for a standard topology.
    fn legalize(topology: StandardTopology) -> (QuantumNetlist, Rect, Placement, Placement) {
        let topo = topology.build();
        let netlist = topo
            .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
            .unwrap();
        let gp = GlobalPlacer::new(GlobalPlacerConfig::default().with_iterations(50))
            .place(&netlist, &topo);
        let qubits = QuantumQubitLegalizer::new()
            .legalize_qubits(&netlist, &gp.die, &gp.placement)
            .unwrap();
        let legal = ResonatorLegalizer::new()
            .legalize_cells(&netlist, &gp.die, &qubits)
            .unwrap();
        (netlist, gp.die, gp.placement, legal)
    }

    #[test]
    fn produces_fully_legal_layout_on_grid() {
        let (netlist, die, _, legal) = legalize(StandardTopology::Grid);
        assert!(is_legal(&netlist, &die, &legal));
    }

    #[test]
    fn produces_fully_legal_layout_on_falcon() {
        let (netlist, die, _, legal) = legalize(StandardTopology::Falcon);
        assert!(is_legal(&netlist, &die, &legal));
    }

    #[test]
    fn qubits_are_untouched_by_resonator_legalization() {
        let (netlist, die, gp, _) = legalize(StandardTopology::Grid);
        let qubits = QuantumQubitLegalizer::new()
            .legalize_qubits(&netlist, &die, &gp)
            .unwrap();
        let legal = ResonatorLegalizer::new()
            .legalize_cells(&netlist, &die, &qubits)
            .unwrap();
        for q in netlist.qubit_ids() {
            assert_eq!(legal.qubit(q), qubits.qubit(q));
        }
    }

    #[test]
    fn most_resonators_end_up_unified() {
        let (netlist, _, _, legal) = legalize(StandardTopology::Grid);
        let report = ClusterReport::analyze(&netlist, &legal);
        let (unified, total) = report.integration_ratio();
        assert!(
            unified * 10 >= total * 8,
            "only {unified}/{total} resonators unified — integration-awareness is broken"
        );
    }

    #[test]
    fn blocks_land_on_bin_centres() {
        let (netlist, die, _, legal) = legalize(StandardTopology::Aspen11);
        let lb = netlist.geometry().wire_block_size;
        for s in netlist.segment_ids() {
            let p = legal.segment(s);
            let fx = (p.x - die.left() - lb * 0.5) / lb;
            let fy = (p.y - die.bottom() - lb * 0.5) / lb;
            assert!((fx - fx.round()).abs() < 1e-6, "block {s} off-grid in x");
            assert!((fy - fy.round()).abs() < 1e-6, "block {s} off-grid in y");
        }
    }

    #[test]
    fn more_unified_than_tetris_baseline() {
        use qgdp_legalize::TetrisLegalizer;
        let topo = StandardTopology::Xtree.build();
        let netlist = topo
            .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
            .unwrap();
        let gp = GlobalPlacer::new(GlobalPlacerConfig::default().with_iterations(50))
            .place(&netlist, &topo);
        let qubits = QuantumQubitLegalizer::new()
            .legalize_qubits(&netlist, &gp.die, &gp.placement)
            .unwrap();
        let ours = ResonatorLegalizer::new()
            .legalize_cells(&netlist, &gp.die, &qubits)
            .unwrap();
        let tetris = TetrisLegalizer::new()
            .legalize_cells(&netlist, &gp.die, &qubits)
            .unwrap();
        let ours_clusters = ClusterReport::analyze(&netlist, &ours).total_clusters();
        let tetris_clusters = ClusterReport::analyze(&netlist, &tetris).total_clusters();
        assert!(
            ours_clusters <= tetris_clusters,
            "qGDP produced {ours_clusters} clusters vs Tetris {tetris_clusters}"
        );
    }

    #[test]
    fn endpoint_distance_order_is_also_legal() {
        let topo = StandardTopology::Grid.build();
        let netlist = topo
            .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
            .unwrap();
        let gp = GlobalPlacer::new(GlobalPlacerConfig::default().with_iterations(40))
            .place(&netlist, &topo);
        let qubits = QuantumQubitLegalizer::new()
            .legalize_qubits(&netlist, &gp.die, &gp.placement)
            .unwrap();
        let lg = ResonatorLegalizer::new().with_order(ResonatorOrder::EndpointDistance);
        assert_eq!(lg.order(), ResonatorOrder::EndpointDistance);
        let legal = lg.legalize_cells(&netlist, &gp.die, &qubits).unwrap();
        assert!(is_legal(&netlist, &gp.die, &legal));
    }

    #[test]
    fn fails_cleanly_when_the_die_cannot_hold_the_blocks() {
        let netlist = qgdp_netlist::NetlistBuilder::new(ComponentGeometry::default())
            .qubits(2)
            .couple(0, 1)
            .build()
            .unwrap();
        let die = Rect::from_lower_left(qgdp_geometry::Point::ORIGIN, 100.0, 50.0);
        let mut p = Placement::new(&netlist);
        p.set_qubit(QubitId(0), qgdp_geometry::Point::new(25.0, 25.0));
        p.set_qubit(QubitId(1), qgdp_geometry::Point::new(75.0, 25.0));
        let result = ResonatorLegalizer::new().legalize_cells(&netlist, &die, &p);
        assert!(matches!(result, Err(LegalizeError::NoSpace { .. })));
    }
}
