//! The error type of the end-to-end qGDP flow.

use qgdp_legalize::LegalizeError;
use qgdp_netlist::NetlistError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the qGDP pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// Building the netlist from the topology failed.
    Netlist(NetlistError),
    /// A legalization stage failed.
    Legalize(LegalizeError),
    /// The detailed placer was asked to run without a legalized layout.
    MissingLegalization,
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Netlist(e) => write!(f, "netlist construction failed: {e}"),
            FlowError::Legalize(e) => write!(f, "legalization failed: {e}"),
            FlowError::MissingLegalization => {
                write!(f, "detailed placement requires a legalized layout")
            }
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Netlist(e) => Some(e),
            FlowError::Legalize(e) => Some(e),
            FlowError::MissingLegalization => None,
        }
    }
}

impl From<NetlistError> for FlowError {
    fn from(value: NetlistError) -> Self {
        FlowError::Netlist(value)
    }
}

impl From<LegalizeError> for FlowError {
    fn from(value: LegalizeError) -> Self {
        FlowError::Legalize(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: FlowError = NetlistError::Empty.into();
        assert!(e.to_string().contains("netlist"));
        assert!(e.source().is_some());
        let e: FlowError = LegalizeError::NoSpace {
            component: "q1".into(),
        }
        .into();
        assert!(e.to_string().contains("legalization"));
        assert!(FlowError::MissingLegalization.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlowError>();
    }
}
