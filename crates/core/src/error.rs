//! The error type of the end-to-end qGDP flow.
//!
//! Flow errors carry the **context of the failure**, not just its cause: a
//! legalization failure names the [`Stage`] that raised it, the
//! [`LegalizationStrategy`] being legalized, the batch request index when it
//! happened inside a [`Session::try_run_batch`](crate::Session::try_run_batch)
//! fan-out, and the [`StageEvent`] trace of every stage that *completed* before
//! the failure.  A worker panic contained by the batch engine surfaces as
//! [`FlowError::Worker`] with the panic payload's message, so one poisoned
//! request can be diagnosed without losing its siblings.

use crate::artifact::{Stage, StageEvent};
use crate::strategy::LegalizationStrategy;
use qgdp_legalize::LegalizeError;
use qgdp_netlist::NetlistError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the qGDP pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// Building the netlist from the topology failed.
    Netlist(NetlistError),
    /// A legalization stage failed.
    Legalize {
        /// The underlying legalizer failure.
        source: LegalizeError,
        /// The pipeline stage that raised the error.
        stage: Stage,
        /// The strategy whose legalizer failed.
        strategy: LegalizationStrategy,
        /// The batch request index, when the failure happened inside a
        /// [`Session::try_run_batch`](crate::Session::try_run_batch) fan-out.
        request: Option<usize>,
        /// Trace of every stage that completed before the failing one.
        events: Vec<StageEvent>,
    },
    /// A batch worker panicked; the unwind was contained to its request
    /// ([`qgdp_metrics::parallel_try_map`]) instead of taking down the pool.
    Worker {
        /// The stage the worker was executing when it panicked.
        stage: Stage,
        /// The panic payload, downcast to a message where possible.
        message: String,
        /// The strategy of the poisoned request, when known.
        strategy: Option<LegalizationStrategy>,
        /// The batch request index of the poisoned request.
        request: Option<usize>,
    },
    /// The detailed placer was asked to run without a legalized layout.
    MissingLegalization,
}

impl FlowError {
    /// The pipeline stage the error was raised in, when known.
    #[must_use]
    pub fn stage(&self) -> Option<Stage> {
        match self {
            FlowError::Legalize { stage, .. } | FlowError::Worker { stage, .. } => Some(*stage),
            FlowError::Netlist(_) | FlowError::MissingLegalization => None,
        }
    }

    /// The legalization strategy of the failing flow, when known.
    #[must_use]
    pub fn strategy(&self) -> Option<LegalizationStrategy> {
        match self {
            FlowError::Legalize { strategy, .. } => Some(*strategy),
            FlowError::Worker { strategy, .. } => *strategy,
            FlowError::Netlist(_) | FlowError::MissingLegalization => None,
        }
    }

    /// The batch request index of the failing request, when the error came out of
    /// a batch fan-out.
    #[must_use]
    pub fn request(&self) -> Option<usize> {
        match self {
            FlowError::Legalize { request, .. } | FlowError::Worker { request, .. } => *request,
            FlowError::Netlist(_) | FlowError::MissingLegalization => None,
        }
    }

    /// The [`StageEvent`] trace of every stage that completed before the failure
    /// (empty for errors that carry no trace).
    #[must_use]
    pub fn events(&self) -> &[StageEvent] {
        match self {
            FlowError::Legalize { events, .. } => events,
            _ => &[],
        }
    }

    /// Returns the error with its batch request index set — the batch engine tags
    /// each per-request error with the request it poisoned.
    #[must_use]
    pub(crate) fn with_request(mut self, index: usize) -> Self {
        match &mut self {
            FlowError::Legalize { request, .. } | FlowError::Worker { request, .. } => {
                *request = Some(index);
            }
            FlowError::Netlist(_) | FlowError::MissingLegalization => {}
        }
        self
    }
}

/// Formats the shared `for <strategy> (request N)` context suffix.
fn write_context(
    f: &mut fmt::Formatter<'_>,
    strategy: Option<LegalizationStrategy>,
    request: Option<usize>,
) -> fmt::Result {
    if let Some(strategy) = strategy {
        write!(f, " for {strategy}")?;
    }
    if let Some(request) = request {
        write!(f, " (request {request})")?;
    }
    Ok(())
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Netlist(e) => write!(f, "netlist construction failed: {e}"),
            FlowError::Legalize {
                source,
                stage,
                strategy,
                request,
                ..
            } => {
                write!(f, "legalization failed at {stage}")?;
                write_context(f, Some(*strategy), *request)?;
                write!(f, ": {source}")
            }
            FlowError::Worker {
                stage,
                message,
                strategy,
                request,
            } => {
                write!(f, "worker panicked at {stage}")?;
                write_context(f, *strategy, *request)?;
                write!(f, ": {message}")
            }
            FlowError::MissingLegalization => {
                write!(f, "detailed placement requires a legalized layout")
            }
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Netlist(e) => Some(e),
            FlowError::Legalize { source, .. } => Some(source),
            FlowError::Worker { .. } | FlowError::MissingLegalization => None,
        }
    }
}

impl From<NetlistError> for FlowError {
    fn from(value: NetlistError) -> Self {
        FlowError::Netlist(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn legalize_error() -> FlowError {
        FlowError::Legalize {
            source: LegalizeError::NoSpace {
                component: "q1".into(),
            },
            stage: Stage::QubitLegalization,
            strategy: LegalizationStrategy::Qgdp,
            request: None,
            events: vec![StageEvent {
                stage: Stage::GlobalPlacement,
                duration: Duration::from_millis(5),
            }],
        }
    }

    #[test]
    fn display_and_source() {
        let e: FlowError = NetlistError::Empty.into();
        assert!(e.to_string().contains("netlist"));
        assert!(e.source().is_some());
        let e = legalize_error();
        assert!(e.to_string().contains("legalization failed"));
        assert!(e.to_string().contains("qubit-legalization"));
        assert!(e.to_string().contains("qGDP-LG"));
        assert!(e.source().is_some());
        assert!(FlowError::MissingLegalization.source().is_none());
    }

    #[test]
    fn context_accessors_expose_stage_strategy_request_and_trace() {
        let e = legalize_error();
        assert_eq!(e.stage(), Some(Stage::QubitLegalization));
        assert_eq!(e.strategy(), Some(LegalizationStrategy::Qgdp));
        assert_eq!(e.request(), None);
        assert_eq!(e.events().len(), 1);
        assert_eq!(e.events()[0].stage, Stage::GlobalPlacement);

        let tagged = e.with_request(3);
        assert_eq!(tagged.request(), Some(3));
        assert!(tagged.to_string().contains("(request 3)"));

        let plain: FlowError = NetlistError::Empty.into();
        assert_eq!(plain.stage(), None);
        assert_eq!(plain.strategy(), None);
        assert_eq!(plain.clone().with_request(7).request(), None);
        assert!(plain.events().is_empty());
    }

    #[test]
    fn worker_variant_reports_panic_context() {
        let e = FlowError::Worker {
            stage: Stage::DetailedPlacement,
            message: "injected fault".into(),
            strategy: Some(LegalizationStrategy::Tetris),
            request: Some(4),
        };
        assert!(e.to_string().contains("worker panicked"));
        assert!(e.to_string().contains("detailed-placement"));
        assert!(e.to_string().contains("Tetris"));
        assert!(e.to_string().contains("(request 4)"));
        assert!(e.to_string().contains("injected fault"));
        assert!(e.source().is_none());
        assert_eq!(e.stage(), Some(Stage::DetailedPlacement));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlowError>();
    }
}
