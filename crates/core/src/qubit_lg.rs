//! Quantum-aware qubit legalization (paper §III-C).
//!
//! Qubits are treated as macros.  The legalizer enforces, in addition to the classical
//! non-overlap and border constraints, a **minimum inter-qubit spacing of one standard
//! cell** (one wire-block size): since resonators operate far above the qubit band,
//! a wire block placed between two qubits isolates them, so reserving that gap during
//! qubit legalization lets the global placer use less padding without increasing
//! crosstalk risk.  The spacing starts at the configured value and is relaxed greedily
//! (halved) only when the constraint system cannot be satisfied inside the die, exactly
//! the "start with stringent constraints and relax them only when necessary" loop the
//! paper describes.  Displacement from the GP positions is minimised throughout
//! (Eq. 5).
//!
//! The underlying engine ([`legalize_macros`]) detects spacing violations through a
//! spatial index of spacing-inflated rectangles, so each relaxation step is
//! near-linear in the number of qubits; the retained reference path
//! ([`QuantumQubitLegalizer::legalize_with_spacing_reference`]) replays the same
//! loop on the O(n²) engine and is bit-identical by construction.

use qgdp_geometry::{Point, Rect};
use qgdp_legalize::{legalize_macros, legalize_macros_reference, LegalizeError, QubitLegalizer};
use qgdp_netlist::{Placement, QuantumNetlist};

/// The macro-legalization engine signature shared by the indexed hot path and the
/// retained O(n²) reference.
type MacroEngine = fn(&[Rect], &Rect, f64) -> Result<Vec<Point>, LegalizeError>;

/// The quantum-aware qubit legalizer.
///
/// # Example
///
/// ```
/// use qgdp::prelude::*;
/// use qgdp::QuantumQubitLegalizer;
/// use qgdp_legalize::QubitLegalizer as _;
///
/// let topology = StandardTopology::Grid.build();
/// let netlist = topology.to_netlist(ComponentGeometry::default(), NetModel::Pseudo)?;
/// let gp = GlobalPlacer::new(GlobalPlacerConfig::default().with_iterations(40))
///     .place(&netlist, &topology);
/// let legal = QuantumQubitLegalizer::new().legalize_qubits(&netlist, &gp.die, &gp.placement)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct QuantumQubitLegalizer {
    /// Number of greedy relaxation steps allowed before giving up on extra spacing.
    max_relaxations: usize,
}

impl QuantumQubitLegalizer {
    /// Creates the legalizer with the default relaxation budget (4 steps).
    #[must_use]
    pub fn new() -> Self {
        QuantumQubitLegalizer { max_relaxations: 4 }
    }

    /// Overrides the relaxation budget.
    #[must_use]
    pub fn with_max_relaxations(mut self, max_relaxations: usize) -> Self {
        self.max_relaxations = max_relaxations;
        self
    }

    /// Legalizes the qubits and also reports the spacing that was finally achieved.
    ///
    /// Each relaxation step re-runs the shared macro engine, so with the default
    /// budget the spatial-index speedup of [`legalize_macros`] compounds up to five
    /// times per call.
    ///
    /// # Errors
    ///
    /// Returns a [`LegalizeError`] when even zero extra spacing cannot be satisfied.
    pub fn legalize_with_spacing(
        &self,
        netlist: &QuantumNetlist,
        die: &Rect,
        gp: &Placement,
    ) -> Result<(Placement, f64), LegalizeError> {
        self.relaxation_loop(netlist, die, gp, legalize_macros)
    }

    /// [`legalize_with_spacing`](QuantumQubitLegalizer::legalize_with_spacing) driven
    /// by the retained O(n²) engine
    /// ([`legalize_macros_reference`]) — the executable
    /// specification of the qubit-LG path.  Equivalence tests and the
    /// `bench_legalize` record assert its output is bit-identical to the indexed
    /// hot path.
    ///
    /// # Errors
    ///
    /// Same contract as
    /// [`legalize_with_spacing`](QuantumQubitLegalizer::legalize_with_spacing).
    pub fn legalize_with_spacing_reference(
        &self,
        netlist: &QuantumNetlist,
        die: &Rect,
        gp: &Placement,
    ) -> Result<(Placement, f64), LegalizeError> {
        self.relaxation_loop(netlist, die, gp, legalize_macros_reference)
    }

    /// The greedy relaxation loop shared by the hot path and the reference path;
    /// `engine` is the macro-legalization implementation to drive.
    fn relaxation_loop(
        &self,
        netlist: &QuantumNetlist,
        die: &Rect,
        gp: &Placement,
        engine: MacroEngine,
    ) -> Result<(Placement, f64), LegalizeError> {
        let desired: Vec<Rect> = netlist
            .qubit_ids()
            .map(|q| netlist.qubit(q).rect_at(gp.qubit(q)))
            .collect();
        let mut spacing = netlist.geometry().min_qubit_spacing();
        let mut last_err: Option<LegalizeError> = None;
        for step in 0..=self.max_relaxations {
            match engine(&desired, die, spacing) {
                Ok(centers) => {
                    let mut out = gp.clone();
                    for (q, c) in netlist.qubit_ids().zip(centers) {
                        out.set_qubit(q, c);
                    }
                    return Ok((out, spacing));
                }
                Err(err) => {
                    last_err = Some(err);
                    // Greedy relaxation: halve the spacing; on the last step drop it
                    // entirely so the result is at least classically legal.
                    spacing = if step + 1 == self.max_relaxations {
                        0.0
                    } else {
                        spacing * 0.5
                    };
                }
            }
        }
        Err(last_err.unwrap_or(LegalizeError::NoSpace {
            component: "qubits".into(),
        }))
    }
}

impl Default for QuantumQubitLegalizer {
    fn default() -> Self {
        QuantumQubitLegalizer::new()
    }
}

impl QubitLegalizer for QuantumQubitLegalizer {
    fn name(&self) -> &'static str {
        "q-macro-lg"
    }

    fn legalize_qubits(
        &self,
        netlist: &QuantumNetlist,
        die: &Rect,
        gp: &Placement,
    ) -> Result<Placement, LegalizeError> {
        self.legalize_with_spacing(netlist, die, gp).map(|(p, _)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp_geometry::Point;
    use qgdp_netlist::{ComponentGeometry, NetlistBuilder, QubitId};

    fn path_netlist(n: usize) -> QuantumNetlist {
        NetlistBuilder::new(ComponentGeometry::default())
            .qubits(n)
            .couple_all((0..n - 1).map(|i| (i, i + 1)))
            .build()
            .unwrap()
    }

    fn qubit_rects(netlist: &QuantumNetlist, p: &Placement) -> Vec<Rect> {
        netlist
            .qubit_ids()
            .map(|q| netlist.qubit(q).rect_at(p.qubit(q)))
            .collect()
    }

    fn min_gap(rects: &[Rect]) -> f64 {
        let mut min = f64::INFINITY;
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                min = min.min(rects[i].gap(&rects[j]));
            }
        }
        min
    }

    #[test]
    fn enforces_one_cell_spacing_when_space_allows() {
        let netlist = path_netlist(4);
        let die = Rect::from_lower_left(Point::ORIGIN, 600.0, 600.0);
        let mut gp = Placement::new(&netlist);
        // Overlapping clump of qubits.
        for q in netlist.qubit_ids() {
            gp.set_qubit(q, Point::new(300.0 + 8.0 * q.index() as f64, 300.0));
        }
        let (out, spacing) = QuantumQubitLegalizer::new()
            .legalize_with_spacing(&netlist, &die, &gp)
            .unwrap();
        assert_eq!(spacing, netlist.geometry().min_qubit_spacing());
        let rects = qubit_rects(&netlist, &out);
        assert!(min_gap(&rects) >= spacing - 1e-6);
        for r in &rects {
            assert!(die.contains_rect(r));
        }
    }

    #[test]
    fn relaxes_spacing_on_dense_dies() {
        let netlist = path_netlist(4);
        // Just enough room for the four 40x40 qubits with no extra spacing
        // (4 * 50*50 = 10000 > 90*90=8100? Use 95x95: qubits fit tightly but the
        // one-cell spacing (10 µm) cannot be satisfied everywhere.)
        let die = Rect::from_lower_left(Point::ORIGIN, 95.0, 95.0);
        let mut gp = Placement::new(&netlist);
        for (i, q) in netlist.qubit_ids().enumerate() {
            gp.set_qubit(
                q,
                Point::new(25.0 + 45.0 * (i % 2) as f64, 25.0 + 45.0 * (i / 2) as f64),
            );
        }
        let (out, spacing) = QuantumQubitLegalizer::new()
            .legalize_with_spacing(&netlist, &die, &gp)
            .unwrap();
        assert!(spacing < netlist.geometry().min_qubit_spacing());
        let rects = qubit_rects(&netlist, &out);
        // Still classically legal: no overlaps.
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                assert!(!rects[i].overlaps(&rects[j]));
            }
        }
    }

    #[test]
    fn impossible_die_reports_an_error() {
        let netlist = path_netlist(4);
        let die = Rect::from_lower_left(Point::ORIGIN, 60.0, 60.0);
        let gp = Placement::new(&netlist);
        let result = QuantumQubitLegalizer::new().legalize_with_spacing(&netlist, &die, &gp);
        assert!(result.is_err());
    }

    #[test]
    fn preserves_gp_positions_when_already_legal() {
        let netlist = path_netlist(3);
        let die = Rect::from_lower_left(Point::ORIGIN, 600.0, 600.0);
        let mut gp = Placement::new(&netlist);
        gp.set_qubit(QubitId(0), Point::new(100.0, 100.0));
        gp.set_qubit(QubitId(1), Point::new(200.0, 100.0));
        gp.set_qubit(QubitId(2), Point::new(300.0, 100.0));
        let (out, _) = QuantumQubitLegalizer::new()
            .legalize_with_spacing(&netlist, &die, &gp)
            .unwrap();
        assert!(out.qubit_displacement_from(&gp) < 1e-9);
    }

    #[test]
    fn displacement_stays_small_relative_to_die() {
        let netlist = path_netlist(6);
        let die = Rect::from_lower_left(Point::ORIGIN, 800.0, 800.0);
        let mut gp = Placement::new(&netlist);
        for q in netlist.qubit_ids() {
            gp.set_qubit(q, Point::new(400.0 + 11.0 * q.index() as f64, 400.0));
        }
        let (out, _) = QuantumQubitLegalizer::new()
            .legalize_with_spacing(&netlist, &die, &gp)
            .unwrap();
        let per_qubit = out.qubit_displacement_from(&gp) / 6.0;
        assert!(
            per_qubit < 200.0,
            "average qubit displacement {per_qubit:.1} µm too large"
        );
        // Wire blocks are untouched by qubit legalization.
        for s in netlist.segment_ids() {
            assert_eq!(out.segment(s), gp.segment(s));
        }
    }

    #[test]
    fn trait_name() {
        use qgdp_legalize::QubitLegalizer as _;
        assert_eq!(QuantumQubitLegalizer::new().name(), "q-macro-lg");
    }

    #[test]
    fn reference_relaxation_loop_is_bit_identical() {
        // Same clumped input on both the fast-spacing and the relaxation paths.
        for (n, die_side) in [(4usize, 600.0), (4, 95.0), (6, 800.0)] {
            let netlist = path_netlist(n);
            let die = Rect::from_lower_left(Point::ORIGIN, die_side, die_side);
            let mut gp = Placement::new(&netlist);
            for q in netlist.qubit_ids() {
                gp.set_qubit(
                    q,
                    Point::new(
                        die_side * 0.4 + 9.0 * q.index() as f64,
                        die_side * 0.4 + (q.index() % 2) as f64,
                    ),
                );
            }
            let lg = QuantumQubitLegalizer::new();
            let optimized = lg.legalize_with_spacing(&netlist, &die, &gp);
            let reference = lg.legalize_with_spacing_reference(&netlist, &die, &gp);
            match (optimized, reference) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "core paths diverged (n={n})"),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("core paths disagree on outcome: {a:?} vs {b:?}"),
            }
        }
    }
}
