//! Typed, immutable stage artifacts of the staged [`Session`](crate::Session) pipeline.
//!
//! The paper's flow is explicitly staged — global placement, qubit legalization
//! (§III-C), resonator legalization (§III-D), detailed placement (§III-E) — and each
//! stage here produces a dedicated artifact type:
//!
//! ```text
//! Session ──global_place()──▶ GlobalPlacement ──legalize_qubits(s)──▶ QubitLegalized
//!                                     │                                      │
//!                                     └────────legalize(s)─────────┐  legalize_cells()
//!                                                                  ▼         ▼
//!                                                              CellLegalized ──detail()──▶ Detailed
//! ```
//!
//! Every artifact is a **cheap, forkable handle**: the topology, netlist and stage
//! placements are shared through [`Arc`], so cloning an artifact or deriving five
//! legalizations from one [`GlobalPlacement`] never re-runs or deep-copies an earlier
//! stage.  Metrics are computed **lazily**: the first call to `scan()`, `report()` or
//! a fidelity evaluation runs one [`LayoutScan`] of the stage placement and caches it
//! in the artifact (shared across clones), so callers that only need placements never
//! pay for metrics, and callers that need several metric views of one placement pay
//! for the layout walk exactly once.
//!
//! Wall-clock cost is traced per stage as [`StageEvent`]s ([`CellLegalized::events`]),
//! from which the legacy [`StageTiming`] of the [`FlowResult`] compatibility shim is
//! assembled.

use crate::pipeline::{FlowConfig, FlowResult, StageTiming};
use crate::session::SessionContext;
use crate::{DetailedPlacer, DetailedPlacerConfig, FlowError, LegalizationStrategy};
use qgdp_circuits::{random_mappings, Benchmark};
use qgdp_geometry::Rect;
use qgdp_legalize::is_legal;
use qgdp_metrics::{FidelityEvaluator, LayoutReport, LayoutScan, NoiseModel};
use qgdp_netlist::{Placement, QuantumNetlist};
use qgdp_placer::{GlobalPlacer, GpStats};
use qgdp_topology::Topology;
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The pipeline stages, labelling the trace events artifacts record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Stage {
    /// Force-directed global placement.
    GlobalPlacement,
    /// Qubit (macro) legalization — §III-C, `t_q` of Table II.
    QubitLegalization,
    /// Resonator (wire-block) legalization — §III-D, `t_e` of Table II.
    ResonatorLegalization,
    /// Windowed detailed placement — §III-E.
    DetailedPlacement,
}

impl Stage {
    /// Stable machine-friendly name (used by bench trace records).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::GlobalPlacement => "global-placement",
            Stage::QubitLegalization => "qubit-legalization",
            Stage::ResonatorLegalization => "resonator-legalization",
            Stage::DetailedPlacement => "detailed-placement",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One wall-clock trace event: a pipeline stage and how long it ran.
///
/// Artifacts accumulate the events of every stage that produced them (see
/// [`CellLegalized::events`]); the [`StageTiming`] of the compatibility shim is a
/// projection of these events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageEvent {
    /// Which stage ran.
    pub stage: Stage,
    /// Wall-clock duration of the stage.
    pub duration: Duration,
}

/// Evaluates the Fig. 8 protocol on one layout scan: mean worst-case fidelity of
/// `benchmark` over `mappings` random qubit mappings.
///
/// Taking the (cached) [`LayoutScan`] instead of a raw placement means the
/// violation/crossing walk is shared with the artifact's quality report — the
/// evaluator construction is bit-identical to a from-scratch scan
/// ([`FidelityEvaluator::from_scan`]).
fn benchmark_fidelity(
    ctx: &SessionContext,
    scan: &LayoutScan,
    benchmark: Benchmark,
    mappings: usize,
    noise: &NoiseModel,
    seed: u64,
) -> f64 {
    let circuit = benchmark.circuit();
    let maps = random_mappings(&circuit, &ctx.topology, mappings, seed);
    FidelityEvaluator::from_scan(&ctx.netlist, *noise, scan).mean(&maps)
}

/// The context-free result of one global-placement run.
///
/// This is what [`SessionContext`](crate::session::SessionContext) caches in its
/// `gp_cache`: it deliberately holds **no** `Arc<SessionContext>` (an artifact
/// stored inside the context it points back to would leak as an `Arc` cycle).
/// [`GlobalPlacement::compute`] re-attaches the context to build the public handle.
#[derive(Debug, Clone)]
pub(crate) struct GpData {
    die: Rect,
    placement: Arc<Placement>,
    stats: GpStats,
    event: StageEvent,
    report: Arc<OnceLock<LayoutReport>>,
    scan: Arc<OnceLock<Arc<LayoutScan>>>,
}

impl GpData {
    /// Rebuilds the cache payload from previously-computed outputs (the
    /// snapshot-restore path; see [`crate::Session::restore_global`]).
    pub(crate) fn restored(
        die: Rect,
        placement: Placement,
        stats: GpStats,
        elapsed: Duration,
    ) -> Self {
        GpData {
            die,
            placement: Arc::new(placement),
            stats,
            event: StageEvent {
                stage: Stage::GlobalPlacement,
                duration: elapsed,
            },
            report: Arc::new(OnceLock::new()),
            scan: Arc::new(OnceLock::new()),
        }
    }
}

/// The global-placement artifact: GP positions for every component, the die outline
/// and the placer's quality statistics.
///
/// This is the fork point of the staged pipeline: one `GlobalPlacement` can feed any
/// number of [`legalize`](GlobalPlacement::legalize) calls (the five-strategy matrix
/// of Table II / Figs. 8–9 shares a single GP run), and cloning the artifact only
/// bumps reference counts.
#[derive(Debug, Clone)]
pub struct GlobalPlacement {
    ctx: Arc<SessionContext>,
    die: Rect,
    placement: Arc<Placement>,
    stats: GpStats,
    event: StageEvent,
    report: Arc<OnceLock<LayoutReport>>,
    scan: Arc<OnceLock<Arc<LayoutScan>>>,
}

impl GlobalPlacement {
    /// Returns the (session-cached) global placement for `ctx` as an artifact.
    ///
    /// The placer runs at most once per session: the first call populates the
    /// context's `gp_cache`, every later call clones the cached handles.
    pub(crate) fn compute(ctx: Arc<SessionContext>) -> Self {
        let data = ctx
            .gp_cache
            .get_or_init(|| {
                let start = Instant::now();
                let gp = GlobalPlacer::new(ctx.config.gp).place(&ctx.netlist, &ctx.topology);
                GpData {
                    die: gp.die,
                    placement: Arc::new(gp.placement),
                    stats: gp.stats,
                    event: StageEvent {
                        stage: Stage::GlobalPlacement,
                        duration: start.elapsed(),
                    },
                    report: Arc::new(OnceLock::new()),
                    scan: Arc::new(OnceLock::new()),
                }
            })
            .clone();
        GlobalPlacement {
            ctx,
            die: data.die,
            placement: data.placement,
            stats: data.stats,
            event: data.event,
            report: data.report,
            scan: data.scan,
        }
    }

    /// The device topology the session was built over.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.ctx.topology
    }

    /// The netlist every stage of this session places.
    #[must_use]
    pub fn netlist(&self) -> &QuantumNetlist {
        &self.ctx.netlist
    }

    /// The flow configuration of the owning session.
    #[must_use]
    pub fn config(&self) -> &FlowConfig {
        &self.ctx.config
    }

    /// The die (placement region) every later stage must stay inside.
    #[must_use]
    pub fn die(&self) -> Rect {
        self.die
    }

    /// The GP positions.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The placer's quality statistics (HPWL, overlaps, peak density).
    #[must_use]
    pub fn stats(&self) -> GpStats {
        self.stats
    }

    /// Wall-clock duration of the global-placement stage.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.event.duration
    }

    /// The trace events recorded so far (just the GP stage for this artifact).
    #[must_use]
    pub fn events(&self) -> Vec<StageEvent> {
        vec![self.event]
    }

    /// The one-pass layout scan of the raw global placement (clusters, violations,
    /// crossings), computed lazily on first call and cached — the shared input of
    /// [`GlobalPlacement::report`] and the fidelity evaluations.
    #[must_use]
    pub fn scan(&self) -> &LayoutScan {
        self.scan_arc()
    }

    /// The cached scan as its shared handle (crate-internal; lets bench code hold
    /// the scan past the artifact without re-scanning).
    pub(crate) fn scan_arc(&self) -> &Arc<LayoutScan> {
        self.scan.get_or_init(|| {
            Arc::new(LayoutScan::scan(
                &self.ctx.netlist,
                &self.placement,
                &self.ctx.config.crosstalk,
            ))
        })
    }

    /// Layout metrics of the raw global placement, computed lazily on first call
    /// and cached (shared by every artifact forked from this GP).
    #[must_use]
    pub fn report(&self) -> &LayoutReport {
        self.report
            .get_or_init(|| LayoutReport::from_scan(&self.ctx.netlist, self.scan()))
    }

    /// Runs the qubit-legalization stage of `strategy` on this GP (§III-C).
    ///
    /// This is also where the [`FaultInjection`](crate::pipeline::FaultInjection)
    /// hooks of the session config trigger, so every path that legalizes the
    /// poisoned strategy — single flows and batches alike — observes the fault.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] naming the stage and strategy when the legalizer
    /// cannot find a legal qubit layout; the error carries the
    /// [`StageEvent`] trace of the stages that completed before it.
    ///
    /// # Panics
    ///
    /// Panics when the session config injects a panic into this strategy's
    /// legalization (`fault.panic_in_legalization`).
    pub fn legalize_qubits(
        &self,
        strategy: LegalizationStrategy,
    ) -> Result<QubitLegalized, FlowError> {
        let fault = &self.ctx.config.fault;
        if fault.panic_in_legalization == Some(strategy) {
            panic!("injected fault: panic in {strategy} qubit legalization");
        }
        let start = Instant::now();
        let legalized = if fault.fail_legalization == Some(strategy) {
            Err(qgdp_legalize::LegalizeError::NoSpace {
                component: format!("injected fault: {strategy} qubit legalization"),
            })
        } else {
            strategy.qubit_legalizer().legalize_qubits(
                &self.ctx.netlist,
                &self.die,
                &self.placement,
            )
        };
        let placement = legalized.map_err(|source| FlowError::Legalize {
            source,
            stage: Stage::QubitLegalization,
            strategy,
            request: None,
            events: self.events(),
        })?;
        let event = StageEvent {
            stage: Stage::QubitLegalization,
            duration: start.elapsed(),
        };
        Ok(QubitLegalized {
            gp: self.clone(),
            strategy,
            placement: Arc::new(placement),
            event,
        })
    }

    /// Runs both legalization stages of `strategy` (qubits, then wire blocks).
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] when either legalization stage fails.
    pub fn legalize(&self, strategy: LegalizationStrategy) -> Result<CellLegalized, FlowError> {
        self.legalize_qubits(strategy)?.legalize_cells()
    }

    /// Rebuilds a legalized artifact from previously-computed stage outputs without
    /// re-running either legalization stage — the snapshot-restore path of the
    /// serving layer.
    ///
    /// The placements **must** be the bit-exact outputs of `strategy`'s
    /// legalization stages on this exact GP (same topology, same
    /// [`FlowConfig`] stage prefix); the content identity of
    /// [`crate::ArtifactKey`] is what guarantees this at the call sites.  Lazy
    /// metrics (scan, report) are recomputed on demand and are bit-identical to a
    /// live run's by determinism of the scan.
    #[must_use]
    pub fn restore_legalized(
        &self,
        strategy: LegalizationStrategy,
        qubit_placement: Placement,
        qubit_elapsed: Duration,
        cell_placement: Placement,
        cell_elapsed: Duration,
    ) -> CellLegalized {
        let qubits = QubitLegalized {
            gp: self.clone(),
            strategy,
            placement: Arc::new(qubit_placement),
            event: StageEvent {
                stage: Stage::QubitLegalization,
                duration: qubit_elapsed,
            },
        };
        CellLegalized {
            qubits,
            placement: Arc::new(cell_placement),
            event: StageEvent {
                stage: Stage::ResonatorLegalization,
                duration: cell_elapsed,
            },
            report: Arc::new(OnceLock::new()),
            scan: Arc::new(OnceLock::new()),
        }
    }
}

/// The qubit-legalization artifact (§III-C): qubits at legal, spacing-respecting
/// positions; wire blocks still at their GP positions.
#[derive(Debug, Clone)]
pub struct QubitLegalized {
    gp: GlobalPlacement,
    strategy: LegalizationStrategy,
    placement: Arc<Placement>,
    event: StageEvent,
}

impl QubitLegalized {
    /// The global-placement artifact this stage was derived from.
    #[must_use]
    pub fn global(&self) -> &GlobalPlacement {
        &self.gp
    }

    /// The legalization strategy that produced this artifact.
    #[must_use]
    pub fn strategy(&self) -> LegalizationStrategy {
        self.strategy
    }

    /// The netlist every stage of this session places.
    #[must_use]
    pub fn netlist(&self) -> &QuantumNetlist {
        self.gp.netlist()
    }

    /// The die outline.
    #[must_use]
    pub fn die(&self) -> Rect {
        self.gp.die()
    }

    /// Positions after qubit legalization (wire blocks untouched).
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Wall-clock duration of the qubit-legalization stage alone (`t_q` of Table II).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.event.duration
    }

    /// The trace events of every stage up to and including this one.
    #[must_use]
    pub fn events(&self) -> Vec<StageEvent> {
        let mut events = self.gp.events();
        events.push(self.event);
        events
    }

    /// Runs the wire-block (resonator) legalization stage of the strategy (§III-D).
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] naming the stage and strategy when the cell
    /// legalizer cannot find a legal layout; the error carries the [`StageEvent`]
    /// trace of the stages that completed before it (GP and qubit legalization).
    pub fn legalize_cells(&self) -> Result<CellLegalized, FlowError> {
        let start = Instant::now();
        let placement = self
            .strategy
            .cell_legalizer()
            .legalize_cells(self.netlist(), &self.gp.die, &self.placement)
            .map_err(|source| FlowError::Legalize {
                source,
                stage: Stage::ResonatorLegalization,
                strategy: self.strategy,
                request: None,
                events: self.events(),
            })?;
        let event = StageEvent {
            stage: Stage::ResonatorLegalization,
            duration: start.elapsed(),
        };
        Ok(CellLegalized {
            qubits: self.clone(),
            placement: Arc::new(placement),
            event,
            report: Arc::new(OnceLock::new()),
            scan: Arc::new(OnceLock::new()),
        })
    }
}

/// The fully-legalized artifact (§III-C + §III-D): every component at a legal
/// position.  This is the qGDP-LG result for [`LegalizationStrategy::Qgdp`].
///
/// The artifact can be forked into any number of detailed placements
/// ([`detail_with`](CellLegalized::detail_with)) without re-running legalization.
#[derive(Debug, Clone)]
pub struct CellLegalized {
    qubits: QubitLegalized,
    placement: Arc<Placement>,
    event: StageEvent,
    report: Arc<OnceLock<LayoutReport>>,
    scan: Arc<OnceLock<Arc<LayoutScan>>>,
}

impl CellLegalized {
    /// The global-placement artifact at the root of this derivation.
    #[must_use]
    pub fn global(&self) -> &GlobalPlacement {
        self.qubits.global()
    }

    /// The intermediate qubit-legalization artifact.
    #[must_use]
    pub fn qubit_stage(&self) -> &QubitLegalized {
        &self.qubits
    }

    /// The legalization strategy that produced this artifact.
    #[must_use]
    pub fn strategy(&self) -> LegalizationStrategy {
        self.qubits.strategy
    }

    /// The device topology the session was built over.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.global().topology()
    }

    /// The netlist every stage of this session places.
    #[must_use]
    pub fn netlist(&self) -> &QuantumNetlist {
        self.qubits.netlist()
    }

    /// The flow configuration of the owning session.
    #[must_use]
    pub fn config(&self) -> &FlowConfig {
        self.global().config()
    }

    /// The die outline.
    #[must_use]
    pub fn die(&self) -> Rect {
        self.qubits.die()
    }

    /// The legalized positions.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Wall-clock duration of the resonator-legalization stage alone (`t_e` of
    /// Table II).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.event.duration
    }

    /// The trace events of every stage up to and including this one.
    #[must_use]
    pub fn events(&self) -> Vec<StageEvent> {
        let mut events = self.qubits.events();
        events.push(self.event);
        events
    }

    /// The per-stage timings as the legacy [`StageTiming`] (no detailed placement).
    #[must_use]
    pub fn timing(&self) -> StageTiming {
        StageTiming {
            global_placement: self.global().elapsed(),
            qubit_legalization: self.qubits.elapsed(),
            resonator_legalization: self.event.duration,
            detailed_placement: None,
        }
    }

    /// The one-pass layout scan of the legalized layout, computed lazily on first
    /// call and cached (shared across clones) — one scan feeds both
    /// [`CellLegalized::report`] and [`CellLegalized::mean_benchmark_fidelity`].
    #[must_use]
    pub fn scan(&self) -> &LayoutScan {
        self.scan_arc()
    }

    pub(crate) fn scan_arc(&self) -> &Arc<LayoutScan> {
        let gp = &self.qubits.gp;
        self.scan.get_or_init(|| {
            Arc::new(LayoutScan::scan(
                gp.netlist(),
                &self.placement,
                &gp.config().crosstalk,
            ))
        })
    }

    /// Layout metrics of the legalized layout, computed lazily on first call and
    /// cached (shared across clones of this artifact).
    #[must_use]
    pub fn report(&self) -> &LayoutReport {
        self.report
            .get_or_init(|| LayoutReport::from_scan(self.netlist(), self.scan()))
    }

    /// Returns `true` if the layout is fully legal (inside the die, no overlaps).
    #[must_use]
    pub fn is_legal(&self) -> bool {
        is_legal(self.netlist(), &self.die(), &self.placement)
    }

    /// Mean worst-case program fidelity of `benchmark` on this layout, averaged over
    /// `mappings` random qubit mappings (the Fig. 8 protocol).
    #[must_use]
    pub fn mean_benchmark_fidelity(
        &self,
        benchmark: Benchmark,
        mappings: usize,
        noise: &NoiseModel,
        seed: u64,
    ) -> f64 {
        benchmark_fidelity(
            &self.qubits.gp.ctx,
            self.scan(),
            benchmark,
            mappings,
            noise,
            seed,
        )
    }

    /// Runs detailed placement (§III-E) with the session's configured
    /// [`DetailedPlacerConfig`].
    #[must_use]
    pub fn detail(&self) -> Detailed {
        self.detail_with(self.config().detail)
    }

    /// Runs detailed placement (§III-E) with an explicit configuration.  One
    /// legalized artifact can be forked into many detailed placements.
    #[must_use]
    pub fn detail_with(&self, config: DetailedPlacerConfig) -> Detailed {
        let start = Instant::now();
        let outcome =
            DetailedPlacer::with_config(config).place(self.netlist(), &self.die(), &self.placement);
        let event = StageEvent {
            stage: Stage::DetailedPlacement,
            duration: start.elapsed(),
        };
        Detailed {
            legalized: self.clone(),
            placement: Arc::new(outcome.placement),
            windows_processed: outcome.windows_processed,
            windows_accepted: outcome.windows_accepted,
            event,
            report: Arc::new(OnceLock::new()),
            scan: Arc::new(OnceLock::new()),
        }
    }

    /// Rebuilds a detailed artifact from a previously-computed refinement without
    /// re-running the detailed placer — the snapshot-restore path of the serving
    /// layer.
    ///
    /// `placement` **must** be the bit-exact output of a detailed-placement run on
    /// this exact legalized layout with the configuration the caller's content
    /// identity ([`crate::ArtifactKey`]) names; lazy metrics are recomputed on
    /// demand, bit-identically to a live run's.
    #[must_use]
    pub fn restore_detailed(
        &self,
        placement: Placement,
        windows_processed: usize,
        windows_accepted: usize,
        elapsed: Duration,
    ) -> Detailed {
        Detailed {
            legalized: self.clone(),
            placement: Arc::new(placement),
            windows_processed,
            windows_accepted,
            event: StageEvent {
                stage: Stage::DetailedPlacement,
                duration: elapsed,
            },
            report: Arc::new(OnceLock::new()),
            scan: Arc::new(OnceLock::new()),
        }
    }

    /// Assembles the legacy eager [`FlowResult`] view of this artifact (no detailed
    /// placement).  Reports are forced; placements are copied out of the shared
    /// handles.  The result is bit-identical to what [`crate::run_flow`] returns for
    /// the same inputs.
    #[must_use]
    pub fn to_flow_result(&self) -> FlowResult {
        let gp = self.global();
        FlowResult {
            topology: Arc::clone(&gp.ctx.topology),
            strategy: self.strategy(),
            netlist: Arc::clone(&gp.ctx.netlist),
            die: self.die(),
            gp_placement: gp.placement().clone(),
            qubit_legalized: self.qubits.placement().clone(),
            legalized: self.placement().clone(),
            detailed: None,
            timing: self.timing(),
            crosstalk: self.config().crosstalk,
            gp_report: gp.report().clone(),
            legalized_report: self.report().clone(),
            detailed_report: None,
        }
    }
}

/// The detailed-placement artifact (§III-E): wire blocks rerouted through windowed
/// maze re-placement; qubits identical to the legalized layout.
#[derive(Debug, Clone)]
pub struct Detailed {
    legalized: CellLegalized,
    placement: Arc<Placement>,
    windows_processed: usize,
    windows_accepted: usize,
    event: StageEvent,
    report: Arc<OnceLock<LayoutReport>>,
    scan: Arc<OnceLock<Arc<LayoutScan>>>,
}

impl Detailed {
    /// The legalized artifact this stage refined.
    #[must_use]
    pub fn legalized(&self) -> &CellLegalized {
        &self.legalized
    }

    /// The global-placement artifact at the root of this derivation.
    #[must_use]
    pub fn global(&self) -> &GlobalPlacement {
        self.legalized.global()
    }

    /// The legalization strategy that produced the input layout.
    #[must_use]
    pub fn strategy(&self) -> LegalizationStrategy {
        self.legalized.strategy()
    }

    /// The netlist every stage of this session places.
    #[must_use]
    pub fn netlist(&self) -> &QuantumNetlist {
        self.legalized.netlist()
    }

    /// The die outline.
    #[must_use]
    pub fn die(&self) -> Rect {
        self.legalized.die()
    }

    /// The refined positions.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Number of processing windows examined.
    #[must_use]
    pub fn windows_processed(&self) -> usize {
        self.windows_processed
    }

    /// Number of windows whose re-placement was accepted.
    #[must_use]
    pub fn windows_accepted(&self) -> usize {
        self.windows_accepted
    }

    /// Wall-clock duration of the detailed-placement stage alone.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.event.duration
    }

    /// The trace events of every stage up to and including this one.
    #[must_use]
    pub fn events(&self) -> Vec<StageEvent> {
        let mut events = self.legalized.events();
        events.push(self.event);
        events
    }

    /// The per-stage timings as the legacy [`StageTiming`].
    #[must_use]
    pub fn timing(&self) -> StageTiming {
        StageTiming {
            detailed_placement: Some(self.event.duration),
            ..self.legalized.timing()
        }
    }

    /// The one-pass layout scan of the refined layout, computed lazily on first
    /// call and cached — one scan feeds both [`Detailed::report`] and
    /// [`Detailed::mean_benchmark_fidelity`].
    #[must_use]
    pub fn scan(&self) -> &LayoutScan {
        self.scan_arc()
    }

    pub(crate) fn scan_arc(&self) -> &Arc<LayoutScan> {
        self.scan.get_or_init(|| {
            Arc::new(LayoutScan::scan(
                self.netlist(),
                &self.placement,
                &self.legalized.config().crosstalk,
            ))
        })
    }

    /// Seeds the lazy scan cache with an externally-assembled scan (the
    /// [`ReportDelta`](qgdp_metrics::ReportDelta) scoring path of the batch
    /// engine).  The caller owes the bit-identity contract: `scan` must equal a
    /// from-scratch [`LayoutScan::scan`] of this placement.  A no-op when the
    /// cache is already populated.
    pub(crate) fn prime_scan(&self, scan: Arc<LayoutScan>) {
        let _ = self.scan.set(scan);
    }

    /// Layout metrics of the refined layout, computed lazily on first call and cached.
    #[must_use]
    pub fn report(&self) -> &LayoutReport {
        self.report
            .get_or_init(|| LayoutReport::from_scan(self.netlist(), self.scan()))
    }

    /// Returns `true` if the refined layout is fully legal.
    #[must_use]
    pub fn is_legal(&self) -> bool {
        is_legal(self.netlist(), &self.die(), &self.placement)
    }

    /// Mean worst-case program fidelity of `benchmark` on this layout (the Fig. 8
    /// protocol).
    #[must_use]
    pub fn mean_benchmark_fidelity(
        &self,
        benchmark: Benchmark,
        mappings: usize,
        noise: &NoiseModel,
        seed: u64,
    ) -> f64 {
        benchmark_fidelity(
            &self.legalized.global().ctx,
            self.scan(),
            benchmark,
            mappings,
            noise,
            seed,
        )
    }

    /// Assembles the legacy eager [`FlowResult`] view of this artifact.  Bit-identical
    /// to [`crate::run_flow`] with detailed placement enabled on the same inputs.
    #[must_use]
    pub fn to_flow_result(&self) -> FlowResult {
        let mut result = self.legalized.to_flow_result();
        result.detailed = Some(self.placement().clone());
        result.timing = self.timing();
        result.detailed_report = Some(self.report().clone());
        result
    }
}

/// The terminal artifact of one batched flow request: the legalized layout, refined
/// by detailed placement when the request asked for it.
#[derive(Debug, Clone)]
pub enum FlowArtifact {
    /// The request stopped after legalization.
    Legalized(CellLegalized),
    /// The request ran detailed placement on the legalized layout.
    Detailed(Detailed),
}

impl FlowArtifact {
    /// The legalization strategy of this flow.
    #[must_use]
    pub fn strategy(&self) -> LegalizationStrategy {
        self.legalized().strategy()
    }

    /// The legalized artifact (the DP input when detailed placement ran).
    #[must_use]
    pub fn legalized(&self) -> &CellLegalized {
        match self {
            FlowArtifact::Legalized(cell) => cell,
            FlowArtifact::Detailed(dp) => dp.legalized(),
        }
    }

    /// The detailed-placement artifact, when that stage ran.
    #[must_use]
    pub fn detailed(&self) -> Option<&Detailed> {
        match self {
            FlowArtifact::Legalized(_) => None,
            FlowArtifact::Detailed(dp) => Some(dp),
        }
    }

    /// The netlist every stage of this session places.
    #[must_use]
    pub fn netlist(&self) -> &QuantumNetlist {
        self.legalized().netlist()
    }

    /// The die outline.
    #[must_use]
    pub fn die(&self) -> Rect {
        self.legalized().die()
    }

    /// The final placement of the flow (detailed when it ran, otherwise legalized).
    #[must_use]
    pub fn final_placement(&self) -> &Placement {
        match self {
            FlowArtifact::Legalized(cell) => cell.placement(),
            FlowArtifact::Detailed(dp) => dp.placement(),
        }
    }

    /// The layout report of the final placement (lazy, cached).
    #[must_use]
    pub fn report(&self) -> &LayoutReport {
        match self {
            FlowArtifact::Legalized(cell) => cell.report(),
            FlowArtifact::Detailed(dp) => dp.report(),
        }
    }

    /// Returns `true` if the final placement is fully legal.
    #[must_use]
    pub fn is_legal(&self) -> bool {
        match self {
            FlowArtifact::Legalized(cell) => cell.is_legal(),
            FlowArtifact::Detailed(dp) => dp.is_legal(),
        }
    }

    /// The trace events of every stage of this flow.
    #[must_use]
    pub fn events(&self) -> Vec<StageEvent> {
        match self {
            FlowArtifact::Legalized(cell) => cell.events(),
            FlowArtifact::Detailed(dp) => dp.events(),
        }
    }

    /// The per-stage timings as the legacy [`StageTiming`].
    #[must_use]
    pub fn timing(&self) -> StageTiming {
        match self {
            FlowArtifact::Legalized(cell) => cell.timing(),
            FlowArtifact::Detailed(dp) => dp.timing(),
        }
    }

    /// Mean worst-case program fidelity of `benchmark` on the final layout (the
    /// Fig. 8 protocol).
    #[must_use]
    pub fn mean_benchmark_fidelity(
        &self,
        benchmark: Benchmark,
        mappings: usize,
        noise: &NoiseModel,
        seed: u64,
    ) -> f64 {
        match self {
            FlowArtifact::Legalized(cell) => {
                cell.mean_benchmark_fidelity(benchmark, mappings, noise, seed)
            }
            FlowArtifact::Detailed(dp) => {
                dp.mean_benchmark_fidelity(benchmark, mappings, noise, seed)
            }
        }
    }

    /// Converts into the legacy eager [`FlowResult`] view.
    #[must_use]
    pub fn into_flow_result(self) -> FlowResult {
        match self {
            FlowArtifact::Legalized(cell) => cell.to_flow_result(),
            FlowArtifact::Detailed(dp) => dp.to_flow_result(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;
    use qgdp_topology::StandardTopology;

    fn session() -> Session {
        let topo = StandardTopology::Grid.build();
        Session::new(&topo, FlowConfig::default().with_seed(3)).expect("session builds")
    }

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(Stage::GlobalPlacement.name(), "global-placement");
        assert_eq!(Stage::QubitLegalization.to_string(), "qubit-legalization");
        assert_eq!(
            Stage::ResonatorLegalization.name(),
            "resonator-legalization"
        );
        assert_eq!(Stage::DetailedPlacement.name(), "detailed-placement");
    }

    #[test]
    fn artifacts_accumulate_stage_events_in_order() {
        let gp = session().global_place();
        let cell = gp.legalize(LegalizationStrategy::Qgdp).unwrap();
        let dp = cell.detail();
        let stages: Vec<Stage> = dp.events().iter().map(|e| e.stage).collect();
        assert_eq!(
            stages,
            vec![
                Stage::GlobalPlacement,
                Stage::QubitLegalization,
                Stage::ResonatorLegalization,
                Stage::DetailedPlacement,
            ]
        );
        let timing = dp.timing();
        assert_eq!(timing.global_placement, gp.elapsed());
        assert_eq!(timing.detailed_placement, Some(dp.elapsed()));
    }

    #[test]
    fn forked_artifacts_share_the_gp_placement_allocation() {
        let gp = session().global_place();
        let a = gp.legalize(LegalizationStrategy::Qgdp).unwrap();
        let b = gp.legalize(LegalizationStrategy::Tetris).unwrap();
        assert!(Arc::ptr_eq(&a.global().placement, &b.global().placement));
        assert!(Arc::ptr_eq(
            &a.global().ctx.netlist,
            &b.global().ctx.netlist
        ));
        // The lazy GP report cache is shared too: computing it through one fork
        // makes it visible through the other.
        let through_a = a.global().report().clone();
        assert_eq!(b.global().report(), &through_a);
    }

    #[test]
    fn lazy_report_is_cached_across_clones() {
        let cell = session()
            .global_place()
            .legalize(LegalizationStrategy::Qgdp)
            .unwrap();
        let clone = cell.clone();
        let first = cell.report() as *const LayoutReport;
        let second = clone.report() as *const LayoutReport;
        assert_eq!(first, second, "clones must share one cached report");
    }

    #[test]
    fn report_and_fidelity_share_one_cached_scan() {
        let cell = session()
            .global_place()
            .legalize(LegalizationStrategy::Qgdp)
            .unwrap();
        let clone = cell.clone();
        let first = cell.scan() as *const LayoutScan;
        let report = cell.report().clone();
        assert_eq!(clone.scan() as *const LayoutScan, first);
        // The scan-assembled report is bit-identical to a from-scratch evaluate.
        let fresh =
            LayoutReport::evaluate(cell.netlist(), cell.placement(), &cell.config().crosstalk);
        assert_eq!(report, fresh);
        assert_eq!(
            report.hotspot_proportion_percent.to_bits(),
            fresh.hotspot_proportion_percent.to_bits()
        );
        // The detailed artifact caches its own scan the same way.
        let dp = cell.detail();
        let dp_fresh =
            LayoutReport::evaluate(dp.netlist(), dp.placement(), &cell.config().crosstalk);
        assert_eq!(dp.report(), &dp_fresh);
        assert_eq!(
            dp.scan() as *const LayoutScan,
            dp.scan() as *const LayoutScan
        );
    }

    #[test]
    fn detail_forks_do_not_mutate_the_legalized_artifact() {
        let cell = session()
            .global_place()
            .legalize(LegalizationStrategy::Qgdp)
            .unwrap();
        let before = cell.placement().clone();
        let a = cell.detail();
        let b = cell.detail_with(DetailedPlacerConfig::new());
        assert_eq!(cell.placement(), &before);
        assert_eq!(a.placement(), b.placement(), "same config, same refinement");
        assert!(a.is_legal());
    }
}
