//! A convenience prelude re-exporting the types most users need.
//!
//! ```
//! use qgdp::prelude::*;
//!
//! let topology = StandardTopology::Falcon.build();
//! assert_eq!(topology.num_qubits(), 27);
//! ```

pub use crate::artifact::{
    CellLegalized, Detailed, FlowArtifact, GlobalPlacement, QubitLegalized, Stage, StageEvent,
};
pub use crate::detail::{DetailedPlacementOutcome, DetailedPlacer, DetailedPlacerConfig};
pub use crate::error::FlowError;
pub use crate::pipeline::{run_flow, FaultInjection, FlowConfig, FlowResult, StageTiming};
pub use crate::qubit_lg::QuantumQubitLegalizer;
pub use crate::resonator_lg::{ResonatorLegalizer, ResonatorOrder};
pub use crate::session::{FlowRequest, Session};
pub use crate::strategy::LegalizationStrategy;

pub use qgdp_circuits::{map_circuit, random_mappings, Benchmark, Circuit, MappedCircuit};
pub use qgdp_geometry::{Point, Rect};
pub use qgdp_legalize::{AbacusLegalizer, MacroLegalizer, TetrisLegalizer};
pub use qgdp_metrics::{
    estimate_fidelity, mean_fidelity, parallel_map, worker_threads, CrosstalkConfig,
    CrosstalkModel, FidelityEvaluator, LayoutReport, NoiseModel,
};
pub use qgdp_netlist::{
    ClusterReport, ComponentGeometry, NetModel, NetlistBuilder, Placement, QuantumNetlist, QubitId,
    ResonatorId, SegmentId,
};
pub use qgdp_placer::{hpwl, GlobalPlacer, GlobalPlacerConfig, GpStats, NetForceField};
pub use qgdp_topology::{DistanceMatrix, StandardTopology, Topology};
