//! Generators for the device topologies used in the paper's evaluation (Table I).

use crate::{Topology, TopologyKind};
use qgdp_geometry::Point;

/// A rectangular grid lattice of `rows × cols` qubits with nearest-neighbour coupling.
///
/// The paper's "Grid 25" entry is `grid(5, 5)`: 25 qubits, 40 couplers — the
/// quantum-error-correction-friendly architecture.
///
/// # Example
///
/// ```
/// let g = qgdp_topology::grid(5, 5);
/// assert_eq!(g.num_qubits(), 25);
/// assert_eq!(g.num_couplings(), 40);
/// ```
#[must_use]
pub fn grid(rows: usize, cols: usize) -> Topology {
    let num_qubits = rows * cols;
    let id = |r: usize, c: usize| r * cols + c;
    let mut couplings = Vec::new();
    let mut coords = Vec::with_capacity(num_qubits);
    for r in 0..rows {
        for c in 0..cols {
            coords.push(Point::new(c as f64, r as f64));
            if c + 1 < cols {
                couplings.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                couplings.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    Topology::new("", TopologyKind::Grid, num_qubits, couplings, coords)
        .with_name(format!("Grid-{num_qubits}"))
}

/// A generic heavy-hexagon lattice built from `long_rows` horizontal chains of
/// `row_len` qubits, consecutive rows joined by bridge qubits every fourth column with
/// the bridge columns offset by two between successive bridge rows (the IBM heavy-hex
/// pattern).
///
/// # Panics
///
/// Panics if `long_rows` is zero or `row_len` is zero.
#[must_use]
pub fn heavy_hex_rows(long_rows: usize, row_len: usize) -> Topology {
    assert!(
        long_rows > 0 && row_len > 0,
        "heavy-hex needs at least one row and column"
    );
    let mut couplings = Vec::new();
    let mut coords = Vec::new();
    // Ids of the qubits in each long row.
    let mut row_ids: Vec<Vec<usize>> = Vec::with_capacity(long_rows);
    let mut next = 0usize;
    for r in 0..long_rows {
        let ids: Vec<usize> = (0..row_len)
            .map(|c| {
                coords.push(Point::new(c as f64, (2 * r) as f64));
                let id = next;
                next += 1;
                id
            })
            .collect();
        for w in ids.windows(2) {
            couplings.push((w[0], w[1]));
        }
        row_ids.push(ids);
    }
    // Bridge qubits between consecutive long rows.
    for r in 0..long_rows.saturating_sub(1) {
        let offset = if r % 2 == 0 { 0 } else { 2 };
        let mut c = offset;
        while c < row_len {
            let bridge = next;
            next += 1;
            coords.push(Point::new(c as f64, (2 * r + 1) as f64));
            couplings.push((row_ids[r][c], bridge));
            couplings.push((bridge, row_ids[r + 1][c]));
            c += 4;
        }
    }
    let num_qubits = next;
    Topology::new("", TopologyKind::HeavyHex, num_qubits, couplings, coords)
        .with_name(format!("HeavyHex-{num_qubits}"))
}

/// The 27-qubit IBM Falcon heavy-hex processor (28 couplers), using the published
/// Falcon r5 coupling map.
///
/// # Example
///
/// ```
/// let falcon = qgdp_topology::heavy_hex_falcon();
/// assert_eq!(falcon.num_qubits(), 27);
/// assert_eq!(falcon.num_couplings(), 28);
/// ```
#[must_use]
pub fn heavy_hex_falcon() -> Topology {
    // Falcon r5 (ibm_montreal / ibm_cairo family) coupling map.
    let couplings = vec![
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 5),
        (1, 4),
        (4, 7),
        (5, 8),
        (6, 7),
        (7, 10),
        (8, 9),
        (8, 11),
        (10, 12),
        (11, 14),
        (12, 13),
        (12, 15),
        (13, 14),
        (14, 16),
        (15, 18),
        (16, 19),
        (17, 18),
        (18, 21),
        (19, 20),
        (19, 22),
        (21, 23),
        (22, 25),
        (23, 24),
        (24, 25),
        (25, 26),
    ];
    // Canonical coordinates following the published Falcon floor plan (three horizontal
    // runs joined by vertical bridges).
    let coords = vec![
        Point::new(0.0, 0.0), // 0
        Point::new(1.0, 0.0), // 1
        Point::new(2.0, 0.0), // 2
        Point::new(3.0, 0.0), // 3
        Point::new(1.0, 1.0), // 4
        Point::new(3.0, 1.0), // 5
        Point::new(0.0, 2.0), // 6
        Point::new(1.0, 2.0), // 7
        Point::new(3.0, 2.0), // 8
        Point::new(4.0, 2.0), // 9
        Point::new(1.5, 3.0), // 10
        Point::new(3.0, 3.0), // 11
        Point::new(1.5, 4.0), // 12
        Point::new(2.5, 4.5), // 13
        Point::new(3.0, 4.0), // 14
        Point::new(1.0, 5.0), // 15
        Point::new(3.5, 5.0), // 16
        Point::new(0.0, 6.0), // 17
        Point::new(1.0, 6.0), // 18
        Point::new(3.5, 6.0), // 19
        Point::new(4.5, 6.0), // 20
        Point::new(1.5, 7.0), // 21
        Point::new(3.5, 7.0), // 22
        Point::new(1.5, 8.0), // 23
        Point::new(2.5, 8.0), // 24
        Point::new(3.5, 8.0), // 25
        Point::new(4.5, 8.5), // 26
    ];
    Topology::new("", TopologyKind::HeavyHex, 27, couplings, coords).with_name("Falcon")
}

/// The 127-qubit IBM Eagle-scale heavy-hex lattice (144 couplers), generated as seven
/// long rows of qubits with bridge qubits between rows (the Eagle unit-cell pattern).
///
/// # Example
///
/// ```
/// let eagle = qgdp_topology::heavy_hex_eagle();
/// assert_eq!(eagle.num_qubits(), 127);
/// assert_eq!(eagle.num_couplings(), 144);
/// ```
#[must_use]
pub fn heavy_hex_eagle() -> Topology {
    // 7 long rows: 14, 15, 15, 15, 15, 15, 14 qubits; bridges every 4 columns with the
    // IBM alternating offset.  127 qubits, 144 couplers.
    let row_lens = [14usize, 15, 15, 15, 15, 15, 14];
    let row_col_offset = [0usize, 0, 0, 0, 0, 0, 1];
    let mut couplings = Vec::new();
    let mut coords = Vec::new();
    let mut row_ids: Vec<Vec<usize>> = Vec::new();
    let mut next = 0usize;
    for (r, (&len, &off)) in row_lens.iter().zip(&row_col_offset).enumerate() {
        let ids: Vec<usize> = (0..len)
            .map(|c| {
                coords.push(Point::new((c + off) as f64, (2 * r) as f64));
                let id = next;
                next += 1;
                id
            })
            .collect();
        for w in ids.windows(2) {
            couplings.push((w[0], w[1]));
        }
        row_ids.push(ids);
    }
    for r in 0..row_lens.len() - 1 {
        let offset: usize = if r % 2 == 0 { 0 } else { 2 };
        let mut c: usize = offset;
        loop {
            // Column c must exist (as a lattice column) in both rows.
            let upper_off = row_col_offset[r + 1];
            let lower_off = row_col_offset[r];
            let lower_idx = c.checked_sub(lower_off);
            let upper_idx = c.checked_sub(upper_off);
            match (lower_idx, upper_idx) {
                (Some(li), Some(ui)) if li < row_lens[r] && ui < row_lens[r + 1] => {
                    let bridge = next;
                    next += 1;
                    coords.push(Point::new(c as f64, (2 * r + 1) as f64));
                    couplings.push((row_ids[r][li], bridge));
                    couplings.push((bridge, row_ids[r + 1][ui]));
                }
                _ => {}
            }
            c += 4;
            if c > 15 {
                break;
            }
        }
    }
    let num_qubits = next;
    Topology::new("", TopologyKind::HeavyHex, num_qubits, couplings, coords).with_name("Eagle")
}

/// A Rigetti Aspen-style lattice of octagonal rings arranged on `rows × cols` cells.
///
/// Each cell is an 8-qubit ring; horizontally adjacent cells are joined by two
/// couplers, vertically adjacent cells by two couplers — the Aspen fabric.
/// `octagon_lattice(1, 5)` is Aspen-11 (40 qubits, 48 couplers) and
/// `octagon_lattice(2, 5)` is Aspen-M (80 qubits, 106 couplers).
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero.
#[must_use]
pub fn octagon_lattice(rows: usize, cols: usize) -> Topology {
    assert!(
        rows > 0 && cols > 0,
        "octagon lattice needs at least one cell"
    );
    let num_qubits = rows * cols * 8;
    let cell_base = |r: usize, c: usize| (r * cols + c) * 8;
    let mut couplings = Vec::new();
    let mut coords = Vec::with_capacity(num_qubits);
    // Local qubit positions around each octagon (unit circle, starting east and going
    // counter-clockwise), scaled into a 3x3 cell.
    let ring: [(f64, f64); 8] = [
        (1.0, 0.35),
        (0.65, 0.0),
        (0.35, 0.0),
        (0.0, 0.35),
        (0.0, 0.65),
        (0.35, 1.0),
        (0.65, 1.0),
        (1.0, 0.65),
    ];
    for r in 0..rows {
        for c in 0..cols {
            let base = cell_base(r, c);
            for (k, &(lx, ly)) in ring.iter().enumerate() {
                let _ = k;
                coords.push(Point::new(c as f64 * 1.5 + lx, r as f64 * 1.5 + ly));
            }
            // Ring couplings.
            for k in 0..8 {
                couplings.push((base + k, base + (k + 1) % 8));
            }
            // Horizontal inter-cell couplings: east side of this cell (locals 0, 7) to
            // west side of the right neighbour (locals 3, 4).
            if c + 1 < cols {
                let right = cell_base(r, c + 1);
                couplings.push((base, right + 3));
                couplings.push((base + 7, right + 4));
            }
            // Vertical inter-cell couplings: north side (locals 5, 6) to south side of
            // the upper neighbour (locals 2, 1).
            if r + 1 < rows {
                let up = cell_base(r + 1, c);
                couplings.push((base + 5, up + 2));
                couplings.push((base + 6, up + 1));
            }
        }
    }
    Topology::new("", TopologyKind::Octagon, num_qubits, couplings, coords)
        .with_name(format!("Octagon-{num_qubits}"))
}

/// The Xtree architecture of Li et al. (ISCA'21): a tree whose root has four children
/// and every other internal node has three, expanded to `levels` levels below the root.
///
/// `xtree(3)` reproduces the paper's 53-qubit level-3 instance (1 + 4 + 12 + 36 = 53
/// qubits, 52 couplers).
///
/// # Panics
///
/// Panics if `levels` is zero.
#[must_use]
pub fn xtree(levels: usize) -> Topology {
    assert!(levels > 0, "xtree needs at least one level");
    let mut couplings = Vec::new();
    let mut coords = vec![Point::new(0.0, 0.0)];
    let mut frontier = vec![0usize]; // nodes of the previous level
    let mut next = 1usize;
    for level in 1..=levels {
        let branching = if level == 1 { 4 } else { 3 };
        let mut new_frontier = Vec::new();
        let total_new = frontier.len() * branching;
        let radius = level as f64 * 2.0;
        let mut k = 0usize;
        for &parent in &frontier {
            for _ in 0..branching {
                let angle = std::f64::consts::TAU * (k as f64 + 0.5) / total_new as f64;
                coords.push(Point::new(radius * angle.cos(), radius * angle.sin()));
                couplings.push((parent, next));
                new_frontier.push(next);
                next += 1;
                k += 1;
            }
        }
        frontier = new_frontier;
    }
    Topology::new("", TopologyKind::Xtree, next, couplings, coords)
        .with_name(format!("Xtree-{next}"))
}

/// Closed-form `(num_qubits, num_couplers)` of [`heavy_hex_rows`]`(long_rows, row_len)`,
/// without building the topology.
///
/// Each of the `long_rows` chains contributes `row_len` qubits and `row_len - 1`
/// edges; the bridge row below long row `r` contributes one qubit and two edges
/// per bridge column `c ∈ {offset, offset + 4, …} < row_len`, with `offset`
/// alternating 0 / 2 — i.e. `⌈(row_len − offset) / 4⌉` bridges when
/// `row_len > offset`.  The generator proptests hold the built topologies to
/// these formulas.
///
/// # Panics
///
/// Panics if `long_rows` or `row_len` is zero (same contract as
/// [`heavy_hex_rows`]).
#[must_use]
pub fn heavy_hex_counts(long_rows: usize, row_len: usize) -> (usize, usize) {
    assert!(
        long_rows > 0 && row_len > 0,
        "heavy-hex needs at least one row and column"
    );
    let mut qubits = long_rows * row_len;
    let mut couplers = long_rows * (row_len - 1);
    for r in 0..long_rows - 1 {
        let offset = if r % 2 == 0 { 0 } else { 2 };
        let bridges = if row_len > offset {
            (row_len - offset).div_ceil(4)
        } else {
            0
        };
        qubits += bridges;
        couplers += 2 * bridges;
    }
    (qubits, couplers)
}

/// A roadmap-scale heavy-hex device with at least `target_qubits` qubits —
/// the parameterized generator family behind the 1k/10k/100k entries of the
/// vendor roadmap (~23k physical qubits by 2029, 100k by 2033).
///
/// Deterministically picks a near-square tiling: the long-row length is
/// `√(target / 1.25)` (a heavy-hex tiling holds ≈ 1.25 · rows · row_len
/// qubits), then the smallest row count whose [`heavy_hex_counts`] reaches the
/// target.  The result overshoots by at most one row of qubits, stays
/// connected, and keeps the heavy-hex degree ≤ 3 bound.
///
/// # Panics
///
/// Panics if `target_qubits` is zero.
#[must_use]
pub fn roadmap_heavy_hex(target_qubits: usize) -> Topology {
    assert!(target_qubits > 0, "roadmap device needs at least one qubit");
    let row_len = ((target_qubits as f64 / 1.25).sqrt().round() as usize).max(4);
    let mut long_rows = 1;
    while heavy_hex_counts(long_rows, row_len).0 < target_qubits {
        long_rows += 1;
    }
    heavy_hex_rows(long_rows, row_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp_netlist::QubitId;

    #[test]
    fn grid_counts_match_table1() {
        let g = grid(5, 5);
        assert_eq!(g.num_qubits(), 25);
        assert_eq!(g.num_couplings(), 40);
        assert!(g.is_connected());
        // Corner degree 2, edge degree 3, interior degree 4.
        assert_eq!(g.degree(QubitId(0)), 2);
        assert_eq!(g.degree(QubitId(2)), 3);
        assert_eq!(g.degree(QubitId(12)), 4);
    }

    #[test]
    fn falcon_counts_match_table1() {
        let f = heavy_hex_falcon();
        assert_eq!(f.num_qubits(), 27);
        assert_eq!(f.num_couplings(), 28);
        assert!(f.is_connected());
        assert_eq!(f.name(), "Falcon");
        // Heavy-hex degree bound.
        for q in 0..27 {
            assert!(
                f.degree(QubitId(q)) <= 3,
                "qubit {q} exceeds heavy-hex degree"
            );
        }
    }

    #[test]
    fn eagle_counts_match_table1() {
        let e = heavy_hex_eagle();
        assert_eq!(e.num_qubits(), 127);
        assert_eq!(e.num_couplings(), 144);
        assert!(e.is_connected());
        for q in 0..127 {
            assert!(
                e.degree(QubitId(q)) <= 3,
                "qubit {q} exceeds heavy-hex degree"
            );
        }
    }

    #[test]
    fn aspen_counts_match_table1() {
        let a11 = octagon_lattice(1, 5);
        assert_eq!(a11.num_qubits(), 40);
        assert_eq!(a11.num_couplings(), 48);
        assert!(a11.is_connected());
        let am = octagon_lattice(2, 5);
        assert_eq!(am.num_qubits(), 80);
        assert_eq!(am.num_couplings(), 106);
        assert!(am.is_connected());
    }

    #[test]
    fn xtree_counts_match_table1() {
        let x = xtree(3);
        assert_eq!(x.num_qubits(), 53);
        assert_eq!(x.num_couplings(), 52);
        assert!(x.is_connected());
        // The root has four children; a tree has exactly n-1 edges.
        assert_eq!(x.degree(QubitId(0)), 4);
    }

    #[test]
    fn generic_heavy_hex_structure() {
        let h = heavy_hex_rows(3, 7);
        assert!(h.is_connected());
        // 3*7 = 21 long-row qubits; bridge rows at offsets 0 and 2: cols {0,4} and {2,6}.
        assert_eq!(h.num_qubits(), 21 + 2 + 2);
        // Chain edges 3*6 = 18, bridge edges 4*2 = 8.
        assert_eq!(h.num_couplings(), 26);
        for q in 0..h.num_qubits() {
            assert!(h.degree(QubitId(q)) <= 3);
        }
    }

    #[test]
    fn octagon_ring_degrees() {
        let a = octagon_lattice(1, 2);
        assert_eq!(a.num_qubits(), 16);
        // 2 rings (16 edges) + 2 inter-cell = 18.
        assert_eq!(a.num_couplings(), 18);
        // Every qubit has degree 2 (ring) or 3 (ring + inter-cell link).
        for q in 0..16 {
            let d = a.degree(QubitId(q));
            assert!((2..=3).contains(&d));
        }
    }

    #[test]
    fn heavy_hex_counts_match_built_topologies() {
        for (rows, len) in [(1, 1), (1, 7), (2, 3), (3, 7), (4, 14), (7, 15)] {
            let (q, c) = heavy_hex_counts(rows, len);
            let t = heavy_hex_rows(rows, len);
            assert_eq!(
                (t.num_qubits(), t.num_couplings()),
                (q, c),
                "({rows}, {len})"
            );
        }
    }

    #[test]
    fn roadmap_devices_hit_their_targets() {
        for target in [1_000usize, 10_000, 100_000] {
            let t = roadmap_heavy_hex(target);
            assert!(t.num_qubits() >= target, "{} < {target}", t.num_qubits());
            // Overshoot is bounded by roughly one extra row of the tiling.
            assert!(
                t.num_qubits() < target + target / 10 + 64,
                "{} overshoots {target}",
                t.num_qubits()
            );
            assert!(t.is_connected(), "roadmap device {target} disconnected");
        }
    }

    #[test]
    fn coordinates_are_distinct() {
        for topo in [
            grid(5, 5),
            heavy_hex_falcon(),
            heavy_hex_eagle(),
            octagon_lattice(1, 5),
            octagon_lattice(2, 5),
            xtree(3),
        ] {
            let mut seen = std::collections::HashSet::new();
            for p in topo.coords() {
                let key = (format!("{:.4}", p.x), format!("{:.4}", p.y));
                assert!(
                    seen.insert(key),
                    "duplicate canonical coordinate {p} in {}",
                    topo.name()
                );
            }
        }
    }
}
