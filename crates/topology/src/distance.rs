//! The [`DistanceMatrix`] type: flat all-pairs hop distances over a coupling graph.
//!
//! The Fig. 8 harness maps 50 mappings × 7 benchmarks per topology, and every mapping
//! needs the all-pairs shortest-path table to route SWAPs.  Recomputing the table per
//! mapping (as the pre-cache harness did) costs O(V·E) BFS work and O(V²) fresh
//! allocations each time; this module stores the table once, in a single row-major
//! `Vec<u32>` so lookups are one multiply-add away and the whole matrix lives in one
//! cache-friendly allocation instead of `V` scattered rows.

use std::collections::VecDeque;
use std::ops::Index;

/// All-pairs shortest-path lengths (in hops) over a coupling graph, stored row-major
/// in one flat allocation.
///
/// Entry `(a, b)` is the BFS hop count from qubit `a` to qubit `b`;
/// [`DistanceMatrix::UNREACHABLE`] marks pairs in different connected components.
/// Index with [`DistanceMatrix::get`] or `matrix[(a, b)]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    dim: usize,
    data: Vec<u32>,
}

impl DistanceMatrix {
    /// The distance reported for pairs with no connecting path.
    pub const UNREACHABLE: u32 = u32::MAX;

    /// Computes the matrix by BFS from every vertex of `adjacency` (one neighbour list
    /// per vertex).
    ///
    /// # Panics
    ///
    /// Panics if a neighbour index is out of range.
    #[must_use]
    pub fn from_adjacency(adjacency: &[Vec<usize>]) -> Self {
        let dim = adjacency.len();
        let mut data = vec![Self::UNREACHABLE; dim * dim];
        let mut queue = VecDeque::new();
        for start in 0..dim {
            let row = &mut data[start * dim..(start + 1) * dim];
            row[start] = 0;
            queue.clear();
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for &v in &adjacency[u] {
                    if row[v] == Self::UNREACHABLE {
                        row[v] = row[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        DistanceMatrix { dim, data }
    }

    /// Number of vertices (the matrix is `dim × dim`).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Hop distance from `a` to `b` ([`DistanceMatrix::UNREACHABLE`] if disconnected).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    #[inline]
    #[must_use]
    pub fn get(&self, a: usize, b: usize) -> u32 {
        assert!(a < self.dim && b < self.dim, "index out of range");
        self.data[a * self.dim + b]
    }

    /// Returns `true` if a path exists from `a` to `b`.
    #[must_use]
    pub fn is_reachable(&self, a: usize, b: usize) -> bool {
        self.get(a, b) != Self::UNREACHABLE
    }

    /// The distances from `a` to every vertex, as one borrowed row.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[must_use]
    pub fn row(&self, a: usize) -> &[u32] {
        assert!(a < self.dim, "index out of range");
        &self.data[a * self.dim..(a + 1) * self.dim]
    }

    /// The largest finite distance in the matrix (the graph diameter), or `None` when
    /// the matrix is empty or every off-diagonal pair is unreachable.
    #[must_use]
    pub fn diameter(&self) -> Option<u32> {
        self.data
            .iter()
            .copied()
            .filter(|&d| d != Self::UNREACHABLE && d > 0)
            .max()
    }
}

impl Index<(usize, usize)> for DistanceMatrix {
    type Output = u32;

    fn index(&self, (a, b): (usize, usize)) -> &u32 {
        assert!(a < self.dim && b < self.dim, "index out of range");
        &self.data[a * self.dim + b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring4() -> DistanceMatrix {
        DistanceMatrix::from_adjacency(&[vec![1, 3], vec![0, 2], vec![1, 3], vec![2, 0]])
    }

    #[test]
    fn ring_distances() {
        let d = ring4();
        assert_eq!(d.dim(), 4);
        assert_eq!(d.get(0, 0), 0);
        assert_eq!(d.get(0, 1), 1);
        assert_eq!(d[(0, 2)], 2);
        assert_eq!(d.get(0, 3), 1);
        assert_eq!(d.diameter(), Some(2));
        assert_eq!(d.row(1), &[1, 0, 1, 2]);
    }

    #[test]
    fn disconnected_pairs_are_unreachable() {
        let d = DistanceMatrix::from_adjacency(&[vec![1], vec![0], vec![3], vec![2]]);
        assert_eq!(d.get(0, 2), DistanceMatrix::UNREACHABLE);
        assert!(!d.is_reachable(1, 3));
        assert!(d.is_reachable(0, 1));
        assert_eq!(d.diameter(), Some(1));
    }

    #[test]
    fn empty_and_singleton() {
        let empty = DistanceMatrix::from_adjacency(&[]);
        assert_eq!(empty.dim(), 0);
        assert_eq!(empty.diameter(), None);
        let one = DistanceMatrix::from_adjacency(&[vec![]]);
        assert_eq!(one.get(0, 0), 0);
        assert_eq!(one.diameter(), None);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn out_of_range_get_panics() {
        let _ = ring4().get(0, 4);
    }
}
