//! Hop-distance providers over a coupling graph: the dense all-pairs
//! [`DistanceMatrix`] and the tiered [`Distances`] front-end that keeps
//! roadmap-scale devices out of O(V²) memory.
//!
//! The Fig. 8 harness maps 50 mappings × 7 benchmarks per topology, and every mapping
//! needs shortest-path hop counts to route SWAPs.  Recomputing the table per
//! mapping (as the pre-cache harness did) costs O(V·E) BFS work and O(V²) fresh
//! allocations each time; [`DistanceMatrix`] stores the table once, in a single
//! row-major `Vec<u32>` so lookups are one multiply-add away and the whole matrix
//! lives in one cache-friendly allocation instead of `V` scattered rows.
//!
//! That dense table is exactly right up to Eagle (127 qubits, 64 KiB) but turns
//! into 40 GB at the 100k-qubit roadmap point.  [`Distances`] therefore picks a
//! tier per device: **dense** below a size threshold (bit-identical to the matrix,
//! same allocation), **lazy** above it (per-source BFS rows computed on demand and
//! held in a small LRU, so memory stays O(rows · V) no matter how large the device
//! grows).  Both tiers run the same BFS ([`DistanceMatrix::from_adjacency`]'s inner
//! loop, factored into one shared helper), so every returned distance is
//! bit-identical across tiers.

use std::collections::{HashMap, VecDeque};
use std::ops::{Deref, Index};
use std::sync::{Arc, Mutex};

/// All-pairs shortest-path lengths (in hops) over a coupling graph, stored row-major
/// in one flat allocation.
///
/// Entry `(a, b)` is the BFS hop count from qubit `a` to qubit `b`;
/// [`DistanceMatrix::UNREACHABLE`] marks pairs in different connected components.
/// Index with [`DistanceMatrix::get`] or `matrix[(a, b)]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    dim: usize,
    data: Vec<u32>,
}

/// Fills `row` (pre-filled with [`DistanceMatrix::UNREACHABLE`]) with BFS hop
/// counts from `start`.  Shared by the dense matrix and the lazy tier so both
/// produce bit-identical rows.
fn bfs_fill_row(
    adjacency: &[Vec<usize>],
    start: usize,
    row: &mut [u32],
    queue: &mut VecDeque<usize>,
) {
    row[start] = 0;
    queue.clear();
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for &v in &adjacency[u] {
            if row[v] == DistanceMatrix::UNREACHABLE {
                row[v] = row[u] + 1;
                queue.push_back(v);
            }
        }
    }
}

impl DistanceMatrix {
    /// The distance reported for pairs with no connecting path.
    pub const UNREACHABLE: u32 = u32::MAX;

    /// Computes the matrix by BFS from every vertex of `adjacency` (one neighbour list
    /// per vertex).
    ///
    /// # Panics
    ///
    /// Panics if a neighbour index is out of range.
    #[must_use]
    pub fn from_adjacency(adjacency: &[Vec<usize>]) -> Self {
        let dim = adjacency.len();
        let mut data = vec![Self::UNREACHABLE; dim * dim];
        let mut queue = VecDeque::new();
        for start in 0..dim {
            let row = &mut data[start * dim..(start + 1) * dim];
            bfs_fill_row(adjacency, start, row, &mut queue);
        }
        DistanceMatrix { dim, data }
    }

    /// Number of vertices (the matrix is `dim × dim`).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Hop distance from `a` to `b` ([`DistanceMatrix::UNREACHABLE`] if disconnected).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    #[inline]
    #[must_use]
    pub fn get(&self, a: usize, b: usize) -> u32 {
        assert!(a < self.dim && b < self.dim, "index out of range");
        self.data[a * self.dim + b]
    }

    /// Returns `true` if a path exists from `a` to `b`.
    #[must_use]
    pub fn is_reachable(&self, a: usize, b: usize) -> bool {
        self.get(a, b) != Self::UNREACHABLE
    }

    /// The distances from `a` to every vertex, as one borrowed row.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[must_use]
    pub fn row(&self, a: usize) -> &[u32] {
        assert!(a < self.dim, "index out of range");
        &self.data[a * self.dim..(a + 1) * self.dim]
    }

    /// The largest finite distance in the matrix (the graph diameter), or `None` when
    /// the matrix is empty or every off-diagonal pair is unreachable.
    #[must_use]
    pub fn diameter(&self) -> Option<u32> {
        self.data
            .iter()
            .copied()
            .filter(|&d| d != Self::UNREACHABLE && d > 0)
            .max()
    }
}

impl Index<(usize, usize)> for DistanceMatrix {
    type Output = u32;

    fn index(&self, (a, b): (usize, usize)) -> &u32 {
        assert!(a < self.dim && b < self.dim, "index out of range");
        &self.data[a * self.dim + b]
    }
}

/// Which storage tier a [`Distances`] provider runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistanceTier {
    /// Full all-pairs matrix in one allocation (O(V²) memory, O(1) lookups).
    Dense,
    /// Per-source BFS rows computed on demand behind a bounded LRU
    /// (O(rows · V) memory, amortised O(E) per new source).
    Lazy,
}

impl std::fmt::Display for DistanceTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DistanceTier::Dense => "dense",
            DistanceTier::Lazy => "lazy",
        })
    }
}

/// Requested distance-provider mode, before the device size is known.
///
/// Parsed from the `QGDP_DISTANCE_MODE` environment variable by
/// [`distance_settings_from_env`]; resolved against a device size by
/// [`resolve_tier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceMode {
    /// Always materialize the dense matrix, whatever the size.
    Dense,
    /// Always use lazy rows, even on small devices.
    Lazy,
    /// Dense up to the threshold, lazy above it (the default).
    Auto,
}

impl DistanceMode {
    /// Parses a mode name (`dense` | `lazy` | `auto`), case-insensitively.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "dense" => Some(DistanceMode::Dense),
            "lazy" => Some(DistanceMode::Lazy),
            "auto" => Some(DistanceMode::Auto),
            _ => None,
        }
    }
}

/// Default device size (vertices) at which [`DistanceMode::Auto`] switches from
/// the dense matrix to lazy rows.  2048² u32 entries is a 16 MiB table — cheap;
/// one step up the roadmap ladder (10k qubits) would already cost 400 MB.
pub const DEFAULT_DISTANCE_THRESHOLD: usize = 2048;

/// Default number of BFS rows the lazy tier retains in its LRU.
pub const DEFAULT_DISTANCE_ROWS: usize = 64;

/// Resolves the tier a device of `dim` vertices should run on.
///
/// Pure so the policy is testable without touching process environment:
/// `Dense`/`Lazy` force their tier, `Auto` compares `dim` against `threshold`
/// (dense while `dim <= threshold`).
#[must_use]
pub fn resolve_tier(mode: DistanceMode, threshold: usize, dim: usize) -> DistanceTier {
    match mode {
        DistanceMode::Dense => DistanceTier::Dense,
        DistanceMode::Lazy => DistanceTier::Lazy,
        DistanceMode::Auto => {
            if dim <= threshold {
                DistanceTier::Dense
            } else {
                DistanceTier::Lazy
            }
        }
    }
}

/// Reads `(mode, threshold, lru_rows)` from the environment:
/// `QGDP_DISTANCE_MODE` (`dense` | `lazy` | `auto`), `QGDP_DISTANCE_THRESHOLD`
/// (vertices) and `QGDP_DISTANCE_ROWS` (LRU capacity).  Unset or unparseable
/// values fall back to `auto` / [`DEFAULT_DISTANCE_THRESHOLD`] /
/// [`DEFAULT_DISTANCE_ROWS`].
///
/// The tiers return bit-identical distances, so these knobs trade memory and
/// wall-clock only — results (and serve cache keys) never depend on them.
#[must_use]
pub fn distance_settings_from_env() -> (DistanceMode, usize, usize) {
    let mode = std::env::var("QGDP_DISTANCE_MODE")
        .ok()
        .and_then(|s| DistanceMode::parse(&s))
        .unwrap_or(DistanceMode::Auto);
    let threshold = std::env::var("QGDP_DISTANCE_THRESHOLD")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_DISTANCE_THRESHOLD);
    let rows = std::env::var("QGDP_DISTANCE_ROWS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_DISTANCE_ROWS);
    (mode, threshold, rows)
}

/// One row of hop distances, borrowed from the dense matrix or shared out of the
/// lazy tier's LRU.  Derefs to `&[u32]`, so callers index it like a slice either
/// way.
#[derive(Debug, Clone)]
pub enum DistanceRow<'a> {
    /// A row borrowed straight out of the dense matrix.
    Borrowed(&'a [u32]),
    /// A row shared with (and kept alive independently of) the lazy LRU.
    Shared(Arc<[u32]>),
}

impl Deref for DistanceRow<'_> {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        match self {
            DistanceRow::Borrowed(r) => r,
            DistanceRow::Shared(r) => r,
        }
    }
}

/// LRU of lazily computed BFS rows, keyed by source vertex.
#[derive(Debug, Default)]
struct RowCache {
    rows: HashMap<usize, Arc<[u32]>>,
    /// Source vertices in least-recently-used-first order.
    order: VecDeque<usize>,
}

#[derive(Debug)]
struct LazyRows {
    adjacency: Arc<Vec<Vec<usize>>>,
    capacity: usize,
    cache: Mutex<RowCache>,
}

impl LazyRows {
    fn row(&self, start: usize) -> Arc<[u32]> {
        let mut cache = self.cache.lock().expect("distance row cache poisoned");
        if let Some(row) = cache.rows.get(&start) {
            let row = Arc::clone(row);
            if let Some(pos) = cache.order.iter().position(|&s| s == start) {
                cache.order.remove(pos);
            }
            cache.order.push_back(start);
            return row;
        }
        let dim = self.adjacency.len();
        let mut fresh = vec![DistanceMatrix::UNREACHABLE; dim];
        let mut queue = VecDeque::new();
        bfs_fill_row(&self.adjacency, start, &mut fresh, &mut queue);
        let row: Arc<[u32]> = Arc::from(fresh);
        while cache.order.len() >= self.capacity {
            if let Some(evicted) = cache.order.pop_front() {
                cache.rows.remove(&evicted);
            }
        }
        cache.rows.insert(start, Arc::clone(&row));
        cache.order.push_back(start);
        row
    }
}

#[derive(Debug)]
enum Backend {
    Dense(Arc<DistanceMatrix>),
    Lazy(LazyRows),
}

/// Tiered hop-distance provider: a dense [`DistanceMatrix`] below the size
/// threshold, lazy per-source BFS rows behind a bounded LRU above it.
///
/// Both tiers run the same BFS, so [`Distances::get`] and [`Distances::row`]
/// return bit-identical values whichever tier is active — the tier only decides
/// memory (O(V²) vs O(rows · V)) and when the BFS work happens.  Construct via
/// [`crate::Topology::distances`] (which resolves the tier from the environment)
/// or directly via [`Distances::dense`] / [`Distances::lazy`] in tests and
/// benchmarks.
#[derive(Debug)]
pub struct Distances {
    dim: usize,
    backend: Backend,
}

impl Distances {
    /// The distance reported for pairs with no connecting path (same sentinel as
    /// [`DistanceMatrix::UNREACHABLE`]).
    pub const UNREACHABLE: u32 = DistanceMatrix::UNREACHABLE;

    /// Wraps an already-computed dense matrix (shares its allocation).
    #[must_use]
    pub fn dense(matrix: Arc<DistanceMatrix>) -> Self {
        Distances {
            dim: matrix.dim(),
            backend: Backend::Dense(matrix),
        }
    }

    /// Builds a lazy provider over `adjacency` retaining at most `lru_rows`
    /// BFS rows (clamped to at least 1).
    #[must_use]
    pub fn lazy(adjacency: Vec<Vec<usize>>, lru_rows: usize) -> Self {
        Distances {
            dim: adjacency.len(),
            backend: Backend::Lazy(LazyRows {
                adjacency: Arc::new(adjacency),
                capacity: lru_rows.max(1),
                cache: Mutex::new(RowCache::default()),
            }),
        }
    }

    /// Number of vertices the provider answers for.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Which tier this provider runs on.
    #[must_use]
    pub fn tier(&self) -> DistanceTier {
        match &self.backend {
            Backend::Dense(_) => DistanceTier::Dense,
            Backend::Lazy(_) => DistanceTier::Lazy,
        }
    }

    /// Number of BFS rows currently materialized (always `dim` on the dense tier).
    #[must_use]
    pub fn rows_materialized(&self) -> usize {
        match &self.backend {
            Backend::Dense(_) => self.dim,
            Backend::Lazy(lazy) => lazy
                .cache
                .lock()
                .expect("distance row cache poisoned")
                .rows
                .len(),
        }
    }

    /// The distances from `a` to every vertex.
    ///
    /// On the lazy tier this is the unit of work to amortise: fetch the row once
    /// and index it, instead of calling [`Distances::get`] per pair.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[must_use]
    pub fn row(&self, a: usize) -> DistanceRow<'_> {
        assert!(a < self.dim, "index out of range");
        match &self.backend {
            Backend::Dense(m) => DistanceRow::Borrowed(m.row(a)),
            Backend::Lazy(lazy) => DistanceRow::Shared(lazy.row(a)),
        }
    }

    /// Hop distance from `a` to `b` ([`Distances::UNREACHABLE`] if disconnected).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    #[must_use]
    pub fn get(&self, a: usize, b: usize) -> u32 {
        assert!(a < self.dim && b < self.dim, "index out of range");
        match &self.backend {
            Backend::Dense(m) => m.get(a, b),
            Backend::Lazy(lazy) => lazy.row(a)[b],
        }
    }

    /// Returns `true` if a path exists from `a` to `b`.
    #[must_use]
    pub fn is_reachable(&self, a: usize, b: usize) -> bool {
        self.get(a, b) != Self::UNREACHABLE
    }
}

impl Clone for Distances {
    /// Dense clones share the matrix allocation; lazy clones share the adjacency
    /// but start with an empty row LRU (rows are cheap to recompute and the LRU
    /// is an interior-mutability cache, not part of the provider's value).
    fn clone(&self) -> Self {
        match &self.backend {
            Backend::Dense(m) => Distances::dense(Arc::clone(m)),
            Backend::Lazy(lazy) => Distances {
                dim: self.dim,
                backend: Backend::Lazy(LazyRows {
                    adjacency: Arc::clone(&lazy.adjacency),
                    capacity: lazy.capacity,
                    cache: Mutex::new(RowCache::default()),
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring4() -> DistanceMatrix {
        DistanceMatrix::from_adjacency(&[vec![1, 3], vec![0, 2], vec![1, 3], vec![2, 0]])
    }

    #[test]
    fn ring_distances() {
        let d = ring4();
        assert_eq!(d.dim(), 4);
        assert_eq!(d.get(0, 0), 0);
        assert_eq!(d.get(0, 1), 1);
        assert_eq!(d[(0, 2)], 2);
        assert_eq!(d.get(0, 3), 1);
        assert_eq!(d.diameter(), Some(2));
        assert_eq!(d.row(1), &[1, 0, 1, 2]);
    }

    #[test]
    fn disconnected_pairs_are_unreachable() {
        let d = DistanceMatrix::from_adjacency(&[vec![1], vec![0], vec![3], vec![2]]);
        assert_eq!(d.get(0, 2), DistanceMatrix::UNREACHABLE);
        assert!(!d.is_reachable(1, 3));
        assert!(d.is_reachable(0, 1));
        assert_eq!(d.diameter(), Some(1));
    }

    #[test]
    fn empty_and_singleton() {
        let empty = DistanceMatrix::from_adjacency(&[]);
        assert_eq!(empty.dim(), 0);
        assert_eq!(empty.diameter(), None);
        let one = DistanceMatrix::from_adjacency(&[vec![]]);
        assert_eq!(one.get(0, 0), 0);
        assert_eq!(one.diameter(), None);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn out_of_range_get_panics() {
        let _ = ring4().get(0, 4);
    }

    fn ring_adjacency(n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|i| vec![(i + n - 1) % n, (i + 1) % n]).collect()
    }

    #[test]
    fn lazy_rows_match_dense_matrix() {
        let adjacency = ring_adjacency(9);
        let dense = DistanceMatrix::from_adjacency(&adjacency);
        let lazy = Distances::lazy(adjacency, 3);
        assert_eq!(lazy.tier(), DistanceTier::Lazy);
        for a in 0..9 {
            assert_eq!(&lazy.row(a)[..], dense.row(a), "row {a}");
            for b in 0..9 {
                assert_eq!(lazy.get(a, b), dense.get(a, b));
            }
        }
    }

    #[test]
    fn lazy_lru_evicts_but_stays_correct() {
        let adjacency = ring_adjacency(12);
        let dense = DistanceMatrix::from_adjacency(&adjacency);
        let lazy = Distances::lazy(adjacency, 2);
        for a in [0, 1, 2, 3, 0, 5, 0, 1] {
            assert_eq!(&lazy.row(a)[..], dense.row(a));
            assert!(lazy.rows_materialized() <= 2);
        }
        // A shared row stays valid after its source is evicted from the LRU.
        let row0 = lazy.row(0);
        for a in 0..12 {
            let _ = lazy.row(a);
        }
        assert_eq!(&row0[..], dense.row(0));
    }

    #[test]
    fn dense_tier_borrows_matrix_rows() {
        let matrix = Arc::new(ring4());
        let d = Distances::dense(Arc::clone(&matrix));
        assert_eq!(d.tier(), DistanceTier::Dense);
        assert_eq!(d.dim(), 4);
        assert_eq!(d.rows_materialized(), 4);
        assert_eq!(&d.row(1)[..], matrix.row(1));
        assert_eq!(d.get(0, 2), 2);
        assert!(d.is_reachable(0, 2));
    }

    #[test]
    fn tier_resolution_policy() {
        assert_eq!(
            resolve_tier(DistanceMode::Auto, 2048, 2048),
            DistanceTier::Dense
        );
        assert_eq!(
            resolve_tier(DistanceMode::Auto, 2048, 2049),
            DistanceTier::Lazy
        );
        assert_eq!(
            resolve_tier(DistanceMode::Dense, 10, 10_000),
            DistanceTier::Dense
        );
        assert_eq!(
            resolve_tier(DistanceMode::Lazy, 10_000, 10),
            DistanceTier::Lazy
        );
        assert_eq!(DistanceMode::parse(" Dense "), Some(DistanceMode::Dense));
        assert_eq!(DistanceMode::parse("lazy"), Some(DistanceMode::Lazy));
        assert_eq!(DistanceMode::parse("auto"), Some(DistanceMode::Auto));
        assert_eq!(DistanceMode::parse("bogus"), None);
    }

    #[test]
    fn lazy_clone_shares_adjacency_but_not_rows() {
        let lazy = Distances::lazy(ring_adjacency(6), 4);
        let _ = lazy.row(2);
        assert_eq!(lazy.rows_materialized(), 1);
        let cloned = lazy.clone();
        assert_eq!(cloned.rows_materialized(), 0);
        assert_eq!(cloned.get(2, 5), lazy.get(2, 5));
    }
}
