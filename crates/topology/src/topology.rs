//! The [`Topology`] type: a device coupling graph plus canonical lattice coordinates.

use crate::distance::{distance_settings_from_env, resolve_tier, DistanceTier};
use crate::{DistanceMatrix, Distances};
use qgdp_geometry::Point;
use qgdp_netlist::{
    ComponentGeometry, NetModel, NetlistBuilder, NetlistError, QuantumNetlist, QubitId,
};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// The family a topology belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TopologyKind {
    /// Rectangular grid lattice (surface-code friendly).
    Grid,
    /// IBM-style heavy-hexagon lattice.
    HeavyHex,
    /// Rigetti-style lattice of octagonal rings.
    Octagon,
    /// Tree-shaped Pauli-string-efficient architecture.
    Xtree,
    /// Several chips stitched by inter-chip coupler nets (qLDPC multilayer
    /// geometry model); built by [`crate::multi_chip()`].
    MultiChip,
    /// Any other hand-built connectivity.
    Custom,
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TopologyKind::Grid => "grid",
            TopologyKind::HeavyHex => "heavy-hex",
            TopologyKind::Octagon => "octagon",
            TopologyKind::Xtree => "xtree",
            TopologyKind::MultiChip => "multi-chip",
            TopologyKind::Custom => "custom",
        };
        f.write_str(s)
    }
}

/// A device topology: named coupling graph over physical qubits with canonical
/// (unit-lattice) coordinates for each qubit.
///
/// Canonical coordinates are abstract lattice positions (not micrometres); the global
/// placer scales them onto the die to seed its optimisation, mirroring how the paper's
/// GP starts from the device's logical arrangement.
///
/// The adjacency list and the all-pairs [`DistanceMatrix`] are computed lazily on
/// first use and cached for the lifetime of the topology (the coupling graph is
/// immutable after construction), so harnesses that map thousands of circuits onto
/// one device never recompute them.  The caches are carried by [`Clone`] when already
/// populated and ignored by [`PartialEq`].
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    kind: TopologyKind,
    num_qubits: usize,
    couplings: Vec<(usize, usize)>,
    coords: Vec<Point>,
    adjacency_cache: OnceLock<Vec<Vec<usize>>>,
    distance_cache: OnceLock<Arc<DistanceMatrix>>,
    distances_cache: OnceLock<Distances>,
}

impl PartialEq for Topology {
    /// Structural equality over the graph and coordinates; the lazy caches are
    /// derived data and do not participate.
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.kind == other.kind
            && self.num_qubits == other.num_qubits
            && self.couplings == other.couplings
            && self.coords == other.coords
    }
}

impl Topology {
    /// Creates a topology from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `coords.len() != num_qubits`, if any coupling references a qubit out
    /// of range, couples a qubit to itself, or duplicates another coupling.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        kind: TopologyKind,
        num_qubits: usize,
        mut couplings: Vec<(usize, usize)>,
        coords: Vec<Point>,
    ) -> Self {
        assert_eq!(
            coords.len(),
            num_qubits,
            "coordinate list must have one entry per qubit"
        );
        for c in &mut couplings {
            assert!(
                c.0 < num_qubits && c.1 < num_qubits,
                "coupling ({}, {}) references a qubit outside 0..{num_qubits}",
                c.0,
                c.1
            );
            assert_ne!(c.0, c.1, "self-coupling on qubit {}", c.0);
            if c.0 > c.1 {
                *c = (c.1, c.0);
            }
        }
        let mut sorted = couplings.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            couplings.len(),
            "duplicate couplings in topology {}",
            name.into()
        );
        Topology {
            name: String::new(),
            kind,
            num_qubits,
            couplings,
            coords,
            adjacency_cache: OnceLock::new(),
            distance_cache: OnceLock::new(),
            distances_cache: OnceLock::new(),
        }
        .with_name_internal()
    }

    // `new` consumed `name` in the duplicate-check message; rebuild it lazily.
    fn with_name_internal(mut self) -> Self {
        if self.name.is_empty() {
            self.name = format!("{}-{}", self.kind, self.num_qubits);
        }
        self
    }

    /// Overrides the display name.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The topology's display name (e.g. `"Falcon"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The topology family.
    #[must_use]
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of physical qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of couplings (resonator edges).
    #[must_use]
    pub fn num_couplings(&self) -> usize {
        self.couplings.len()
    }

    /// The coupling edges as index pairs (each with `a < b`).
    #[must_use]
    pub fn couplings(&self) -> &[(usize, usize)] {
        &self.couplings
    }

    /// Canonical lattice coordinate of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn coord(&self, q: QubitId) -> Point {
        self.coords[q.index()]
    }

    /// All canonical coordinates, indexed by qubit id.
    #[must_use]
    pub fn coords(&self) -> &[Point] {
        &self.coords
    }

    /// Degree (number of coupled neighbours) of qubit `q`.
    #[must_use]
    pub fn degree(&self, q: QubitId) -> usize {
        self.couplings
            .iter()
            .filter(|&&(a, b)| a == q.index() || b == q.index())
            .count()
    }

    /// Adjacency list representation of the coupling graph (computed once per
    /// topology and cached; neighbour order follows coupling insertion order).
    #[must_use]
    pub fn adjacency(&self) -> &[Vec<usize>] {
        self.adjacency_cache.get_or_init(|| {
            let mut adj = vec![Vec::new(); self.num_qubits];
            for &(a, b) in &self.couplings {
                adj[a].push(b);
                adj[b].push(a);
            }
            adj
        })
    }

    /// Returns `true` if the coupling graph is connected (or has at most one qubit).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.num_qubits <= 1 {
            return true;
        }
        let adj = self.adjacency();
        let mut seen = vec![false; self.num_qubits];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == self.num_qubits
    }

    /// All-pairs shortest-path lengths (in hops) over the coupling graph, as a shared
    /// flat [`DistanceMatrix`].  Unreachable pairs get [`DistanceMatrix::UNREACHABLE`].
    ///
    /// The matrix is computed by BFS from every qubit on first call and cached for the
    /// lifetime of the topology, so repeated mapping runs (the Fig. 8 protocol maps
    /// 50 × 7 circuits per device) pay for the O(V·E) sweep exactly once.
    #[must_use]
    pub fn distance_matrix(&self) -> &DistanceMatrix {
        self.distance_cache
            .get_or_init(|| Arc::new(self.compute_distance_matrix()))
    }

    /// Tiered hop-distance provider over the coupling graph: the dense
    /// [`DistanceMatrix`] below a size threshold (bit-identical to
    /// [`Topology::distance_matrix`], sharing its allocation and cache), lazy
    /// per-source BFS rows behind a bounded LRU above it — so mapping a circuit
    /// onto a roadmap-scale device never materializes O(V²) memory.
    ///
    /// The tier is resolved once per topology from `QGDP_DISTANCE_MODE`
    /// (`dense` | `lazy` | `auto`, default `auto`), `QGDP_DISTANCE_THRESHOLD`
    /// (default [`crate::DEFAULT_DISTANCE_THRESHOLD`] qubits) and
    /// `QGDP_DISTANCE_ROWS` (LRU capacity, default
    /// [`crate::DEFAULT_DISTANCE_ROWS`]).  Both tiers run the same BFS, so the
    /// returned distances — and everything derived from them, including serve
    /// cache keys — are identical whichever tier is active.
    #[must_use]
    pub fn distances(&self) -> &Distances {
        self.distances_cache.get_or_init(|| {
            let (mode, threshold, lru_rows) = distance_settings_from_env();
            match resolve_tier(mode, threshold, self.num_qubits) {
                DistanceTier::Dense => {
                    let matrix = self
                        .distance_cache
                        .get_or_init(|| Arc::new(self.compute_distance_matrix()));
                    Distances::dense(Arc::clone(matrix))
                }
                DistanceTier::Lazy => Distances::lazy(self.adjacency().to_vec(), lru_rows),
            }
        })
    }

    /// Whether the dense all-pairs matrix has been materialized on this
    /// topology (by [`Topology::distance_matrix`] or a dense-tier
    /// [`Topology::distances`]).  The scaling benchmark uses this to attest
    /// that large-device flows never allocated O(V²) distance memory.
    #[must_use]
    pub fn dense_distances_materialized(&self) -> bool {
        self.distance_cache.get().is_some()
    }

    /// Recomputes the all-pairs distance matrix from scratch, bypassing the cache.
    ///
    /// [`Topology::distance_matrix`] is what the hot paths use; this method exists so
    /// tests can verify the cached matrix against an independent recomputation.
    #[must_use]
    pub fn compute_distance_matrix(&self) -> DistanceMatrix {
        DistanceMatrix::from_adjacency(self.adjacency())
    }

    /// Builds a [`QuantumNetlist`] over this topology's coupling graph.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from the netlist builder (e.g. invalid geometry).
    pub fn to_netlist(
        &self,
        geometry: ComponentGeometry,
        net_model: NetModel,
    ) -> Result<QuantumNetlist, NetlistError> {
        NetlistBuilder::new(geometry)
            .qubits(self.num_qubits)
            .couple_all(self.couplings.iter().copied())
            .net_model(net_model)
            .build()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} qubits, {} couplers, {})",
            self.name,
            self.num_qubits,
            self.couplings.len(),
            self.kind
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Topology {
        Topology::new(
            "square",
            TopologyKind::Custom,
            4,
            vec![(0, 1), (1, 2), (2, 3), (3, 0)],
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(0.0, 1.0),
            ],
        )
        .with_name("square")
    }

    #[test]
    fn basic_accessors() {
        let t = square();
        assert_eq!(t.name(), "square");
        assert_eq!(t.num_qubits(), 4);
        assert_eq!(t.num_couplings(), 4);
        assert_eq!(t.degree(QubitId(0)), 2);
        assert_eq!(t.coord(QubitId(2)), Point::new(1.0, 1.0));
        assert!(t.is_connected());
        assert!(t.to_string().contains("4 qubits"));
    }

    #[test]
    fn shortest_paths_on_a_ring() {
        let t = square();
        let d = t.distance_matrix();
        assert_eq!(d.get(0, 0), 0);
        assert_eq!(d.get(0, 1), 1);
        assert_eq!(d.get(0, 2), 2);
        assert_eq!(d.get(0, 3), 1);
        // The cache returns the same matrix as a fresh recomputation, by reference.
        assert_eq!(*d, t.compute_distance_matrix());
        assert!(std::ptr::eq(d, t.distance_matrix()));
    }

    #[test]
    fn clone_carries_cache_and_equality_ignores_it() {
        let t = square();
        let fresh = t.clone();
        let _ = t.distance_matrix();
        let warmed = t.clone();
        assert_eq!(t, fresh);
        assert_eq!(t, warmed);
        assert_eq!(fresh.distance_matrix(), warmed.distance_matrix());
    }

    #[test]
    fn distances_small_device_shares_dense_matrix() {
        // 4 qubits is far below any sane threshold, so whatever the
        // environment says short of an explicit lazy override, the provider is
        // bit-identical to the dense matrix (and on the dense tier it shares
        // the same allocation the matrix cache holds).
        let t = square();
        let d = t.distances();
        let m = t.distance_matrix();
        assert_eq!(d.dim(), 4);
        for a in 0..4 {
            assert_eq!(&d.row(a)[..], m.row(a));
            for b in 0..4 {
                assert_eq!(d.get(a, b), m.get(a, b));
            }
        }
        if d.tier() == crate::DistanceTier::Dense {
            assert!(std::ptr::eq(&d.row(0)[0], &m.row(0)[0]));
        }
    }

    #[test]
    fn disconnected_graph_detected() {
        let t = Topology::new(
            "disc",
            TopologyKind::Custom,
            4,
            vec![(0, 1), (2, 3)],
            vec![Point::ORIGIN; 4],
        );
        assert!(!t.is_connected());
        let d = t.distance_matrix();
        assert_eq!(d.get(0, 2), DistanceMatrix::UNREACHABLE);
    }

    #[test]
    fn couplings_are_normalised() {
        let t = Topology::new(
            "norm",
            TopologyKind::Custom,
            3,
            vec![(2, 0), (1, 0)],
            vec![Point::ORIGIN; 3],
        );
        assert_eq!(t.couplings(), &[(0, 2), (0, 1)]);
    }

    #[test]
    #[should_panic(expected = "self-coupling")]
    fn self_coupling_panics() {
        let _ = Topology::new(
            "bad",
            TopologyKind::Custom,
            2,
            vec![(1, 1)],
            vec![Point::ORIGIN; 2],
        );
    }

    #[test]
    #[should_panic(expected = "duplicate couplings")]
    fn duplicate_coupling_panics() {
        let _ = Topology::new(
            "bad",
            TopologyKind::Custom,
            2,
            vec![(0, 1), (1, 0)],
            vec![Point::ORIGIN; 2],
        );
    }

    #[test]
    fn to_netlist_builds() {
        let t = square();
        let netlist = t
            .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
            .expect("netlist builds");
        assert_eq!(netlist.num_qubits(), 4);
        assert_eq!(netlist.num_resonators(), 4);
    }

    #[test]
    fn default_name_derived_from_kind() {
        let t = Topology::new("", TopologyKind::Grid, 1, vec![], vec![Point::ORIGIN]);
        assert_eq!(t.name(), "grid-1");
    }
}
