//! Multi-chip module composer: stitches copies of a chip into one device with
//! inter-chip coupler nets.
//!
//! # Paper map
//!
//! The multilayer qLDPC placing/routing paper (see PAPERS.md) models scaled
//! devices as modules of identical chips joined by a sparse set of inter-chip
//! couplers; this module reproduces that geometry over any base [`Topology`].
//! Chips are tiled on a `rows × cols` grid with a fixed gap between bounding
//! boxes, and each pair of adjacent chips is joined by `links_per_edge`
//! couplers between the facing boundary qubits — so the composed graph stays
//! heavy-hex-sparse while the qubit count multiplies, exactly the regime the
//! roadmap generators target.

use crate::{Topology, TopologyKind};
use qgdp_geometry::Point;

/// Closed-form `(num_qubits, num_couplers)` of
/// [`multi_chip`]`(chip, rows, cols, links_per_edge, _)` for a chip with
/// `chip_qubits` qubits and `chip_couplers` couplers.
///
/// Every tile carries a full chip copy; each of the `rows · (cols − 1)`
/// horizontal and `(rows − 1) · cols` vertical adjacencies adds
/// `min(links_per_edge, chip_qubits)` inter-chip couplers.
#[must_use]
pub fn multi_chip_counts(
    chip_qubits: usize,
    chip_couplers: usize,
    rows: usize,
    cols: usize,
    links_per_edge: usize,
) -> (usize, usize) {
    let chips = rows * cols;
    let links = links_per_edge.min(chip_qubits);
    let edges = rows * (cols.saturating_sub(1)) + rows.saturating_sub(1) * cols;
    (chips * chip_qubits, chips * chip_couplers + edges * links)
}

/// Which face of a chip a boundary selection looks at.
#[derive(Clone, Copy)]
enum Face {
    West,
    East,
    North,
    South,
}

/// The `k` qubits of `chip` closest to a face, returned in a deterministic
/// pairing order (sorted along the face, ids breaking ties).
fn boundary(chip: &Topology, face: Face, k: usize) -> Vec<usize> {
    let coords = chip.coords();
    let mut ids: Vec<usize> = (0..chip.num_qubits()).collect();
    // Primary key: distance from the face (outermost first); the pairing order
    // below re-sorts along the face so facing selections line up.
    ids.sort_by(|&a, &b| {
        let (pa, pb) = (coords[a], coords[b]);
        let primary = match face {
            Face::West => pa.x.total_cmp(&pb.x),
            Face::East => pb.x.total_cmp(&pa.x),
            Face::North => pa.y.total_cmp(&pb.y),
            Face::South => pb.y.total_cmp(&pa.y),
        };
        primary
            .then_with(|| match face {
                Face::West | Face::East => pa.y.total_cmp(&pb.y),
                Face::North | Face::South => pa.x.total_cmp(&pb.x),
            })
            .then(a.cmp(&b))
    });
    ids.truncate(k.min(chip.num_qubits()));
    // Pairing order: along the face, so the i-th east pick couples to the i-th
    // west pick of the neighbouring chip.
    ids.sort_by(|&a, &b| {
        let (pa, pb) = (coords[a], coords[b]);
        match face {
            Face::West | Face::East => pa.y.total_cmp(&pb.y).then(a.cmp(&b)),
            Face::North | Face::South => pa.x.total_cmp(&pb.x).then(a.cmp(&b)),
        }
    });
    ids
}

/// Composes a `rows × cols` multi-chip module from copies of `chip`, adjacent
/// chips stitched by `links_per_edge` inter-chip couplers between their facing
/// boundary qubits (clamped to the chip's qubit count), with `gap` canonical
/// lattice units between chip bounding boxes.
///
/// Qubit ids are chip-major (`chip_index * chip.num_qubits() + local_id`,
/// chips in row-major tile order), so counts follow [`multi_chip_counts`]
/// exactly.  The composition is deterministic: boundary qubits are picked by
/// coordinate (ids break ties) and paired in face order.  If `chip` is
/// connected and `links_per_edge > 0`, the module is connected.
///
/// # Panics
///
/// Panics if `rows`, `cols`, `links_per_edge` or `chip.num_qubits()` is zero,
/// or if `gap` is not a positive finite number.
#[must_use]
pub fn multi_chip(
    chip: &Topology,
    rows: usize,
    cols: usize,
    links_per_edge: usize,
    gap: f64,
) -> Topology {
    assert!(rows > 0 && cols > 0, "multi-chip needs at least one tile");
    assert!(
        links_per_edge > 0,
        "multi-chip needs at least one link per edge"
    );
    assert!(chip.num_qubits() > 0, "multi-chip needs a non-empty chip");
    assert!(
        gap.is_finite() && gap > 0.0,
        "chip gap must be positive and finite"
    );

    let n = chip.num_qubits();
    let coords = chip.coords();
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in coords {
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    let pitch_x = (max_x - min_x) + gap;
    let pitch_y = (max_y - min_y) + gap;

    let mut all_coords = Vec::with_capacity(rows * cols * n);
    let mut couplings = Vec::new();
    for tr in 0..rows {
        for tc in 0..cols {
            let base = (tr * cols + tc) * n;
            let (dx, dy) = (tc as f64 * pitch_x, tr as f64 * pitch_y);
            for p in coords {
                all_coords.push(Point::new(p.x + dx, p.y + dy));
            }
            for &(a, b) in chip.couplings() {
                couplings.push((base + a, base + b));
            }
        }
    }

    let links = links_per_edge.min(n);
    let east = boundary(chip, Face::East, links);
    let west = boundary(chip, Face::West, links);
    let north = boundary(chip, Face::North, links);
    let south = boundary(chip, Face::South, links);
    for tr in 0..rows {
        for tc in 0..cols {
            let base = (tr * cols + tc) * n;
            if tc + 1 < cols {
                let right = base + n;
                for (&e, &w) in east.iter().zip(&west) {
                    couplings.push((base + e, right + w));
                }
            }
            if tr + 1 < rows {
                let below = base + cols * n;
                for (&s, &no) in south.iter().zip(&north) {
                    couplings.push((base + s, below + no));
                }
            }
        }
    }

    Topology::new(
        "",
        TopologyKind::MultiChip,
        rows * cols * n,
        couplings,
        all_coords,
    )
    .with_name(format!("MultiChip-{rows}x{cols}-{}", chip.name()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid, heavy_hex_eagle, heavy_hex_falcon};

    #[test]
    fn counts_match_closed_form() {
        for (chip, rows, cols, links) in [
            (heavy_hex_falcon(), 1, 2, 1),
            (heavy_hex_falcon(), 2, 2, 2),
            (heavy_hex_eagle(), 2, 3, 4),
            (grid(3, 3), 3, 1, 2),
        ] {
            let m = multi_chip(&chip, rows, cols, links, 4.0);
            let (q, c) =
                multi_chip_counts(chip.num_qubits(), chip.num_couplings(), rows, cols, links);
            assert_eq!((m.num_qubits(), m.num_couplings()), (q, c), "{}", m.name());
        }
    }

    #[test]
    fn module_is_connected_and_named() {
        let m = multi_chip(&heavy_hex_falcon(), 2, 2, 2, 4.0);
        assert!(m.is_connected());
        assert_eq!(m.kind(), TopologyKind::MultiChip);
        assert_eq!(m.name(), "MultiChip-2x2-Falcon");
    }

    #[test]
    fn coordinates_stay_distinct_across_tiles() {
        let m = multi_chip(&heavy_hex_eagle(), 2, 2, 3, 4.0);
        let mut seen = std::collections::HashSet::new();
        for p in m.coords() {
            let key = (format!("{:.4}", p.x), format!("{:.4}", p.y));
            assert!(seen.insert(key), "duplicate coordinate {p}");
        }
    }

    #[test]
    fn links_clamp_to_chip_size() {
        let tiny = grid(1, 2); // two qubits
        let m = multi_chip(&tiny, 1, 2, 8, 2.0);
        let (q, c) = multi_chip_counts(2, 1, 1, 2, 8);
        assert_eq!((m.num_qubits(), m.num_couplings()), (q, c));
        assert_eq!(m.num_couplings(), 2 + 2); // intra + 2 clamped links
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn zero_links_panics() {
        let _ = multi_chip(&grid(2, 2), 1, 2, 0, 2.0);
    }
}
