//! # qgdp-topology
//!
//! Device connectivity topologies for the qGDP evaluation suite.
//!
//! The paper evaluates six superconducting-processor topologies (Table I): a 25-qubit
//! square grid, the 27-qubit IBM Falcon and 127-qubit IBM Eagle heavy-hex lattices, the
//! 40-qubit Rigetti Aspen-11 and 80-qubit Aspen-M octagon lattices, and the 53-qubit
//! Xtree (Pauli-string-efficient) architecture.  This crate generates those coupling
//! graphs together with canonical lattice coordinates used to seed global placement,
//! and converts them into [`qgdp_netlist::QuantumNetlist`] instances.
//!
//! # Example
//!
//! ```
//! use qgdp_topology::StandardTopology;
//!
//! let falcon = StandardTopology::Falcon.build();
//! assert_eq!(falcon.num_qubits(), 27);
//! assert_eq!(falcon.num_couplings(), 28);
//! assert!(falcon.is_connected());
//! ```
//!
//! # Paper map
//!
//! §III preliminaries and Table I: the six evaluated device topologies, their
//! canonical lattice coordinates (the global placer's seed positions) and the
//! all-pairs coupling-graph distances ([`DistanceMatrix`], cached per device) that
//! the benchmark mapper's SWAP insertion relies on.  [`Topology::to_netlist`]
//! bridges into the [`qgdp_netlist`] component model (Eq. 6 partitioning).
//!
//! Beyond the paper's Table I, the roadmap-scale family
//! ([`roadmap_heavy_hex`], [`multi_chip()`]) follows the vendor roadmap
//! (~23k physical qubits by 2029, 100k by 2033) with the multi-chip/multi-die
//! geometry model of the multilayer qLDPC placing-and-routing paper (see
//! PAPERS.md): identical chips tiled with a gap and stitched by sparse
//! inter-chip coupler nets.  At those sizes the dense distance table is
//! replaced by the tiered [`Distances`] provider (lazy per-source BFS rows
//! behind an LRU), keeping distance queries out of O(V²) memory.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod distance;
pub mod generators;
pub mod multi_chip;
pub mod standard;
pub mod topology;

pub use distance::{
    distance_settings_from_env, resolve_tier, DistanceMatrix, DistanceMode, DistanceRow,
    DistanceTier, Distances, DEFAULT_DISTANCE_ROWS, DEFAULT_DISTANCE_THRESHOLD,
};
pub use generators::{
    grid, heavy_hex_counts, heavy_hex_eagle, heavy_hex_falcon, heavy_hex_rows, octagon_lattice,
    roadmap_heavy_hex, xtree,
};
pub use multi_chip::{multi_chip, multi_chip_counts};
pub use standard::StandardTopology;
pub use topology::{Topology, TopologyKind};
