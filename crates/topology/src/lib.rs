//! # qgdp-topology
//!
//! Device connectivity topologies for the qGDP evaluation suite.
//!
//! The paper evaluates six superconducting-processor topologies (Table I): a 25-qubit
//! square grid, the 27-qubit IBM Falcon and 127-qubit IBM Eagle heavy-hex lattices, the
//! 40-qubit Rigetti Aspen-11 and 80-qubit Aspen-M octagon lattices, and the 53-qubit
//! Xtree (Pauli-string-efficient) architecture.  This crate generates those coupling
//! graphs together with canonical lattice coordinates used to seed global placement,
//! and converts them into [`qgdp_netlist::QuantumNetlist`] instances.
//!
//! # Example
//!
//! ```
//! use qgdp_topology::StandardTopology;
//!
//! let falcon = StandardTopology::Falcon.build();
//! assert_eq!(falcon.num_qubits(), 27);
//! assert_eq!(falcon.num_couplings(), 28);
//! assert!(falcon.is_connected());
//! ```
//!
//! # Paper map
//!
//! §III preliminaries and Table I: the six evaluated device topologies, their
//! canonical lattice coordinates (the global placer's seed positions) and the
//! all-pairs coupling-graph distances ([`DistanceMatrix`], cached per device) that
//! the benchmark mapper's SWAP insertion relies on.  [`Topology::to_netlist`]
//! bridges into the [`qgdp_netlist`] component model (Eq. 6 partitioning).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod distance;
pub mod generators;
pub mod standard;
pub mod topology;

pub use distance::DistanceMatrix;
pub use generators::{
    grid, heavy_hex_eagle, heavy_hex_falcon, heavy_hex_rows, octagon_lattice, xtree,
};
pub use standard::StandardTopology;
pub use topology::{Topology, TopologyKind};
