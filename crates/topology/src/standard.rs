//! The standard six-topology evaluation suite (paper Table I).

use crate::{generators, Topology};
use std::fmt;

/// The six device topologies of the paper's evaluation (Table I).
///
/// # Example
///
/// ```
/// use qgdp_topology::StandardTopology;
///
/// let sizes: Vec<usize> = StandardTopology::all()
///     .iter()
///     .map(|t| t.build().num_qubits())
///     .collect();
/// assert_eq!(sizes, vec![25, 53, 27, 127, 40, 80]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StandardTopology {
    /// 25-qubit square grid (QEC-friendly architecture).
    Grid,
    /// 53-qubit Xtree (Pauli-string-efficient architecture, level 3).
    Xtree,
    /// 27-qubit IBM Falcon heavy-hex processor.
    Falcon,
    /// 127-qubit IBM Eagle heavy-hex processor.
    Eagle,
    /// 40-qubit Rigetti Aspen-11 octagon lattice.
    Aspen11,
    /// 80-qubit Rigetti Aspen-M octagon lattice.
    AspenM,
}

impl StandardTopology {
    /// All six topologies in the order the paper reports them (Fig. 9 / Table III).
    #[must_use]
    pub fn all() -> [StandardTopology; 6] {
        [
            StandardTopology::Grid,
            StandardTopology::Xtree,
            StandardTopology::Falcon,
            StandardTopology::Eagle,
            StandardTopology::Aspen11,
            StandardTopology::AspenM,
        ]
    }

    /// The display name used in the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StandardTopology::Grid => "Grid",
            StandardTopology::Xtree => "Xtree",
            StandardTopology::Falcon => "Falcon",
            StandardTopology::Eagle => "Eagle",
            StandardTopology::Aspen11 => "Aspen-11",
            StandardTopology::AspenM => "Aspen-M",
        }
    }

    /// Number of physical qubits (Table I).
    #[must_use]
    pub fn num_qubits(self) -> usize {
        match self {
            StandardTopology::Grid => 25,
            StandardTopology::Xtree => 53,
            StandardTopology::Falcon => 27,
            StandardTopology::Eagle => 127,
            StandardTopology::Aspen11 => 40,
            StandardTopology::AspenM => 80,
        }
    }

    /// Builds the concrete [`Topology`].
    #[must_use]
    pub fn build(self) -> Topology {
        match self {
            StandardTopology::Grid => generators::grid(5, 5).with_name("Grid"),
            StandardTopology::Xtree => generators::xtree(3).with_name("Xtree"),
            StandardTopology::Falcon => generators::heavy_hex_falcon(),
            StandardTopology::Eagle => generators::heavy_hex_eagle(),
            StandardTopology::Aspen11 => generators::octagon_lattice(1, 5).with_name("Aspen-11"),
            StandardTopology::AspenM => generators::octagon_lattice(2, 5).with_name("Aspen-M"),
        }
    }
}

impl fmt::Display for StandardTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_match_declared_sizes() {
        for t in StandardTopology::all() {
            let topo = t.build();
            assert_eq!(topo.num_qubits(), t.num_qubits(), "{t} qubit count");
            assert!(topo.is_connected(), "{t} must be connected");
            assert_eq!(topo.name(), t.name());
        }
    }

    #[test]
    fn coupler_counts_match_paper_table3() {
        let expected = [
            (StandardTopology::Grid, 40),
            (StandardTopology::Xtree, 52),
            (StandardTopology::Falcon, 28),
            (StandardTopology::Eagle, 144),
            (StandardTopology::Aspen11, 48),
            (StandardTopology::AspenM, 106),
        ];
        for (t, couplers) in expected {
            assert_eq!(t.build().num_couplings(), couplers, "{t} coupler count");
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(StandardTopology::Aspen11.to_string(), "Aspen-11");
        assert_eq!(StandardTopology::Eagle.to_string(), "Eagle");
    }
}
