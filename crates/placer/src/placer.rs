//! The force-directed global placer.
//!
//! Two implementations share the same physics:
//!
//! * [`GlobalPlacer::place`] — the production hot path: nets compiled once into a
//!   [`NetForceField`] (clique→star decomposed), positions and forces in flat arrays,
//!   and the density field maintained incrementally via [`DensityGrid::move_area`];
//! * [`GlobalPlacer::place_reference`] — the original per-iteration formulation
//!   (re-walk every net, rebuild the density grid from scratch), kept as the
//!   executable specification the equivalence tests and the `bench_placer` binary
//!   measure against.
//!
//! In debug builds the optimized path periodically rebuilds the density field from
//! scratch and asserts the incremental state agrees bin-for-bin within floating-point
//! round-off.

use crate::{DensityGrid, GlobalPlacerConfig, NetForceField};
use qgdp_geometry::{Point, Rect, Vector};
use qgdp_netlist::{ComponentId, Placement, QuantumNetlist};
use qgdp_topology::Topology;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Debug builds rebuild the density grid from scratch every this many iterations and
/// assert the incremental field matches (see [`DensityGrid::max_abs_bin_diff`]).
#[cfg(debug_assertions)]
const DENSITY_CHECK_INTERVAL: usize = 16;

/// Device size (qubits) up to which [`scheduled_iterations`] is the identity.
/// 2048 qubits is an order of magnitude past Eagle, so every paper-scale device
/// (and every committed golden) runs the configured iteration count unchanged.
pub const GP_SCHEDULE_THRESHOLD_QUBITS: usize = 2048;

/// Floor [`scheduled_iterations`] never goes below (when the configured base
/// allows it) — enough sweeps for forces to settle even at 100k qubits.
pub const GP_MIN_SCHEDULED_ITERATIONS: usize = 24;

/// Cap on the density grid resolution.  The pre-roadmap sizing rule
/// (`max(16, qubits / 4)` bins per side) is kept verbatim up to 1024 qubits —
/// and with it every committed golden — but it made the *total* bin count
/// quadratic in device size (625M bins at 100k qubits); past the cap the grid
/// stays 256×256 and bins simply get coarser.
pub const MAX_DENSITY_BINS_PER_SIDE: usize = 256;

/// Density-grid resolution (bins per side) for a device of `num_qubits` qubits:
/// the historical `max(16, qubits / 4)`, capped at
/// [`MAX_DENSITY_BINS_PER_SIDE`].  Shared by [`GlobalPlacer::place`] and
/// [`GlobalPlacer::place_reference`], so the two engines stay mutually
/// bit-comparable at every size.
#[must_use]
pub fn density_bins_per_side(num_qubits: usize) -> usize {
    16.max(num_qubits / 4).min(MAX_DENSITY_BINS_PER_SIDE)
}

/// GP iteration budget for a device of `num_qubits` qubits given the configured
/// `base` count: identity up to [`GP_SCHEDULE_THRESHOLD_QUBITS`], then scaled
/// by `√(threshold / n)` (forces act on ever-coarser density bins, so fewer
/// sweeps reach the same settling) with a floor of
/// [`GP_MIN_SCHEDULED_ITERATIONS`].  A pure function of `(base, num_qubits)`
/// and shared by both placement engines, so results stay deterministic per
/// netlist and the engines stay mutually bit-comparable at every size.
#[must_use]
pub fn scheduled_iterations(base: usize, num_qubits: usize) -> usize {
    if num_qubits <= GP_SCHEDULE_THRESHOLD_QUBITS || base == 0 {
        return base;
    }
    let ratio = GP_SCHEDULE_THRESHOLD_QUBITS as f64 / num_qubits as f64;
    let scaled = (base as f64 * ratio.sqrt()).round() as usize;
    scaled.clamp(GP_MIN_SCHEDULED_ITERATIONS.min(base), base)
}

/// Quality statistics of a global placement.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GpStats {
    /// Total half-perimeter wirelength over all nets.
    pub hpwl: f64,
    /// Number of overlapping component pairs (computed exactly by the sort-by-x
    /// sweepline behind `Placement::count_overlaps`, `O(n log n)` on realistic
    /// layouts — it no longer dominates the post-placement statistics).
    pub overlaps: usize,
    /// Maximum coarse-bin density after the final iteration.
    pub max_density: f64,
}

/// The output of global placement: positions, die outline and quality statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalPlacement {
    /// The GP positions for every component.
    pub placement: Placement,
    /// The die (placement region) the layout must stay inside.
    pub die: Rect,
    /// Quality statistics of the final layout.
    pub stats: GpStats,
}

/// Deterministic force-directed global placer (see the crate-level documentation).
#[derive(Debug, Clone, Default)]
pub struct GlobalPlacer {
    config: GlobalPlacerConfig,
}

impl GlobalPlacer {
    /// Creates a placer with the given configuration.
    #[must_use]
    pub fn new(config: GlobalPlacerConfig) -> Self {
        GlobalPlacer { config }
    }

    /// The placer configuration.
    #[must_use]
    pub fn config(&self) -> &GlobalPlacerConfig {
        &self.config
    }

    /// Runs global placement for `netlist`, seeding qubits from `topology`'s canonical
    /// coordinates.
    ///
    /// This is the optimized hot path: nets are compiled once into a
    /// [`NetForceField`] and the density field is maintained incrementally across
    /// iterations.  [`GlobalPlacer::place_reference`] computes the same physics the
    /// original quadratic way; final layouts agree up to floating-point round-off in
    /// the incremental density bookkeeping (the golden quality tests bound the drift).
    ///
    /// # Panics
    ///
    /// Panics if the netlist and topology disagree on the number of qubits.
    #[must_use]
    pub fn place(&self, netlist: &QuantumNetlist, topology: &Topology) -> GlobalPlacement {
        assert_eq!(
            netlist.num_qubits(),
            topology.num_qubits(),
            "netlist and topology must describe the same device"
        );
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let die = netlist.suggested_die(cfg.utilization);
        let lb = netlist.geometry().wire_block_size;

        let seeds = self.seed_positions(netlist, topology, &die, &mut rng);
        let mut placement = seeds.clone();
        placement.clamp_within(netlist, &die);

        let num_qubits = netlist.num_qubits();
        let ids: Vec<ComponentId> = netlist.component_ids().collect();
        let n = ids.len();

        // Flat per-component state, indexed densely (qubits first, then segments).
        let mut pos: Vec<Point> = ids.iter().map(|&id| placement.component(id)).collect();
        let seed_pos: Vec<Point> = pos.clone();
        // Deposited area and die-clamp bounds per component are constant across
        // iterations: the component rect (qubits inflated by the GP-side padding)
        // only translates.  The clamp bounds replicate `Rect::clamped_within`'s
        // interval arithmetic exactly.
        let mut deposited_area = Vec::with_capacity(n);
        let mut clamp_x = Vec::with_capacity(n);
        let mut clamp_y = Vec::with_capacity(n);
        for &id in &ids {
            let rect = netlist.component_rect_at(id, Point::ORIGIN);
            let deposit_rect = if id.is_qubit() {
                rect.inflated(cfg.qubit_padding_cells * lb)
            } else {
                rect
            };
            deposited_area.push(deposit_rect.area());
            clamp_x.push((
                die.left() + rect.width() * 0.5,
                die.right() - rect.width() * 0.5,
            ));
            clamp_y.push((
                die.bottom() + rect.height() * 0.5,
                die.top() - rect.height() * 0.5,
            ));
        }

        let field = NetForceField::compile(netlist, cfg.attraction, cfg.star_threshold);

        let mut density = DensityGrid::new(&die, density_bins_per_side(num_qubits));
        let mut bin: Vec<u32> = Vec::with_capacity(n);
        for k in 0..n {
            density.add_area(pos[k], deposited_area[k]);
            bin.push(density.bin_index_of(pos[k]) as u32);
        }

        let mut forces = vec![Vector::ZERO; n];
        // The reported max density matches the reference formulation, whose grid is
        // last rebuilt at the top of the final iteration (before its moves).
        let mut final_max_density = 0.0;
        let iterations = scheduled_iterations(cfg.iterations, num_qubits);
        for _iteration in 0..iterations {
            if _iteration + 1 == iterations {
                final_max_density = density.max_density();
            }
            #[cfg(debug_assertions)]
            if _iteration % DENSITY_CHECK_INTERVAL == 0 {
                let mut rebuilt = DensityGrid::new(&die, density.bins_per_side());
                for k in 0..n {
                    rebuilt.add_area(pos[k], deposited_area[k]);
                }
                let drift = density.max_abs_bin_diff(&rebuilt);
                let budget = 1e-9 * deposited_area.iter().sum::<f64>().max(1.0);
                debug_assert!(
                    drift <= budget,
                    "incremental density drifted {drift:e} µm² from a rebuild \
                     (budget {budget:e}) at iteration {_iteration}"
                );
            }

            // Net attraction over the compiled force field.
            forces.fill(Vector::ZERO);
            field.accumulate(&pos, &mut forces);

            // Anchor to seed and density spreading.  All spreading forces of one
            // iteration read the same density snapshot, so the per-bin directives are
            // computed once per bin instead of once per component.
            let spread = density.spreading_field(1.0);
            for k in 0..n {
                let anchor_strength = if k < num_qubits {
                    cfg.anchor * 4.0
                } else {
                    cfg.anchor
                };
                forces[k] += (seed_pos[k] - pos[k]) * anchor_strength;
                forces[k] += spread.force_at(bin[k] as usize, pos[k]) * (cfg.repulsion * lb);
            }

            // Apply damped moves; qubits move more slowly than wire blocks (they are
            // macros and the topology seed is already close to final).  Each move
            // updates the density field incrementally (no-op within one bin).
            for k in 0..n {
                let scale = if k < num_qubits { 0.4 } else { 1.0 };
                let step = forces[k] * (cfg.damping * scale);
                let max_step = 4.0 * lb;
                let step = if step.length() > max_step {
                    step.normalized() * max_step
                } else {
                    step
                };
                let new_pos = pos[k] + step;
                let new_center = Point::new(
                    qgdp_geometry::clamp_interval(new_pos.x, clamp_x[k].0, clamp_x[k].1),
                    qgdp_geometry::clamp_interval(new_pos.y, clamp_y[k].0, clamp_y[k].1),
                );
                let new_bin = density.bin_index_of(new_center) as u32;
                if new_bin != bin[k] {
                    density.transfer_area(bin[k] as usize, new_bin as usize, deposited_area[k]);
                    bin[k] = new_bin;
                }
                pos[k] = new_center;
            }
        }

        for (k, &id) in ids.iter().enumerate() {
            placement.set_component(id, pos[k]);
        }
        let stats = GpStats {
            hpwl: hpwl(netlist, &placement),
            overlaps: placement.count_overlaps(netlist),
            max_density: final_max_density,
        };
        GlobalPlacement {
            placement,
            die,
            stats,
        }
    }

    /// The original per-iteration formulation of [`GlobalPlacer::place`]: re-walks
    /// every net as a pairwise clique and rebuilds the density grid from scratch each
    /// iteration.
    ///
    /// Kept as the executable specification of the placer physics — the equivalence
    /// tests and the `bench_placer` binary run it against the optimized hot path.  It
    /// ignores [`GlobalPlacerConfig::star_threshold`] (every net is expanded exactly).
    ///
    /// # Panics
    ///
    /// Panics if the netlist and topology disagree on the number of qubits.
    #[must_use]
    pub fn place_reference(
        &self,
        netlist: &QuantumNetlist,
        topology: &Topology,
    ) -> GlobalPlacement {
        assert_eq!(
            netlist.num_qubits(),
            topology.num_qubits(),
            "netlist and topology must describe the same device"
        );
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let die = netlist.suggested_die(cfg.utilization);
        let lb = netlist.geometry().wire_block_size;

        let seeds = self.seed_positions(netlist, topology, &die, &mut rng);
        let mut placement = seeds.clone();
        placement.clamp_within(netlist, &die);
        let seeds = placement.clone();

        let mut density = DensityGrid::new(&die, density_bins_per_side(netlist.num_qubits()));
        let ids: Vec<ComponentId> = netlist.component_ids().collect();

        for _ in 0..scheduled_iterations(cfg.iterations, netlist.num_qubits()) {
            // Rebuild the density field for this iteration.
            density.clear();
            for &id in &ids {
                let mut rect = placement.rect(netlist, id);
                if id.is_qubit() {
                    rect = rect.inflated(cfg.qubit_padding_cells * lb);
                }
                density.deposit(&rect);
            }

            // Accumulate forces per component.
            let mut forces = vec![Vector::ZERO; ids.len()];
            let index_of = |id: ComponentId| -> usize {
                match id {
                    ComponentId::Qubit(q) => q.index(),
                    ComponentId::Segment(s) => netlist.num_qubits() + s.index(),
                }
            };

            // Net attraction.
            for net in netlist.nets() {
                let pins = net.components();
                for i in 0..pins.len() {
                    for j in (i + 1)..pins.len() {
                        let pa = placement.component(pins[i]);
                        let pb = placement.component(pins[j]);
                        let pull = (pb - pa) * (cfg.attraction * net.weight());
                        forces[index_of(pins[i])] += pull;
                        forces[index_of(pins[j])] -= pull;
                    }
                }
            }

            // Anchor to seed and density spreading.
            for (k, &id) in ids.iter().enumerate() {
                let pos = placement.component(id);
                let anchor_strength = if id.is_qubit() {
                    cfg.anchor * 4.0
                } else {
                    cfg.anchor
                };
                forces[k] += (seeds.component(id) - pos) * anchor_strength;
                forces[k] += density.spreading_force(pos, 1.0) * (cfg.repulsion * lb);
            }

            // Apply damped moves; qubits move more slowly than wire blocks (they are
            // macros and the topology seed is already close to final).
            for (k, &id) in ids.iter().enumerate() {
                let scale = if id.is_qubit() { 0.4 } else { 1.0 };
                let step = forces[k] * (cfg.damping * scale);
                let max_step = 4.0 * lb;
                let step = if step.length() > max_step {
                    step.normalized() * max_step
                } else {
                    step
                };
                let new_pos = placement.component(id) + step;
                let rect = netlist.component_rect_at(id, new_pos).clamped_within(&die);
                placement.set_component(id, rect.center());
            }
        }

        let stats = GpStats {
            hpwl: hpwl(netlist, &placement),
            overlaps: placement.count_overlaps(netlist),
            max_density: density.max_density(),
        };
        GlobalPlacement {
            placement,
            die,
            stats,
        }
    }

    /// Seeds the initial positions: qubits from scaled canonical coordinates, wire
    /// blocks in a small grid around their resonator's midpoint.
    fn seed_positions(
        &self,
        netlist: &QuantumNetlist,
        topology: &Topology,
        die: &Rect,
        rng: &mut ChaCha8Rng,
    ) -> Placement {
        let cfg = &self.config;
        let lb = netlist.geometry().wire_block_size;
        let mut placement = Placement::new(netlist);

        // Scale canonical coordinates onto the die with a margin.
        let coords = topology.coords();
        let (mut min_x, mut max_x, mut min_y, mut max_y) = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for p in coords {
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        let span_x = (max_x - min_x).max(1.0);
        let span_y = (max_y - min_y).max(1.0);
        let margin = netlist
            .geometry()
            .qubit_width
            .max(netlist.geometry().qubit_height);
        let usable_w = (die.width() - 2.0 * margin).max(1.0);
        let usable_h = (die.height() - 2.0 * margin).max(1.0);

        // Qubit seed jitter scales with the lattice pitch: the original electrostatic
        // GP has no lattice prior, so qubits routinely land closer than the quantum
        // minimum spacing; a pitch-proportional jitter reproduces that situation and
        // gives the qubit legalization stage real work to do.
        let n_sqrt = (netlist.num_qubits() as f64).sqrt().max(1.0);
        let pitch = (usable_w / n_sqrt).min(usable_h / n_sqrt);
        let qubit_jitter = cfg.jitter * 0.4 * pitch.max(lb);
        for q in netlist.qubit_ids() {
            let c = coords[q.index()];
            let x = die.left() + margin + (c.x - min_x) / span_x * usable_w;
            let y = die.bottom() + margin + (c.y - min_y) / span_y * usable_h;
            let jitter = Vector::new(
                rng.gen_range(-1.0..1.0) * qubit_jitter,
                rng.gen_range(-1.0..1.0) * qubit_jitter,
            );
            placement.set_qubit(q, Point::new(x, y) + jitter);
        }

        // Wire blocks: a compact square arrangement around the resonator midpoint.
        for r in netlist.resonator_ids() {
            let res = netlist.resonator(r);
            let (qa, qb) = res.endpoints();
            let mid = placement.qubit(qa).midpoint(placement.qubit(qb));
            let n = res.num_segments();
            let cols = (n as f64).sqrt().ceil() as usize;
            for (k, &s) in res.segments().iter().enumerate() {
                let col = k % cols;
                let row = k / cols;
                let offset = Vector::new(
                    (col as f64 - cols as f64 / 2.0) * lb,
                    (row as f64 - (n / cols) as f64 / 2.0) * lb,
                );
                let jitter = Vector::new(
                    rng.gen_range(-1.0..1.0) * cfg.jitter * lb,
                    rng.gen_range(-1.0..1.0) * cfg.jitter * lb,
                );
                placement.set_segment(s, mid + offset + jitter);
            }
        }
        placement
    }
}

/// Total half-perimeter wirelength of all nets under `placement`.
#[must_use]
pub fn hpwl(netlist: &QuantumNetlist, placement: &Placement) -> f64 {
    netlist
        .nets()
        .iter()
        .map(|net| {
            let mut min_x = f64::INFINITY;
            let mut max_x = f64::NEG_INFINITY;
            let mut min_y = f64::INFINITY;
            let mut max_y = f64::NEG_INFINITY;
            for &pin in net.components() {
                let p = placement.component(pin);
                min_x = min_x.min(p.x);
                max_x = max_x.max(p.x);
                min_y = min_y.min(p.y);
                max_y = max_y.max(p.y);
            }
            if min_x.is_finite() {
                (max_x - min_x) + (max_y - min_y)
            } else {
                0.0
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp_netlist::{ComponentGeometry, NetModel, QubitId};
    use qgdp_topology::StandardTopology;

    fn place(
        topology: StandardTopology,
        model: NetModel,
        seed: u64,
    ) -> (QuantumNetlist, GlobalPlacement) {
        let topo = topology.build();
        let netlist = topo
            .to_netlist(ComponentGeometry::default(), model)
            .expect("netlist builds");
        let gp = GlobalPlacer::new(
            GlobalPlacerConfig::default()
                .with_seed(seed)
                .with_iterations(60),
        )
        .place(&netlist, &topo);
        (netlist, gp)
    }

    #[test]
    fn iteration_schedule_is_identity_at_paper_scale() {
        // Every committed golden (Eagle is the largest at 127 qubits) must run
        // the configured count unchanged.
        for n in [1, 127, 1024, GP_SCHEDULE_THRESHOLD_QUBITS] {
            assert_eq!(scheduled_iterations(120, n), 120, "n = {n}");
        }
        assert_eq!(scheduled_iterations(0, 100_000), 0);
    }

    #[test]
    fn iteration_schedule_shrinks_sublinearly_with_floor() {
        let at_10k = scheduled_iterations(120, 10_000);
        let at_100k = scheduled_iterations(120, 100_000);
        assert!(at_10k < 120 && at_10k > at_100k, "{at_10k} vs {at_100k}");
        assert_eq!(at_100k, GP_MIN_SCHEDULED_ITERATIONS);
        // The floor never raises a small configured base.
        assert_eq!(scheduled_iterations(8, 100_000), 8);
    }

    #[test]
    fn density_resolution_keeps_the_historical_rule_then_caps() {
        assert_eq!(density_bins_per_side(25), 16);
        assert_eq!(density_bins_per_side(127), 31);
        assert_eq!(density_bins_per_side(1024), 256);
        assert_eq!(density_bins_per_side(100_000), MAX_DENSITY_BINS_PER_SIDE);
    }

    #[test]
    fn placement_stays_inside_the_die() {
        let (netlist, gp) = place(StandardTopology::Grid, NetModel::Pseudo, 1);
        assert!(gp.placement.is_within(&netlist, &gp.die));
        assert!(gp.stats.hpwl > 0.0);
    }

    #[test]
    fn placement_is_deterministic_for_a_seed() {
        let (_, a) = place(StandardTopology::Falcon, NetModel::Pseudo, 5);
        let (_, b) = place(StandardTopology::Falcon, NetModel::Pseudo, 5);
        assert_eq!(a.placement, b.placement);
        let (_, c) = place(StandardTopology::Falcon, NetModel::Pseudo, 6);
        assert_ne!(a.placement, c.placement);
    }

    #[test]
    fn qubits_stay_near_their_lattice_seeds() {
        let topo = StandardTopology::Grid.build();
        let netlist = topo
            .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
            .unwrap();
        let placer = GlobalPlacer::new(GlobalPlacerConfig::default().with_iterations(60));
        let gp = placer.place(&netlist, &topo);
        // Neighbouring grid qubits should remain roughly ordered: qubit 0 (corner)
        // must stay left of qubit 4 (other corner of the first row).
        assert!(gp.placement.qubit(QubitId(0)).x < gp.placement.qubit(QubitId(4)).x);
        assert!(gp.placement.qubit(QubitId(0)).y < gp.placement.qubit(QubitId(20)).y);
    }

    #[test]
    fn wire_blocks_cluster_near_their_resonator() {
        let (netlist, gp) = place(StandardTopology::Grid, NetModel::Pseudo, 2);
        for r in netlist.resonator_ids() {
            let res = netlist.resonator(r);
            let (qa, qb) = res.endpoints();
            let mid = gp.placement.qubit(qa).midpoint(gp.placement.qubit(qb));
            let endpoint_span = gp.placement.qubit(qa).distance(gp.placement.qubit(qb));
            for &s in res.segments() {
                let d = gp.placement.segment(s).distance(mid);
                assert!(
                    d <= endpoint_span + 12.0 * netlist.geometry().wire_block_size,
                    "segment {s} drifted {d:.1} µm from its resonator midpoint"
                );
            }
        }
    }

    #[test]
    fn gp_produces_overlaps_for_legalization_to_fix() {
        // GP output is intentionally not legal: on a realistic utilization there are
        // overlapping wire blocks, which is what the legalizer resolves.
        let (_, gp) = place(StandardTopology::Aspen11, NetModel::Pseudo, 3);
        assert!(
            gp.stats.overlaps > 0,
            "expected an overlapping (illegal) GP layout"
        );
    }

    #[test]
    fn optimized_place_matches_reference_on_pseudo_nets() {
        // With the default geometry every deposited area is an exactly-representable
        // integer, so the incremental density bookkeeping is exact and the optimized
        // hot path reproduces the reference formulation bit-for-bit.
        for topology in [StandardTopology::Grid, StandardTopology::Falcon] {
            let topo = topology.build();
            let netlist = topo
                .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
                .unwrap();
            let placer = GlobalPlacer::new(GlobalPlacerConfig::default().with_iterations(60));
            let optimized = placer.place(&netlist, &topo);
            let reference = placer.place_reference(&netlist, &topo);
            // Full-value equality: placement, die and every GpStats field (including
            // max_density, whose reporting point matches the reference formulation).
            assert_eq!(
                optimized, reference,
                "optimized placer diverged from the reference on {topology:?}"
            );
        }
    }

    #[test]
    fn optimized_place_matches_reference_on_star_decomposed_hypernets() {
        // NetModel::Clique produces one high-degree hypernet per resonator; the
        // optimized path decomposes them clique→star, which is analytically identical
        // but not bit-identical, so compare within a tight tolerance.
        let topo = StandardTopology::Grid.build();
        let netlist = topo
            .to_netlist(ComponentGeometry::default(), NetModel::Clique)
            .unwrap();
        let placer = GlobalPlacer::new(GlobalPlacerConfig::default().with_iterations(60));
        let optimized = placer.place(&netlist, &topo);
        let reference = placer.place_reference(&netlist, &topo);
        let max_dist = netlist
            .component_ids()
            .map(|id| {
                optimized
                    .placement
                    .component(id)
                    .distance(reference.placement.component(id))
            })
            .fold(0.0f64, f64::max);
        assert!(
            max_dist < 1e-6,
            "star-decomposed placement drifted {max_dist:e} µm from the clique reference"
        );
        let rel = (optimized.stats.hpwl - reference.stats.hpwl).abs() / reference.stats.hpwl;
        assert!(rel < 1e-9, "HPWL drifted by {rel:e}");
        // A threshold above every net degree forces the exact clique expansion, which
        // must then be bit-identical to the reference.
        let exact = GlobalPlacer::new(
            GlobalPlacerConfig::default()
                .with_iterations(60)
                .with_star_threshold(1_000),
        );
        let exact_gp = exact.place(&netlist, &topo);
        let exact_ref = exact.place_reference(&netlist, &topo);
        assert_eq!(exact_gp, exact_ref);
    }

    #[test]
    fn clique_model_wire_blocks_cluster_near_their_resonator() {
        // The star-decomposed hypernet must still pull each resonator's blocks into a
        // clump around its endpoints, like the pseudo mesh does.
        let (netlist, gp) = place(StandardTopology::Grid, NetModel::Clique, 2);
        for r in netlist.resonator_ids() {
            let res = netlist.resonator(r);
            let (qa, qb) = res.endpoints();
            let mid = gp.placement.qubit(qa).midpoint(gp.placement.qubit(qb));
            let endpoint_span = gp.placement.qubit(qa).distance(gp.placement.qubit(qb));
            for &s in res.segments() {
                let d = gp.placement.segment(s).distance(mid);
                assert!(
                    d <= endpoint_span + 12.0 * netlist.geometry().wire_block_size,
                    "segment {s} drifted {d:.1} µm from its resonator midpoint"
                );
            }
        }
    }

    #[test]
    fn hpwl_decreases_relative_to_random_scatter() {
        let topo = StandardTopology::Falcon.build();
        let netlist = topo
            .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
            .unwrap();
        let gp = GlobalPlacer::new(GlobalPlacerConfig::default().with_iterations(80))
            .place(&netlist, &topo);
        // Compare against a scrambled placement in the same die.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut scattered = Placement::new(&netlist);
        for id in netlist.component_ids() {
            scattered.set_component(
                id,
                Point::new(
                    rng.gen_range(gp.die.left()..gp.die.right()),
                    rng.gen_range(gp.die.bottom()..gp.die.top()),
                ),
            );
        }
        assert!(hpwl(&netlist, &gp.placement) < hpwl(&netlist, &scattered));
    }

    #[test]
    fn chain_model_produces_more_elongated_resonators_than_pseudo() {
        // The pseudo-connection strategy exists to compact resonator clumps (§III-D):
        // measure the mean bounding-box half-perimeter of each resonator's blocks.
        let spread = |model: NetModel| -> f64 {
            let (netlist, gp) = place(StandardTopology::Grid, model, 7);
            let mut total = 0.0;
            for r in netlist.resonator_ids() {
                let rects: Vec<_> = netlist
                    .resonator(r)
                    .segments()
                    .iter()
                    .map(|&s| gp.placement.rect(&netlist, ComponentId::Segment(s)))
                    .collect();
                let bb = Rect::bounding_box(rects.iter()).expect("non-empty");
                total += bb.half_perimeter();
            }
            total / netlist.num_resonators() as f64
        };
        let chain = spread(NetModel::Chain);
        let pseudo = spread(NetModel::Pseudo);
        assert!(
            pseudo <= chain * 1.1,
            "pseudo connections should not make resonator clumps larger (chain {chain:.1} vs pseudo {pseudo:.1})"
        );
    }
}
