//! Coarse density grid used for the global placer's spreading force, maintained
//! incrementally across placement iterations.

use qgdp_geometry::{Point, Rect};

/// A coarse grid accumulating component area per bin, used to compute the local
/// density (spreading) force during global placement.
///
/// The grid supports *incremental* maintenance: instead of rebuilding the whole field
/// every iteration, the placer calls [`DensityGrid::move_area`] for each component
/// move (remove-at-old / add-at-new, a no-op when the move stays inside one bin).
/// Incremental updates accumulate floating-point round-off relative to a from-scratch
/// rebuild; [`DensityGrid::max_abs_bin_diff`] lets debug builds bound that drift
/// against a freshly rebuilt grid.
///
/// # Example
///
/// ```
/// use qgdp_geometry::{Point, Rect};
/// use qgdp_placer::DensityGrid;
///
/// let die = Rect::from_lower_left(Point::ORIGIN, 100.0, 100.0);
/// let mut grid = DensityGrid::new(&die, 10);
/// grid.deposit(&Rect::from_center(Point::new(5.0, 5.0), 10.0, 10.0));
/// assert!(grid.density_at(Point::new(5.0, 5.0)) > 0.9);
/// assert_eq!(grid.density_at(Point::new(95.0, 95.0)), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityGrid {
    die: Rect,
    bins_per_side: usize,
    bin_w: f64,
    bin_h: f64,
    area: Vec<f64>,
}

impl DensityGrid {
    /// Creates an empty density grid with `bins_per_side × bins_per_side` bins over
    /// `die`.
    ///
    /// # Panics
    ///
    /// Panics if `bins_per_side` is zero or the die is degenerate.
    #[must_use]
    pub fn new(die: &Rect, bins_per_side: usize) -> Self {
        assert!(bins_per_side > 0, "density grid needs at least one bin");
        assert!(
            die.width() > 0.0 && die.height() > 0.0,
            "die must have positive area"
        );
        DensityGrid {
            die: *die,
            bins_per_side,
            bin_w: die.width() / bins_per_side as f64,
            bin_h: die.height() / bins_per_side as f64,
            area: vec![0.0; bins_per_side * bins_per_side],
        }
    }

    /// Resets all accumulated area to zero.
    pub fn clear(&mut self) {
        self.area.fill(0.0);
    }

    /// Number of bins along one side.
    #[must_use]
    pub fn bins_per_side(&self) -> usize {
        self.bins_per_side
    }

    fn bin_index(&self, col: usize, row: usize) -> usize {
        row * self.bins_per_side + col
    }

    fn bin_of(&self, point: Point) -> (usize, usize) {
        let col = (((point.x - self.die.left()) / self.bin_w).floor() as i64)
            .clamp(0, self.bins_per_side as i64 - 1) as usize;
        let row = (((point.y - self.die.bottom()) / self.bin_h).floor() as i64)
            .clamp(0, self.bins_per_side as i64 - 1) as usize;
        (col, row)
    }

    /// Centre of a bin.
    fn bin_center(&self, col: usize, row: usize) -> Point {
        Point::new(
            self.die.left() + (col as f64 + 0.5) * self.bin_w,
            self.die.bottom() + (row as f64 + 0.5) * self.bin_h,
        )
    }

    /// Adds a component's area to the bin containing its centre.
    ///
    /// Attributing the whole rectangle to one bin (instead of splatting it across the
    /// bins it overlaps) is a deliberate simplification: the grid is coarse and only
    /// steers a spreading force, so per-bin exactness does not matter.
    pub fn deposit(&mut self, rect: &Rect) {
        self.add_area(rect.center(), rect.area());
    }

    /// Adds `area` to the bin containing `center`.
    pub fn add_area(&mut self, center: Point, area: f64) {
        let (col, row) = self.bin_of(center);
        let idx = self.bin_index(col, row);
        self.area[idx] += area;
    }

    /// Removes `area` from the bin containing `center` (the inverse of
    /// [`DensityGrid::add_area`]).
    pub fn remove_area(&mut self, center: Point, area: f64) {
        let (col, row) = self.bin_of(center);
        let idx = self.bin_index(col, row);
        self.area[idx] -= area;
    }

    /// Incrementally moves `area` from the bin containing `from` to the bin containing
    /// `to`.  A move that stays inside one bin leaves the field bit-unchanged.
    pub fn move_area(&mut self, from: Point, to: Point, area: f64) {
        let old = self.bin_of(from);
        let new = self.bin_of(to);
        if old == new {
            return;
        }
        let old_idx = self.bin_index(old.0, old.1);
        let new_idx = self.bin_index(new.0, new.1);
        self.area[old_idx] -= area;
        self.area[new_idx] += area;
    }

    /// The largest absolute per-bin area difference against `other`.
    ///
    /// Used by the placer's debug-build checksum: after a run of incremental
    /// [`DensityGrid::move_area`] updates, the field must agree with a from-scratch
    /// rebuild up to floating-point round-off.
    ///
    /// # Panics
    ///
    /// Panics if the two grids have different bin counts.
    #[must_use]
    pub fn max_abs_bin_diff(&self, other: &DensityGrid) -> f64 {
        assert_eq!(
            self.area.len(),
            other.area.len(),
            "grids must have the same bin count"
        );
        self.area
            .iter()
            .zip(&other.area)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// The density (accumulated area / bin area) of the bin containing `point`.
    #[must_use]
    pub fn density_at(&self, point: Point) -> f64 {
        let (col, row) = self.bin_of(point);
        self.area[self.bin_index(col, row)] / (self.bin_w * self.bin_h)
    }

    /// The maximum bin density over the whole grid.
    #[must_use]
    pub fn max_density(&self) -> f64 {
        self.area
            .iter()
            .map(|a| a / (self.bin_w * self.bin_h))
            .fold(0.0, f64::max)
    }

    /// The dense (linear, row-major) index of the bin containing `point`, clamped to
    /// the grid for out-of-die points.
    ///
    /// Pairs with [`DensityGrid::transfer_area`] and [`SpreadingField::force_at`] so
    /// the placer's hot loop can track each component's bin instead of re-deriving it
    /// from coordinates every iteration.
    #[must_use]
    pub fn bin_index_of(&self, point: Point) -> usize {
        let (col, row) = self.bin_of(point);
        self.bin_index(col, row)
    }

    /// Incrementally moves `area` between two bins given their linear indices (the
    /// index-based twin of [`DensityGrid::move_area`]).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn transfer_area(&mut self, from_bin: usize, to_bin: usize, area: f64) {
        if from_bin == to_bin {
            return;
        }
        self.area[from_bin] -= area;
        self.area[to_bin] += area;
    }

    /// The per-bin spreading directive: everything about the spreading force that does
    /// not depend on the exact query point.
    fn directive(&self, col: usize, row: usize, target_density: f64) -> SpreadDirective {
        let bin_area = self.bin_w * self.bin_h;
        let here = self.area[self.bin_index(col, row)] / bin_area;
        if here <= target_density {
            return SpreadDirective::Calm;
        }
        // Push towards the least dense of the 4-neighbours (or away from the bin
        // centre when all neighbours are equally dense).
        let mut best: Option<(f64, Point)> = None;
        for (dc, dr) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)] {
            let nc = col as i64 + dc;
            let nr = row as i64 + dr;
            if nc < 0
                || nr < 0
                || nc as usize >= self.bins_per_side
                || nr as usize >= self.bins_per_side
            {
                continue;
            }
            let (nc, nr) = (nc as usize, nr as usize);
            let d = self.area[self.bin_index(nc, nr)] / (self.bin_w * self.bin_h);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, self.bin_center(nc, nr)));
            }
        }
        let overflow = here - target_density;
        match best {
            Some((neighbor_density, target)) if neighbor_density < here => {
                SpreadDirective::Toward { target, overflow }
            }
            _ => SpreadDirective::Flat {
                center: self.bin_center(col, row),
                overflow,
            },
        }
    }

    /// The spreading force at `point`: a vector pointing from the centre of the
    /// over-filled neighbourhood towards lower density, scaled by how much the local
    /// density exceeds `target_density`.
    ///
    /// Returns the zero vector when the local density is at or below the target.
    #[must_use]
    pub fn spreading_force(&self, point: Point, target_density: f64) -> qgdp_geometry::Vector {
        let (col, row) = self.bin_of(point);
        self.directive(col, row, target_density).force_at(point)
    }

    /// Snapshots the spreading directive of *every* bin for the current density state.
    ///
    /// The placer evaluates all spreading forces of one iteration against the same
    /// density snapshot, so components sharing a bin (wire-block clumps routinely do)
    /// can share one neighbour scan: querying the field via
    /// [`SpreadingField::force_at`] is bit-identical to calling
    /// [`DensityGrid::spreading_force`] on the grid the field was built from.
    #[must_use]
    pub fn spreading_field(&self, target_density: f64) -> SpreadingField {
        let mut directives = Vec::with_capacity(self.area.len());
        for row in 0..self.bins_per_side {
            for col in 0..self.bins_per_side {
                directives.push(self.directive(col, row, target_density));
            }
        }
        SpreadingField { directives }
    }
}

/// The point-independent part of one bin's spreading force.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SpreadDirective {
    /// Density at or below target: no force.
    Calm,
    /// Push towards the least dense 4-neighbour's centre.
    Toward {
        /// Centre of the least dense neighbour.
        target: Point,
        /// How much the local density exceeds the target.
        overflow: f64,
    },
    /// Locally flat: nudge away from the bin centre to break ties.
    Flat {
        /// Centre of the overfull bin itself.
        center: Point,
        /// How much the local density exceeds the target.
        overflow: f64,
    },
}

impl SpreadDirective {
    fn force_at(self, point: Point) -> qgdp_geometry::Vector {
        match self {
            SpreadDirective::Calm => qgdp_geometry::Vector::ZERO,
            SpreadDirective::Toward { target, overflow } => {
                (target - point).normalized() * overflow
            }
            SpreadDirective::Flat { center, overflow } => (point - center).normalized() * overflow,
        }
    }
}

/// A per-bin snapshot of spreading directives (see [`DensityGrid::spreading_field`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SpreadingField {
    directives: Vec<SpreadDirective>,
}

impl SpreadingField {
    /// The spreading force at `point`, which must lie in the bin with linear index
    /// `bin` (as returned by [`DensityGrid::bin_index_of`]).
    ///
    /// # Panics
    ///
    /// Panics if `bin` is out of range.
    #[must_use]
    pub fn force_at(&self, bin: usize, point: Point) -> qgdp_geometry::Vector {
        self.directives[bin].force_at(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die() -> Rect {
        Rect::from_lower_left(Point::ORIGIN, 100.0, 100.0)
    }

    #[test]
    fn deposit_and_density() {
        let mut g = DensityGrid::new(&die(), 10);
        let r = Rect::from_center(Point::new(15.0, 15.0), 10.0, 10.0);
        g.deposit(&r);
        // Bin area is 100; deposited area is 100 → density 1.0 in that bin.
        assert!((g.density_at(Point::new(15.0, 15.0)) - 1.0).abs() < 1e-9);
        assert_eq!(g.density_at(Point::new(85.0, 85.0)), 0.0);
        assert!((g.max_density() - 1.0).abs() < 1e-9);
        g.clear();
        assert_eq!(g.max_density(), 0.0);
    }

    #[test]
    fn spreading_force_points_away_from_overflow() {
        let mut g = DensityGrid::new(&die(), 10);
        // Pile lots of area into the bin at (15, 15).
        for _ in 0..5 {
            g.deposit(&Rect::from_center(Point::new(15.0, 15.0), 10.0, 10.0));
        }
        let f = g.spreading_force(Point::new(15.0, 15.0), 1.0);
        assert!(f.length() > 0.0);
        // Below target: no force.
        let calm = g.spreading_force(Point::new(85.0, 85.0), 1.0);
        assert_eq!(calm, qgdp_geometry::Vector::ZERO);
    }

    #[test]
    fn move_area_matches_remove_then_add() {
        let mut incremental = DensityGrid::new(&die(), 10);
        let mut rebuilt = DensityGrid::new(&die(), 10);
        let a = Point::new(15.0, 15.0);
        let b = Point::new(75.0, 35.0);
        incremental.add_area(a, 120.0);
        incremental.move_area(a, b, 120.0);
        rebuilt.add_area(b, 120.0);
        assert!(incremental.max_abs_bin_diff(&rebuilt) < 1e-12);
        // Intra-bin move: bit-identical, nothing touched.
        let before = incremental.clone();
        incremental.move_area(b, Point::new(75.2, 35.1), 120.0);
        assert_eq!(incremental, before);
    }

    #[test]
    fn max_abs_bin_diff_detects_divergence() {
        let mut a = DensityGrid::new(&die(), 4);
        let b = DensityGrid::new(&die(), 4);
        assert_eq!(a.max_abs_bin_diff(&b), 0.0);
        a.add_area(Point::new(50.0, 50.0), 7.5);
        assert!((a.max_abs_bin_diff(&b) - 7.5).abs() < 1e-12);
        a.remove_area(Point::new(50.0, 50.0), 7.5);
        assert!(a.max_abs_bin_diff(&b) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same bin count")]
    fn bin_diff_requires_matching_grids() {
        let a = DensityGrid::new(&die(), 4);
        let b = DensityGrid::new(&die(), 5);
        let _ = a.max_abs_bin_diff(&b);
    }

    #[test]
    fn spreading_field_is_bit_identical_to_spreading_force() {
        let mut g = DensityGrid::new(&die(), 10);
        // An irregular density landscape: clumps, a ridge, and calm regions.
        for i in 0..40 {
            let x = 5.0 + (i % 7) as f64 * 13.0;
            let y = 5.0 + (i % 5) as f64 * 19.0;
            g.deposit(&Rect::from_center(Point::new(x, y), 12.0, 9.0));
        }
        let field = g.spreading_field(1.0);
        for i in 0..200 {
            let p = Point::new((i % 20) as f64 * 5.0 + 1.3, (i / 20) as f64 * 9.7 + 0.4);
            let direct = g.spreading_force(p, 1.0);
            let cached = field.force_at(g.bin_index_of(p), p);
            assert_eq!(direct, cached, "divergence at {p}");
        }
    }

    #[test]
    fn transfer_area_matches_move_area() {
        let mut by_point = DensityGrid::new(&die(), 8);
        let mut by_index = DensityGrid::new(&die(), 8);
        let a = Point::new(12.0, 12.0);
        let b = Point::new(88.0, 43.0);
        by_point.add_area(a, 55.0);
        by_index.add_area(a, 55.0);
        by_point.move_area(a, b, 55.0);
        by_index.transfer_area(by_index.bin_index_of(a), by_index.bin_index_of(b), 55.0);
        assert_eq!(by_point, by_index);
        // Same-bin transfer is a no-op.
        let before = by_index.clone();
        let bin = by_index.bin_index_of(b);
        by_index.transfer_area(bin, bin, 55.0);
        assert_eq!(by_index, before);
    }

    #[test]
    fn out_of_die_points_are_clamped_to_edge_bins() {
        let mut g = DensityGrid::new(&die(), 4);
        g.deposit(&Rect::from_center(Point::new(-50.0, -50.0), 10.0, 10.0));
        assert!(g.density_at(Point::new(0.0, 0.0)) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = DensityGrid::new(&die(), 0);
    }
}
