//! Coarse density grid used for the global placer's spreading force.

use qgdp_geometry::{Point, Rect};

/// A coarse grid accumulating component area per bin, used to compute the local
/// density (spreading) force during global placement.
///
/// # Example
///
/// ```
/// use qgdp_geometry::{Point, Rect};
/// use qgdp_placer::DensityGrid;
///
/// let die = Rect::from_lower_left(Point::ORIGIN, 100.0, 100.0);
/// let mut grid = DensityGrid::new(&die, 10);
/// grid.deposit(&Rect::from_center(Point::new(5.0, 5.0), 10.0, 10.0));
/// assert!(grid.density_at(Point::new(5.0, 5.0)) > 0.9);
/// assert_eq!(grid.density_at(Point::new(95.0, 95.0)), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityGrid {
    die: Rect,
    bins_per_side: usize,
    bin_w: f64,
    bin_h: f64,
    area: Vec<f64>,
}

impl DensityGrid {
    /// Creates an empty density grid with `bins_per_side × bins_per_side` bins over
    /// `die`.
    ///
    /// # Panics
    ///
    /// Panics if `bins_per_side` is zero or the die is degenerate.
    #[must_use]
    pub fn new(die: &Rect, bins_per_side: usize) -> Self {
        assert!(bins_per_side > 0, "density grid needs at least one bin");
        assert!(
            die.width() > 0.0 && die.height() > 0.0,
            "die must have positive area"
        );
        DensityGrid {
            die: *die,
            bins_per_side,
            bin_w: die.width() / bins_per_side as f64,
            bin_h: die.height() / bins_per_side as f64,
            area: vec![0.0; bins_per_side * bins_per_side],
        }
    }

    /// Resets all accumulated area to zero.
    pub fn clear(&mut self) {
        self.area.fill(0.0);
    }

    /// Number of bins along one side.
    #[must_use]
    pub fn bins_per_side(&self) -> usize {
        self.bins_per_side
    }

    fn bin_index(&self, col: usize, row: usize) -> usize {
        row * self.bins_per_side + col
    }

    fn bin_of(&self, point: Point) -> (usize, usize) {
        let col = (((point.x - self.die.left()) / self.bin_w).floor() as i64)
            .clamp(0, self.bins_per_side as i64 - 1) as usize;
        let row = (((point.y - self.die.bottom()) / self.bin_h).floor() as i64)
            .clamp(0, self.bins_per_side as i64 - 1) as usize;
        (col, row)
    }

    /// Centre of a bin.
    fn bin_center(&self, col: usize, row: usize) -> Point {
        Point::new(
            self.die.left() + (col as f64 + 0.5) * self.bin_w,
            self.die.bottom() + (row as f64 + 0.5) * self.bin_h,
        )
    }

    /// Adds a component's area to the bin containing its centre.
    ///
    /// Attributing the whole rectangle to one bin (instead of splatting it across the
    /// bins it overlaps) is a deliberate simplification: the grid is coarse and only
    /// steers a spreading force, so per-bin exactness does not matter.
    pub fn deposit(&mut self, rect: &Rect) {
        let (col, row) = self.bin_of(rect.center());
        let idx = self.bin_index(col, row);
        self.area[idx] += rect.area();
    }

    /// The density (accumulated area / bin area) of the bin containing `point`.
    #[must_use]
    pub fn density_at(&self, point: Point) -> f64 {
        let (col, row) = self.bin_of(point);
        self.area[self.bin_index(col, row)] / (self.bin_w * self.bin_h)
    }

    /// The maximum bin density over the whole grid.
    #[must_use]
    pub fn max_density(&self) -> f64 {
        self.area
            .iter()
            .map(|a| a / (self.bin_w * self.bin_h))
            .fold(0.0, f64::max)
    }

    /// The spreading force at `point`: a vector pointing from the centre of the
    /// over-filled neighbourhood towards lower density, scaled by how much the local
    /// density exceeds `target_density`.
    ///
    /// Returns the zero vector when the local density is at or below the target.
    #[must_use]
    pub fn spreading_force(&self, point: Point, target_density: f64) -> qgdp_geometry::Vector {
        let (col, row) = self.bin_of(point);
        let here = self.area[self.bin_index(col, row)] / (self.bin_w * self.bin_h);
        if here <= target_density {
            return qgdp_geometry::Vector::ZERO;
        }
        // Push towards the least dense of the 4-neighbours (or away from the bin
        // centre when all neighbours are equally dense).
        let mut best: Option<(f64, Point)> = None;
        for (dc, dr) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)] {
            let nc = col as i64 + dc;
            let nr = row as i64 + dr;
            if nc < 0
                || nr < 0
                || nc as usize >= self.bins_per_side
                || nr as usize >= self.bins_per_side
            {
                continue;
            }
            let (nc, nr) = (nc as usize, nr as usize);
            let d = self.area[self.bin_index(nc, nr)] / (self.bin_w * self.bin_h);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, self.bin_center(nc, nr)));
            }
        }
        let overflow = here - target_density;
        match best {
            Some((neighbor_density, target)) if neighbor_density < here => {
                (target - point).normalized() * overflow
            }
            _ => {
                // Locally flat: nudge away from the bin centre to break ties.
                let away = point - self.bin_center(col, row);
                away.normalized() * overflow
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die() -> Rect {
        Rect::from_lower_left(Point::ORIGIN, 100.0, 100.0)
    }

    #[test]
    fn deposit_and_density() {
        let mut g = DensityGrid::new(&die(), 10);
        let r = Rect::from_center(Point::new(15.0, 15.0), 10.0, 10.0);
        g.deposit(&r);
        // Bin area is 100; deposited area is 100 → density 1.0 in that bin.
        assert!((g.density_at(Point::new(15.0, 15.0)) - 1.0).abs() < 1e-9);
        assert_eq!(g.density_at(Point::new(85.0, 85.0)), 0.0);
        assert!((g.max_density() - 1.0).abs() < 1e-9);
        g.clear();
        assert_eq!(g.max_density(), 0.0);
    }

    #[test]
    fn spreading_force_points_away_from_overflow() {
        let mut g = DensityGrid::new(&die(), 10);
        // Pile lots of area into the bin at (15, 15).
        for _ in 0..5 {
            g.deposit(&Rect::from_center(Point::new(15.0, 15.0), 10.0, 10.0));
        }
        let f = g.spreading_force(Point::new(15.0, 15.0), 1.0);
        assert!(f.length() > 0.0);
        // Below target: no force.
        let calm = g.spreading_force(Point::new(85.0, 85.0), 1.0);
        assert_eq!(calm, qgdp_geometry::Vector::ZERO);
    }

    #[test]
    fn out_of_die_points_are_clamped_to_edge_bins() {
        let mut g = DensityGrid::new(&die(), 4);
        g.deposit(&Rect::from_center(Point::new(-50.0, -50.0), 10.0, 10.0));
        assert!(g.density_at(Point::new(0.0, 0.0)) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = DensityGrid::new(&die(), 0);
    }
}
