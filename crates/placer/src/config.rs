//! Configuration for the force-directed global placer.

/// Tuning parameters for [`crate::GlobalPlacer`].
///
/// The defaults are calibrated so that the six standard topologies produce GP layouts
/// with moderate overlap (the situation the legalizers are designed for): qubits close
/// to their lattice seeds, wire blocks clumped near their resonators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalPlacerConfig {
    /// Target area utilisation used to size the die (component area / die area).
    pub utilization: f64,
    /// Number of force iterations.
    pub iterations: usize,
    /// Spring constant for net attraction.
    pub attraction: f64,
    /// Strength of the anchor pulling each component back to its seed position.
    pub anchor: f64,
    /// Strength of the local density repulsion.
    pub repulsion: f64,
    /// Step damping factor applied to the accumulated force each iteration.
    pub damping: f64,
    /// Standard deviation (in wire-block units) of the random jitter applied to seed
    /// positions, which breaks symmetry between co-located wire blocks.
    pub jitter: f64,
    /// Extra clearance (in wire-block units) added around qubits when computing
    /// repulsion — the GP-side *padding* discussed in §III-C.
    pub qubit_padding_cells: f64,
    /// Nets with more than this many pins are decomposed clique→star
    /// ([`qgdp_netlist::NetDecomposition`]): the star form is analytically identical
    /// for the quadratic force model but costs `O(k)` instead of `O(k²)` per
    /// iteration.  Nets at or below the threshold use the exact pairwise expansion.
    pub star_threshold: usize,
    /// RNG seed; the placer is fully deterministic for a given seed.
    pub seed: u64,
}

impl GlobalPlacerConfig {
    /// The default configuration (utilisation 0.45, 120 iterations).
    #[must_use]
    pub fn new() -> Self {
        GlobalPlacerConfig {
            utilization: 0.45,
            iterations: 120,
            attraction: 0.12,
            anchor: 0.05,
            repulsion: 0.35,
            damping: 0.8,
            jitter: 0.6,
            qubit_padding_cells: 1.0,
            star_threshold: DEFAULT_STAR_THRESHOLD,
            seed: DEFAULT_SEED,
        }
    }

    /// Returns a copy with a different RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different iteration count.
    #[must_use]
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Returns a copy with a different clique→star decomposition threshold.
    ///
    /// # Panics
    ///
    /// Panics if `star_threshold` is below 2 (a 2-pin net cannot be decomposed
    /// further).
    #[must_use]
    pub fn with_star_threshold(mut self, star_threshold: usize) -> Self {
        assert!(
            star_threshold >= 2,
            "star threshold must be at least 2, got {star_threshold}"
        );
        self.star_threshold = star_threshold;
        self
    }

    /// Returns a copy with a different utilisation target.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not in `(0, 1]`.
    #[must_use]
    pub fn with_utilization(mut self, utilization: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1], got {utilization}"
        );
        self.utilization = utilization;
        self
    }
}

/// RNG seed used by [`GlobalPlacerConfig::default`].
pub const DEFAULT_SEED: u64 = 0x5eed_0001;

/// Default clique→star threshold: nets with more than this many pins use the star
/// form.  Every net the standard [`qgdp_netlist::NetModel::Pseudo`] model produces is
/// 2-pin, so the default only kicks in for hypernets
/// ([`qgdp_netlist::NetModel::Clique`] or hand-built multi-pin nets).
pub const DEFAULT_STAR_THRESHOLD: usize = 4;

impl Default for GlobalPlacerConfig {
    fn default() -> Self {
        GlobalPlacerConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = GlobalPlacerConfig::default();
        assert!(c.utilization > 0.0 && c.utilization <= 1.0);
        assert!(c.iterations > 0);
        assert!(c.damping > 0.0 && c.damping <= 1.0);
    }

    #[test]
    fn builder_helpers() {
        let c = GlobalPlacerConfig::default()
            .with_seed(7)
            .with_iterations(10)
            .with_utilization(0.6);
        assert_eq!(c.seed, 7);
        assert_eq!(c.iterations, 10);
        assert_eq!(c.utilization, 0.6);
    }

    #[test]
    #[should_panic(expected = "utilization must be in (0, 1]")]
    fn bad_utilization_panics() {
        let _ = GlobalPlacerConfig::default().with_utilization(1.5);
    }

    #[test]
    fn star_threshold_builder() {
        let c = GlobalPlacerConfig::default().with_star_threshold(9);
        assert_eq!(c.star_threshold, 9);
        assert_eq!(
            GlobalPlacerConfig::default().star_threshold,
            DEFAULT_STAR_THRESHOLD
        );
    }

    #[test]
    #[should_panic(expected = "star threshold must be at least 2")]
    fn tiny_star_threshold_panics() {
        let _ = GlobalPlacerConfig::default().with_star_threshold(1);
    }
}
