//! The compiled net force field: clique→star expansion of the netlist into flat,
//! index-based spring terms.
//!
//! The placer's original attraction loop re-walked every [`qgdp_netlist::Net`] each
//! iteration, resolving [`ComponentId`]s through enum matches and expanding every net
//! as a pairwise clique — `O(Σ pins²)` per iteration.  [`NetForceField::compile`]
//! performs that expansion *once* per placement:
//!
//! * nets at or below the configured star threshold become flat `(a, b, w)` pair
//!   terms with the `attraction × net.weight` product pre-multiplied;
//! * larger nets become star terms — one centroid evaluation and `k` spokes — which
//!   for the quadratic force model is analytically identical to the clique expansion
//!   (see [`qgdp_netlist::star_forces`]) at `O(k)` instead of `O(k²)` cost.
//!
//! Per iteration only [`NetForceField::accumulate`] runs: tight loops over dense
//! `u32` indices with no id resolution and no allocation.

use qgdp_geometry::{Point, Vector};
use qgdp_netlist::{ComponentId, NetDecomposition, QuantumNetlist};

/// One exact pairwise spring term: pins `a` and `b` pull each other with `weight`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PairTerm {
    a: u32,
    b: u32,
    weight: f64,
}

/// One star term: the pins in `star_pins[start..end]` are pulled towards their
/// centroid with spoke weight `weight × k` (the clique-equivalent scaling).
#[derive(Debug, Clone, Copy, PartialEq)]
struct StarTerm {
    start: u32,
    end: u32,
    weight: f64,
}

/// The netlist's nets compiled into flat force terms over dense component indices
/// (qubits first, then segments — the same order as
/// [`QuantumNetlist::component_ids`]).
///
/// # Example
///
/// ```
/// use qgdp_geometry::{Point, Vector};
/// use qgdp_netlist::{ComponentGeometry, NetModel, NetlistBuilder};
/// use qgdp_placer::NetForceField;
///
/// let netlist = NetlistBuilder::new(ComponentGeometry::default())
///     .qubits(2)
///     .couple(0, 1)
///     .build()?;
/// let field = NetForceField::compile(&netlist, 0.1, 4);
/// let positions = vec![Point::ORIGIN; netlist.num_components()];
/// let mut forces = vec![Vector::ZERO; netlist.num_components()];
/// field.accumulate(&positions, &mut forces); // all-coincident pins: zero force
/// assert!(forces.iter().all(|f| f.length() == 0.0));
/// # Ok::<(), qgdp_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetForceField {
    pairs: Vec<PairTerm>,
    stars: Vec<StarTerm>,
    star_pins: Vec<u32>,
}

impl NetForceField {
    /// Compiles every net of `netlist` into force terms.
    ///
    /// `attraction` is the placer's spring constant (pre-multiplied into every term so
    /// the per-iteration loop performs no extra work); nets with more than
    /// `star_threshold` pins are decomposed clique→star.
    ///
    /// Pair terms are emitted in net order with pins expanded `i < j`, matching the
    /// evaluation order of the original nested attraction loop bit-for-bit.
    #[must_use]
    pub fn compile(netlist: &QuantumNetlist, attraction: f64, star_threshold: usize) -> Self {
        let num_qubits = netlist.num_qubits();
        let dense = |id: ComponentId| -> u32 {
            match id {
                ComponentId::Qubit(q) => q.index() as u32,
                ComponentId::Segment(s) => (num_qubits + s.index()) as u32,
            }
        };

        let mut pairs = Vec::new();
        let mut stars = Vec::new();
        let mut star_pins: Vec<u32> = Vec::new();
        for net in netlist.nets() {
            let weight = attraction * net.weight();
            let pins = net.components();
            match net.decomposition(star_threshold) {
                NetDecomposition::Clique => {
                    for i in 0..pins.len() {
                        for j in (i + 1)..pins.len() {
                            pairs.push(PairTerm {
                                a: dense(pins[i]),
                                b: dense(pins[j]),
                                weight,
                            });
                        }
                    }
                }
                NetDecomposition::Star => {
                    let start = star_pins.len() as u32;
                    star_pins.extend(pins.iter().map(|&p| dense(p)));
                    stars.push(StarTerm {
                        start,
                        end: star_pins.len() as u32,
                        weight,
                    });
                }
            }
        }
        NetForceField {
            pairs,
            stars,
            star_pins,
        }
    }

    /// Number of exact pairwise terms.
    #[must_use]
    pub fn num_pair_terms(&self) -> usize {
        self.pairs.len()
    }

    /// Number of star (decomposed high-degree) terms.
    #[must_use]
    pub fn num_star_terms(&self) -> usize {
        self.stars.len()
    }

    /// Accumulates the attraction force of every term into `forces`.
    ///
    /// `positions` and `forces` are indexed by dense component index; `forces` is not
    /// cleared first, so the caller can fold several fields (or other forces) into the
    /// same buffer.
    ///
    /// # Panics
    ///
    /// Panics (via slice indexing) if `positions` or `forces` are shorter than the
    /// largest pin index seen at compile time.
    pub fn accumulate(&self, positions: &[Point], forces: &mut [Vector]) {
        for term in &self.pairs {
            let (a, b) = (term.a as usize, term.b as usize);
            let pull = (positions[b] - positions[a]) * term.weight;
            forces[a] += pull;
            forces[b] -= pull;
        }
        for star in &self.stars {
            let pins = &self.star_pins[star.start as usize..star.end as usize];
            let k = pins.len() as f64;
            let (sx, sy) = pins.iter().fold((0.0, 0.0), |(sx, sy), &p| {
                let pos = positions[p as usize];
                (sx + pos.x, sy + pos.y)
            });
            let centroid = Point::new(sx / k, sy / k);
            let spoke = star.weight * k;
            for &p in pins {
                let p = p as usize;
                forces[p] += (centroid - positions[p]) * spoke;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp_netlist::{clique_forces, ComponentGeometry, NetModel, NetlistBuilder};

    fn path_netlist(model: NetModel) -> QuantumNetlist {
        NetlistBuilder::new(ComponentGeometry::default())
            .qubits(3)
            .couple(0, 1)
            .couple(1, 2)
            .net_model(model)
            .build()
            .expect("valid netlist")
    }

    /// Reference evaluation: the original per-net nested loop over `Net` records.
    fn reference_forces(netlist: &QuantumNetlist, positions: &[Point]) -> Vec<Vector> {
        let mut forces = vec![Vector::ZERO; positions.len()];
        let nq = netlist.num_qubits();
        let dense = |id: ComponentId| -> usize {
            match id {
                ComponentId::Qubit(q) => q.index(),
                ComponentId::Segment(s) => nq + s.index(),
            }
        };
        for net in netlist.nets() {
            let pins = net.components();
            let mut local = vec![Vector::ZERO; pins.len()];
            let pts: Vec<Point> = pins.iter().map(|&p| positions[dense(p)]).collect();
            clique_forces(&pts, 0.1 * net.weight(), &mut local);
            for (&pin, f) in pins.iter().zip(&local) {
                forces[dense(pin)] += *f;
            }
        }
        forces
    }

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Point::new(
                    17.0 * (t * 0.37).sin() * t.sqrt(),
                    13.0 * (t * 0.71).cos() * t,
                )
            })
            .collect()
    }

    #[test]
    fn pseudo_model_compiles_to_pairs_only() {
        let netlist = path_netlist(NetModel::Pseudo);
        let field = NetForceField::compile(&netlist, 0.1, 4);
        assert_eq!(field.num_pair_terms(), netlist.nets().len());
        assert_eq!(field.num_star_terms(), 0);
    }

    #[test]
    fn clique_model_compiles_hypernets_to_stars() {
        let netlist = path_netlist(NetModel::Clique);
        let field = NetForceField::compile(&netlist, 0.1, 4);
        assert_eq!(field.num_star_terms(), netlist.num_resonators());
        // Chain backbone stays exact.
        assert!(field.num_pair_terms() > 0);
        // A huge threshold keeps every hypernet exact instead.
        let exact = NetForceField::compile(&netlist, 0.1, 1_000);
        assert_eq!(exact.num_star_terms(), 0);
    }

    #[test]
    fn compiled_field_matches_per_net_reference() {
        for model in [NetModel::Chain, NetModel::Pseudo, NetModel::Clique] {
            let netlist = path_netlist(model);
            let positions = scatter(netlist.num_components());
            let expected = reference_forces(&netlist, &positions);

            for threshold in [2usize, 4, 64] {
                let field = NetForceField::compile(&netlist, 0.1, threshold);
                let mut forces = vec![Vector::ZERO; positions.len()];
                field.accumulate(&positions, &mut forces);
                for (k, (got, want)) in forces.iter().zip(&expected).enumerate() {
                    let d = (*got - *want).length();
                    assert!(
                        d <= 1e-9 * want.length().max(1.0),
                        "{model:?} threshold {threshold} pin {k}: {got:?} vs {want:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn accumulate_adds_on_top_of_existing_forces() {
        let netlist = path_netlist(NetModel::Pseudo);
        let positions = scatter(netlist.num_components());
        let field = NetForceField::compile(&netlist, 0.1, 4);
        let mut once = vec![Vector::ZERO; positions.len()];
        field.accumulate(&positions, &mut once);
        let mut twice = vec![Vector::ZERO; positions.len()];
        field.accumulate(&positions, &mut twice);
        field.accumulate(&positions, &mut twice);
        for (a, b) in once.iter().zip(&twice) {
            assert!((*b - *a - *a).length() < 1e-12);
        }
    }

    #[test]
    fn net_internal_forces_cancel() {
        // Attraction is net-internal: over all pins the pulls sum to zero, for both
        // the pairwise and the star expansion.
        let clique = path_netlist(NetModel::Clique);
        let positions = scatter(clique.num_components());
        let field = NetForceField::compile(&clique, 0.1, 4);
        assert!(field.num_star_terms() > 0, "star path must be exercised");
        let mut forces = vec![Vector::ZERO; positions.len()];
        field.accumulate(&positions, &mut forces);
        let total: Vector = forces.iter().fold(Vector::ZERO, |acc, f| acc + *f);
        assert!(
            total.length() < 1e-9,
            "net-internal forces must cancel, residual {total:?}"
        );
    }
}
