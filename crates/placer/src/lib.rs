//! # qgdp-placer
//!
//! Global placement (GP) substrate for the qGDP flow.
//!
//! The paper builds on the QPlacer/DREAMPlace electrostatic global placer; qGDP itself
//! only consumes the GP *output*: rough, usually overlapping positions for every qubit
//! and resonator wire block that already reflect the netlist attraction (including the
//! pseudo connections of §III-D).  This crate reproduces that substrate with a
//! deterministic, dependency-free force-directed placer:
//!
//! 1. qubits are seeded on the die by scaling the topology's canonical lattice
//!    coordinates, wire blocks are seeded around the midpoint of their resonator's
//!    endpoint qubits;
//! 2. a fixed number of iterations applies net attraction (spring forces along every
//!    net, pseudo nets included at reduced weight), a weak anchor to the seed position,
//!    and a local density repulsion computed over a coarse bin grid;
//! 3. positions are clamped to the die after every iteration.
//!
//! The result is a [`GlobalPlacement`]: the placement, the die outline and a few
//! quality statistics.  Legalizers take it from there.
//!
//! # Example
//!
//! ```
//! use qgdp_netlist::{ComponentGeometry, NetModel};
//! use qgdp_placer::{GlobalPlacer, GlobalPlacerConfig};
//! use qgdp_topology::StandardTopology;
//!
//! let topology = StandardTopology::Grid.build();
//! let netlist = topology.to_netlist(ComponentGeometry::default(), NetModel::Pseudo)?;
//! let gp = GlobalPlacer::new(GlobalPlacerConfig::default()).place(&netlist, &topology);
//! assert!(gp.placement.is_within(&netlist, &gp.die));
//! # Ok::<(), qgdp_netlist::NetlistError>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod config;
pub mod density;
pub mod placer;

pub use config::GlobalPlacerConfig;
pub use density::DensityGrid;
pub use placer::{GlobalPlacement, GlobalPlacer, GpStats};
