//! # qgdp-placer
//!
//! Global placement (GP) substrate for the qGDP flow.
//!
//! The paper builds on the QPlacer/DREAMPlace electrostatic global placer; qGDP itself
//! only consumes the GP *output*: rough, usually overlapping positions for every qubit
//! and resonator wire block that already reflect the netlist attraction (including the
//! pseudo connections of §III-D).  This crate reproduces that substrate with a
//! deterministic, dependency-free force-directed placer:
//!
//! 1. qubits are seeded on the die by scaling the topology's canonical lattice
//!    coordinates, wire blocks are seeded around the midpoint of their resonator's
//!    endpoint qubits;
//! 2. a fixed number of iterations applies net attraction (spring forces along every
//!    net, pseudo nets included at reduced weight), a weak anchor to the seed position,
//!    and a local density repulsion computed over a coarse bin grid;
//! 3. positions are clamped to the die after every iteration.
//!
//! The result is a [`GlobalPlacement`]: the placement, the die outline and a few
//! quality statistics.  Legalizers take it from there.
//!
//! # Architecture
//!
//! The hot path ([`GlobalPlacer::place`]) compiles the netlist's
//! [`qgdp_netlist::Net`] list once into a [`NetForceField`] — small nets expanded
//! into exact pairwise spring terms, nets above
//! [`GlobalPlacerConfig::star_threshold`] decomposed clique→star
//! ([`qgdp_netlist::NetDecomposition`], an exact identity for the quadratic force
//! model) — and maintains the [`DensityGrid`] incrementally per component move
//! instead of rebuilding it every iteration.  The original formulation is retained
//! as [`GlobalPlacer::place_reference`], the executable specification that the
//! equivalence tests and the `bench_placer` binary measure against; on the default
//! integer-area geometry the two are bit-identical.
//!
//! # Paper map
//!
//! This crate reproduces the *global placement substrate* the paper's §III
//! preliminaries assume as input (QPlacer's electrostatic GP with the §III-D pseudo
//! connections): every downstream stage — qubit legalization (§III-C), resonator
//! legalization (§III-D, Algorithm 1) and detailed placement (§III-E, Algorithm 2)
//! in the `qgdp` core crate — consumes the [`GlobalPlacement`] produced here.  The
//! netlist model it places is [`qgdp_netlist`] (§III, Eq. 6), seeded from
//! [`qgdp_topology`] lattice coordinates (Table I).
//!
//! # Example
//!
//! ```
//! use qgdp_netlist::{ComponentGeometry, NetModel};
//! use qgdp_placer::{GlobalPlacer, GlobalPlacerConfig};
//! use qgdp_topology::StandardTopology;
//!
//! let topology = StandardTopology::Grid.build();
//! let netlist = topology.to_netlist(ComponentGeometry::default(), NetModel::Pseudo)?;
//! let gp = GlobalPlacer::new(GlobalPlacerConfig::default()).place(&netlist, &topology);
//! assert!(gp.placement.is_within(&netlist, &gp.die));
//! # Ok::<(), qgdp_netlist::NetlistError>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod config;
pub mod density;
pub mod forces;
pub mod placer;

pub use config::GlobalPlacerConfig;
pub use density::{DensityGrid, SpreadingField};
pub use forces::NetForceField;
pub use placer::{
    density_bins_per_side, hpwl, scheduled_iterations, GlobalPlacement, GlobalPlacer, GpStats,
    GP_MIN_SCHEDULED_ITERATIONS, GP_SCHEDULE_THRESHOLD_QUBITS, MAX_DENSITY_BINS_PER_SIDE,
};
