//! Generators for the NISQ benchmark circuits of the paper's Table I.

use crate::{Circuit, Gate, GateKind};
use std::f64::consts::PI;
use std::fmt;

/// The benchmark programs evaluated in the paper (Table I / Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// 4-qubit Bernstein–Vazirani.
    Bv4,
    /// 9-qubit Bernstein–Vazirani.
    Bv9,
    /// 16-qubit Bernstein–Vazirani.
    Bv16,
    /// 4-qubit QAOA (ring MaxCut, p = 1).
    Qaoa4,
    /// 4-qubit linear Ising-chain simulation.
    Ising4,
    /// 4-qubit quantum GAN ansatz.
    Qgan4,
    /// 9-qubit quantum GAN ansatz.
    Qgan9,
}

impl Benchmark {
    /// All benchmarks, in the column order of Fig. 8.
    #[must_use]
    pub fn all() -> [Benchmark; 7] {
        [
            Benchmark::Bv4,
            Benchmark::Bv9,
            Benchmark::Bv16,
            Benchmark::Qaoa4,
            Benchmark::Ising4,
            Benchmark::Qgan4,
            Benchmark::Qgan9,
        ]
    }

    /// The name used in the paper's figures (e.g. `"bv-16"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bv4 => "bv-4",
            Benchmark::Bv9 => "bv-9",
            Benchmark::Bv16 => "bv-16",
            Benchmark::Qaoa4 => "qaoa-4",
            Benchmark::Ising4 => "ising-4",
            Benchmark::Qgan4 => "qgan-4",
            Benchmark::Qgan9 => "qgan-9",
        }
    }

    /// Number of logical qubits.
    #[must_use]
    pub fn num_qubits(self) -> usize {
        match self {
            Benchmark::Bv4 | Benchmark::Qaoa4 | Benchmark::Ising4 | Benchmark::Qgan4 => 4,
            Benchmark::Bv9 | Benchmark::Qgan9 => 9,
            Benchmark::Bv16 => 16,
        }
    }

    /// Generates the benchmark circuit.
    #[must_use]
    pub fn circuit(self) -> Circuit {
        match self {
            Benchmark::Bv4 => bernstein_vazirani(4),
            Benchmark::Bv9 => bernstein_vazirani(9),
            Benchmark::Bv16 => bernstein_vazirani(16),
            Benchmark::Qaoa4 => qaoa_ring(4, 1),
            Benchmark::Ising4 => ising_chain(4, 3),
            Benchmark::Qgan4 => qgan(4, 3),
            Benchmark::Qgan9 => qgan(9, 3),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Bernstein–Vazirani on `n` qubits (`n − 1` data qubits plus one ancilla) with the
/// all-ones hidden string: the hardest-coupling instance, requiring a CX from every
/// data qubit to the ancilla.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn bernstein_vazirani(n: usize) -> Circuit {
    assert!(n >= 2, "Bernstein–Vazirani needs at least two qubits");
    let ancilla = n - 1;
    let mut c = Circuit::new(n);
    for q in 0..n - 1 {
        c.push(Gate::one(GateKind::H, q));
    }
    c.push(Gate::one(GateKind::X, ancilla));
    c.push(Gate::one(GateKind::H, ancilla));
    for q in 0..n - 1 {
        c.push(Gate::two(GateKind::Cx, q, ancilla));
    }
    for q in 0..n - 1 {
        c.push(Gate::one(GateKind::H, q));
        c.push(Gate::one(GateKind::Measure, q));
    }
    c
}

/// QAOA for MaxCut on an `n`-qubit ring graph with `p` layers.
///
/// # Panics
///
/// Panics if `n < 3` or `p == 0`.
#[must_use]
pub fn qaoa_ring(n: usize, p: usize) -> Circuit {
    assert!(n >= 3, "QAOA ring needs at least three qubits");
    assert!(p >= 1, "QAOA needs at least one layer");
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::one(GateKind::H, q));
    }
    for layer in 0..p {
        let gamma = 0.4 + 0.1 * layer as f64;
        let beta = 0.3 + 0.05 * layer as f64;
        for q in 0..n {
            let (a, b) = (q, (q + 1) % n);
            // exp(-i γ Z_a Z_b) via CX–RZ–CX.
            c.push(Gate::two(GateKind::Cx, a, b));
            c.push(Gate::one(GateKind::Rz(2.0 * gamma), b));
            c.push(Gate::two(GateKind::Cx, a, b));
        }
        for q in 0..n {
            c.push(Gate::one(GateKind::Rx(2.0 * beta), q));
        }
    }
    for q in 0..n {
        c.push(Gate::one(GateKind::Measure, q));
    }
    c
}

/// Digitised (Trotterised) simulation of a transverse-field Ising spin chain on `n`
/// qubits with `steps` Trotter steps.
///
/// # Panics
///
/// Panics if `n < 2` or `steps == 0`.
#[must_use]
pub fn ising_chain(n: usize, steps: usize) -> Circuit {
    assert!(n >= 2, "Ising chain needs at least two qubits");
    assert!(
        steps >= 1,
        "Ising simulation needs at least one Trotter step"
    );
    let dt = 0.1;
    let j = 1.0;
    let h = 0.8;
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::one(GateKind::H, q));
    }
    for _ in 0..steps {
        for q in 0..n - 1 {
            c.push(Gate::two(GateKind::Cx, q, q + 1));
            c.push(Gate::one(GateKind::Rz(2.0 * j * dt), q + 1));
            c.push(Gate::two(GateKind::Cx, q, q + 1));
        }
        for q in 0..n {
            c.push(Gate::one(GateKind::Rx(2.0 * h * dt), q));
        }
    }
    for q in 0..n {
        c.push(Gate::one(GateKind::Measure, q));
    }
    c
}

/// A hardware-efficient quantum-GAN generator ansatz on `n` qubits with `layers`
/// alternating rotation/entanglement layers (linear entanglement).
///
/// # Panics
///
/// Panics if `n < 2` or `layers == 0`.
#[must_use]
pub fn qgan(n: usize, layers: usize) -> Circuit {
    assert!(n >= 2, "QGAN ansatz needs at least two qubits");
    assert!(layers >= 1, "QGAN ansatz needs at least one layer");
    let mut c = Circuit::new(n);
    for layer in 0..layers {
        for q in 0..n {
            let angle = PI * (0.1 + 0.07 * layer as f64 + 0.03 * q as f64);
            c.push(Gate::one(GateKind::Ry(angle), q));
            c.push(Gate::one(GateKind::Rz(angle * 0.5), q));
        }
        for q in 0..n - 1 {
            c.push(Gate::two(GateKind::Cx, q, q + 1));
        }
    }
    for q in 0..n {
        c.push(Gate::one(GateKind::Ry(PI * 0.21), q));
        c.push(Gate::one(GateKind::Measure, q));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_sizes_match_table1() {
        assert_eq!(Benchmark::Bv4.num_qubits(), 4);
        assert_eq!(Benchmark::Bv9.num_qubits(), 9);
        assert_eq!(Benchmark::Bv16.num_qubits(), 16);
        assert_eq!(Benchmark::Qaoa4.num_qubits(), 4);
        assert_eq!(Benchmark::Ising4.num_qubits(), 4);
        assert_eq!(Benchmark::Qgan4.num_qubits(), 4);
        assert_eq!(Benchmark::Qgan9.num_qubits(), 9);
        for b in Benchmark::all() {
            assert_eq!(b.circuit().num_qubits(), b.num_qubits(), "{b}");
        }
    }

    #[test]
    fn bv_structure() {
        let c = bernstein_vazirani(4);
        // 3 CX gates to the ancilla.
        assert_eq!(c.two_qubit_gate_count(), 3);
        assert!(c.interaction_pairs().iter().all(|&(_, b)| b == 3));
        let big = bernstein_vazirani(16);
        assert_eq!(big.two_qubit_gate_count(), 15);
    }

    #[test]
    fn qaoa_ring_structure() {
        let c = qaoa_ring(4, 1);
        // 4 ring edges, 2 CX each.
        assert_eq!(c.two_qubit_gate_count(), 8);
        assert_eq!(c.interaction_pairs().len(), 4);
        let c2 = qaoa_ring(4, 2);
        assert_eq!(c2.two_qubit_gate_count(), 16);
    }

    #[test]
    fn ising_chain_structure() {
        let c = ising_chain(4, 3);
        // 3 chain edges × 2 CX × 3 steps.
        assert_eq!(c.two_qubit_gate_count(), 18);
        assert_eq!(c.interaction_pairs(), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn qgan_structure() {
        let c = qgan(4, 3);
        assert_eq!(c.two_qubit_gate_count(), 9);
        assert_eq!(c.interaction_pairs(), vec![(0, 1), (1, 2), (2, 3)]);
        let c9 = qgan(9, 3);
        assert_eq!(c9.two_qubit_gate_count(), 24);
    }

    #[test]
    fn deeper_benchmarks_have_more_gates() {
        assert!(Benchmark::Bv16.circuit().len() > Benchmark::Bv4.circuit().len());
        assert!(Benchmark::Qgan9.circuit().len() > Benchmark::Qgan4.circuit().len());
    }

    #[test]
    #[should_panic(expected = "at least two qubits")]
    fn bv_rejects_tiny_instances() {
        let _ = bernstein_vazirani(1);
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec!["bv-4", "bv-9", "bv-16", "qaoa-4", "ising-4", "qgan-4", "qgan-9"]
        );
        assert_eq!(Benchmark::Qaoa4.to_string(), "qaoa-4");
    }
}
