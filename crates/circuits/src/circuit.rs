//! Minimal quantum-circuit intermediate representation.

use std::fmt;

/// The gate alphabet used by the benchmark generators.
///
/// Only the structure of the circuit matters for placement-quality evaluation (which
/// qubits interact, how many one- and two-qubit gates each carries, how deep the
/// schedule is); gate parameters are retained for completeness but never interpreted
/// numerically.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum GateKind {
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Z.
    Z,
    /// Z-axis rotation by the given angle (radians).
    Rz(f64),
    /// X-axis rotation by the given angle (radians).
    Rx(f64),
    /// Y-axis rotation by the given angle (radians).
    Ry(f64),
    /// Controlled-X (CNOT).
    Cx,
    /// Controlled-Z.
    Cz,
    /// SWAP (decomposed into three CNOTs by the mapper).
    Swap,
    /// Terminal measurement.
    Measure,
}

impl GateKind {
    /// Returns `true` for gates acting on two qubits.
    #[must_use]
    pub fn is_two_qubit(self) -> bool {
        matches!(self, GateKind::Cx | GateKind::Cz | GateKind::Swap)
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateKind::H => write!(f, "h"),
            GateKind::X => write!(f, "x"),
            GateKind::Z => write!(f, "z"),
            GateKind::Rz(a) => write!(f, "rz({a:.3})"),
            GateKind::Rx(a) => write!(f, "rx({a:.3})"),
            GateKind::Ry(a) => write!(f, "ry({a:.3})"),
            GateKind::Cx => write!(f, "cx"),
            GateKind::Cz => write!(f, "cz"),
            GateKind::Swap => write!(f, "swap"),
            GateKind::Measure => write!(f, "measure"),
        }
    }
}

/// A gate applied to one or two logical qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// The gate kind.
    pub kind: GateKind,
    /// Logical qubit operands (one entry for single-qubit gates, two for two-qubit
    /// gates, control first).
    pub qubits: Vec<usize>,
}

impl Gate {
    /// A single-qubit gate.
    #[must_use]
    pub fn one(kind: GateKind, qubit: usize) -> Self {
        debug_assert!(!kind.is_two_qubit());
        Gate {
            kind,
            qubits: vec![qubit],
        }
    }

    /// A two-qubit gate (control first).
    #[must_use]
    pub fn two(kind: GateKind, control: usize, target: usize) -> Self {
        debug_assert!(kind.is_two_qubit());
        Gate {
            kind,
            qubits: vec![control, target],
        }
    }

    /// Returns `true` if this is a two-qubit gate.
    #[must_use]
    pub fn is_two_qubit(&self) -> bool {
        self.kind.is_two_qubit()
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        for (i, q) in self.qubits.iter().enumerate() {
            if i == 0 {
                write!(f, " q{q}")?;
            } else {
                write!(f, ", q{q}")?;
            }
        }
        Ok(())
    }
}

/// A logical quantum circuit: an ordered gate list over `num_qubits` logical qubits.
///
/// # Example
///
/// ```
/// use qgdp_circuits::{Circuit, Gate, GateKind};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::one(GateKind::H, 0));
/// c.push(Gate::two(GateKind::Cx, 0, 1));
/// assert_eq!(c.two_qubit_gate_count(), 1);
/// assert_eq!(c.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` logical qubits.
    #[must_use]
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of logical qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The gate list in program order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a qubit outside `0..num_qubits`.
    pub fn push(&mut self, gate: Gate) {
        for &q in &gate.qubits {
            assert!(
                q < self.num_qubits,
                "gate {gate} references qubit {q} outside 0..{}",
                self.num_qubits
            );
        }
        self.gates.push(gate);
    }

    /// Total gate count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit has no gates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of single-qubit gates.
    #[must_use]
    pub fn single_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| !g.is_two_qubit()).count()
    }

    /// Number of two-qubit gates.
    #[must_use]
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Circuit depth under as-soon-as-possible scheduling (each gate occupies all of
    /// its operand qubits for one layer).
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut layer = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for gate in &self.gates {
            let start = gate.qubits.iter().map(|&q| layer[q]).max().unwrap_or(0);
            for &q in &gate.qubits {
                layer[q] = start + 1;
            }
            depth = depth.max(start + 1);
        }
        depth
    }

    /// The logical interaction pairs (i, j) with i < j that appear in two-qubit gates,
    /// deduplicated.
    #[must_use]
    pub fn interaction_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs: Vec<(usize, usize)> = self
            .gates
            .iter()
            .filter(|g| g.is_two_qubit())
            .map(|g| {
                let (a, b) = (g.qubits[0], g.qubits[1]);
                (a.min(b), a.max(b))
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit on {} qubits:", self.num_qubits)?;
        for gate in &self.gates {
            writeln!(f, "  {gate}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_counts_and_depth() {
        let mut c = Circuit::new(3);
        c.push(Gate::one(GateKind::H, 0));
        c.push(Gate::one(GateKind::H, 1));
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c.push(Gate::two(GateKind::Cx, 1, 2));
        c.push(Gate::one(GateKind::Measure, 2));
        assert_eq!(c.len(), 5);
        assert_eq!(c.single_qubit_gate_count(), 3);
        assert_eq!(c.two_qubit_gate_count(), 2);
        // H(0) | H(1) ; CX(0,1) ; CX(1,2) ; M(2)  => depth 4
        assert_eq!(c.depth(), 4);
        assert_eq!(c.interaction_pairs(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn parallel_gates_share_a_layer() {
        let mut c = Circuit::new(4);
        c.push(Gate::two(GateKind::Cx, 0, 1));
        c.push(Gate::two(GateKind::Cx, 2, 3));
        assert_eq!(c.depth(), 1);
    }

    #[test]
    #[should_panic(expected = "references qubit 5")]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(2);
        c.push(Gate::one(GateKind::H, 5));
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(2);
        assert!(c.is_empty());
        assert_eq!(c.depth(), 0);
        assert!(c.interaction_pairs().is_empty());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Gate::two(GateKind::Cx, 0, 1).to_string(), "cx q0, q1");
        assert_eq!(Gate::one(GateKind::Rz(1.0), 3).to_string(), "rz(1.000) q3");
        assert!(GateKind::Swap.is_two_qubit());
        assert!(!GateKind::H.is_two_qubit());
    }
}
