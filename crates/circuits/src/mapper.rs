//! Layout mapping and SWAP routing of logical circuits onto device topologies.
//!
//! The paper evaluates each benchmark with 50 qubit mappings per topology and averages
//! the resulting worst-case fidelity.  This module provides the mapping substrate: a
//! seeded random initial layout over a connected region of the device, followed by
//! greedy SWAP insertion along shortest coupling-graph paths so that every two-qubit
//! gate is executed between physically coupled qubits.

use crate::{Circuit, GateKind};
use qgdp_topology::Topology;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Gate durations (nanoseconds) used when scheduling a mapped circuit.
///
/// The defaults reflect fixed-frequency transmons with all-microwave (resonator-induced
/// phase) two-qubit gates: fast single-qubit pulses, slow two-qubit gates, slower
/// readout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateTimes {
    /// Duration of a single-qubit gate.
    pub single_ns: f64,
    /// Duration of a two-qubit gate.
    pub two_qubit_ns: f64,
    /// Duration of a measurement.
    pub measure_ns: f64,
}

impl GateTimes {
    /// The default timing model (35 ns / 300 ns / 700 ns).
    #[must_use]
    pub fn new() -> Self {
        GateTimes {
            single_ns: 35.0,
            two_qubit_ns: 300.0,
            measure_ns: 700.0,
        }
    }
}

impl Default for GateTimes {
    fn default() -> Self {
        GateTimes::new()
    }
}

/// A gate applied to physical qubits after mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhysicalOp {
    /// A single-qubit operation on physical qubit `qubit`.
    Single {
        /// Physical qubit index.
        qubit: usize,
        /// The gate kind.
        kind: GateKind,
    },
    /// A two-qubit operation between coupled physical qubits `a` and `b`.
    Two {
        /// First physical qubit.
        a: usize,
        /// Second physical qubit.
        b: usize,
        /// The gate kind.
        kind: GateKind,
    },
}

/// A circuit routed onto a device: physical operations plus the bookkeeping needed by
/// the fidelity estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedCircuit {
    num_physical_qubits: usize,
    ops: Vec<PhysicalOp>,
    swaps_inserted: usize,
}

impl MappedCircuit {
    /// Number of physical qubits on the target device.
    #[must_use]
    pub fn num_physical_qubits(&self) -> usize {
        self.num_physical_qubits
    }

    /// The physical operation list in program order.
    #[must_use]
    pub fn ops(&self) -> &[PhysicalOp] {
        &self.ops
    }

    /// Number of SWAPs the router inserted.
    #[must_use]
    pub fn swaps_inserted(&self) -> usize {
        self.swaps_inserted
    }

    /// Number of single-qubit physical operations (measurements included).
    #[must_use]
    pub fn single_qubit_gate_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, PhysicalOp::Single { .. }))
            .count()
    }

    /// Number of two-qubit physical operations (SWAPs already decomposed into CNOTs).
    #[must_use]
    pub fn two_qubit_gate_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, PhysicalOp::Two { .. }))
            .count()
    }

    /// Per-physical-qubit `(single, two_qubit)` gate counts.
    #[must_use]
    pub fn qubit_gate_counts(&self) -> Vec<(usize, usize)> {
        let mut counts = vec![(0usize, 0usize); self.num_physical_qubits];
        for op in &self.ops {
            match *op {
                PhysicalOp::Single { qubit, .. } => counts[qubit].0 += 1,
                PhysicalOp::Two { a, b, .. } => {
                    counts[a].1 += 1;
                    counts[b].1 += 1;
                }
            }
        }
        counts
    }

    /// Two-qubit gate counts per physical coupler, keyed by the ordered pair `(a, b)`
    /// with `a < b`.
    #[must_use]
    pub fn edge_gate_counts(&self) -> BTreeMap<(usize, usize), usize> {
        let mut counts = BTreeMap::new();
        for op in &self.ops {
            if let PhysicalOp::Two { a, b, .. } = *op {
                *counts.entry((a.min(b), a.max(b))).or_insert(0) += 1;
            }
        }
        counts
    }

    /// The physical qubits that carry at least one operation.
    #[must_use]
    pub fn active_qubits(&self) -> BTreeSet<usize> {
        let mut set = BTreeSet::new();
        for op in &self.ops {
            match *op {
                PhysicalOp::Single { qubit, .. } => {
                    set.insert(qubit);
                }
                PhysicalOp::Two { a, b, .. } => {
                    set.insert(a);
                    set.insert(b);
                }
            }
        }
        set
    }

    /// The physical couplers (as `(a, b)` with `a < b`) that carry at least one
    /// two-qubit operation.
    #[must_use]
    pub fn active_edges(&self) -> BTreeSet<(usize, usize)> {
        self.edge_gate_counts().into_keys().collect()
    }

    /// As-soon-as-possible schedule: per-qubit busy time and overall makespan.
    ///
    /// The returned vector holds, for every physical qubit, the time at which its last
    /// operation finishes (zero for idle qubits); the second element is the circuit
    /// makespan.  The fidelity model uses the makespan as the decoherence exposure of
    /// every active qubit (worst case).
    #[must_use]
    pub fn schedule(&self, times: &GateTimes) -> (Vec<f64>, f64) {
        let mut finish = vec![0.0f64; self.num_physical_qubits];
        for op in &self.ops {
            match *op {
                PhysicalOp::Single { qubit, kind } => {
                    let dur = if matches!(kind, GateKind::Measure) {
                        times.measure_ns
                    } else {
                        times.single_ns
                    };
                    finish[qubit] += dur;
                }
                PhysicalOp::Two { a, b, .. } => {
                    let start = finish[a].max(finish[b]);
                    finish[a] = start + times.two_qubit_ns;
                    finish[b] = start + times.two_qubit_ns;
                }
            }
        }
        let makespan = finish.iter().copied().fold(0.0, f64::max);
        (finish, makespan)
    }
}

/// Maps `circuit` onto `topology` with a seeded random initial layout and greedy SWAP
/// routing.
///
/// The initial layout is a random connected region of the device (BFS from a random
/// seed qubit with shuffled neighbour order), with logical qubits randomly permuted
/// over it.  Whenever a two-qubit gate acts on uncoupled physical qubits, SWAPs
/// (decomposed into three CNOTs each) are inserted along a shortest path until the
/// operands are adjacent.
///
/// # Panics
///
/// Panics if the circuit needs more qubits than the topology provides, or if the
/// topology is disconnected and the required region cannot be collected.
#[must_use]
pub fn map_circuit(circuit: &Circuit, topology: &Topology, seed: u64) -> MappedCircuit {
    assert!(
        circuit.num_qubits() <= topology.num_qubits(),
        "circuit needs {} qubits but the topology has only {}",
        circuit.num_qubits(),
        topology.num_qubits()
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Both the adjacency list and the distance provider are cached on the
    // topology, so mapping the same device repeatedly (the 50-mappings protocol)
    // costs no per-call BFS.  The tiered provider keeps roadmap-scale devices
    // out of O(V²) memory entirely: below the threshold it is the dense matrix,
    // above it distances come from lazily computed per-source BFS rows.
    let adjacency = topology.adjacency();
    let dist = topology.distances();
    let n_phys = topology.num_qubits();
    let n_logical = circuit.num_qubits();

    // Collect a random connected region of `n_logical` physical qubits.
    let start = rng.gen_range(0..n_phys);
    let mut region = Vec::with_capacity(n_logical);
    let mut seen = vec![false; n_phys];
    let mut queue = VecDeque::from([start]);
    seen[start] = true;
    while let Some(u) = queue.pop_front() {
        region.push(u);
        if region.len() == n_logical {
            break;
        }
        let mut neigh = adjacency[u].clone();
        neigh.shuffle(&mut rng);
        for v in neigh {
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    assert!(
        region.len() == n_logical,
        "could not collect a connected region of {n_logical} qubits (topology disconnected?)"
    );
    region.shuffle(&mut rng);

    // logical -> physical and physical -> logical maps.
    let mut l2p: Vec<usize> = region;
    let mut p2l: Vec<Option<usize>> = vec![None; n_phys];
    for (l, &p) in l2p.iter().enumerate() {
        p2l[p] = Some(l);
    }

    let mut ops = Vec::with_capacity(circuit.len() * 2);
    let mut swaps = 0usize;
    for gate in circuit.gates() {
        if !gate.is_two_qubit() {
            ops.push(PhysicalOp::Single {
                qubit: l2p[gate.qubits[0]],
                kind: gate.kind,
            });
            continue;
        }
        let (la, lb) = (gate.qubits[0], gate.qubits[1]);
        // Route: walk la's physical qubit towards lb's until adjacent.
        loop {
            let pa = l2p[la];
            let pb = l2p[lb];
            // One row fetch per step: every query this iteration has target pb,
            // and BFS hop counts on the undirected coupling graph are symmetric,
            // so `row(pb)[x]` is bit-identical to `get(x, pb)` — on the lazy
            // tier this is the difference between one BFS per step and one per
            // neighbour probe.
            let to_pb = dist.row(pb);
            if to_pb[pa] <= 1 {
                break;
            }
            // Step to any neighbour of pa strictly closer to pb (`checked_add` keeps
            // unreachable neighbours, encoded as `u32::MAX`, out of the candidates).
            let next = adjacency[pa]
                .iter()
                .copied()
                .filter(|&v| to_pb[v].checked_add(1) == Some(to_pb[pa]))
                .min()
                .expect("shortest path step exists on a connected graph");
            // Emit the SWAP as three CNOTs.
            for _ in 0..3 {
                ops.push(PhysicalOp::Two {
                    a: pa,
                    b: next,
                    kind: GateKind::Cx,
                });
            }
            swaps += 1;
            // Update the maps: logical la moves to `next`; whatever sat there moves
            // back to pa.
            let displaced = p2l[next];
            p2l[next] = Some(la);
            p2l[pa] = displaced;
            l2p[la] = next;
            if let Some(d) = displaced {
                l2p[d] = pa;
            }
        }
        ops.push(PhysicalOp::Two {
            a: l2p[la],
            b: l2p[lb],
            kind: gate.kind,
        });
    }

    MappedCircuit {
        num_physical_qubits: n_phys,
        ops,
        swaps_inserted: swaps,
    }
}

/// Maps `circuit` onto `topology` `count` times with distinct seeds derived from
/// `base_seed` (the paper's "50 mappings of a benchmark program" protocol).
#[must_use]
pub fn random_mappings(
    circuit: &Circuit,
    topology: &Topology,
    count: usize,
    base_seed: u64,
) -> Vec<MappedCircuit> {
    (0..count)
        .map(|i| map_circuit(circuit, topology, base_seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use qgdp_topology::StandardTopology;

    fn check_all_two_qubit_ops_are_coupled(mapped: &MappedCircuit, topo: &Topology) {
        let coupled: BTreeSet<(usize, usize)> = topo
            .couplings()
            .iter()
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        for op in mapped.ops() {
            if let PhysicalOp::Two { a, b, .. } = *op {
                assert!(
                    coupled.contains(&(a.min(b), a.max(b))),
                    "two-qubit op on uncoupled pair ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn mapping_respects_coupling_constraints() {
        for topo_kind in StandardTopology::all() {
            let topo = topo_kind.build();
            for bench in [Benchmark::Bv4, Benchmark::Qaoa4, Benchmark::Qgan9] {
                let mapped = map_circuit(&bench.circuit(), &topo, 42);
                check_all_two_qubit_ops_are_coupled(&mapped, &topo);
            }
        }
    }

    #[test]
    fn mapping_preserves_logical_gate_counts() {
        let circuit = Benchmark::Bv9.circuit();
        let topo = StandardTopology::Falcon.build();
        let mapped = map_circuit(&circuit, &topo, 3);
        assert_eq!(
            mapped.single_qubit_gate_count(),
            circuit.single_qubit_gate_count()
        );
        // Every inserted SWAP adds exactly 3 CX.
        assert_eq!(
            mapped.two_qubit_gate_count(),
            circuit.two_qubit_gate_count() + 3 * mapped.swaps_inserted()
        );
    }

    #[test]
    fn mapping_is_deterministic_per_seed() {
        let circuit = Benchmark::Qaoa4.circuit();
        let topo = StandardTopology::Grid.build();
        let a = map_circuit(&circuit, &topo, 9);
        let b = map_circuit(&circuit, &topo, 9);
        assert_eq!(a, b);
        let c = map_circuit(&circuit, &topo, 10);
        // Different seeds almost surely give different layouts (not guaranteed, but
        // true for this circuit/seed combination).
        assert!(a != c || a.swaps_inserted() == c.swaps_inserted());
    }

    #[test]
    fn active_sets_and_counts_are_consistent() {
        let circuit = Benchmark::Qgan4.circuit();
        let topo = StandardTopology::Aspen11.build();
        let mapped = map_circuit(&circuit, &topo, 5);
        assert!(mapped.active_qubits().len() >= circuit.num_qubits());
        let counts = mapped.qubit_gate_counts();
        for &q in &mapped.active_qubits() {
            assert!(counts[q].0 + counts[q].1 > 0);
        }
        let per_edge_total: usize = mapped.edge_gate_counts().values().sum();
        assert_eq!(per_edge_total, mapped.two_qubit_gate_count());
        assert_eq!(mapped.active_edges().len(), mapped.edge_gate_counts().len());
    }

    #[test]
    fn schedule_makespan_bounds() {
        let circuit = Benchmark::Ising4.circuit();
        let topo = StandardTopology::Grid.build();
        let mapped = map_circuit(&circuit, &topo, 1);
        let times = GateTimes::default();
        let (busy, makespan) = mapped.schedule(&times);
        assert_eq!(busy.len(), topo.num_qubits());
        assert!(makespan > 0.0);
        for &b in &busy {
            assert!(b <= makespan + 1e-9);
        }
        // Makespan at least as long as the serial duration of the busiest qubit's gates.
        let counts = mapped.qubit_gate_counts();
        let min_bound = counts
            .iter()
            .map(|&(s, t)| s as f64 * times.single_ns + t as f64 * times.two_qubit_ns)
            .fold(0.0f64, f64::max);
        // Measurements make individual qubits busier than the 1q estimate; just sanity
        // check the ordering direction.
        assert!(makespan >= min_bound * 0.5);
    }

    #[test]
    fn bv16_on_small_grid_requires_swaps() {
        let circuit = Benchmark::Bv16.circuit();
        let topo = StandardTopology::Grid.build();
        let mapped = map_circuit(&circuit, &topo, 11);
        // All 15 data qubits must interact with the single ancilla; on a grid of degree
        // ≤ 4 that is impossible without routing.
        assert!(mapped.swaps_inserted() > 0);
        check_all_two_qubit_ops_are_coupled(&mapped, &topo);
    }

    #[test]
    fn random_mappings_produce_requested_count() {
        let circuit = Benchmark::Bv4.circuit();
        let topo = StandardTopology::Xtree.build();
        let maps = random_mappings(&circuit, &topo, 10, 100);
        assert_eq!(maps.len(), 10);
        for m in &maps {
            check_all_two_qubit_ops_are_coupled(m, &topo);
        }
    }

    #[test]
    #[should_panic(expected = "circuit needs")]
    fn oversized_circuit_panics() {
        let circuit = Benchmark::Bv16.circuit();
        let tiny = qgdp_topology::grid(2, 2);
        let _ = map_circuit(&circuit, &tiny, 0);
    }
}
