//! # qgdp-circuits
//!
//! NISQ benchmark circuits and the layout mapper used by the qGDP fidelity model.
//!
//! The paper estimates program fidelity (Eq. 7) on seven NISQ benchmarks — BV-4/9/16,
//! QAOA-4, Ising-4 and QGAN-4/9 (Table I) — each transpiled onto a device topology with
//! 50 random qubit mappings.  This crate provides the substrate that the original work
//! delegated to Qiskit:
//!
//! * a minimal gate/circuit IR ([`Gate`], [`GateKind`], [`Circuit`]),
//! * generators for the benchmark circuits ([`Benchmark`]),
//! * a layout mapper ([`map_circuit`]) that picks a (seeded, random) initial layout on a
//!   connected region of the device and inserts SWAPs along shortest coupling-graph
//!   paths so every two-qubit gate acts on coupled qubits,
//! * the resulting [`MappedCircuit`]: per-physical-qubit and per-coupler gate counts and
//!   an as-soon-as-possible schedule, which is all the fidelity estimator needs.
//!
//! # Example
//!
//! ```
//! use qgdp_circuits::{map_circuit, Benchmark};
//! use qgdp_topology::StandardTopology;
//!
//! let circuit = Benchmark::Bv4.circuit();
//! let topology = StandardTopology::Falcon.build();
//! let mapped = map_circuit(&circuit, &topology, 7);
//! assert!(mapped.two_qubit_gate_count() >= 3);
//! assert!(mapped.active_qubits().len() >= 4);
//! ```
//!
//! # Paper map
//!
//! §III preliminaries and Table I: the seven NISQ benchmark circuits and the
//! 50-random-mappings transpilation protocol of the Fig. 8 fidelity evaluation.
//! Devices come from [`qgdp_topology`] (coupling graphs + cached
//! [`qgdp_topology::DistanceMatrix`] for SWAP routing); the per-qubit/per-coupler
//! gate counts a [`MappedCircuit`] exposes are exactly what the Eq. 7 fidelity
//! estimator in `qgdp-metrics` consumes.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod benchmarks;
pub mod circuit;
pub mod mapper;

pub use benchmarks::Benchmark;
pub use circuit::{Circuit, Gate, GateKind};
pub use mapper::{map_circuit, random_mappings, GateTimes, MappedCircuit, PhysicalOp};
