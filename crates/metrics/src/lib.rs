//! # qgdp-metrics
//!
//! Layout-quality and fidelity metrics for the qGDP evaluation.
//!
//! The paper assesses layouts from two angles (Section IV, "Metrics"):
//!
//! 1. **Program fidelity** `F = Π_q (1 − ε_q) · Π_g (1 − ε_g) · Π_e (1 − ε_e)` (Eq. 7),
//!    combining gate/decoherence errors, qubit crosstalk from spatial-constraint
//!    violations (Rabi oscillation between resonant neighbours, Eq. 8), and resonator
//!    crosstalk from spatial violations and airbridge crossings (3.5 fF parasitic per
//!    crossing).  Only components actually used by the mapped benchmark contribute.
//! 2. **Frequency-hotspot proportion** `P_h` (Eq. 4) and the derived `H_Q` (number of
//!    qubits under crosstalk), plus the resonator crossing count `X`.
//!
//! This crate implements both, along with the supporting crosstalk physics model and
//! the per-resonator route construction used to count crossings.
//!
//! # Example
//!
//! ```
//! use qgdp_metrics::{CrosstalkConfig, LayoutReport};
//! use qgdp_netlist::{ComponentGeometry, NetModel, Placement};
//! use qgdp_topology::StandardTopology;
//!
//! let topo = StandardTopology::Grid.build();
//! let netlist = topo.to_netlist(ComponentGeometry::default(), NetModel::Pseudo)?;
//! let placement = Placement::new(&netlist); // everything at the origin: terrible layout
//! let report = LayoutReport::evaluate(&netlist, &placement, &CrosstalkConfig::default());
//! assert!(report.violations > 0);
//! # Ok::<(), qgdp_netlist::NetlistError>(())
//! ```
//!
//! # Paper map
//!
//! The paper's quality metrics: program fidelity `F` (Eq. 7) with the Rabi-swap
//! qubit-crosstalk error (Eq. 8), the frequency-hotspot proportion `P_h` (Eq. 4)
//! with its derived `H_Q`, and the airbridge crossing count `X` — the quantities of
//! Tables II–III and Figs. 8–9.  Layouts are [`qgdp_netlist::Placement`] solutions
//! (§III), mapped benchmark workloads come from [`qgdp_circuits`] (Table I), and
//! crossing detection uses [`qgdp_geometry::Polyline`] routes.  The
//! [`parallel_map`] worker pool (sized by `QGDP_THREADS`) fans mapping sets out
//! with a bit-deterministic serial reduction.
//!
//! # Incremental evaluation
//!
//! Every metric can be produced from scratch or incrementally, and the two paths
//! are **bit-identical** on every layout (golden-tested and property-tested):
//!
//! * [`crossing_pairs`] detects crossings through a [`qgdp_geometry::SegmentGrid`]
//!   candidate index — near-linear in the segment count — while
//!   [`crossing_pairs_reference`] retains the brute-force route-pair walk;
//! * [`LayoutScan`] walks a layout once (violations, crossings, clusters) and both
//!   [`LayoutReport::from_scan`] and [`FidelityEvaluator::from_scan`] assemble
//!   from it, so callers scoring one placement several ways pay the walk once;
//! * [`ReportDelta`] maintains every metric input under single-component moves at
//!   neighbourhood cost, keeping discrete state (violation/crossing maps, per-net
//!   HPWL) and re-summing in canonical order at read time so [`ReportDelta::report`]
//!   matches a full [`LayoutReport::evaluate`] bit for bit after every move; debug
//!   builds re-verify against a full rebuild every 16 applications.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod crossings;
pub mod crosstalk;
pub mod delta;
pub mod fidelity;
pub mod hotspot;
pub mod parallel;
pub mod report;
pub mod scan;

pub use crossings::{count_crossings, crossing_pairs, crossing_pairs_reference, resonator_route};
pub use crosstalk::{CrosstalkConfig, CrosstalkModel};
pub use delta::ReportDelta;
pub use fidelity::{
    estimate_fidelity, mean_fidelity, FidelityEvaluator, FidelityReport, NoiseModel,
};
pub use hotspot::{
    find_violations, find_violations_reference, hotspot_proportion, hotspot_qubits,
    SpatialViolation,
};
pub use parallel::{parallel_map, parallel_try_map, parallel_try_map_stealing, worker_threads};
pub use report::LayoutReport;
pub use scan::LayoutScan;

// Re-exported so benchmark code can depend on one crate for topology-independent use.
pub use qgdp_circuits::GateTimes;
