//! One-pass layout scan shared by every metric consumer.
//!
//! [`LayoutReport::evaluate`](crate::LayoutReport::evaluate) and
//! [`FidelityEvaluator::new`](crate::FidelityEvaluator::new) both need the same three
//! expensive facts about a layout — its cluster structure, its spatial violations, and
//! its resonator crossings.  [`LayoutScan`] computes them once so that callers holding
//! several views of one placement (a session artifact's quality report *and* its
//! fidelity evaluator, or several forked artifacts sharing one placement) pay for the
//! scan a single time.  `qgdp-core` caches one `Arc<LayoutScan>` per artifact for
//! exactly this reason.

use crate::{crossing_pairs, find_violations, CrosstalkConfig, SpatialViolation};
use qgdp_netlist::{ClusterReport, Placement, QuantumNetlist, ResonatorId};

/// The layout-dependent (mapping-independent) facts every metric derives from.
///
/// Constructing a [`crate::LayoutReport`] or a [`crate::FidelityEvaluator`] from a
/// shared scan is bit-identical to computing either from scratch: the scan stores the
/// exact outputs of [`ClusterReport::analyze`], [`find_violations`] and
/// [`crossing_pairs`], and the derived aggregates are re-assembled in the same
/// canonical order either way.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutScan {
    /// Cluster structure of every resonator ([`ClusterReport::analyze`]).
    pub clusters: ClusterReport,
    /// Spatial violations in [`find_violations`] order (sorted by component pair).
    pub violations: Vec<SpatialViolation>,
    /// Crossing pairs in [`crossing_pairs`] order (sorted by resonator pair).
    pub crossings: Vec<(ResonatorId, ResonatorId, usize)>,
}

impl LayoutScan {
    /// Scans `placement` once, computing every layout-dependent metric input.
    #[must_use]
    pub fn scan(netlist: &QuantumNetlist, placement: &Placement, config: &CrosstalkConfig) -> Self {
        LayoutScan {
            clusters: ClusterReport::analyze(netlist, placement),
            violations: find_violations(netlist, placement, config),
            crossings: crossing_pairs(netlist, placement),
        }
    }

    /// Total crossing count `X` (the sum over all crossing pairs).
    #[must_use]
    pub fn crossing_count(&self) -> usize {
        self.crossings.iter().map(|&(_, _, n)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp_geometry::Point;
    use qgdp_netlist::{ComponentGeometry, NetlistBuilder};

    #[test]
    fn scan_matches_its_parts() {
        let netlist = NetlistBuilder::new(ComponentGeometry::default())
            .qubits(4)
            .couple(0, 1)
            .couple(1, 2)
            .couple(2, 3)
            .build()
            .unwrap();
        let mut p = Placement::new(&netlist);
        for (i, id) in netlist.component_ids().enumerate() {
            p.set_component(id, Point::new((i % 8) as f64 * 30.0, (i / 8) as f64 * 30.0));
        }
        let cfg = CrosstalkConfig::default();
        let scan = LayoutScan::scan(&netlist, &p, &cfg);
        assert_eq!(scan.clusters, ClusterReport::analyze(&netlist, &p));
        assert_eq!(scan.violations, find_violations(&netlist, &p, &cfg));
        assert_eq!(scan.crossings, crossing_pairs(&netlist, &p));
        assert_eq!(scan.crossing_count(), crate::count_crossings(&netlist, &p));
    }
}
