//! The analytic crosstalk physics model.
//!
//! The paper obtains its parasitic capacitances from AWR Microwave Office simulations:
//! 3.5 fF at each resonator crossing point, and a capacitance proportional to the
//! adjacent length for spatial violations.  This module substitutes an analytic model
//! with the same constants, converting a parasitic capacitance and a frequency detuning
//! into an effective coupling rate `g_eff` and then into the Rabi-oscillation crosstalk
//! error `ε = sin²(g_eff · t)` of Eq. 8 (see DESIGN.md for the sign-convention note).

/// Geometric / detection thresholds used when scanning a layout for crosstalk risks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrosstalkConfig {
    /// Edge-to-edge distance (µm) below which two components count as spatially
    /// proximate (the spatial-violation threshold; one wire block by default).
    pub proximity_threshold: f64,
    /// Frequency detuning threshold `Δ_c` (GHz) of the `τ` predicate in Eq. 4.
    pub detuning_threshold_ghz: f64,
}

impl CrosstalkConfig {
    /// The default thresholds: 10 µm proximity (one wire block), 60 MHz detuning.
    #[must_use]
    pub fn new() -> Self {
        CrosstalkConfig {
            proximity_threshold: 10.0,
            detuning_threshold_ghz: 0.06,
        }
    }
}

impl Default for CrosstalkConfig {
    fn default() -> Self {
        CrosstalkConfig::new()
    }
}

/// The electrical crosstalk model converting parasitics into error rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrosstalkModel {
    /// Parasitic capacitance at a resonator crossing point (fF); the paper uses 3.5 fF
    /// from AWR simulation.
    pub crossing_capacitance_ff: f64,
    /// Parasitic capacitance per micrometre of violating adjacency (fF/µm).
    pub violation_capacitance_ff_per_um: f64,
    /// Effective coupling rate produced by 1 fF of parasitic capacitance between
    /// resonant components (MHz).
    pub coupling_mhz_per_ff: f64,
    /// Detuning scale (GHz) over which the effective coupling rolls off.
    pub detuning_rolloff_ghz: f64,
}

impl CrosstalkModel {
    /// The default model (3.5 fF per crossing, 0.08 fF/µm of adjacency, 0.45 MHz/fF of
    /// resonant coupling, 60 MHz roll-off).
    #[must_use]
    pub fn new() -> Self {
        CrosstalkModel {
            crossing_capacitance_ff: 3.5,
            violation_capacitance_ff_per_um: 0.08,
            coupling_mhz_per_ff: 0.45,
            detuning_rolloff_ghz: 0.06,
        }
    }

    /// Effective coupling rate `g_eff` (angular MHz) between two components linked by a
    /// parasitic capacitance `capacitance_ff`, detuned by `detuning_ghz`.
    ///
    /// The coupling is maximal on resonance and rolls off linearly to zero at the
    /// detuning roll-off; far-detuned components (for example a 5 GHz qubit and a
    /// 6.3 GHz resonator) therefore contribute nothing, matching the `τ` gate of Eq. 4.
    #[must_use]
    pub fn effective_coupling_mhz(&self, capacitance_ff: f64, detuning_ghz: f64) -> f64 {
        let rolloff = (1.0 - detuning_ghz.abs() / self.detuning_rolloff_ghz).max(0.0);
        self.coupling_mhz_per_ff * capacitance_ff * rolloff
    }

    /// Rabi-oscillation crosstalk error after an exposure of `time_ns` under an
    /// effective coupling of `g_eff_mhz`.
    ///
    /// The transition probability is `sin²(g_eff · t)` (Eq. 8); because the worst-case
    /// fidelity is wanted, the phase is capped at π/2 so the error grows monotonically
    /// with exposure and saturates instead of oscillating.  The saturated error is
    /// additionally capped strictly below 1: an error of exactly 1 would zero out the
    /// whole program-fidelity product (Eq. 7) regardless of every other factor, which
    /// is neither physical for an averaged Rabi transition nor useful for comparing
    /// layouts that both contain a saturated violation.
    #[must_use]
    pub fn rabi_error(&self, g_eff_mhz: f64, time_ns: f64) -> f64 {
        /// The saturation ceiling of a single crosstalk error term.
        const MAX_ERROR: f64 = 1.0 - 1e-6;
        // MHz × ns → 2π-free radians: 1 MHz = 1e-3 rad/ns (up to 2π, absorbed into the
        // calibration of `coupling_mhz_per_ff`).
        let phase = (g_eff_mhz * 1e-3 * time_ns).min(std::f64::consts::FRAC_PI_2);
        let s = phase.sin();
        (s * s).min(MAX_ERROR)
    }

    /// Convenience: the crosstalk error of one crossing point after `time_ns`, given
    /// the detuning between the two crossing resonators.
    #[must_use]
    pub fn crossing_error(&self, detuning_ghz: f64, time_ns: f64) -> f64 {
        let g = self.effective_coupling_mhz(self.crossing_capacitance_ff, detuning_ghz);
        self.rabi_error(g, time_ns)
    }

    /// Convenience: the crosstalk error of a spatial violation with `adjacency_um` of
    /// facing length after `time_ns`, given the detuning between the two components.
    #[must_use]
    pub fn violation_error(&self, adjacency_um: f64, detuning_ghz: f64, time_ns: f64) -> f64 {
        let c = self.violation_capacitance_ff_per_um * adjacency_um;
        let g = self.effective_coupling_mhz(c, detuning_ghz);
        self.rabi_error(g, time_ns)
    }
}

impl Default for CrosstalkModel {
    fn default() -> Self {
        CrosstalkModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn coupling_rolls_off_with_detuning() {
        let m = CrosstalkModel::default();
        let on_resonance = m.effective_coupling_mhz(3.5, 0.0);
        let detuned = m.effective_coupling_mhz(3.5, 0.03);
        let far = m.effective_coupling_mhz(3.5, 0.5);
        assert!(on_resonance > detuned);
        assert!(detuned > 0.0);
        assert_eq!(far, 0.0);
    }

    #[test]
    fn rabi_error_monotone_and_saturating() {
        let m = CrosstalkModel::default();
        let short = m.rabi_error(1.0, 100.0);
        let long = m.rabi_error(1.0, 10_000.0);
        let very_long = m.rabi_error(1.0, 10_000_000.0);
        assert!(short < long);
        assert!(long <= very_long);
        assert!(very_long <= 1.0 + 1e-12);
        assert_eq!(m.rabi_error(0.0, 1e9), 0.0);
    }

    #[test]
    fn crossing_error_uses_fixed_capacitance() {
        let m = CrosstalkModel::default();
        // Two resonators at the same frequency crossing for 10 µs: a visible error.
        let e = m.crossing_error(0.0, 10_000.0);
        assert!(e > 1e-4, "crossing error {e} unexpectedly small");
        // Far detuned: no error.
        assert_eq!(m.crossing_error(1.0, 10_000.0), 0.0);
    }

    #[test]
    fn violation_error_scales_with_adjacency() {
        let m = CrosstalkModel::default();
        let small = m.violation_error(5.0, 0.0, 5_000.0);
        let large = m.violation_error(40.0, 0.0, 5_000.0);
        assert!(large > small);
        assert_eq!(m.violation_error(0.0, 0.0, 5_000.0), 0.0);
    }

    #[test]
    fn default_config_values() {
        let c = CrosstalkConfig::default();
        assert_eq!(c.proximity_threshold, 10.0);
        assert!(c.detuning_threshold_ghz > 0.0);
        let m = CrosstalkModel::default();
        assert_eq!(m.crossing_capacitance_ff, 3.5);
    }

    proptest! {
        #[test]
        fn prop_errors_are_probabilities(
            cap in 0.0..100.0f64,
            det in 0.0..2.0f64,
            t in 0.0..1e7f64,
        ) {
            let m = CrosstalkModel::default();
            let g = m.effective_coupling_mhz(cap, det);
            let e = m.rabi_error(g, t);
            prop_assert!((0.0..=1.0).contains(&e));
        }

        #[test]
        fn prop_more_detuning_never_increases_error(
            cap in 0.0..10.0f64,
            det1 in 0.0..0.2f64,
            det2 in 0.0..0.2f64,
            t in 0.0..1e6f64,
        ) {
            let m = CrosstalkModel::default();
            let (lo, hi) = if det1 < det2 { (det1, det2) } else { (det2, det1) };
            let e_lo = m.rabi_error(m.effective_coupling_mhz(cap, lo), t);
            let e_hi = m.rabi_error(m.effective_coupling_mhz(cap, hi), t);
            prop_assert!(e_hi <= e_lo + 1e-12);
        }
    }
}
