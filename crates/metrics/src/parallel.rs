//! The scoped-thread worker pool shared by the batch-evaluation paths.
//!
//! One chunked fan-out implementation serves every parallel surface of the harness
//! (per-mapping fidelities, per-strategy figure sweeps, per-topology table runs), so
//! the chunk geometry and panic behaviour cannot drift between call sites.  Two
//! panic disciplines are offered over the same geometry: [`parallel_map`] re-raises
//! a worker's panic on the caller (all-or-nothing), while [`parallel_try_map`]
//! catches each item's unwind in place (fault-isolated — one poisoned item cannot
//! take down its siblings), which is what the `Session::try_run_batch` surface in
//! `qgdp` builds on.

/// Number of worker threads used by the batch-evaluation entry points.
///
/// Reads the `QGDP_THREADS` environment variable on every call (so one process can
/// flip it between runs); anything unset, unparsable or zero falls back to
/// [`std::thread::available_parallelism`] (itself falling back to 1).
#[must_use]
pub fn worker_threads() -> usize {
    match std::env::var("QGDP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Applies `f` to every item of `items` on up to `threads` scoped workers and returns
/// the results in item order.
///
/// Worker `k` owns the `k`-th contiguous chunk of `items` and writes each result into
/// the slot matching its item's index, so the output is identical — element for
/// element — to `items.iter().map(f).collect()` no matter how many workers run or how
/// they interleave.  Thread counts of 0 or 1 (or a single-item slice) run inline
/// without spawning.
///
/// # Panics
///
/// If a worker panics, the scope joins all workers and re-raises the panic on the
/// calling thread: a poisoned chunk surfaces immediately instead of hanging the pool.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every slot is filled by its chunk's worker"))
        .collect()
}

/// Downcasts a caught panic payload to a human-readable message.
///
/// `panic!("…")` payloads are `String` (formatted) or `&'static str` (literal);
/// anything else — a custom `panic_any` value — gets a fixed placeholder so the
/// caller always has *some* message to report.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(message) => *message,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(message) => (*message).to_string(),
            Err(_) => "worker panicked with a non-string payload".to_string(),
        },
    }
}

/// [`parallel_map`] with per-item panic containment: a worker that panics on one
/// item poisons **that item only**, not its chunk, its pool or the caller.
///
/// Each item's `f` call runs under [`std::panic::catch_unwind`]; a caught unwind
/// becomes `Err(message)` in that item's slot (the payload downcast to a string via
/// the usual `String` / `&'static str` panic shapes), and every other item still
/// returns `Ok`.  The output is element-for-element identical to
/// `items.iter().map(|i| catch(f(i))).collect()` for **every** thread count — the
/// chunk geometry is the same as [`parallel_map`]'s, and thread counts of 0 or 1
/// run inline (still catching per item, so containment is worker-count invariant).
///
/// `f` is called behind an [`std::panic::AssertUnwindSafe`]: the batch surfaces
/// built on this (`Session::try_run_batch`) hand each item an independent,
/// immutable input and discard the poisoned item's partial state, which is exactly
/// the containment that assertion claims.  Callers sharing mutable state across
/// items must provide their own unwind safety.
pub fn parallel_try_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let contained = |item: &T| -> Result<R, String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))).map_err(panic_message)
    };
    parallel_map(items, threads, contained)
}

/// [`parallel_try_map`] over a **work-stealing** scheduler: items are dealt
/// round-robin into one deque per worker, each worker drains its own deque from
/// the front and steals from the back of its siblings' when it runs dry, so a
/// batch of wildly uneven items (one Eagle flow next to ten Grid flows) keeps
/// every worker busy instead of idling behind the chunked geometry of
/// [`parallel_map`].
///
/// The *output contract is identical* to [`parallel_try_map`]: one slot per item,
/// in item order, per-item panic containment (`Err(message)` for the poisoned
/// item only), and — because every slot is written by exactly the worker that
/// popped its index, and `f` is required to be deterministic per item — the
/// result vector is element-for-element identical for **every** thread count,
/// steal pattern and interleaving.  Thread counts of 0 or 1 (or a single item)
/// run inline without spawning.  The scheduling order is *not* part of the
/// contract; only the output vector is.
pub fn parallel_try_map_stealing<T, R, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::collections::VecDeque;
    use std::sync::Mutex;

    let contained = |item: &T| -> Result<R, String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))).map_err(panic_message)
    };
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(contained).collect();
    }

    // Deal item indices round-robin: worker k starts with items k, k+threads, …
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|k| Mutex::new((k..items.len()).step_by(threads).collect()))
        .collect();
    let slots: Vec<Mutex<Option<Result<R, String>>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for k in 0..threads {
            let queues = &queues;
            let slots = &slots;
            let contained = &contained;
            scope.spawn(move || loop {
                // Own deque first (front), then steal from siblings (back) —
                // the classic Chase–Lev discipline, here over mutexed deques
                // because the per-item work (a placement flow) dwarfs the lock.
                let next = queues[k]
                    .lock()
                    .expect("queue lock")
                    .pop_front()
                    .or_else(|| {
                        (1..threads).find_map(|offset| {
                            queues[(k + offset) % threads]
                                .lock()
                                .expect("queue lock")
                                .pop_back()
                        })
                    });
                match next {
                    Some(index) => {
                        let result = contained(&items[index]);
                        *slots[index].lock().expect("slot lock") = Some(result);
                    }
                    None => break,
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every dealt index was popped by exactly one worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order_for_any_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [0, 1, 2, 3, 8, 37, 100] {
            assert_eq!(
                parallel_map(&items, threads, |&x| x * x),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_input_spawns_nothing_and_returns_empty() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 8, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let items: Vec<usize> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            parallel_map(&items, 4, |&x| {
                assert!(x != 5, "poisoned item");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn worker_threads_is_at_least_one() {
        assert!(worker_threads() >= 1);
    }

    /// Suppresses the default panic hook's stderr spew while `body` deliberately
    /// panics inside contained workers, restoring the hook afterwards.
    fn with_quiet_panics<R>(body: impl FnOnce() -> R) -> R {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = body();
        std::panic::set_hook(hook);
        result
    }

    #[test]
    fn try_map_contains_a_panic_to_its_item_for_any_thread_count() {
        let items: Vec<usize> = (0..23).collect();
        with_quiet_panics(|| {
            let expected: Vec<Result<usize, String>> = items
                .iter()
                .map(|&x| {
                    if x % 7 == 5 {
                        Err(format!("poisoned item {x}"))
                    } else {
                        Ok(x * x)
                    }
                })
                .collect();
            for threads in [0, 1, 2, 3, 8, 23, 100] {
                let out = parallel_try_map(&items, threads, |&x| {
                    assert!(x % 7 != 5, "poisoned item {x}");
                    x * x
                });
                assert_eq!(out, expected, "threads={threads}");
            }
        });
    }

    #[test]
    fn try_map_downcasts_str_and_string_payloads() {
        let items = [0usize, 1, 2];
        let out = with_quiet_panics(|| {
            parallel_try_map(&items, 2, |&x| match x {
                0 => panic!("literal payload"),
                1 => panic!("formatted payload {x}"),
                _ => x,
            })
        });
        assert_eq!(out[0], Err("literal payload".to_string()));
        assert_eq!(out[1], Err("formatted payload 1".to_string()));
        assert_eq!(out[2], Ok(2));
    }

    #[test]
    fn try_map_reports_non_string_payloads() {
        let out = with_quiet_panics(|| {
            parallel_try_map(&[0u8], 1, |_| -> u8 { std::panic::panic_any(42u32) })
        });
        assert_eq!(
            out,
            vec![Err("worker panicked with a non-string payload".to_string())]
        );
    }

    #[test]
    fn stealing_map_matches_try_map_for_every_thread_count() {
        // Deliberately uneven per-item work so stealing actually happens.
        let items: Vec<u64> = (0..41).collect();
        let work = |&x: &u64| -> u64 {
            let spins = if x % 9 == 0 { 40_000 } else { 10 };
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        };
        let expected = parallel_try_map(&items, 1, work);
        for threads in [0, 1, 2, 3, 5, 8, 41, 100] {
            assert_eq!(
                parallel_try_map_stealing(&items, threads, work),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn stealing_map_contains_panics_per_item() {
        let items: Vec<usize> = (0..19).collect();
        with_quiet_panics(|| {
            for threads in [1, 2, 4, 19] {
                let out = parallel_try_map_stealing(&items, threads, |&x| {
                    assert!(x % 5 != 3, "poisoned item {x}");
                    x + 1
                });
                for (index, slot) in out.iter().enumerate() {
                    if index % 5 == 3 {
                        assert_eq!(
                            slot,
                            &Err(format!("poisoned item {index}")),
                            "threads={threads}"
                        );
                    } else {
                        assert_eq!(slot, &Ok(index + 1), "threads={threads}");
                    }
                }
            }
        });
    }

    #[test]
    fn stealing_map_runs_every_item_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<usize> = (0..100).collect();
        let counters: Vec<AtomicUsize> = (0..items.len()).map(|_| AtomicUsize::new(0)).collect();
        let out = parallel_try_map_stealing(&items, 7, |&x| {
            counters[x].fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 100);
        for (index, counter) in counters.iter().enumerate() {
            assert_eq!(counter.load(Ordering::Relaxed), 1, "item {index}");
        }
    }

    #[test]
    fn stealing_map_handles_empty_input() {
        let out: Vec<Result<u32, String>> = parallel_try_map_stealing(&[] as &[u32], 8, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn try_map_without_panics_equals_parallel_map() {
        let items: Vec<u32> = (0..17).collect();
        let plain = parallel_map(&items, 4, |&x| x + 1);
        let tried = parallel_try_map(&items, 4, |&x| x + 1);
        assert_eq!(tried.len(), plain.len());
        for (t, p) in tried.iter().zip(&plain) {
            assert_eq!(t.as_ref().unwrap(), p);
        }
    }
}
