//! The scoped-thread worker pool shared by the batch-evaluation paths.
//!
//! One chunked fan-out implementation serves every parallel surface of the harness
//! (per-mapping fidelities, per-strategy figure sweeps, per-topology table runs), so
//! the chunk geometry and panic behaviour cannot drift between call sites.

/// Number of worker threads used by the batch-evaluation entry points.
///
/// Reads the `QGDP_THREADS` environment variable on every call (so one process can
/// flip it between runs); anything unset, unparsable or zero falls back to
/// [`std::thread::available_parallelism`] (itself falling back to 1).
#[must_use]
pub fn worker_threads() -> usize {
    match std::env::var("QGDP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Applies `f` to every item of `items` on up to `threads` scoped workers and returns
/// the results in item order.
///
/// Worker `k` owns the `k`-th contiguous chunk of `items` and writes each result into
/// the slot matching its item's index, so the output is identical — element for
/// element — to `items.iter().map(f).collect()` no matter how many workers run or how
/// they interleave.  Thread counts of 0 or 1 (or a single-item slice) run inline
/// without spawning.
///
/// # Panics
///
/// If a worker panics, the scope joins all workers and re-raises the panic on the
/// calling thread: a poisoned chunk surfaces immediately instead of hanging the pool.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every slot is filled by its chunk's worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order_for_any_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [0, 1, 2, 3, 8, 37, 100] {
            assert_eq!(
                parallel_map(&items, threads, |&x| x * x),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_input_spawns_nothing_and_returns_empty() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 8, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let items: Vec<usize> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            parallel_map(&items, 4, |&x| {
                assert!(x != 5, "poisoned item");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn worker_threads_is_at_least_one() {
        assert!(worker_threads() >= 1);
    }
}
