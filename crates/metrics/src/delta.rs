//! Incremental (delta) layout reports for move-based optimisation loops.
//!
//! The detailed placer (Algorithm 2) scores thousands of candidate layouts that each
//! differ from the previous one by a handful of single-component moves.  Re-running
//! [`LayoutReport::evaluate`] from scratch per candidate re-walks every resonator
//! pair and every component pair; [`ReportDelta`] instead maintains the violation
//! set, the crossing set, the per-resonator cluster counts and the per-net HPWL
//! *incrementally* under [`ReportDelta::apply_move`], touching only the components,
//! routes and nets a move can actually affect.
//!
//! # Bit-identity contract
//!
//! After any sequence of moves, [`ReportDelta::report`] is **bit-identical** to a
//! from-scratch [`LayoutReport::evaluate`] of the same placement, and
//! [`ReportDelta::hpwl`] to `qgdp_placer::hpwl`.  This works because the engine
//! never keeps running floating-point totals (adding and subtracting contributions
//! would drift in the low-order bits): it maintains the *discrete* metric inputs —
//! violations in a map keyed by component pair, crossings keyed by resonator pair,
//! cluster counts per resonator, HPWL per net — and re-sums the `f64` aggregates in
//! the same canonical order as the from-scratch path at read time.  Each stored
//! entry is computed with exactly the operand order of its reference
//! ([`find_violations`], [`crate::crossing_pairs`], the placer's `hpwl`), so the
//! entries themselves carry identical bits.
//!
//! Following the `DensityGrid` house pattern, debug builds re-derive everything from
//! scratch every [`DEBUG_REBUILD_INTERVAL`] applications and assert the incremental
//! state matches — release builds skip the check.

use crate::hotspot::hotspot_proportion_from;
use crate::{
    find_violations, hotspot_qubits, resonator_route, CrosstalkConfig, CrosstalkModel,
    LayoutReport, LayoutScan, SpatialViolation,
};
use qgdp_geometry::{Point, Polyline, Rect, SpatialGrid};
use qgdp_netlist::{
    resonator_clusters, ClusterReport, ComponentId, Frequency, Placement, QuantumNetlist,
    ResonatorId,
};
use std::collections::{BTreeMap, BTreeSet};

/// Debug builds fully rebuild and cross-check the incremental state every this many
/// applications of [`ReportDelta::apply_move`].
pub const DEBUG_REBUILD_INTERVAL: usize = 16;

/// Inflation applied to route bounding boxes before indexing them: any positive
/// slack turns the zero-measure overlap of e.g. two axis-aligned routes crossing at
/// a point into a positive-measure one, which is what [`SpatialGrid`] guarantees to
/// report.
const ROUTE_BBOX_SLACK: f64 = 1.0;

/// An incrementally-maintained layout report.
///
/// Construct once per optimisation loop with [`ReportDelta::new`], feed it every
/// component move via [`ReportDelta::apply_move`] (including reverts — a revert is
/// just a move back), and read the current metrics with [`ReportDelta::report`],
/// [`ReportDelta::hpwl`] or [`ReportDelta::crosstalk_cost`] at any point.
///
/// # Example
///
/// ```
/// use qgdp_geometry::Point;
/// use qgdp_metrics::{CrosstalkConfig, LayoutReport, ReportDelta};
/// use qgdp_netlist::{ComponentGeometry, ComponentId, NetlistBuilder, Placement, QubitId};
///
/// let netlist = NetlistBuilder::new(ComponentGeometry::default())
///     .qubits(2)
///     .couple(0, 1)
///     .build()?;
/// let mut placement = Placement::new(&netlist);
/// for (i, id) in netlist.component_ids().enumerate() {
///     placement.set_component(id, Point::new(100.0 * i as f64, 0.0));
/// }
/// let cfg = CrosstalkConfig::default();
/// let mut delta = ReportDelta::new(&netlist, &placement, &cfg);
/// delta.apply_move(ComponentId::Qubit(QubitId(0)), Point::new(50.0, 50.0));
/// placement.set_qubit(QubitId(0), Point::new(50.0, 50.0));
/// assert_eq!(delta.report(), LayoutReport::evaluate(&netlist, &placement, &cfg));
/// # Ok::<(), qgdp_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReportDelta<'a> {
    netlist: &'a QuantumNetlist,
    config: CrosstalkConfig,
    placement: Placement,
    // Per-component tables, indexed in `component_ids()` order (qubits first, then
    // segments) — which is exactly ascending `ComponentId` order.
    ids: Vec<ComponentId>,
    rects: Vec<Rect>,
    freqs: Vec<Frequency>,
    owners: Vec<Option<ResonatorId>>,
    // Cluster structure: `|C_e|` per resonator.
    cluster_counts: Vec<usize>,
    // Spatial violations, indexed by half-proximity-inflated component rectangles.
    viol_inflate: f64,
    viol_grid: SpatialGrid,
    violations: BTreeMap<(usize, usize), SpatialViolation>,
    viol_partners: Vec<BTreeSet<usize>>,
    // Crossings, indexed by slack-inflated route bounding boxes.
    routes: Vec<Polyline>,
    route_grid: SpatialGrid,
    crossings: BTreeMap<(usize, usize), usize>,
    // Per-net HPWL, in `nets()` order.
    net_hpwl: Vec<f64>,
    nets_of: Vec<Vec<u32>>,
    // Resonators incident to each qubit (whose routes a qubit move invalidates).
    incident: Vec<Vec<ResonatorId>>,
    applications: usize,
}

impl<'a> ReportDelta<'a> {
    /// Builds the incremental state from a full scan of `placement`.
    #[must_use]
    pub fn new(
        netlist: &'a QuantumNetlist,
        placement: &Placement,
        config: &CrosstalkConfig,
    ) -> Self {
        let placement = placement.clone();
        let ids: Vec<ComponentId> = netlist.component_ids().collect();
        let rects: Vec<Rect> = ids.iter().map(|&id| placement.rect(netlist, id)).collect();
        let freqs: Vec<Frequency> = ids
            .iter()
            .map(|&id| netlist.component_frequency(id))
            .collect();
        let owners: Vec<Option<ResonatorId>> =
            ids.iter().map(|&id| netlist.owning_resonator(id)).collect();

        // Violation index: same cell sizing and inflation as `find_violations`, so
        // the same coverage argument applies — a pair whose edge gap is below the
        // proximity threshold has positively-overlapping inflated rectangles.
        let viol_inflate = config.proximity_threshold * 0.5;
        let viol_cell = (config.proximity_threshold + netlist.geometry().wire_block_size).max(1.0);
        let viol_bounds = union_of(rects.iter().map(|r| r.inflated(viol_inflate)));
        let mut viol_grid = SpatialGrid::new(&viol_bounds, viol_cell, rects.len());
        for (i, r) in rects.iter().enumerate() {
            viol_grid.insert(i, &r.inflated(viol_inflate));
        }
        let mut violations = BTreeMap::new();
        let mut viol_partners = vec![BTreeSet::new(); ids.len()];
        let index_of = |id: ComponentId| match id {
            ComponentId::Qubit(q) => q.index(),
            ComponentId::Segment(s) => netlist.num_qubits() + s.index(),
        };
        for v in find_violations(netlist, &placement, config) {
            let (i, j) = (index_of(v.a), index_of(v.b));
            viol_partners[i].insert(j);
            viol_partners[j].insert(i);
            violations.insert((i, j), v);
        }

        // Crossing index over route bounding boxes.
        let routes: Vec<Polyline> = netlist
            .resonator_ids()
            .map(|r| resonator_route(netlist, &placement, r))
            .collect();
        let route_rects: Vec<Rect> = routes.iter().map(route_rect_of).collect();
        let route_bounds = union_of(route_rects.iter().copied());
        let mean_dim = if route_rects.is_empty() {
            1.0
        } else {
            route_rects
                .iter()
                .map(|r| r.width().max(r.height()))
                .sum::<f64>()
                / route_rects.len() as f64
        };
        let mut route_grid = SpatialGrid::new(&route_bounds, mean_dim.max(1.0), routes.len());
        for (i, r) in route_rects.iter().enumerate() {
            route_grid.insert(i, r);
        }
        let crossings = crate::crossing_pairs(netlist, &placement)
            .into_iter()
            .map(|(a, b, n)| ((a.index(), b.index()), n))
            .collect();

        let nets = netlist.nets();
        let mut nets_of = vec![Vec::new(); ids.len()];
        for (k, net) in nets.iter().enumerate() {
            for &pin in net.components() {
                nets_of[index_of(pin)].push(k as u32);
            }
        }
        let net_hpwl = (0..nets.len())
            .map(|k| net_hpwl_of(&placement, &nets[k]))
            .collect();

        let mut incident = vec![Vec::new(); netlist.num_qubits()];
        for r in netlist.resonator_ids() {
            let (qa, qb) = netlist.resonator(r).endpoints();
            incident[qa.index()].push(r);
            if qb != qa {
                incident[qb.index()].push(r);
            }
        }

        ReportDelta {
            netlist,
            config: *config,
            cluster_counts: ClusterReport::analyze(netlist, &placement).cluster_counts,
            placement,
            ids,
            rects,
            freqs,
            owners,
            viol_inflate,
            viol_grid,
            violations,
            viol_partners,
            routes,
            route_grid,
            crossings,
            net_hpwl,
            nets_of,
            incident,
            applications: 0,
        }
    }

    fn index_of(&self, id: ComponentId) -> usize {
        match id {
            ComponentId::Qubit(q) => q.index(),
            ComponentId::Segment(s) => self.netlist.num_qubits() + s.index(),
        }
    }

    /// The placement the delta state currently describes.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Number of `apply_move` calls so far.
    #[must_use]
    pub fn applications(&self) -> usize {
        self.applications
    }

    /// Total cluster count `Σ_e |C_e|` (Eq. 3 objective) of the current placement.
    #[must_use]
    pub fn total_clusters(&self) -> usize {
        self.cluster_counts.iter().sum()
    }

    /// Total crossing count `X` of the current placement.
    #[must_use]
    pub fn crossing_count(&self) -> usize {
        self.crossings.values().sum()
    }

    /// Number of spatial violations in the current placement.
    #[must_use]
    pub fn violation_count(&self) -> usize {
        self.violations.len()
    }

    /// Moves one component to `to` and updates every affected metric input.
    ///
    /// Cost is proportional to the component's spatial neighbourhood: its violation
    /// candidates, the routes of its (owning or incident) resonators and their
    /// bounding-box neighbours, and the nets it pins — not to the layout size.
    pub fn apply_move(&mut self, id: ComponentId, to: Point) {
        let idx = self.index_of(id);
        self.placement.set_component(id, to);
        self.rects[idx] = self.placement.rect(self.netlist, id);

        // --- Violations: drop every pair involving the mover, re-test candidates.
        let inflated = self.rects[idx].inflated(self.viol_inflate);
        self.viol_grid.relocate(idx, &inflated);
        let old_partners = std::mem::take(&mut self.viol_partners[idx]);
        for p in old_partners {
            self.violations.remove(&(idx.min(p), idx.max(p)));
            self.viol_partners[p].remove(&idx);
        }
        let mut cand: Vec<u32> = Vec::new();
        self.viol_grid.candidates(&inflated, &mut cand);
        for &j in &cand {
            let j = j as usize;
            if j == idx {
                continue;
            }
            let (lo, hi) = (idx.min(j), idx.max(j));
            if let Some(v) = self.check_violation(lo, hi) {
                self.violations.insert((lo, hi), v);
                self.viol_partners[lo].insert(hi);
                self.viol_partners[hi].insert(lo);
            }
        }

        // --- Clusters and routes of the affected resonators.
        let mut affected: Vec<ResonatorId> = Vec::new();
        match id {
            ComponentId::Qubit(q) => affected.extend(self.incident[q.index()].iter().copied()),
            ComponentId::Segment(s) => {
                let r = self.netlist.block(s).resonator();
                self.cluster_counts[r.index()] =
                    resonator_clusters(self.netlist, &self.placement, r).len();
                affected.push(r);
            }
        }
        if !affected.is_empty() {
            let aff: BTreeSet<usize> = affected.iter().map(|r| r.index()).collect();
            for &r in &affected {
                let ri = r.index();
                self.routes[ri] = resonator_route(self.netlist, &self.placement, r);
                let rect = route_rect_of(&self.routes[ri]);
                self.route_grid.relocate(ri, &rect);
            }
            self.crossings
                .retain(|&(a, b), _| !aff.contains(&a) && !aff.contains(&b));
            for &r in &affected {
                let ri = r.index();
                let rect = route_rect_of(&self.routes[ri]);
                self.route_grid.candidates(&rect, &mut cand);
                for &r2 in &cand {
                    let r2 = r2 as usize;
                    if r2 == ri || (aff.contains(&r2) && r2 < ri) {
                        continue;
                    }
                    let n = self.routes[ri].crossings_with(&self.routes[r2]);
                    if n > 0 {
                        self.crossings.insert((ri.min(r2), ri.max(r2)), n);
                    }
                }
            }
        }

        // --- HPWL of the nets pinning the mover.
        for &net in &self.nets_of[idx] {
            self.net_hpwl[net as usize] =
                net_hpwl_of(&self.placement, &self.netlist.nets()[net as usize]);
        }

        self.applications += 1;
        #[cfg(debug_assertions)]
        self.debug_validate();
    }

    /// Re-runs the exact `find_violations` filter chain on the index pair `(i, j)`
    /// (`i < j`, which is also ascending `ComponentId` order).
    fn check_violation(&self, i: usize, j: usize) -> Option<SpatialViolation> {
        if self.owners[i].is_some() && self.owners[i] == self.owners[j] {
            return None;
        }
        let detuning = self.freqs[i].detuning(self.freqs[j]);
        if detuning > self.config.detuning_threshold_ghz {
            return None;
        }
        let gap = self.rects[i].gap(&self.rects[j]);
        if gap >= self.config.proximity_threshold {
            return None;
        }
        let adjacency_length = self.rects[i]
            .inflated(self.viol_inflate)
            .contact_length(&self.rects[j].inflated(self.viol_inflate));
        if adjacency_length <= 0.0 {
            return None;
        }
        Some(SpatialViolation {
            a: self.ids[i],
            b: self.ids[j],
            adjacency_length,
            centroid_distance: self.rects[i].centroid_distance(&self.rects[j]),
            detuning_ghz: detuning,
        })
    }

    /// The current layout report — bit-identical to a from-scratch
    /// [`LayoutReport::evaluate`] of [`ReportDelta::placement`].
    #[must_use]
    pub fn report(&self) -> LayoutReport {
        let violations: Vec<SpatialViolation> = self.violations.values().cloned().collect();
        LayoutReport {
            num_cells: self.netlist.num_components(),
            unified_resonators: self.cluster_counts.iter().filter(|&&c| c == 1).count(),
            total_resonators: self.cluster_counts.len(),
            total_clusters: self.total_clusters(),
            crossings: self.crossing_count(),
            hotspot_proportion_percent: hotspot_proportion_from(&violations, self.netlist),
            hotspot_qubits: hotspot_qubits(self.netlist, &violations).len(),
            violations: violations.len(),
        }
    }

    /// The current state as a [`LayoutScan`] — bit-identical to
    /// [`LayoutScan::scan`] of [`ReportDelta::placement`].
    #[must_use]
    pub fn to_scan(&self) -> LayoutScan {
        LayoutScan {
            clusters: ClusterReport {
                cluster_counts: self.cluster_counts.clone(),
            },
            violations: self.violations.values().cloned().collect(),
            crossings: self
                .crossings
                .iter()
                .map(|(&(a, b), &n)| (ResonatorId(a), ResonatorId(b), n))
                .collect(),
        }
    }

    /// Total half-perimeter wirelength — bit-identical to `qgdp_placer::hpwl` of
    /// [`ReportDelta::placement`] (per-net values in net order, serial summation).
    #[must_use]
    pub fn hpwl(&self) -> f64 {
        self.net_hpwl.iter().sum()
    }

    /// A scalar crosstalk cost for move scoring: the sum of the Eq. 8 violation
    /// errors plus the per-crossing parasitic errors at exposure time `exposure_ns`.
    ///
    /// This is the fidelity model's layout-dependent error mass — lower is better —
    /// summed deterministically in component/resonator pair order.  The detailed
    /// placer's fidelity-guided mode uses it to rank candidate windows.
    #[must_use]
    pub fn crosstalk_cost(&self, model: &CrosstalkModel, exposure_ns: f64) -> f64 {
        let mut cost = 0.0;
        for v in self.violations.values() {
            cost += model.violation_error(v.adjacency_length, v.detuning_ghz, exposure_ns);
        }
        for (&(ra, rb), &n) in &self.crossings {
            let detuning = self
                .netlist
                .resonator(ResonatorId(ra))
                .frequency()
                .detuning(self.netlist.resonator(ResonatorId(rb)).frequency());
            cost += model.crossing_error(detuning, exposure_ns) * n as f64;
        }
        cost
    }

    /// Full-rebuild cross-check of the incremental state (debug builds only, every
    /// [`DEBUG_REBUILD_INTERVAL`] applications).
    #[cfg(debug_assertions)]
    fn debug_validate(&self) {
        if self.applications % DEBUG_REBUILD_INTERVAL != 0 {
            return;
        }
        let fresh = find_violations(self.netlist, &self.placement, &self.config);
        let ours: Vec<SpatialViolation> = self.violations.values().cloned().collect();
        assert_eq!(
            ours, fresh,
            "delta violation set diverged from full rebuild"
        );
        let fresh = crate::crossing_pairs(self.netlist, &self.placement);
        let ours: Vec<(ResonatorId, ResonatorId, usize)> = self
            .crossings
            .iter()
            .map(|(&(a, b), &n)| (ResonatorId(a), ResonatorId(b), n))
            .collect();
        assert_eq!(ours, fresh, "delta crossing set diverged from full rebuild");
        assert_eq!(
            self.cluster_counts,
            ClusterReport::analyze(self.netlist, &self.placement).cluster_counts,
            "delta cluster counts diverged from full rebuild"
        );
        for (k, net) in self.netlist.nets().iter().enumerate() {
            assert_eq!(
                self.net_hpwl[k].to_bits(),
                net_hpwl_of(&self.placement, net).to_bits(),
                "delta HPWL of net {k} diverged from full rebuild"
            );
        }
    }
}

/// The indexable rectangle of one route: its bounding box inflated by
/// [`ROUTE_BBOX_SLACK`].
fn route_rect_of(route: &Polyline) -> Rect {
    route
        .bounding_box()
        .unwrap_or_else(|| Rect::from_center(Point::ORIGIN, 1.0, 1.0))
        .inflated(ROUTE_BBOX_SLACK)
}

/// HPWL of one net — the exact per-net arithmetic of `qgdp_placer::hpwl`.
fn net_hpwl_of(placement: &Placement, net: &qgdp_netlist::Net) -> f64 {
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for &pin in net.components() {
        let p = placement.component(pin);
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    if min_x.is_finite() {
        (max_x - min_x) + (max_y - min_y)
    } else {
        0.0
    }
}

/// Union bounding box of an iterator of rectangles (unit square at the origin when
/// empty).
fn union_of(rects: impl Iterator<Item = Rect>) -> Rect {
    let mut out: Option<Rect> = None;
    for r in rects {
        out = Some(match out {
            Some(acc) => acc.union(&r),
            None => r,
        });
    }
    out.unwrap_or_else(|| Rect::from_center(Point::ORIGIN, 1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp_netlist::{ComponentGeometry, NetlistBuilder, QubitId, SegmentId};

    fn square_netlist() -> QuantumNetlist {
        NetlistBuilder::new(ComponentGeometry::default())
            .qubits(4)
            .couple(0, 1)
            .couple(1, 2)
            .couple(2, 3)
            .couple(3, 0)
            .couple(0, 2)
            .couple(1, 3)
            .build()
            .unwrap()
    }

    fn spread(netlist: &QuantumNetlist) -> Placement {
        let mut p = Placement::new(netlist);
        for (i, id) in netlist.component_ids().enumerate() {
            p.set_component(
                id,
                Point::new((i % 10) as f64 * 120.0, (i / 10) as f64 * 120.0),
            );
        }
        p
    }

    #[test]
    fn fresh_delta_matches_evaluate() {
        let nl = square_netlist();
        let p = spread(&nl);
        let cfg = CrosstalkConfig::default();
        let delta = ReportDelta::new(&nl, &p, &cfg);
        assert_eq!(delta.report(), LayoutReport::evaluate(&nl, &p, &cfg));
        assert_eq!(delta.to_scan(), LayoutScan::scan(&nl, &p, &cfg));
    }

    #[test]
    fn moves_converge_to_from_scratch_report() {
        let nl = square_netlist();
        let mut p = spread(&nl);
        let cfg = CrosstalkConfig::default();
        let mut delta = ReportDelta::new(&nl, &p, &cfg);
        // A deterministic zig-zag of qubit and segment moves, enough applications to
        // trip the debug full-rebuild checkpoint several times.
        let moves: Vec<(ComponentId, Point)> = (0..40)
            .map(|k| {
                let id = if k % 3 == 0 {
                    ComponentId::Qubit(QubitId(k % nl.num_qubits()))
                } else {
                    ComponentId::Segment(SegmentId((k * 7) % nl.segment_ids().count()))
                };
                (
                    id,
                    Point::new(((k * 53) % 700) as f64, ((k * 31) % 700) as f64),
                )
            })
            .collect();
        for (id, to) in moves {
            delta.apply_move(id, to);
            p.set_component(id, to);
        }
        let from_scratch = LayoutReport::evaluate(&nl, &p, &cfg);
        let incremental = delta.report();
        assert_eq!(incremental, from_scratch);
        assert_eq!(
            incremental.hotspot_proportion_percent.to_bits(),
            from_scratch.hotspot_proportion_percent.to_bits(),
            "P_h must be bit-identical, not merely approximately equal"
        );
        assert!(delta.applications() >= 2 * DEBUG_REBUILD_INTERVAL);
    }

    #[test]
    fn revert_restores_the_original_report() {
        let nl = square_netlist();
        let p = spread(&nl);
        let cfg = CrosstalkConfig::default();
        let mut delta = ReportDelta::new(&nl, &p, &cfg);
        let before = delta.report();
        let hpwl_before = delta.hpwl();
        let id = ComponentId::Qubit(QubitId(2));
        let original = p.component(id);
        delta.apply_move(id, Point::new(13.0, 17.0));
        delta.apply_move(id, original);
        assert_eq!(delta.report(), before);
        assert_eq!(delta.hpwl().to_bits(), hpwl_before.to_bits());
    }

    #[test]
    fn crowding_components_raises_the_crosstalk_cost() {
        let nl = square_netlist();
        let p = spread(&nl);
        let cfg = CrosstalkConfig::default();
        let mut delta = ReportDelta::new(&nl, &p, &cfg);
        let model = CrosstalkModel::default();
        let base = delta.crosstalk_cost(&model, 10_000.0);
        // Pile the blocks of two different resonators on top of each other.
        let r0 = nl.resonator(ResonatorId(0)).segments().to_vec();
        let r1 = nl.resonator(ResonatorId(1)).segments().to_vec();
        for (k, (&a, &b)) in r0.iter().zip(&r1).enumerate() {
            delta.apply_move(
                ComponentId::Segment(a),
                Point::new(4000.0 + 10.0 * k as f64, 4000.0),
            );
            delta.apply_move(
                ComponentId::Segment(b),
                Point::new(4000.0 + 10.0 * k as f64, 4010.0),
            );
        }
        let crowded = delta.crosstalk_cost(&model, 10_000.0);
        assert!(
            crowded > base,
            "piling resonators together must raise the cost ({base:e} -> {crowded:e})"
        );
        assert!(delta.violation_count() > 0);
    }
}
