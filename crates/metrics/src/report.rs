//! Aggregate layout-quality report (the rows of Fig. 9 and Table III).

use crate::hotspot::hotspot_proportion_from;
use crate::{hotspot_qubits, CrosstalkConfig, LayoutScan};
use qgdp_netlist::{Placement, QuantumNetlist};
use std::fmt;

/// The layout-quality metrics the paper reports per topology: integration ratio
/// `I_edge`, crossing count `X`, hotspot proportion `P_h` and affected qubit count
/// `H_Q` (Table III), plus the raw counts behind them.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutReport {
    /// Total number of placeable cells (qubits + wire blocks) — the `#Cells` column.
    pub num_cells: usize,
    /// Number of unified resonators (single cluster).
    pub unified_resonators: usize,
    /// Total number of resonators.
    pub total_resonators: usize,
    /// Total cluster count `Σ_e |C_e|` (Eq. 3 objective).
    pub total_clusters: usize,
    /// Resonator crossing count `X`.
    pub crossings: usize,
    /// Frequency-hotspot proportion `P_h`, in percent.
    pub hotspot_proportion_percent: f64,
    /// Number of qubits under crosstalk (`H_Q`).
    pub hotspot_qubits: usize,
    /// Number of spatial violations detected.
    pub violations: usize,
}

impl LayoutReport {
    /// Evaluates every layout metric for `placement`.
    ///
    /// Equivalent to `LayoutReport::from_scan(netlist, &LayoutScan::scan(...))`; when
    /// a [`LayoutScan`] is already available (e.g. cached on a session artifact),
    /// prefer [`LayoutReport::from_scan`], which skips the re-scan entirely.
    #[must_use]
    pub fn evaluate(
        netlist: &QuantumNetlist,
        placement: &Placement,
        config: &CrosstalkConfig,
    ) -> Self {
        Self::from_scan(netlist, &LayoutScan::scan(netlist, placement, config))
    }

    /// Assembles the report from an already-computed [`LayoutScan`].
    ///
    /// Bit-identical to [`LayoutReport::evaluate`] on the placement the scan was
    /// taken from: the aggregates are summed in the scan's canonical (sorted) order,
    /// which is exactly the order `evaluate` uses.
    #[must_use]
    pub fn from_scan(netlist: &QuantumNetlist, scan: &LayoutScan) -> Self {
        LayoutReport {
            num_cells: netlist.num_components(),
            unified_resonators: scan.clusters.unified_count(),
            total_resonators: scan.clusters.total_resonators(),
            total_clusters: scan.clusters.total_clusters(),
            crossings: scan.crossing_count(),
            hotspot_proportion_percent: hotspot_proportion_from(&scan.violations, netlist),
            hotspot_qubits: hotspot_qubits(netlist, &scan.violations).len(),
            violations: scan.violations.len(),
        }
    }

    /// The `I_edge` column formatted as the paper prints it, e.g. `"37/40"`.
    #[must_use]
    pub fn integration_ratio(&self) -> String {
        format!("{}/{}", self.unified_resonators, self.total_resonators)
    }

    /// Returns `true` if this report is at least as good as `other` on every metric the
    /// detailed placer guards (cluster count and hotspot proportion) — the acceptance
    /// test of Algorithm 2.
    #[must_use]
    pub fn not_worse_than(&self, other: &LayoutReport) -> bool {
        self.total_clusters <= other.total_clusters
            && self.hotspot_proportion_percent <= other.hotspot_proportion_percent + 1e-12
    }
}

impl fmt::Display for LayoutReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cells={} I_edge={} X={} Ph={:.2}% HQ={}",
            self.num_cells,
            self.integration_ratio(),
            self.crossings,
            self.hotspot_proportion_percent,
            self.hotspot_qubits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp_geometry::Point;
    use qgdp_netlist::{ComponentGeometry, NetlistBuilder};

    fn netlist() -> QuantumNetlist {
        NetlistBuilder::new(ComponentGeometry::default())
            .qubits(4)
            .couple(0, 1)
            .couple(1, 2)
            .couple(2, 3)
            .build()
            .unwrap()
    }

    fn spread(netlist: &QuantumNetlist) -> Placement {
        let mut p = Placement::new(netlist);
        for (i, id) in netlist.component_ids().enumerate() {
            p.set_component(
                id,
                Point::new((i % 8) as f64 * 200.0, (i / 8) as f64 * 200.0),
            );
        }
        p
    }

    #[test]
    fn evaluate_on_scattered_layout() {
        let nl = netlist();
        let p = spread(&nl);
        let report = LayoutReport::evaluate(&nl, &p, &CrosstalkConfig::default());
        assert_eq!(report.num_cells, nl.num_components());
        assert_eq!(report.total_resonators, 3);
        // Scattered blocks: nothing unified.
        assert_eq!(report.unified_resonators, 0);
        assert!(report.total_clusters > 3);
        assert_eq!(report.violations, 0);
        assert_eq!(report.hotspot_qubits, 0);
        assert_eq!(report.hotspot_proportion_percent, 0.0);
        assert!(report.integration_ratio().ends_with("/3"));
        assert!(report.to_string().contains("I_edge"));
    }

    #[test]
    fn compact_resonators_improve_the_report() {
        let nl = netlist();
        let mut p = spread(&nl);
        // Unify every resonator into an abutting row far from everything else.
        for r in nl.resonator_ids() {
            let res = nl.resonator(r);
            for (k, &s) in res.segments().iter().enumerate() {
                p.set_segment(
                    s,
                    Point::new(2000.0 + 10.0 * k as f64, 2000.0 + 300.0 * r.index() as f64),
                );
            }
        }
        let unified = LayoutReport::evaluate(&nl, &p, &CrosstalkConfig::default());
        assert_eq!(unified.unified_resonators, 3);
        assert_eq!(unified.total_clusters, 3);
        let scattered = LayoutReport::evaluate(&nl, &spread(&nl), &CrosstalkConfig::default());
        assert!(unified.not_worse_than(&scattered));
        assert!(!scattered.not_worse_than(&unified));
    }
}
