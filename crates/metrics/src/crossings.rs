//! Resonator crossing detection (the `X` metric of Fig. 9 / Table III).
//!
//! Each resonator's reserved area is summarised by a *route*: a polyline from one
//! endpoint qubit, through the centroids of its wire-block clusters (ordered along the
//! endpoint-to-endpoint axis), to the other endpoint qubit.  Every proper pairwise
//! crossing between the routes of two different resonators corresponds to a physical
//! wire crossing that would need an airbridge on the chip.
//!
//! [`crossing_pairs`] detects crossings with a [`SegmentGrid`] candidate index over
//! the flattened route segments — near-linear in the segment count for real layouts —
//! while [`crossing_pairs_reference`] retains the brute-force route-pair double loop.
//! Both apply the same exact [`qgdp_geometry::Segment::properly_intersects`] predicate
//! to candidate segment pairs, so their outputs are identical on every layout (a
//! property the test suite and `bench_report` both enforce).

use qgdp_geometry::{Point, Polyline, Rect, Segment, SegmentGrid};
use qgdp_netlist::{resonator_clusters, Placement, QuantumNetlist, ResonatorId};
use std::collections::BTreeMap;

/// Builds the route polyline of one resonator under `placement`.
///
/// The route runs qubit A → cluster centroids (ordered by their projection onto the
/// A→B axis) → qubit B.  A fully unified resonator therefore has a three-point route;
/// badly fragmented resonators have long, wiggly routes that cross others more often.
#[must_use]
pub fn resonator_route(
    netlist: &QuantumNetlist,
    placement: &Placement,
    resonator: ResonatorId,
) -> Polyline {
    let res = netlist.resonator(resonator);
    let (qa, qb) = res.endpoints();
    let a = placement.qubit(qa);
    let b = placement.qubit(qb);
    let axis = b - a;
    let axis_len_sq = axis.dot(axis).max(qgdp_geometry::EPS);

    let clusters = resonator_clusters(netlist, placement, resonator);
    let mut centroids: Vec<(f64, Point)> = clusters
        .iter()
        .map(|cluster| {
            let mut cx = 0.0;
            let mut cy = 0.0;
            for &s in cluster {
                let p = placement.segment(s);
                cx += p.x;
                cy += p.y;
            }
            let centroid = Point::new(cx / cluster.len() as f64, cy / cluster.len() as f64);
            let t = (centroid - a).dot(axis) / axis_len_sq;
            (t, centroid)
        })
        .collect();
    centroids.sort_by(|x, y| x.0.total_cmp(&y.0));

    let mut points = Vec::with_capacity(centroids.len() + 2);
    points.push(a);
    points.extend(centroids.into_iter().map(|(_, p)| p));
    points.push(b);
    Polyline::new(points)
}

/// Counts the total number of crossings between the routes of all resonator pairs.
#[must_use]
pub fn count_crossings(netlist: &QuantumNetlist, placement: &Placement) -> usize {
    crossing_pairs(netlist, placement)
        .iter()
        .map(|&(_, _, n)| n)
        .sum()
}

/// Returns, for every resonator pair with at least one crossing, the pair and its
/// crossing count, sorted ascending by id pair.
///
/// Detection runs over a [`SegmentGrid`] candidate index on the flattened route
/// segments, making it near-linear in the segment count instead of quadratic in the
/// resonator count.  The index only prunes segment pairs that provably cannot
/// properly intersect; every surviving candidate goes through the same exact
/// predicate as the brute-force walk, so the result is identical to
/// [`crossing_pairs_reference`] on every layout.
#[must_use]
pub fn crossing_pairs(
    netlist: &QuantumNetlist,
    placement: &Placement,
) -> Vec<(ResonatorId, ResonatorId, usize)> {
    let routes: Vec<Polyline> = netlist
        .resonator_ids()
        .map(|r| resonator_route(netlist, placement, r))
        .collect();
    crossing_pairs_of_routes(&routes)
}

/// Indexed crossing detection over prebuilt routes (`routes[i]` is resonator `i`).
///
/// Shared by [`crossing_pairs`] and the delta-report engine, which maintains the
/// route vector incrementally and re-runs detection only for affected resonators.
pub(crate) fn crossing_pairs_of_routes(
    routes: &[Polyline],
) -> Vec<(ResonatorId, ResonatorId, usize)> {
    // Flatten every route into segments tagged with their owning resonator.
    let mut segs: Vec<Segment> = Vec::new();
    let mut owner: Vec<u32> = Vec::new();
    for (r, route) in routes.iter().enumerate() {
        for s in route.segments() {
            segs.push(s);
            owner.push(r as u32);
        }
    }
    if segs.len() < 2 {
        return Vec::new();
    }

    // Grid extent = union bounding box of all segments; cell size tracks the mean
    // segment length so a typical segment covers O(1) cells, floored both by a
    // resolution cap (≤ 512 cells per axis keeps memory bounded on sparse layouts)
    // and an absolute 1 µm minimum.
    let mut lo = segs[0].a;
    let mut hi = segs[0].a;
    let mut total_len = 0.0;
    for s in &segs {
        for p in [s.a, s.b] {
            lo.x = lo.x.min(p.x);
            lo.y = lo.y.min(p.y);
            hi.x = hi.x.max(p.x);
            hi.y = hi.y.max(p.y);
        }
        total_len += s.length();
    }
    let bounds = Rect::from_corners(lo, hi);
    let mean_len = total_len / segs.len() as f64;
    let cell = mean_len
        .max(bounds.width().max(bounds.height()) / 512.0)
        .max(1.0);

    let mut grid = SegmentGrid::new(&bounds, cell, segs.len());
    for (k, s) in segs.iter().enumerate() {
        grid.insert(k, s);
    }
    let mut candidates = Vec::new();
    grid.candidate_pairs(&mut candidates);

    let mut counts: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (i, j) in candidates {
        let (ri, rj) = (owner[i as usize], owner[j as usize]);
        if ri == rj {
            continue;
        }
        if segs[i as usize].properly_intersects(&segs[j as usize]) {
            *counts
                .entry((ri.min(rj) as usize, ri.max(rj) as usize))
                .or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .map(|((i, j), n)| (ResonatorId(i), ResonatorId(j), n))
        .collect()
}

/// Brute-force route-pair double loop — the retained reference implementation of
/// [`crossing_pairs`].
///
/// Kept for the bit-identity goldens, the oracle proptests, and the
/// `bench_report` speedup record (the house pattern: every optimized path ships
/// with its reference).
#[must_use]
pub fn crossing_pairs_reference(
    netlist: &QuantumNetlist,
    placement: &Placement,
) -> Vec<(ResonatorId, ResonatorId, usize)> {
    let routes: Vec<Polyline> = netlist
        .resonator_ids()
        .map(|r| resonator_route(netlist, placement, r))
        .collect();
    let boxes: Vec<_> = routes.iter().map(Polyline::bounding_box).collect();
    let mut out = Vec::new();
    for i in 0..routes.len() {
        for j in (i + 1)..routes.len() {
            // Cheap bounding-box rejection before the segment-pair test.
            if let (Some(bi), Some(bj)) = (boxes[i], boxes[j]) {
                if !bi.inflated(qgdp_geometry::EPS).touches(&bj) {
                    continue;
                }
            }
            let n = routes[i].crossings_with(&routes[j]);
            if n > 0 {
                out.push((ResonatorId(i), ResonatorId(j), n));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp_netlist::{ComponentGeometry, NetlistBuilder, QubitId};

    /// Four qubits at the corners of a square, with the two diagonal couplings
    /// (0–2 and 1–3) whose straight routes must cross once.
    fn diagonal_netlist() -> (QuantumNetlist, Placement) {
        let netlist = NetlistBuilder::new(ComponentGeometry::default())
            .qubits(4)
            .couple(0, 2)
            .couple(1, 3)
            .build()
            .unwrap();
        let mut p = Placement::new(&netlist);
        p.set_qubit(QubitId(0), Point::new(100.0, 100.0));
        p.set_qubit(QubitId(1), Point::new(500.0, 100.0));
        p.set_qubit(QubitId(2), Point::new(500.0, 500.0));
        p.set_qubit(QubitId(3), Point::new(100.0, 500.0));
        // Place each resonator's blocks in one unified clump on its own diagonal,
        // near the centre but offset so the clusters themselves do not overlap.
        for (ri, offset) in [(0usize, -30.0), (1usize, 30.0)] {
            let res = netlist.resonator(ResonatorId(ri));
            for (k, &s) in res.segments().iter().enumerate() {
                p.set_segment(
                    s,
                    Point::new(
                        295.0 + offset + (k % 4) as f64 * 10.0,
                        295.0 + offset + (k / 4) as f64 * 10.0,
                    ),
                );
            }
        }
        (netlist, p)
    }

    #[test]
    fn diagonal_resonators_cross_once() {
        let (netlist, p) = diagonal_netlist();
        let crossings = count_crossings(&netlist, &p);
        assert_eq!(crossings, 1, "the two diagonals must cross exactly once");
        let pairs = crossing_pairs(&netlist, &p);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, ResonatorId(0));
        assert_eq!(pairs[0].1, ResonatorId(1));
    }

    #[test]
    fn parallel_resonators_do_not_cross() {
        let netlist = NetlistBuilder::new(ComponentGeometry::default())
            .qubits(4)
            .couple(0, 1)
            .couple(2, 3)
            .build()
            .unwrap();
        let mut p = Placement::new(&netlist);
        p.set_qubit(QubitId(0), Point::new(100.0, 100.0));
        p.set_qubit(QubitId(1), Point::new(500.0, 100.0));
        p.set_qubit(QubitId(2), Point::new(100.0, 400.0));
        p.set_qubit(QubitId(3), Point::new(500.0, 400.0));
        for r in netlist.resonator_ids() {
            let res = netlist.resonator(r);
            let y = if r.index() == 0 { 100.0 } else { 400.0 };
            for (k, &s) in res.segments().iter().enumerate() {
                p.set_segment(s, Point::new(200.0 + 10.0 * k as f64, y));
            }
        }
        assert_eq!(count_crossings(&netlist, &p), 0);
        assert!(crossing_pairs(&netlist, &p).is_empty());
    }

    #[test]
    fn route_of_unified_resonator_has_three_points() {
        let (netlist, p) = diagonal_netlist();
        let route = resonator_route(&netlist, &p, ResonatorId(0));
        // qubit — single cluster centroid — qubit.
        assert_eq!(route.len(), 3);
        assert_eq!(route.points()[0], p.qubit(QubitId(0)));
        assert_eq!(route.points()[2], p.qubit(QubitId(2)));
    }

    #[test]
    fn fragmented_resonator_has_longer_route() {
        let (netlist, mut p) = diagonal_netlist();
        // Fragment resonator 0 into scattered singleton clusters.
        let segs = netlist.resonator(ResonatorId(0)).segments().to_vec();
        for (k, &s) in segs.iter().enumerate() {
            p.set_segment(
                s,
                Point::new(150.0 + 37.0 * k as f64, 150.0 + 29.0 * (k % 5) as f64),
            );
        }
        let route = resonator_route(&netlist, &p, ResonatorId(0));
        assert_eq!(route.len(), 2 + segs.len());
    }

    #[test]
    fn indexed_detector_matches_reference_on_goldens() {
        let (netlist, mut p) = diagonal_netlist();
        assert_eq!(
            crossing_pairs(&netlist, &p),
            crossing_pairs_reference(&netlist, &p)
        );
        // Fragment resonator 0 so the routes become long and wiggly.
        let segs = netlist.resonator(ResonatorId(0)).segments().to_vec();
        for (k, &s) in segs.iter().enumerate() {
            p.set_segment(
                s,
                Point::new(150.0 + 37.0 * k as f64, 150.0 + 29.0 * (k % 5) as f64),
            );
        }
        let opt = crossing_pairs(&netlist, &p);
        let reference = crossing_pairs_reference(&netlist, &p);
        assert_eq!(opt, reference);
        assert!(!reference.is_empty(), "fragmented layout should cross");
    }

    #[test]
    fn shared_endpoint_resonators_do_not_count_as_crossing() {
        let netlist = NetlistBuilder::new(ComponentGeometry::default())
            .qubits(3)
            .couple(0, 1)
            .couple(0, 2)
            .build()
            .unwrap();
        let mut p = Placement::new(&netlist);
        p.set_qubit(QubitId(0), Point::new(100.0, 100.0));
        p.set_qubit(QubitId(1), Point::new(400.0, 100.0));
        p.set_qubit(QubitId(2), Point::new(100.0, 400.0));
        for r in netlist.resonator_ids() {
            let res = netlist.resonator(r);
            for (k, &s) in res.segments().iter().enumerate() {
                let base = if r.index() == 0 {
                    Point::new(200.0 + 10.0 * k as f64, 100.0)
                } else {
                    Point::new(100.0, 200.0 + 10.0 * k as f64)
                };
                p.set_segment(s, base);
            }
        }
        assert_eq!(count_crossings(&netlist, &p), 0);
    }

    proptest::proptest! {
        #[test]
        fn prop_indexed_detector_matches_reference(
            coords in proptest::collection::vec(
                (0.0..600.0f64, 0.0..600.0f64),
                160..161,
            ),
        ) {
            // Six resonators (ring + both diagonals of a 4-qubit square) with every
            // component thrown at a random position: fragmented clusters, overlapping
            // routes, shared endpoints — the full zoo the detector must agree on.
            let netlist = NetlistBuilder::new(ComponentGeometry::default())
                .qubits(4)
                .couple(0, 1)
                .couple(1, 2)
                .couple(2, 3)
                .couple(3, 0)
                .couple(0, 2)
                .couple(1, 3)
                .build()
                .unwrap();
            let mut p = Placement::new(&netlist);
            for (id, &(x, y)) in netlist.component_ids().zip(coords.iter()) {
                p.set_component(id, Point::new(x, y));
            }
            proptest::prop_assert_eq!(
                crossing_pairs(&netlist, &p),
                crossing_pairs_reference(&netlist, &p)
            );
        }
    }
}
