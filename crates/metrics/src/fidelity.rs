//! Program-fidelity estimation (Eq. 7 of the paper).
//!
//! # Performance
//!
//! Evaluating a mapping set is embarrassingly parallel: each call to
//! [`FidelityEvaluator::evaluate`] is a pure function of one mapped circuit and the
//! (immutable) precomputed layout scan.  [`FidelityEvaluator::mean`] and [`mean_fidelity`]
//! therefore fan the set out over the shared worker pool ([`crate::parallel`]) — one
//! contiguous chunk of the mapping slice per scoped `std::thread` worker — sized by
//! the `QGDP_THREADS` environment variable (default:
//! [`std::thread::available_parallelism`]).
//!
//! **Determinism contract:** the parallel path is *bit-identical* to the serial one,
//! for any thread count.  Workers only write per-mapping fidelities into disjoint,
//! index-aligned slots of one output buffer; the reduction to a mean then runs
//! serially over that buffer in mapping-index order, so the floating-point additions
//! happen in exactly the same order as `mappings.iter().map(evaluate).sum()`.  No
//! chunk-level partial sums are ever combined (floating-point addition is not
//! associative, so that *would* change low-order bits).  `QGDP_THREADS=1` and
//! `QGDP_THREADS=64` must — and are regression-tested to — produce equal bits.
//!
//! If a worker panics (e.g. a mapping targets the wrong device), the scope joins all
//! workers and re-raises the panic on the caller's thread: a poisoned chunk surfaces
//! immediately instead of hanging the pool or silently skipping mappings.

use crate::parallel::{parallel_map, worker_threads};
use crate::{crossing_pairs, find_violations, CrosstalkConfig, CrosstalkModel};
use qgdp_circuits::{GateKind, GateTimes, MappedCircuit, PhysicalOp};
use qgdp_netlist::{ComponentId, Placement, QuantumNetlist, QubitId, ResonatorId};
use std::collections::BTreeSet;

/// The noise model behind the fidelity estimate.
///
/// Gate error rates and coherence times follow typical fixed-frequency transmon
/// devices; the crosstalk sub-model supplies the spatial-violation and crossing errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Energy-relaxation time T1, in microseconds.
    pub t1_us: f64,
    /// Dephasing time T2, in microseconds.
    pub t2_us: f64,
    /// Depolarising error per single-qubit gate.
    pub single_qubit_error: f64,
    /// Depolarising error per two-qubit gate.
    pub two_qubit_error: f64,
    /// Assignment error per measurement.
    pub readout_error: f64,
    /// Gate durations used for scheduling.
    pub gate_times: GateTimes,
    /// Crosstalk physics model.
    pub crosstalk: CrosstalkModel,
}

impl NoiseModel {
    /// The default noise model (T1 = 100 µs, T2 = 80 µs, 3·10⁻⁴ / 8·10⁻³ gate errors,
    /// 1.5 % readout error).
    #[must_use]
    pub fn new() -> Self {
        NoiseModel {
            t1_us: 100.0,
            t2_us: 80.0,
            single_qubit_error: 3e-4,
            two_qubit_error: 8e-3,
            readout_error: 1.5e-2,
            gate_times: GateTimes::default(),
            crosstalk: CrosstalkModel::default(),
        }
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::new()
    }
}

/// The decomposition of a fidelity estimate into its factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityReport {
    /// The overall worst-case program fidelity `F` (Eq. 7).
    pub fidelity: f64,
    /// Product of per-gate success probabilities (including readout).
    pub gate_fidelity: f64,
    /// Product of per-active-qubit decoherence survival probabilities.
    pub decoherence_fidelity: f64,
    /// Product over qubit-qubit spatial violations of `(1 − ε_g)`.
    pub qubit_crosstalk_fidelity: f64,
    /// Product over resonator spatial violations and crossings of `(1 − ε_e)`.
    pub resonator_crosstalk_fidelity: f64,
    /// Number of active (mapped) physical qubits.
    pub active_qubits: usize,
    /// Number of active (mapped) resonators.
    pub active_resonators: usize,
    /// Spatial violations that involved active components and were charged.
    pub violations_counted: usize,
    /// Crossing points between active resonators that were charged.
    pub crossings_counted: usize,
}

/// A reusable fidelity evaluator for one layout.
///
/// Spatial violations and resonator crossings depend only on the layout, not on the
/// benchmark mapping, so they are scanned once at construction; each call to
/// [`FidelityEvaluator::evaluate`] then only walks the mapped circuit and filters the
/// precomputed lists by the active components.  The Fig. 8 harness evaluates tens of
/// thousands of mappings per layout, which makes this separation essential.
#[derive(Debug, Clone)]
pub struct FidelityEvaluator<'a> {
    netlist: &'a QuantumNetlist,
    noise: NoiseModel,
    violations: Vec<crate::SpatialViolation>,
    crossings: Vec<(ResonatorId, ResonatorId, usize)>,
}

impl<'a> FidelityEvaluator<'a> {
    /// Scans `placement` once and prepares the evaluator.
    #[must_use]
    pub fn new(
        netlist: &'a QuantumNetlist,
        placement: &Placement,
        noise: NoiseModel,
        config: &CrosstalkConfig,
    ) -> Self {
        FidelityEvaluator {
            netlist,
            noise,
            violations: find_violations(netlist, placement, config),
            crossings: crossing_pairs(netlist, placement),
        }
    }

    /// Builds the evaluator from an already-computed [`crate::LayoutScan`].
    ///
    /// Bit-identical to [`FidelityEvaluator::new`] on the placement the scan was
    /// taken from — the scan stores the exact violation and crossing lists `new`
    /// would compute — but skips the layout re-scan, which is what lets forked
    /// session artifacts share one scan between their quality report and their
    /// fidelity evaluations.
    #[must_use]
    pub fn from_scan(
        netlist: &'a QuantumNetlist,
        noise: NoiseModel,
        scan: &crate::LayoutScan,
    ) -> Self {
        FidelityEvaluator {
            netlist,
            noise,
            violations: scan.violations.clone(),
            crossings: scan.crossings.clone(),
        }
    }

    /// The spatial violations found in the layout.
    #[must_use]
    pub fn violations(&self) -> &[crate::SpatialViolation] {
        &self.violations
    }

    /// The resonator crossing pairs found in the layout.
    #[must_use]
    pub fn crossings(&self) -> &[(ResonatorId, ResonatorId, usize)] {
        &self.crossings
    }

    /// Estimates the worst-case program fidelity of one mapped circuit (Eq. 7).
    ///
    /// # Panics
    ///
    /// Panics if the mapped circuit targets a device with a different qubit count than
    /// the netlist.
    #[must_use]
    pub fn evaluate(&self, mapped: &MappedCircuit) -> FidelityReport {
        let netlist = self.netlist;
        let noise = &self.noise;
        assert_eq!(
            mapped.num_physical_qubits(),
            netlist.num_qubits(),
            "mapped circuit and netlist must target the same device"
        );

        // --- Gate errors.
        let mut gate_fidelity = 1.0f64;
        for op in mapped.ops() {
            let err = match op {
                PhysicalOp::Single { kind, .. } => {
                    if matches!(kind, GateKind::Measure) {
                        noise.readout_error
                    } else {
                        noise.single_qubit_error
                    }
                }
                PhysicalOp::Two { .. } => noise.two_qubit_error,
            };
            gate_fidelity *= 1.0 - err;
        }

        // --- Decoherence over the schedule makespan.
        let (_, makespan_ns) = mapped.schedule(&noise.gate_times);
        let makespan_us = makespan_ns / 1000.0;
        let active_qubits = mapped.active_qubits();
        let per_qubit_survival =
            (-makespan_us * (1.0 / noise.t1_us + 1.0 / noise.t2_us) * 0.5).exp();
        let decoherence_fidelity = per_qubit_survival.powi(active_qubits.len() as i32);

        // --- Active resonators: those whose endpoint pair carries a two-qubit gate.
        let active_edges = mapped.active_edges();
        let active_resonators: BTreeSet<ResonatorId> = active_edges
            .iter()
            .filter_map(|&(a, b)| netlist.resonator_between(QubitId(a), QubitId(b)))
            .collect();

        let qubit_active = |q: QubitId| active_qubits.contains(&q.index());
        let component_charged = |id: ComponentId| -> bool {
            match id {
                ComponentId::Qubit(q) => qubit_active(q),
                ComponentId::Segment(s) => {
                    active_resonators.contains(&netlist.block(s).resonator())
                }
            }
        };

        // --- Spatial-violation crosstalk.
        let mut qubit_crosstalk_fidelity = 1.0f64;
        let mut resonator_crosstalk_fidelity = 1.0f64;
        let mut violations_counted = 0usize;
        for v in &self.violations {
            if !(component_charged(v.a) && component_charged(v.b)) {
                continue;
            }
            violations_counted += 1;
            let err =
                noise
                    .crosstalk
                    .violation_error(v.adjacency_length, v.detuning_ghz, makespan_ns);
            let qubit_pair = v.a.is_qubit() && v.b.is_qubit();
            if qubit_pair {
                qubit_crosstalk_fidelity *= 1.0 - err;
            } else {
                resonator_crosstalk_fidelity *= 1.0 - err;
            }
        }

        // --- Crossing-point crosstalk between active resonators.
        let mut crossings_counted = 0usize;
        for &(ra, rb, n) in &self.crossings {
            if !(active_resonators.contains(&ra) && active_resonators.contains(&rb)) {
                continue;
            }
            let detuning = netlist
                .resonator(ra)
                .frequency()
                .detuning(netlist.resonator(rb).frequency());
            let err = noise.crosstalk.crossing_error(detuning, makespan_ns);
            resonator_crosstalk_fidelity *= (1.0 - err).powi(n as i32);
            crossings_counted += n;
        }

        let fidelity = gate_fidelity
            * decoherence_fidelity
            * qubit_crosstalk_fidelity
            * resonator_crosstalk_fidelity;
        FidelityReport {
            fidelity,
            gate_fidelity,
            decoherence_fidelity,
            qubit_crosstalk_fidelity,
            resonator_crosstalk_fidelity,
            active_qubits: active_qubits.len(),
            active_resonators: active_resonators.len(),
            violations_counted,
            crossings_counted,
        }
    }

    /// Per-mapping fidelities, evaluated on [`worker_threads`] worker threads.
    ///
    /// `fidelities(mappings)[i]` is exactly `evaluate(&mappings[i]).fidelity` — see
    /// the module-level [performance notes](self#performance) for the determinism
    /// contract.
    #[must_use]
    pub fn fidelities(&self, mappings: &[MappedCircuit]) -> Vec<f64> {
        self.fidelities_with_threads(mappings, worker_threads())
    }

    /// Per-mapping fidelities on an explicit number of worker threads.
    ///
    /// The output is bit-identical for every `threads` value; the parameter only
    /// controls how the work is spread.  Thread counts of 0 or 1 (or a single-mapping
    /// set) run inline without spawning.
    ///
    /// # Panics
    ///
    /// Re-raises, on the calling thread, any panic raised inside a worker (e.g. a
    /// mapping whose device size does not match the netlist).
    #[must_use]
    pub fn fidelities_with_threads(&self, mappings: &[MappedCircuit], threads: usize) -> Vec<f64> {
        parallel_map(mappings, threads, |m| self.evaluate(m).fidelity)
    }

    /// Mean fidelity over a set of mappings, evaluated on [`worker_threads`] worker
    /// threads (bit-identical to a serial evaluation; see the module-level
    /// [performance notes](self#performance)).
    #[must_use]
    pub fn mean(&self, mappings: &[MappedCircuit]) -> f64 {
        self.mean_with_threads(mappings, worker_threads())
    }

    /// Mean fidelity on an explicit number of worker threads.
    ///
    /// Returns 0.0 for an empty mapping set.  The reduction is serial and in mapping
    /// order regardless of `threads`, so the result is bit-identical for every thread
    /// count.
    #[must_use]
    pub fn mean_with_threads(&self, mappings: &[MappedCircuit], threads: usize) -> f64 {
        if mappings.is_empty() {
            return 0.0;
        }
        self.fidelities_with_threads(mappings, threads)
            .iter()
            .sum::<f64>()
            / mappings.len() as f64
    }
}

/// Estimates the worst-case program fidelity of `mapped` executed on the layout
/// described by `netlist` + `placement`.
///
/// Only the physical qubits and resonators actually used by the mapped benchmark
/// contribute crosstalk terms, matching the paper's note that "these fidelity
/// calculations apply only to actively engaged physical qubits (mapped) and resonators
/// in the layout".  When evaluating many mappings of the same layout, prefer
/// [`FidelityEvaluator`], which scans the layout only once.
///
/// # Panics
///
/// Panics if the mapped circuit targets a device with a different qubit count than the
/// netlist.
#[must_use]
pub fn estimate_fidelity(
    netlist: &QuantumNetlist,
    placement: &Placement,
    mapped: &MappedCircuit,
    noise: &NoiseModel,
    config: &CrosstalkConfig,
) -> FidelityReport {
    FidelityEvaluator::new(netlist, placement, *noise, config).evaluate(mapped)
}

/// Mean fidelity over a set of mappings (the paper averages 50 mappings per benchmark).
///
/// Evaluation runs on [`worker_threads`] worker threads with a serial in-order
/// reduction, so the result is bit-identical to a single-threaded run (see the
/// module-level [performance notes](self#performance)).
#[must_use]
pub fn mean_fidelity(
    netlist: &QuantumNetlist,
    placement: &Placement,
    mappings: &[MappedCircuit],
    noise: &NoiseModel,
    config: &CrosstalkConfig,
) -> f64 {
    FidelityEvaluator::new(netlist, placement, *noise, config).mean(mappings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp_circuits::{map_circuit, Benchmark};
    use qgdp_geometry::Point;
    use qgdp_netlist::{ComponentGeometry, NetModel};
    use qgdp_topology::StandardTopology;

    /// A well-spread, legal-looking layout for the grid topology.
    fn grid_layout() -> (QuantumNetlist, Placement, qgdp_topology::Topology) {
        let topo = StandardTopology::Grid.build();
        let netlist = topo
            .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
            .unwrap();
        let mut p = Placement::new(&netlist);
        // Qubits on a 5x5 lattice with generous pitch.
        for q in netlist.qubit_ids() {
            let c = topo.coord(q);
            p.set_qubit(q, Point::new(100.0 + c.x * 150.0, 100.0 + c.y * 150.0));
        }
        // Each resonator's blocks in a tight 4x3 clump at its midpoint.
        for r in netlist.resonator_ids() {
            let res = netlist.resonator(r);
            let (qa, qb) = res.endpoints();
            let mid = p.qubit(qa).midpoint(p.qubit(qb));
            for (k, &s) in res.segments().iter().enumerate() {
                p.set_segment(
                    s,
                    Point::new(
                        mid.x - 15.0 + 10.0 * (k % 4) as f64,
                        mid.y - 10.0 + 10.0 * (k / 4) as f64,
                    ),
                );
            }
        }
        (netlist, p, topo)
    }

    #[test]
    fn fidelity_is_a_probability_and_decomposes() {
        let (netlist, p, topo) = grid_layout();
        let mapped = map_circuit(&Benchmark::Bv4.circuit(), &topo, 1);
        let rep = estimate_fidelity(
            &netlist,
            &p,
            &mapped,
            &NoiseModel::default(),
            &CrosstalkConfig::default(),
        );
        assert!(rep.fidelity > 0.0 && rep.fidelity <= 1.0);
        let product = rep.gate_fidelity
            * rep.decoherence_fidelity
            * rep.qubit_crosstalk_fidelity
            * rep.resonator_crosstalk_fidelity;
        assert!((rep.fidelity - product).abs() < 1e-12);
        assert!(rep.active_qubits >= 4);
    }

    #[test]
    fn clean_layout_has_no_crosstalk_penalty() {
        let (netlist, p, topo) = grid_layout();
        let mapped = map_circuit(&Benchmark::Bv4.circuit(), &topo, 2);
        let rep = estimate_fidelity(
            &netlist,
            &p,
            &mapped,
            &NoiseModel::default(),
            &CrosstalkConfig::default(),
        );
        assert!((rep.qubit_crosstalk_fidelity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bad_layout_scores_lower_than_good_layout() {
        let (netlist, good, topo) = grid_layout();
        // Bad layout: same qubits, but all wire blocks piled into one corner so that
        // different resonators overlap and routes cross.
        let mut bad = good.clone();
        for (k, s) in netlist.segment_ids().enumerate() {
            bad.set_segment(
                s,
                Point::new(
                    100.0 + (k % 10) as f64 * 10.0,
                    100.0 + (k / 10) as f64 * 10.0,
                ),
            );
        }
        let mapped = map_circuit(&Benchmark::Qaoa4.circuit(), &topo, 3);
        let noise = NoiseModel::default();
        let cfg = CrosstalkConfig::default();
        let f_good = estimate_fidelity(&netlist, &good, &mapped, &noise, &cfg).fidelity;
        let f_bad = estimate_fidelity(&netlist, &bad, &mapped, &noise, &cfg).fidelity;
        assert!(
            f_bad < f_good,
            "piling resonators together must hurt fidelity (good {f_good:.4} vs bad {f_bad:.4})"
        );
    }

    #[test]
    fn larger_benchmarks_have_lower_fidelity() {
        let (netlist, p, topo) = grid_layout();
        let noise = NoiseModel::default();
        let cfg = CrosstalkConfig::default();
        let f4 = estimate_fidelity(
            &netlist,
            &p,
            &map_circuit(&Benchmark::Bv4.circuit(), &topo, 4),
            &noise,
            &cfg,
        )
        .fidelity;
        let f16 = estimate_fidelity(
            &netlist,
            &p,
            &map_circuit(&Benchmark::Bv16.circuit(), &topo, 4),
            &noise,
            &cfg,
        )
        .fidelity;
        assert!(f16 < f4);
    }

    #[test]
    fn mean_fidelity_averages() {
        let (netlist, p, topo) = grid_layout();
        let noise = NoiseModel::default();
        let cfg = CrosstalkConfig::default();
        let maps = qgdp_circuits::random_mappings(&Benchmark::Bv4.circuit(), &topo, 5, 7);
        let mean = mean_fidelity(&netlist, &p, &maps, &noise, &cfg);
        assert!(mean > 0.0 && mean <= 1.0);
        assert_eq!(mean_fidelity(&netlist, &p, &[], &noise, &cfg), 0.0);
        let singles: Vec<f64> = maps
            .iter()
            .map(|m| estimate_fidelity(&netlist, &p, m, &noise, &cfg).fidelity)
            .collect();
        assert!(mean <= singles.iter().copied().fold(f64::MIN, f64::max) + 1e-12);
        assert!(mean >= singles.iter().copied().fold(f64::MAX, f64::min) - 1e-12);
    }

    #[test]
    fn parallel_mean_is_bit_identical_for_any_thread_count() {
        let (netlist, p, topo) = grid_layout();
        let evaluator = FidelityEvaluator::new(
            &netlist,
            &p,
            NoiseModel::default(),
            &CrosstalkConfig::default(),
        );
        let maps = qgdp_circuits::random_mappings(&Benchmark::Qaoa4.circuit(), &topo, 9, 13);
        let serial = evaluator.mean_with_threads(&maps, 1);
        for threads in [2, 3, 4, 9, 64] {
            let parallel = evaluator.mean_with_threads(&maps, threads);
            assert_eq!(
                serial.to_bits(),
                parallel.to_bits(),
                "threads={threads}: {serial:e} != {parallel:e}"
            );
        }
        let per_mapping = evaluator.fidelities_with_threads(&maps, 4);
        assert_eq!(per_mapping.len(), maps.len());
        for (f, m) in per_mapping.iter().zip(&maps) {
            assert_eq!(f.to_bits(), evaluator.evaluate(m).fidelity.to_bits());
        }
    }

    #[test]
    fn worker_pool_edge_cases() {
        let (netlist, p, topo) = grid_layout();
        let evaluator = FidelityEvaluator::new(
            &netlist,
            &p,
            NoiseModel::default(),
            &CrosstalkConfig::default(),
        );
        // Empty mapping set: defined as 0.0 on every thread count, no spawning.
        assert_eq!(evaluator.mean_with_threads(&[], 1), 0.0);
        assert_eq!(evaluator.mean_with_threads(&[], 8), 0.0);
        assert!(evaluator.fidelities_with_threads(&[], 8).is_empty());
        // Fewer mappings than threads: the pool clamps to one mapping per worker.
        let maps = qgdp_circuits::random_mappings(&Benchmark::Bv4.circuit(), &topo, 2, 3);
        assert_eq!(
            evaluator.mean_with_threads(&maps, 16).to_bits(),
            evaluator.mean_with_threads(&maps, 1).to_bits()
        );
        // Thread count 0 behaves like 1 rather than dividing by zero.
        assert_eq!(
            evaluator.mean_with_threads(&maps, 0).to_bits(),
            evaluator.mean_with_threads(&maps, 1).to_bits()
        );
    }

    #[test]
    fn poisoned_worker_surfaces_panic_instead_of_hanging() {
        let (netlist, p, topo) = grid_layout();
        let evaluator = FidelityEvaluator::new(
            &netlist,
            &p,
            NoiseModel::default(),
            &CrosstalkConfig::default(),
        );
        // One chunk holds a mapping for the wrong device: its worker panics, and the
        // scope must re-raise that panic on the caller (not deadlock, not return a
        // partial mean).
        let other = StandardTopology::Falcon.build();
        let mut maps = qgdp_circuits::random_mappings(&Benchmark::Bv4.circuit(), &topo, 6, 3);
        maps.push(map_circuit(&Benchmark::Bv4.circuit(), &other, 0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            evaluator.mean_with_threads(&maps, 4)
        }));
        assert!(result.is_err(), "worker panic must propagate to the caller");
    }

    #[test]
    #[should_panic(expected = "same device")]
    fn mismatched_device_panics() {
        let (netlist, p, _) = grid_layout();
        let other = StandardTopology::Falcon.build();
        let mapped = map_circuit(&Benchmark::Bv4.circuit(), &other, 0);
        let _ = estimate_fidelity(
            &netlist,
            &p,
            &mapped,
            &NoiseModel::default(),
            &CrosstalkConfig::default(),
        );
    }
}
