//! Frequency-hotspot detection: the `P_h` metric (Eq. 4) and `H_Q`.

use crate::CrosstalkConfig;
use qgdp_netlist::{ComponentId, Placement, QuantumNetlist, QubitId};
use std::collections::BTreeSet;

/// A detected spatial-constraint violation between two frequency-proximate components.
///
/// A pair contributes to the hotspot metric when the components are spatially
/// proximate (edge-to-edge gap below the proximity threshold), operate at nearly the
/// same frequency (`τ(ω_i, ω_j, Δ_c) = 1`), and are not part of the same resonator.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialViolation {
    /// First component.
    pub a: ComponentId,
    /// Second component.
    pub b: ComponentId,
    /// Facing (adjacent) length of the two component polygons, in µm — the
    /// `p_i ∩ p_j` term of Eq. 4.
    pub adjacency_length: f64,
    /// Distance between the two component centroids, in µm — the `d_c` term of Eq. 4.
    pub centroid_distance: f64,
    /// Frequency detuning between the two components, in GHz.
    pub detuning_ghz: f64,
}

/// Per-layout component tables shared by both violation scanners.
struct ComponentTables {
    ids: Vec<ComponentId>,
    rects: Vec<qgdp_geometry::Rect>,
    freqs: Vec<qgdp_netlist::Frequency>,
    owners: Vec<Option<qgdp_netlist::ResonatorId>>,
}

fn component_tables(netlist: &QuantumNetlist, placement: &Placement) -> ComponentTables {
    let ids: Vec<ComponentId> = netlist.component_ids().collect();
    let rects: Vec<_> = ids.iter().map(|&id| placement.rect(netlist, id)).collect();
    let freqs: Vec<_> = ids
        .iter()
        .map(|&id| netlist.component_frequency(id))
        .collect();
    let owners: Vec<_> = ids.iter().map(|&id| netlist.owning_resonator(id)).collect();
    ComponentTables {
        ids,
        rects,
        freqs,
        owners,
    }
}

/// Applies the documented violation predicates to the deduplicated pair
/// `(i, j)` (with `i < j`), shared verbatim by both scanners so their accepted
/// sets are identical by construction.
fn check_pair(
    t: &ComponentTables,
    config: &CrosstalkConfig,
    i: usize,
    j: usize,
) -> Option<SpatialViolation> {
    // Same resonator: integration, not a violation.
    if t.owners[i].is_some() && t.owners[i] == t.owners[j] {
        return None;
    }
    let detuning = t.freqs[i].detuning(t.freqs[j]);
    if detuning > config.detuning_threshold_ghz {
        return None;
    }
    let gap = t.rects[i].gap(&t.rects[j]);
    if gap >= config.proximity_threshold {
        return None;
    }
    let inflate = config.proximity_threshold * 0.5;
    let adjacency_length = t.rects[i]
        .inflated(inflate)
        .contact_length(&t.rects[j].inflated(inflate));
    if adjacency_length <= 0.0 {
        return None;
    }
    Some(SpatialViolation {
        a: t.ids[i],
        b: t.ids[j],
        adjacency_length,
        centroid_distance: t.rects[i].centroid_distance(&t.rects[j]),
        detuning_ghz: detuning,
    })
}

/// Scans the layout for spatial violations between frequency-proximate components.
///
/// Pairs belonging to the same resonator are skipped (abutting wire blocks of one
/// resonator are the *desired* outcome), as are pairs whose detuning exceeds
/// `config.detuning_threshold_ghz`.
///
/// Spatial hashing keeps the scan off O(n²): each rectangle, inflated by half
/// the proximity threshold, is rasterised into wire-block-sized cells, so two
/// components whose edge-to-edge gap is below the threshold always share a
/// cell and the candidate set is exact.  Unlike the retained
/// [`find_violations_reference`], the cells live in one flat sorted
/// `Vec<(cell, index)>` — grouped by a single `sort_unstable` and walked as
/// runs — instead of a `HashMap` of per-cell `Vec`s, and pair dedup is a
/// sort+dedup over a flat pair list instead of a `BTreeSet`; on a 10k-qubit
/// report pass this removes one heap allocation per occupied cell plus one
/// tree node per candidate pair.  Output is bit-identical to the reference
/// (same candidate set, same shared predicates, same final order).
#[must_use]
pub fn find_violations(
    netlist: &QuantumNetlist,
    placement: &Placement,
    config: &CrosstalkConfig,
) -> Vec<SpatialViolation> {
    let t = component_tables(netlist, placement);
    let lb = netlist.geometry().wire_block_size;
    let inflate = config.proximity_threshold * 0.5;
    let cell = (config.proximity_threshold + lb).max(1.0);

    let mut entries: Vec<(i64, i64, u32)> = Vec::with_capacity(t.rects.len());
    for (i, r) in t.rects.iter().enumerate() {
        let r = r.inflated(inflate);
        let lo_x = (r.left() / cell).floor() as i64;
        let hi_x = (r.right() / cell).floor() as i64;
        let lo_y = (r.bottom() / cell).floor() as i64;
        let hi_y = (r.top() / cell).floor() as i64;
        for cx in lo_x..=hi_x {
            for cy in lo_y..=hi_y {
                entries.push((cx, cy, i as u32));
            }
        }
    }
    entries.sort_unstable();

    // Candidate pairs: all index pairs sharing a cell run, deduplicated flat.
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut run_start = 0;
    while run_start < entries.len() {
        let (cx, cy, _) = entries[run_start];
        let mut run_end = run_start + 1;
        while run_end < entries.len() && (entries[run_end].0, entries[run_end].1) == (cx, cy) {
            run_end += 1;
        }
        let run = &entries[run_start..run_end];
        for (m, &(_, _, i)) in run.iter().enumerate() {
            for &(_, _, j) in &run[(m + 1)..] {
                pairs.push((i.min(j), i.max(j)));
            }
        }
        run_start = run_end;
    }
    pairs.sort_unstable();
    pairs.dedup();

    let mut out = Vec::new();
    for (i, j) in pairs {
        if let Some(v) = check_pair(&t, config, i as usize, j as usize) {
            out.push(v);
        }
    }
    out.sort_by_key(|x| (x.a, x.b));
    out
}

/// The original hash-bucketed formulation of [`find_violations`]: a
/// `HashMap<cell, Vec<index>>` of rasterised rectangles and a `BTreeSet` pair
/// dedup.
///
/// Kept as the executable specification of the scan — the equivalence tests
/// (unit + root proptest) assert [`find_violations`]'s flat-sorted rework
/// returns bit-identical violation lists.
#[must_use]
pub fn find_violations_reference(
    netlist: &QuantumNetlist,
    placement: &Placement,
    config: &CrosstalkConfig,
) -> Vec<SpatialViolation> {
    let t = component_tables(netlist, placement);
    let lb = netlist.geometry().wire_block_size;
    let inflate = config.proximity_threshold * 0.5;
    let cell = (config.proximity_threshold + lb).max(1.0);
    let mut buckets: std::collections::HashMap<(i64, i64), Vec<usize>> =
        std::collections::HashMap::new();
    for (i, r) in t.rects.iter().enumerate() {
        let r = r.inflated(inflate);
        let lo_x = (r.left() / cell).floor() as i64;
        let hi_x = (r.right() / cell).floor() as i64;
        let lo_y = (r.bottom() / cell).floor() as i64;
        let hi_y = (r.top() / cell).floor() as i64;
        for cx in lo_x..=hi_x {
            for cy in lo_y..=hi_y {
                buckets.entry((cx, cy)).or_default().push(i);
            }
        }
    }

    let mut out = Vec::new();
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for members in buckets.values() {
        for (m, &i) in members.iter().enumerate() {
            for &j in &members[(m + 1)..] {
                let (i, j) = (i.min(j), i.max(j));
                if !seen.insert((i, j)) {
                    continue;
                }
                if let Some(v) = check_pair(&t, config, i, j) {
                    out.push(v);
                }
            }
        }
    }
    out.sort_by_key(|x| (x.a, x.b));
    out
}

/// The frequency-hotspot proportion `P_h` of Eq. 4, as a percentage.
///
/// `P_h = Σ_{i,j} (p_i ∩ p_j) · d_c(p_i, p_j) · τ(ω_i, ω_j, Δ_c) / Σ_n w_n h_n`, where
/// the sum runs over the violating pairs returned by [`find_violations`].
#[must_use]
pub fn hotspot_proportion(
    netlist: &QuantumNetlist,
    placement: &Placement,
    config: &CrosstalkConfig,
) -> f64 {
    let violations = find_violations(netlist, placement, config);
    hotspot_proportion_from(&violations, netlist)
}

/// [`hotspot_proportion`] computed from an already-collected violation list.
#[must_use]
pub fn hotspot_proportion_from(violations: &[SpatialViolation], netlist: &QuantumNetlist) -> f64 {
    let numerator: f64 = violations
        .iter()
        .map(|v| v.adjacency_length * v.centroid_distance)
        .sum();
    100.0 * numerator / netlist.total_component_area()
}

/// The qubits "under crosstalk" (`H_Q` of Table III): qubits that are themselves part
/// of a violating pair, plus the endpoint qubits of any resonator one of whose wire
/// blocks is part of a violating pair.
#[must_use]
pub fn hotspot_qubits(
    netlist: &QuantumNetlist,
    violations: &[SpatialViolation],
) -> BTreeSet<QubitId> {
    let mut qubits = BTreeSet::new();
    for v in violations {
        for id in [v.a, v.b] {
            match id {
                ComponentId::Qubit(q) => {
                    qubits.insert(q);
                }
                ComponentId::Segment(s) => {
                    let r = netlist.block(s).resonator();
                    let (qa, qb) = netlist.resonator(r).endpoints();
                    qubits.insert(qa);
                    qubits.insert(qb);
                }
            }
        }
    }
    qubits
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp_geometry::Point;
    use qgdp_netlist::{ComponentGeometry, NetlistBuilder, ResonatorId, SegmentId};

    /// Builds a 4-qubit path netlist and a placement with everything spread far apart.
    fn spread_layout() -> (QuantumNetlist, Placement) {
        let netlist = NetlistBuilder::new(ComponentGeometry::default())
            .qubits(4)
            .couple(0, 1)
            .couple(1, 2)
            .couple(2, 3)
            .build()
            .unwrap();
        let mut p = Placement::new(&netlist);
        for (i, id) in netlist.component_ids().enumerate() {
            p.set_component(
                id,
                Point::new((i % 8) as f64 * 200.0, (i / 8) as f64 * 200.0),
            );
        }
        (netlist, p)
    }

    #[test]
    fn spread_layout_has_no_violations() {
        let (netlist, p) = spread_layout();
        let v = find_violations(&netlist, &p, &CrosstalkConfig::default());
        assert!(v.is_empty());
        assert_eq!(
            hotspot_proportion(&netlist, &p, &CrosstalkConfig::default()),
            0.0
        );
        assert!(hotspot_qubits(&netlist, &v).is_empty());
    }

    #[test]
    fn same_frequency_qubits_close_together_violate() {
        let (netlist, mut p) = spread_layout();
        // Qubits 0 and 2 are not coupled, so the greedy colouring may give them the
        // same frequency; find two qubits with identical frequencies and move them
        // next to each other.
        let mut same = None;
        'outer: for a in netlist.qubit_ids() {
            for b in netlist.qubit_ids() {
                if a < b
                    && netlist
                        .qubit(a)
                        .frequency()
                        .detuning(netlist.qubit(b).frequency())
                        < 1e-9
                {
                    same = Some((a, b));
                    break 'outer;
                }
            }
        }
        let (a, b) = same.expect("a 4-qubit path has at least one repeated frequency");
        p.set_qubit(a, Point::new(1000.0, 1000.0));
        p.set_qubit(b, Point::new(1000.0 + 40.0 + 5.0, 1000.0)); // 5 µm gap < threshold
        let v = find_violations(&netlist, &p, &CrosstalkConfig::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].adjacency_length > 0.0);
        assert!(hotspot_proportion(&netlist, &p, &CrosstalkConfig::default()) > 0.0);
        let hq = hotspot_qubits(&netlist, &v);
        assert!(hq.contains(&a) && hq.contains(&b));
        assert_eq!(hq.len(), 2);
    }

    #[test]
    fn detuned_neighbors_do_not_violate() {
        let (netlist, mut p) = spread_layout();
        // Coupled qubits have different frequencies by construction; placing them close
        // must not create a violation (their detuning exceeds Δ_c).
        p.set_qubit(qgdp_netlist::QubitId(0), Point::new(500.0, 500.0));
        p.set_qubit(qgdp_netlist::QubitId(1), Point::new(545.0, 500.0));
        let v = find_violations(&netlist, &p, &CrosstalkConfig::default());
        assert!(v.iter().all(|v| {
            !(matches!(v.a, ComponentId::Qubit(q) if q.index() <= 1)
                && matches!(v.b, ComponentId::Qubit(q) if q.index() <= 1))
        }));
    }

    #[test]
    fn same_resonator_blocks_never_violate() {
        let (netlist, mut p) = spread_layout();
        let segs = netlist.resonator(ResonatorId(0)).segments().to_vec();
        for (k, &s) in segs.iter().enumerate() {
            p.set_segment(s, Point::new(2000.0 + 10.0 * k as f64, 2000.0));
        }
        let v = find_violations(&netlist, &p, &CrosstalkConfig::default());
        for viol in &v {
            let owners = (
                netlist.owning_resonator(viol.a),
                netlist.owning_resonator(viol.b),
            );
            assert!(
                owners.0 != Some(ResonatorId(0)) || owners.1 != Some(ResonatorId(0)),
                "same-resonator pair reported as a violation"
            );
        }
    }

    #[test]
    fn blocks_of_same_frequency_resonators_violate_when_adjacent() {
        // Resonators 0 and 8 share a band slot in the default plan; with only 3
        // resonators here, force the check with resonator 0's own frequency band by
        // using two resonators whose assigned slots coincide modulo the band size.
        // Simpler: use blocks of resonators 0 and 1 — different slots (50 MHz apart),
        // which is within the default 60 MHz threshold, so adjacency still counts.
        let (netlist, mut p) = spread_layout();
        let s0: SegmentId = netlist.resonator(ResonatorId(0)).segments()[0];
        let s1: SegmentId = netlist.resonator(ResonatorId(1)).segments()[0];
        p.set_segment(s0, Point::new(3000.0, 3000.0));
        p.set_segment(s1, Point::new(3010.0, 3000.0)); // abutting
        let v = find_violations(&netlist, &p, &CrosstalkConfig::default());
        assert!(v.iter().any(|v| (v.a == ComponentId::Segment(s0)
            && v.b == ComponentId::Segment(s1))
            || (v.a == ComponentId::Segment(s1) && v.b == ComponentId::Segment(s0))));
        let hq = hotspot_qubits(&netlist, &v);
        // Endpoints of both resonators are flagged.
        assert!(hq.len() >= 3);
    }

    /// Brute-force O(n²) oracle applying exactly the documented violation filters.
    fn bruteforce_violations(
        netlist: &QuantumNetlist,
        placement: &Placement,
        config: &CrosstalkConfig,
    ) -> Vec<(ComponentId, ComponentId)> {
        let ids: Vec<ComponentId> = netlist.component_ids().collect();
        let mut out = Vec::new();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                let (a, b) = (ids[i], ids[j]);
                let (oa, ob) = (netlist.owning_resonator(a), netlist.owning_resonator(b));
                if oa.is_some() && oa == ob {
                    continue;
                }
                if netlist
                    .component_frequency(a)
                    .detuning(netlist.component_frequency(b))
                    > config.detuning_threshold_ghz
                {
                    continue;
                }
                let (ra, rb) = (placement.rect(netlist, a), placement.rect(netlist, b));
                if ra.gap(&rb) >= config.proximity_threshold {
                    continue;
                }
                let inflate = config.proximity_threshold * 0.5;
                if ra.inflated(inflate).contact_length(&rb.inflated(inflate)) <= 0.0 {
                    continue;
                }
                out.push((a, b));
            }
        }
        out
    }

    #[test]
    fn wire_block_dense_region_matches_bruteforce_oracle() {
        // Regression for the spatial-hash cell sizing: the old hash sized cells by
        // the *largest* component (the qubit), funnelling every block of a dense
        // wire-block region into one bucket.  Pack the blocks of several resonators
        // into one tight cluster (plus spread-out qubits) and check the hashed scan
        // returns exactly the brute-force pair set.
        let netlist = NetlistBuilder::new(ComponentGeometry::default())
            .qubits(8)
            .couple_all((0..7).map(|i| (i, i + 1)))
            .build()
            .unwrap();
        let mut p = Placement::new(&netlist);
        for (i, q) in netlist.qubit_ids().enumerate() {
            p.set_qubit(q, Point::new(i as f64 * 300.0, 2000.0));
        }
        // All 84 wire blocks packed into an abutting grid at wire-block pitch.
        let lb = netlist.geometry().wire_block_size;
        for (k, s) in netlist.segment_ids().enumerate() {
            p.set_segment(
                s,
                Point::new(500.0 + (k % 10) as f64 * lb, 500.0 + (k / 10) as f64 * lb),
            );
        }
        let cfg = CrosstalkConfig::default();
        let hashed: Vec<(ComponentId, ComponentId)> = find_violations(&netlist, &p, &cfg)
            .iter()
            .map(|v| (v.a, v.b))
            .collect();
        let oracle = bruteforce_violations(&netlist, &p, &cfg);
        assert!(
            !oracle.is_empty(),
            "the dense cluster must produce cross-resonator violations"
        );
        assert_eq!(hashed, oracle);
    }

    #[test]
    fn qubit_macros_spanning_many_hash_cells_are_still_caught() {
        // A qubit is several hash cells wide under wire-block-sized cells; a block
        // parked right next to it must still be detected if frequencies collide.
        let netlist = NetlistBuilder::new(ComponentGeometry::default())
            .qubits(4)
            .couple(0, 1)
            .couple(1, 2)
            .couple(2, 3)
            .build()
            .unwrap();
        let mut p = Placement::new(&netlist);
        for (i, id) in netlist.component_ids().enumerate() {
            p.set_component(
                id,
                Point::new((i % 8) as f64 * 200.0, (i / 8) as f64 * 200.0),
            );
        }
        let cfg = CrosstalkConfig::default();
        let hashed: Vec<_> = find_violations(&netlist, &p, &cfg)
            .iter()
            .map(|v| (v.a, v.b))
            .collect();
        assert_eq!(hashed, bruteforce_violations(&netlist, &p, &cfg));
    }

    #[test]
    fn flat_scan_matches_reference_bit_for_bit() {
        // Dense wire-block cluster + spread qubits + a forced qubit pair: the
        // flat sorted scan and the hash-bucketed reference must agree exactly,
        // including f64 bit patterns.
        let netlist = NetlistBuilder::new(ComponentGeometry::default())
            .qubits(8)
            .couple_all((0..7).map(|i| (i, i + 1)))
            .build()
            .unwrap();
        let mut p = Placement::new(&netlist);
        for (i, q) in netlist.qubit_ids().enumerate() {
            p.set_qubit(q, Point::new(i as f64 * 300.0, 2000.0));
        }
        let lb = netlist.geometry().wire_block_size;
        for (k, s) in netlist.segment_ids().enumerate() {
            p.set_segment(
                s,
                Point::new(500.0 + (k % 10) as f64 * lb, 500.0 + (k / 10) as f64 * lb),
            );
        }
        let cfg = CrosstalkConfig::default();
        let optimized = find_violations(&netlist, &p, &cfg);
        let reference = find_violations_reference(&netlist, &p, &cfg);
        assert!(!optimized.is_empty());
        assert_eq!(optimized.len(), reference.len());
        for (o, r) in optimized.iter().zip(&reference) {
            assert_eq!((o.a, o.b), (r.a, r.b));
            assert_eq!(o.adjacency_length.to_bits(), r.adjacency_length.to_bits());
            assert_eq!(o.centroid_distance.to_bits(), r.centroid_distance.to_bits());
            assert_eq!(o.detuning_ghz.to_bits(), r.detuning_ghz.to_bits());
        }
    }

    #[test]
    fn ph_increases_with_more_violations() {
        let (netlist, mut p) = spread_layout();
        let cfg = CrosstalkConfig::default();
        let base = hotspot_proportion(&netlist, &p, &cfg);
        // Pile the blocks of resonators 0 and 1 on top of each other.
        let r0 = netlist.resonator(ResonatorId(0)).segments().to_vec();
        let r1 = netlist.resonator(ResonatorId(1)).segments().to_vec();
        for (k, (&a, &b)) in r0.iter().zip(&r1).enumerate() {
            p.set_segment(a, Point::new(4000.0 + 10.0 * k as f64, 4000.0));
            p.set_segment(b, Point::new(4000.0 + 10.0 * k as f64, 4010.0));
        }
        let stacked = hotspot_proportion(&netlist, &p, &cfg);
        assert!(stacked > base);
    }
}
