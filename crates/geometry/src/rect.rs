//! Axis-aligned rectangles used for qubit pads, wire blocks and window regions.

use crate::{clamp_interval, Point, Vector, EPS};
use std::fmt;

/// An axis-aligned rectangle described by its centre and dimensions.
///
/// The centre-based representation mirrors the paper's constraint formulation:
/// non-overlap between components `i` and `j` is
/// `|x_i − x_j| ≥ (w_i + w_j)/2` **or** `|y_i − y_j| ≥ (h_i + h_j)/2`,
/// and the border constraint is `w/2 ≤ x ≤ W − w/2`, `h/2 ≤ y ≤ H − h/2`.
///
/// # Example
///
/// ```
/// use qgdp_geometry::{Point, Rect};
///
/// let die = Rect::from_corners(Point::ORIGIN, Point::new(100.0, 100.0));
/// let qubit = Rect::from_center(Point::new(3.0, 3.0), 10.0, 10.0);
/// let inside = qubit.clamped_within(&die);
/// assert_eq!(inside.center(), Point::new(5.0, 5.0));
/// assert!(die.contains_rect(&inside));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    center: Point,
    width: f64,
    height: f64,
}

impl Rect {
    /// Creates a rectangle from its centre point and dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative or non-finite.
    #[must_use]
    pub fn from_center(center: Point, width: f64, height: f64) -> Self {
        assert!(
            width >= 0.0 && height >= 0.0 && width.is_finite() && height.is_finite(),
            "rectangle dimensions must be finite and non-negative (got {width} x {height})"
        );
        Rect {
            center,
            width,
            height,
        }
    }

    /// Creates a rectangle from its lower-left corner and dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative or non-finite.
    #[must_use]
    pub fn from_lower_left(lower_left: Point, width: f64, height: f64) -> Self {
        Rect::from_center(
            Point::new(lower_left.x + width * 0.5, lower_left.y + height * 0.5),
            width,
            height,
        )
    }

    /// Creates a rectangle spanning two opposite corners (in any order).
    #[must_use]
    pub fn from_corners(a: Point, b: Point) -> Self {
        let lo = Point::new(a.x.min(b.x), a.y.min(b.y));
        let hi = Point::new(a.x.max(b.x), a.y.max(b.y));
        Rect::from_lower_left(lo, hi.x - lo.x, hi.y - lo.y)
    }

    /// The centre of the rectangle.
    #[must_use]
    pub fn center(&self) -> Point {
        self.center
    }

    /// The width of the rectangle.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The height of the rectangle.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Area of the rectangle.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Half of the perimeter (`width + height`), the HPWL-style size measure.
    #[must_use]
    pub fn half_perimeter(&self) -> f64 {
        self.width + self.height
    }

    /// The x coordinate of the left edge.
    #[must_use]
    pub fn left(&self) -> f64 {
        self.center.x - self.width * 0.5
    }

    /// The x coordinate of the right edge.
    #[must_use]
    pub fn right(&self) -> f64 {
        self.center.x + self.width * 0.5
    }

    /// The y coordinate of the bottom edge.
    #[must_use]
    pub fn bottom(&self) -> f64 {
        self.center.y - self.height * 0.5
    }

    /// The y coordinate of the top edge.
    #[must_use]
    pub fn top(&self) -> f64 {
        self.center.y + self.height * 0.5
    }

    /// The lower-left corner.
    #[must_use]
    pub fn lower_left(&self) -> Point {
        Point::new(self.left(), self.bottom())
    }

    /// The upper-right corner.
    #[must_use]
    pub fn upper_right(&self) -> Point {
        Point::new(self.right(), self.top())
    }

    /// Returns a copy of this rectangle translated so its centre is `center`.
    #[must_use]
    pub fn with_center(&self, center: Point) -> Rect {
        Rect { center, ..*self }
    }

    /// Returns a copy of this rectangle translated by `offset`.
    #[must_use]
    pub fn translated(&self, offset: Vector) -> Rect {
        Rect {
            center: self.center + offset,
            ..*self
        }
    }

    /// Returns a copy of this rectangle expanded by `margin` on every side.
    ///
    /// A negative margin shrinks the rectangle; dimensions are floored at zero.
    #[must_use]
    pub fn inflated(&self, margin: f64) -> Rect {
        Rect {
            center: self.center,
            width: (self.width + 2.0 * margin).max(0.0),
            height: (self.height + 2.0 * margin).max(0.0),
        }
    }

    /// Returns `true` if `point` lies inside or on the boundary of the rectangle.
    #[must_use]
    pub fn contains_point(&self, point: Point) -> bool {
        point.x >= self.left() - EPS
            && point.x <= self.right() + EPS
            && point.y >= self.bottom() - EPS
            && point.y <= self.top() + EPS
    }

    /// Returns `true` if `other` lies entirely inside (or on the boundary of) `self`.
    #[must_use]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.left() >= self.left() - EPS
            && other.right() <= self.right() + EPS
            && other.bottom() >= self.bottom() - EPS
            && other.top() <= self.top() + EPS
    }

    /// Returns `true` if the interiors of the two rectangles intersect.
    ///
    /// Rectangles that merely touch along an edge or corner do **not** overlap; touching
    /// is the desired packing condition for wire blocks of the same resonator.
    #[must_use]
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.overlap_x(other) > EPS && self.overlap_y(other) > EPS
    }

    /// Length of the overlap of the two x-projections (zero if disjoint).
    #[must_use]
    pub fn overlap_x(&self, other: &Rect) -> f64 {
        (self.right().min(other.right()) - self.left().max(other.left())).max(0.0)
    }

    /// Length of the overlap of the two y-projections (zero if disjoint).
    #[must_use]
    pub fn overlap_y(&self, other: &Rect) -> f64 {
        (self.top().min(other.top()) - self.bottom().max(other.bottom())).max(0.0)
    }

    /// Area of the intersection of the two rectangles (zero if disjoint).
    #[must_use]
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        self.overlap_x(other) * self.overlap_y(other)
    }

    /// Returns `true` if the two rectangles touch: their closures intersect but their
    /// interiors may or may not.  Two abutting wire blocks touch; two blocks separated
    /// by any positive gap do not.
    #[must_use]
    pub fn touches(&self, other: &Rect) -> bool {
        let gap_x = self.left().max(other.left()) - self.right().min(other.right());
        let gap_y = self.bottom().max(other.bottom()) - self.top().min(other.top());
        gap_x <= EPS && gap_y <= EPS
    }

    /// Length of the shared boundary between two touching, non-overlapping rectangles.
    ///
    /// This is the `p_i ∩ p_j` term of the frequency-hotspot metric (paper Eq. 4): the
    /// facing length over which two components are adjacent.  For overlapping
    /// rectangles the larger projection overlap is returned, and for rectangles that do
    /// not touch at all the result is zero.
    #[must_use]
    pub fn contact_length(&self, other: &Rect) -> f64 {
        if !self.touches(other) {
            return 0.0;
        }
        self.overlap_x(other).max(self.overlap_y(other))
    }

    /// Shortest distance between the boundaries of the two rectangles (zero if they
    /// touch or overlap).
    #[must_use]
    pub fn gap(&self, other: &Rect) -> f64 {
        let gap_x = (self.left().max(other.left()) - self.right().min(other.right())).max(0.0);
        let gap_y = (self.bottom().max(other.bottom()) - self.top().min(other.top())).max(0.0);
        gap_x.hypot(gap_y)
    }

    /// Distance between the centres of the two rectangles — the `d_c` term of the
    /// frequency-hotspot metric (paper Eq. 4).
    #[must_use]
    pub fn centroid_distance(&self, other: &Rect) -> f64 {
        self.center.distance(other.center)
    }

    /// The smallest rectangle containing both `self` and `other`.
    #[must_use]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::from_corners(
            Point::new(
                self.left().min(other.left()),
                self.bottom().min(other.bottom()),
            ),
            Point::new(self.right().max(other.right()), self.top().max(other.top())),
        )
    }

    /// The bounding box of a non-empty set of rectangles, or `None` for an empty
    /// iterator.
    #[must_use]
    pub fn bounding_box<'a, I: IntoIterator<Item = &'a Rect>>(rects: I) -> Option<Rect> {
        let mut iter = rects.into_iter();
        let first = *iter.next()?;
        Some(iter.fold(first, |acc, r| acc.union(r)))
    }

    /// Returns a copy of `self` whose centre has been clamped so that the rectangle lies
    /// inside `border` (the paper's border constraint, Eq. 2).
    ///
    /// If `self` is wider or taller than `border`, the corresponding coordinate is
    /// centred on the border.
    #[must_use]
    pub fn clamped_within(&self, border: &Rect) -> Rect {
        let cx = clamp_interval(
            self.center.x,
            border.left() + self.width * 0.5,
            border.right() - self.width * 0.5,
        );
        let cy = clamp_interval(
            self.center.y,
            border.bottom() + self.height * 0.5,
            border.top() - self.height * 0.5,
        );
        self.with_center(Point::new(cx, cy))
    }

    /// Minimum centre-to-centre separation along x for `self` and `other` not to
    /// overlap, i.e. `(w_i + w_j)/2` from the paper's Eq. 1.
    #[must_use]
    pub fn min_separation_x(&self, other: &Rect) -> f64 {
        (self.width + other.width) * 0.5
    }

    /// Minimum centre-to-centre separation along y for `self` and `other` not to
    /// overlap, i.e. `(h_i + h_j)/2` from the paper's Eq. 1.
    #[must_use]
    pub fn min_separation_y(&self, other: &Rect) -> f64 {
        (self.height + other.height) * 0.5
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.3}x{:.3} @ {}]",
            self.width, self.height, self.center
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(cx: f64, cy: f64, w: f64, h: f64) -> Rect {
        Rect::from_center(Point::new(cx, cy), w, h)
    }

    #[test]
    fn construction_round_trips() {
        let a = Rect::from_lower_left(Point::new(1.0, 2.0), 4.0, 6.0);
        assert_eq!(a.center(), Point::new(3.0, 5.0));
        assert_eq!(a.lower_left(), Point::new(1.0, 2.0));
        assert_eq!(a.upper_right(), Point::new(5.0, 8.0));
        let b = Rect::from_corners(Point::new(5.0, 8.0), Point::new(1.0, 2.0));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "dimensions must be finite")]
    fn negative_dimensions_panic() {
        let _ = Rect::from_center(Point::ORIGIN, -1.0, 1.0);
    }

    #[test]
    fn overlap_and_touching() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(8.0, 0.0, 10.0, 10.0);
        let c = r(10.0, 0.0, 10.0, 10.0); // abuts a exactly
        let d = r(30.0, 0.0, 10.0, 10.0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.touches(&c));
        assert!(!a.touches(&d));
        assert_eq!(a.overlap_area(&b), 2.0 * 10.0);
        assert_eq!(a.overlap_area(&c), 0.0);
        assert_eq!(a.contact_length(&c), 10.0);
        assert_eq!(a.contact_length(&d), 0.0);
    }

    #[test]
    fn gap_distances() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(20.0, 0.0, 10.0, 10.0);
        assert_eq!(a.gap(&b), 10.0);
        let c = r(20.0, 20.0, 10.0, 10.0);
        let expected = (10.0f64 * 10.0 + 10.0 * 10.0).sqrt();
        assert!((a.gap(&c) - expected).abs() < 1e-12);
        assert_eq!(a.gap(&r(5.0, 5.0, 10.0, 10.0)), 0.0);
    }

    #[test]
    fn union_and_bounding_box() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(10.0, 10.0, 2.0, 2.0);
        let u = a.union(&b);
        assert_eq!(u.lower_left(), Point::new(-1.0, -1.0));
        assert_eq!(u.upper_right(), Point::new(11.0, 11.0));
        assert_eq!(
            Rect::bounding_box([&a, &b].into_iter().copied().collect::<Vec<_>>().iter()),
            Some(u)
        );
        assert_eq!(Rect::bounding_box(std::iter::empty()), None);
    }

    #[test]
    fn clamp_within_border() {
        let die = Rect::from_corners(Point::ORIGIN, Point::new(100.0, 50.0));
        let q = r(-5.0, 60.0, 10.0, 10.0);
        let c = q.clamped_within(&die);
        assert_eq!(c.center(), Point::new(5.0, 45.0));
        assert!(die.contains_rect(&c));
        // Larger than die: centred.
        let big = r(0.0, 0.0, 200.0, 10.0);
        assert_eq!(big.clamped_within(&die).center().x, 50.0);
    }

    #[test]
    fn containment() {
        let die = Rect::from_corners(Point::ORIGIN, Point::new(10.0, 10.0));
        assert!(die.contains_point(Point::new(0.0, 0.0)));
        assert!(die.contains_point(Point::new(10.0, 10.0)));
        assert!(!die.contains_point(Point::new(10.1, 10.0)));
        assert!(die.contains_rect(&r(5.0, 5.0, 10.0, 10.0)));
        assert!(!die.contains_rect(&r(5.0, 5.0, 10.1, 10.0)));
    }

    #[test]
    fn separation_terms_match_eq1() {
        let a = r(0.0, 0.0, 8.0, 6.0);
        let b = r(0.0, 0.0, 4.0, 2.0);
        assert_eq!(a.min_separation_x(&b), 6.0);
        assert_eq!(a.min_separation_y(&b), 4.0);
    }

    proptest! {
        #[test]
        fn prop_overlap_is_symmetric(ax in -50.0..50.0f64, ay in -50.0..50.0f64,
                                     aw in 0.1..20.0f64, ah in 0.1..20.0f64,
                                     bx in -50.0..50.0f64, by in -50.0..50.0f64,
                                     bw in 0.1..20.0f64, bh in 0.1..20.0f64) {
            let a = r(ax, ay, aw, ah);
            let b = r(bx, by, bw, bh);
            prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
            prop_assert!((a.overlap_area(&b) - b.overlap_area(&a)).abs() < 1e-9);
            prop_assert!((a.gap(&b) - b.gap(&a)).abs() < 1e-9);
        }

        #[test]
        fn prop_overlap_implies_eq1_violated(ax in -50.0..50.0f64, ay in -50.0..50.0f64,
                                             aw in 0.1..20.0f64, ah in 0.1..20.0f64,
                                             bx in -50.0..50.0f64, by in -50.0..50.0f64,
                                             bw in 0.1..20.0f64, bh in 0.1..20.0f64) {
            // Overlap is exactly the negation of the paper's non-overlap constraint.
            let a = r(ax, ay, aw, ah);
            let b = r(bx, by, bw, bh);
            let eq1_satisfied = (ax - bx).abs() + 1e-12 >= a.min_separation_x(&b)
                || (ay - by).abs() + 1e-12 >= a.min_separation_y(&b);
            prop_assert_eq!(a.overlaps(&b), !eq1_satisfied);
        }

        #[test]
        fn prop_clamp_keeps_inside_when_feasible(cx in -200.0..200.0f64, cy in -200.0..200.0f64,
                                                 w in 0.1..50.0f64, h in 0.1..50.0f64) {
            let die = Rect::from_corners(Point::ORIGIN, Point::new(100.0, 100.0));
            let clamped = r(cx, cy, w, h).clamped_within(&die);
            prop_assert!(die.contains_rect(&clamped));
        }

        #[test]
        fn prop_union_contains_both(ax in -50.0..50.0f64, ay in -50.0..50.0f64,
                                    aw in 0.1..20.0f64, ah in 0.1..20.0f64,
                                    bx in -50.0..50.0f64, by in -50.0..50.0f64,
                                    bw in 0.1..20.0f64, bh in 0.1..20.0f64) {
            let a = r(ax, ay, aw, ah);
            let b = r(bx, by, bw, bh);
            let u = a.union(&b);
            prop_assert!(u.contains_rect(&a));
            prop_assert!(u.contains_rect(&b));
        }
    }
}
