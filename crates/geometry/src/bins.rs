//! Bin grid and the hierarchical "bin-aided" free-space index (paper §III-D).
//!
//! The resonator legalizer discretises the die into square bins of one wire-block size.
//! Bins covered by fixed qubits are *blocked*; bins holding an already-legalized wire
//! block are *occupied*; the rest are *free*.  The paper stresses that a flat array of
//! free cells makes nearest-free-space queries the scalability bottleneck and instead
//! organises the cells into hierarchical per-row structures, reducing queries to
//! `O(log n)`; [`FreeBinIndex`] reproduces that design with one ordered set of free
//! columns per row.

use crate::{Point, Rect};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a bin inside a [`BinGrid`] (row-major linear index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BinId(pub usize);

impl fmt::Display for BinId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bin{}", self.0)
    }
}

/// Occupancy state of a bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BinState {
    /// The bin is available for a wire block.
    #[default]
    Free,
    /// The bin is permanently unavailable (covered by a qubit pad or outside the
    /// placeable area).
    Blocked,
    /// The bin holds a legalized wire block.
    Occupied,
}

/// A uniform grid of square bins covering the die.
///
/// # Example
///
/// ```
/// use qgdp_geometry::{BinGrid, BinState, Point, Rect};
///
/// let die = Rect::from_corners(Point::ORIGIN, Point::new(10.0, 10.0));
/// let mut grid = BinGrid::new(&die, 1.0);
/// assert_eq!(grid.num_bins(), 100);
/// grid.block_rect(&Rect::from_center(Point::new(5.0, 5.0), 2.0, 2.0));
/// assert_eq!(grid.count(BinState::Blocked), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BinGrid {
    origin: Point,
    bin_size: f64,
    cols: usize,
    rows: usize,
    states: Vec<BinState>,
}

impl BinGrid {
    /// Creates a grid of square bins of side `bin_size` covering `die`.
    ///
    /// The grid is anchored at the die's lower-left corner; partial bins at the top and
    /// right edges are dropped so that every bin lies fully inside the die.
    ///
    /// # Panics
    ///
    /// Panics if `bin_size` is not strictly positive and finite.
    #[must_use]
    pub fn new(die: &Rect, bin_size: f64) -> Self {
        assert!(
            bin_size > 0.0 && bin_size.is_finite(),
            "bin size must be positive and finite (got {bin_size})"
        );
        let cols = ((die.width() / bin_size) + crate::EPS).floor() as usize;
        let rows = ((die.height() / bin_size) + crate::EPS).floor() as usize;
        BinGrid {
            origin: die.lower_left(),
            bin_size,
            cols,
            rows,
            states: vec![BinState::Free; cols * rows],
        }
    }

    /// Number of bin columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of bin rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Side length of each (square) bin.
    #[must_use]
    pub fn bin_size(&self) -> f64 {
        self.bin_size
    }

    /// Total number of bins.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.states.len()
    }

    /// Lower-left corner of the grid.
    #[must_use]
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// Converts a `(col, row)` pair into a [`BinId`], if in range.
    #[must_use]
    pub fn bin_id(&self, col: usize, row: usize) -> Option<BinId> {
        if col < self.cols && row < self.rows {
            Some(BinId(row * self.cols + col))
        } else {
            None
        }
    }

    /// Converts a [`BinId`] back to its `(col, row)` pair.
    ///
    /// # Panics
    ///
    /// Panics if the bin id does not belong to this grid.
    #[must_use]
    pub fn col_row(&self, bin: BinId) -> (usize, usize) {
        assert!(bin.0 < self.states.len(), "{bin} out of range");
        (bin.0 % self.cols, bin.0 / self.cols)
    }

    /// Centre point of a bin.
    #[must_use]
    pub fn bin_center(&self, bin: BinId) -> Point {
        let (col, row) = self.col_row(bin);
        Point::new(
            self.origin.x + (col as f64 + 0.5) * self.bin_size,
            self.origin.y + (row as f64 + 0.5) * self.bin_size,
        )
    }

    /// Rectangle covered by a bin.
    #[must_use]
    pub fn bin_rect(&self, bin: BinId) -> Rect {
        Rect::from_center(self.bin_center(bin), self.bin_size, self.bin_size)
    }

    /// The bin containing `point`, clamped to the grid when the point lies outside.
    ///
    /// Returns `None` only when the grid has zero bins.
    #[must_use]
    pub fn bin_at(&self, point: Point) -> Option<BinId> {
        if self.states.is_empty() {
            return None;
        }
        let col = (((point.x - self.origin.x) / self.bin_size).floor() as i64)
            .clamp(0, self.cols as i64 - 1) as usize;
        let row = (((point.y - self.origin.y) / self.bin_size).floor() as i64)
            .clamp(0, self.rows as i64 - 1) as usize;
        self.bin_id(col, row)
    }

    /// Current state of a bin.
    #[must_use]
    pub fn state(&self, bin: BinId) -> BinState {
        self.states[bin.0]
    }

    /// Sets the state of a bin.
    pub fn set_state(&mut self, bin: BinId, state: BinState) {
        self.states[bin.0] = state;
    }

    /// Marks every bin whose rectangle overlaps `rect` as [`BinState::Blocked`].
    pub fn block_rect(&mut self, rect: &Rect) {
        if self.states.is_empty() {
            return;
        }
        let lo_col = (((rect.left() - self.origin.x) / self.bin_size).floor() as i64)
            .clamp(0, self.cols as i64 - 1) as usize;
        let hi_col = (((rect.right() - self.origin.x) / self.bin_size).ceil() as i64 - 1)
            .clamp(0, self.cols as i64 - 1) as usize;
        let lo_row = (((rect.bottom() - self.origin.y) / self.bin_size).floor() as i64)
            .clamp(0, self.rows as i64 - 1) as usize;
        let hi_row = (((rect.top() - self.origin.y) / self.bin_size).ceil() as i64 - 1)
            .clamp(0, self.rows as i64 - 1) as usize;
        for row in lo_row..=hi_row {
            for col in lo_col..=hi_col {
                let id = BinId(row * self.cols + col);
                if self.bin_rect(id).overlaps(rect) {
                    self.states[id.0] = BinState::Blocked;
                }
            }
        }
    }

    /// Number of bins currently in `state`.
    #[must_use]
    pub fn count(&self, state: BinState) -> usize {
        self.states.iter().filter(|&&s| s == state).count()
    }

    /// Iterator over all bins in `state`.
    pub fn bins_in_state(&self, state: BinState) -> impl Iterator<Item = BinId> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(move |(_, &s)| s == state)
            .map(|(i, _)| BinId(i))
    }

    /// The 4-connected neighbours (left, right, down, up) of a bin.
    #[must_use]
    pub fn neighbors4(&self, bin: BinId) -> Vec<BinId> {
        let (col, row) = self.col_row(bin);
        let mut out = Vec::with_capacity(4);
        if col > 0 {
            out.push(BinId(bin.0 - 1));
        }
        if col + 1 < self.cols {
            out.push(BinId(bin.0 + 1));
        }
        if row > 0 {
            out.push(BinId(bin.0 - self.cols));
        }
        if row + 1 < self.rows {
            out.push(BinId(bin.0 + self.cols));
        }
        out
    }

    /// The 8-connected neighbours of a bin (including diagonals).
    #[must_use]
    pub fn neighbors8(&self, bin: BinId) -> Vec<BinId> {
        let (col, row) = self.col_row(bin);
        let mut out = Vec::with_capacity(8);
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let nc = col as i64 + dc;
                let nr = row as i64 + dr;
                if nc >= 0 && nr >= 0 {
                    if let Some(id) = self.bin_id(nc as usize, nr as usize) {
                        out.push(id);
                    }
                }
            }
        }
        out
    }

    /// Builds the hierarchical free-bin index for the current grid state.
    #[must_use]
    pub fn free_index(&self) -> FreeBinIndex {
        let mut index = FreeBinIndex::empty(self.origin, self.bin_size, self.cols, self.rows);
        for bin in self.bins_in_state(BinState::Free) {
            index.insert(bin);
        }
        index
    }
}

/// Hierarchical index of free bins, organised as one ordered set of columns per row.
///
/// This mirrors the paper's "bin-aided indexing approach, which organizes cells into
/// hierarchical bins along the y-axis rather than flattened arrays, reducing cell query
/// operations to `O(log n)`": a nearest-free query walks rows outward from the target
/// row and performs a logarithmic column search in each, pruning once the row distance
/// alone exceeds the best candidate found so far.
#[derive(Debug, Clone, PartialEq)]
pub struct FreeBinIndex {
    origin: Point,
    bin_size: f64,
    cols: usize,
    rows: usize,
    /// `free_cols[row]` is the ordered set of free columns in that row.
    free_cols: Vec<BTreeSet<usize>>,
    len: usize,
}

impl FreeBinIndex {
    /// Creates an empty index with the same geometry as the owning grid.
    #[must_use]
    pub fn empty(origin: Point, bin_size: f64, cols: usize, rows: usize) -> Self {
        FreeBinIndex {
            origin,
            bin_size,
            cols,
            rows,
            free_cols: vec![BTreeSet::new(); rows],
            len: 0,
        }
    }

    /// Number of free bins currently tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no free bins are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `bin` is currently tracked as free.
    #[must_use]
    pub fn contains(&self, bin: BinId) -> bool {
        let (col, row) = self.col_row(bin);
        self.free_cols[row].contains(&col)
    }

    /// Adds `bin` to the free set.  Returns `true` if it was not already present.
    pub fn insert(&mut self, bin: BinId) -> bool {
        let (col, row) = self.col_row(bin);
        let inserted = self.free_cols[row].insert(col);
        if inserted {
            self.len += 1;
        }
        inserted
    }

    /// Removes `bin` from the free set.  Returns `true` if it was present.
    pub fn remove(&mut self, bin: BinId) -> bool {
        let (col, row) = self.col_row(bin);
        let removed = self.free_cols[row].remove(&col);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Centre point of a bin (same convention as [`BinGrid::bin_center`]).
    #[must_use]
    pub fn bin_center(&self, bin: BinId) -> Point {
        let (col, row) = self.col_row(bin);
        Point::new(
            self.origin.x + (col as f64 + 0.5) * self.bin_size,
            self.origin.y + (row as f64 + 0.5) * self.bin_size,
        )
    }

    fn col_row(&self, bin: BinId) -> (usize, usize) {
        assert!(bin.0 < self.cols * self.rows, "{bin} out of range");
        (bin.0 % self.cols, bin.0 / self.cols)
    }

    fn bin_of(&self, col: usize, row: usize) -> BinId {
        BinId(row * self.cols + col)
    }

    /// Finds the free bin whose centre is nearest (Euclidean) to `target`.
    ///
    /// Returns `None` when the index is empty.  The search walks rows outward from the
    /// target row, doing an ordered column lookup per row, and stops as soon as the
    /// vertical distance to the next row exceeds the best distance found so far, which
    /// keeps queries logarithmic for realistic occupancies.
    #[must_use]
    pub fn nearest_free(&self, target: Point) -> Option<BinId> {
        if self.is_empty() || self.cols == 0 || self.rows == 0 {
            return None;
        }
        let target_row = (((target.y - self.origin.y) / self.bin_size - 0.5).round() as i64)
            .clamp(0, self.rows as i64 - 1) as usize;

        let mut best: Option<(f64, BinId)> = None;
        let mut offset: i64 = 0;
        loop {
            let mut any_row_in_range = false;
            for row in Self::rows_at_offset(target_row, offset, self.rows) {
                any_row_in_range = true;
                let row_y = self.origin.y + (row as f64 + 0.5) * self.bin_size;
                let dy = row_y - target.y;
                if let Some((best_d, _)) = best {
                    if dy.abs() > best_d {
                        continue;
                    }
                }
                if let Some((dist, bin)) = self.nearest_in_row(row, target, dy) {
                    match best {
                        Some((best_d, best_bin))
                            if dist > best_d || (dist == best_d && bin >= best_bin) => {}
                        _ => best = Some((dist, bin)),
                    }
                }
            }
            offset += 1;
            // Termination: either we've scanned every row, or the vertical distance of
            // the next row band already exceeds the best candidate.
            let next_dy = (offset as f64 - 1.0).max(0.0) * self.bin_size;
            let exhausted = !any_row_in_range && offset as usize > self.rows;
            if exhausted {
                break;
            }
            if let Some((best_d, _)) = best {
                if next_dy > best_d {
                    break;
                }
            }
        }
        best.map(|(_, bin)| bin)
    }

    /// Rows at exactly `offset` away from `center` (one or two rows), filtered to range.
    fn rows_at_offset(center: usize, offset: i64, rows: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(2);
        if offset == 0 {
            out.push(center);
            return out;
        }
        let up = center as i64 + offset;
        let down = center as i64 - offset;
        if up >= 0 && (up as usize) < rows {
            out.push(up as usize);
        }
        if down >= 0 && (down as usize) < rows {
            out.push(down as usize);
        }
        out
    }

    /// Nearest free bin in a single row, as `(distance, bin)`.
    fn nearest_in_row(&self, row: usize, target: Point, dy: f64) -> Option<(f64, BinId)> {
        let set = &self.free_cols[row];
        if set.is_empty() {
            return None;
        }
        let target_col = (((target.x - self.origin.x) / self.bin_size - 0.5).round() as i64)
            .clamp(0, self.cols as i64 - 1) as usize;
        let mut candidates = Vec::with_capacity(2);
        if let Some(&c) = set.range(..=target_col).next_back() {
            candidates.push(c);
        }
        if let Some(&c) = set.range(target_col..).next() {
            candidates.push(c);
        }
        candidates
            .into_iter()
            .map(|col| {
                let x = self.origin.x + (col as f64 + 0.5) * self.bin_size;
                let dx = x - target.x;
                (dx.hypot(dy), self.bin_of(col, row))
            })
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
    }

    /// Iterator over all free bins tracked by the index, in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = BinId> + '_ {
        self.free_cols
            .iter()
            .enumerate()
            .flat_map(move |(row, cols)| cols.iter().map(move |&col| self.bin_of(col, row)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn die(w: f64, h: f64) -> Rect {
        Rect::from_corners(Point::ORIGIN, Point::new(w, h))
    }

    #[test]
    fn grid_construction_and_indexing() {
        let grid = BinGrid::new(&die(10.0, 5.0), 1.0);
        assert_eq!(grid.cols(), 10);
        assert_eq!(grid.rows(), 5);
        assert_eq!(grid.num_bins(), 50);
        let id = grid.bin_id(3, 2).expect("in range");
        assert_eq!(grid.col_row(id), (3, 2));
        assert_eq!(grid.bin_center(id), Point::new(3.5, 2.5));
        assert!(grid.bin_id(10, 0).is_none());
        assert!(grid.bin_id(0, 5).is_none());
    }

    #[test]
    fn bin_at_clamps_out_of_range_points() {
        let grid = BinGrid::new(&die(10.0, 10.0), 1.0);
        assert_eq!(grid.bin_at(Point::new(-5.0, -5.0)), grid.bin_id(0, 0));
        assert_eq!(grid.bin_at(Point::new(50.0, 50.0)), grid.bin_id(9, 9));
        assert_eq!(grid.bin_at(Point::new(2.5, 7.5)), grid.bin_id(2, 7));
    }

    #[test]
    fn block_rect_marks_overlapping_bins() {
        let mut grid = BinGrid::new(&die(10.0, 10.0), 1.0);
        grid.block_rect(&Rect::from_center(Point::new(5.0, 5.0), 2.0, 2.0));
        assert_eq!(grid.count(BinState::Blocked), 4);
        // Touching a bin boundary without overlapping its interior does not block it.
        let mut grid2 = BinGrid::new(&die(10.0, 10.0), 1.0);
        grid2.block_rect(&Rect::from_lower_left(Point::new(2.0, 2.0), 1.0, 1.0));
        assert_eq!(grid2.count(BinState::Blocked), 1);
    }

    #[test]
    fn neighbors_are_in_range() {
        let grid = BinGrid::new(&die(3.0, 3.0), 1.0);
        let corner = grid.bin_id(0, 0).unwrap();
        assert_eq!(grid.neighbors4(corner).len(), 2);
        assert_eq!(grid.neighbors8(corner).len(), 3);
        let center = grid.bin_id(1, 1).unwrap();
        assert_eq!(grid.neighbors4(center).len(), 4);
        assert_eq!(grid.neighbors8(center).len(), 8);
    }

    #[test]
    fn free_index_nearest_simple() {
        let mut grid = BinGrid::new(&die(10.0, 10.0), 1.0);
        grid.block_rect(&Rect::from_lower_left(Point::ORIGIN, 10.0, 10.0));
        // Free exactly two bins.
        let a = grid.bin_id(2, 2).unwrap();
        let b = grid.bin_id(8, 8).unwrap();
        grid.set_state(a, BinState::Free);
        grid.set_state(b, BinState::Free);
        let index = grid.free_index();
        assert_eq!(index.len(), 2);
        assert_eq!(index.nearest_free(Point::new(1.0, 1.0)), Some(a));
        assert_eq!(index.nearest_free(Point::new(9.0, 9.0)), Some(b));
    }

    #[test]
    fn free_index_insert_remove() {
        let grid = BinGrid::new(&die(4.0, 4.0), 1.0);
        let mut index = grid.free_index();
        assert_eq!(index.len(), 16);
        let b = grid.bin_id(1, 1).unwrap();
        assert!(index.contains(b));
        assert!(index.remove(b));
        assert!(!index.remove(b));
        assert!(!index.contains(b));
        assert_eq!(index.len(), 15);
        assert!(index.insert(b));
        assert!(!index.insert(b));
        assert_eq!(index.len(), 16);
    }

    #[test]
    fn nearest_free_empty_index_is_none() {
        let index = FreeBinIndex::empty(Point::ORIGIN, 1.0, 4, 4);
        assert!(index.nearest_free(Point::new(1.0, 1.0)).is_none());
    }

    #[test]
    fn free_index_iter_matches_grid() {
        let mut grid = BinGrid::new(&die(5.0, 5.0), 1.0);
        grid.block_rect(&Rect::from_center(Point::new(2.5, 2.5), 3.0, 3.0));
        let index = grid.free_index();
        let from_iter: Vec<BinId> = index.iter().collect();
        let from_grid: Vec<BinId> = grid.bins_in_state(BinState::Free).collect();
        assert_eq!(from_iter.len(), from_grid.len());
        for b in from_grid {
            assert!(index.contains(b));
        }
    }

    #[test]
    fn point_exactly_on_a_bin_boundary_lands_in_the_upper_bin() {
        let grid = BinGrid::new(&die(10.0, 10.0), 1.0);
        // A shared edge belongs to the bin on its upper/right side (floor semantics),
        // except at the grid's outer boundary where clamping keeps it in range.
        assert_eq!(grid.bin_at(Point::new(3.0, 5.0)), grid.bin_id(3, 5));
        assert_eq!(grid.bin_at(Point::new(0.0, 0.0)), grid.bin_id(0, 0));
        assert_eq!(grid.bin_at(Point::new(10.0, 10.0)), grid.bin_id(9, 9));
    }

    #[test]
    fn rect_exactly_on_bin_boundaries_blocks_only_interior_overlaps() {
        // A rect whose edges coincide with bin boundaries covers exactly those bins:
        // the neighbours merely *touch* it (zero-area overlap) and stay free.
        let mut grid = BinGrid::new(&die(10.0, 10.0), 1.0);
        grid.block_rect(&Rect::from_lower_left(Point::new(3.0, 3.0), 2.0, 2.0));
        assert_eq!(grid.count(BinState::Blocked), 4);
        for (col, row) in [(3, 3), (4, 3), (3, 4), (4, 4)] {
            assert_eq!(
                grid.state(grid.bin_id(col, row).unwrap()),
                BinState::Blocked
            );
        }
        assert_eq!(grid.state(grid.bin_id(2, 3).unwrap()), BinState::Free);
        assert_eq!(grid.state(grid.bin_id(5, 4).unwrap()), BinState::Free);
    }

    #[test]
    fn zero_area_rect_blocks_nothing() {
        // Degenerate (zero-area) components must not consume free space.
        let mut grid = BinGrid::new(&die(10.0, 10.0), 1.0);
        grid.block_rect(&Rect::from_center(Point::new(4.5, 4.5), 0.0, 0.0));
        assert_eq!(grid.count(BinState::Blocked), 0);
        // Zero width but finite height: still zero area, still nothing blocked.
        grid.block_rect(&Rect::from_center(Point::new(4.5, 4.5), 0.0, 3.0));
        assert_eq!(grid.count(BinState::Blocked), 0);
    }

    #[test]
    fn block_rect_entirely_outside_the_die_is_a_noop() {
        let mut grid = BinGrid::new(&die(10.0, 10.0), 1.0);
        grid.block_rect(&Rect::from_center(Point::new(50.0, 50.0), 4.0, 4.0));
        grid.block_rect(&Rect::from_center(Point::new(-50.0, 5.0), 4.0, 4.0));
        assert_eq!(grid.count(BinState::Blocked), 0);
        assert_eq!(grid.count(BinState::Free), 100);
    }

    #[test]
    fn queries_outside_the_grid_extent_clamp_and_answer() {
        let mut grid = BinGrid::new(&die(10.0, 10.0), 1.0);
        grid.block_rect(&Rect::from_lower_left(Point::ORIGIN, 10.0, 10.0));
        let corner = grid.bin_id(9, 9).unwrap();
        grid.set_state(corner, BinState::Free);
        let index = grid.free_index();
        // Far-outside targets clamp to the nearest edge bin and still resolve.
        assert_eq!(index.nearest_free(Point::new(1e6, 1e6)), Some(corner));
        assert_eq!(index.nearest_free(Point::new(-1e6, -1e6)), Some(corner));
        assert_eq!(grid.bin_at(Point::new(1e6, -1e6)), grid.bin_id(9, 0));
    }

    #[test]
    fn die_smaller_than_one_bin_has_no_bins() {
        // Partial bins are dropped, so a die narrower than the bin size yields an
        // empty grid that still answers queries gracefully.
        let grid = BinGrid::new(&die(0.5, 0.5), 1.0);
        assert_eq!(grid.num_bins(), 0);
        assert!(grid.bin_at(Point::new(0.2, 0.2)).is_none());
        let index = grid.free_index();
        assert!(index.is_empty());
        assert!(index.nearest_free(Point::new(0.2, 0.2)).is_none());
    }

    proptest! {
        #[test]
        fn prop_nearest_free_matches_bruteforce(
            blocked in proptest::collection::hash_set(0usize..100, 0..60),
            tx in 0.0..10.0f64,
            ty in 0.0..10.0f64,
        ) {
            let mut grid = BinGrid::new(&die(10.0, 10.0), 1.0);
            for &b in &blocked {
                grid.set_state(BinId(b), BinState::Blocked);
            }
            let index = grid.free_index();
            let target = Point::new(tx, ty);
            let fast = index.nearest_free(target);
            let brute = grid
                .bins_in_state(BinState::Free)
                .map(|b| (grid.bin_center(b).distance(target), b))
                .min_by(|a, b| a.0.total_cmp(&b.0));
            match (fast, brute) {
                (None, None) => {}
                (Some(f), Some((bd, _))) => {
                    let fd = grid.bin_center(f).distance(target);
                    // The index must return a bin at exactly the optimal distance
                    // (ties may be broken differently than the brute force).
                    prop_assert!((fd - bd).abs() < 1e-9, "fast {} vs brute {}", fd, bd);
                }
                (f, b) => prop_assert!(false, "mismatch: fast={:?} brute={:?}", f, b),
            }
        }

        #[test]
        fn prop_block_rect_never_unblocks(
            rx in 0.0..10.0f64, ry in 0.0..10.0f64,
            rw in 0.1..5.0f64, rh in 0.1..5.0f64,
        ) {
            let mut grid = BinGrid::new(&die(10.0, 10.0), 1.0);
            let before_free = grid.count(BinState::Free);
            grid.block_rect(&Rect::from_center(Point::new(rx, ry), rw, rh));
            prop_assert!(grid.count(BinState::Free) <= before_free);
            prop_assert_eq!(grid.count(BinState::Free) + grid.count(BinState::Blocked), 100);
        }
    }
}
