//! # qgdp-geometry
//!
//! Geometry and spatial-indexing substrate for the qGDP quantum placement engine.
//!
//! Superconducting quantum layouts are modelled as rectilinear objects on a planar
//! substrate (the chip die): transmon qubits are large rectangles ("macros"), resonator
//! wire blocks are small square cells ("standard cells"), and resonator connectivity is
//! described by polylines whose pairwise intersections correspond to airbridge
//! crossings.  This crate provides:
//!
//! * [`Point`], [`Vector`] — planar coordinates and displacements,
//! * [`Rect`] — axis-aligned rectangles (center + dimensions, matching the paper's
//!   formulation of the non-overlap and border constraints),
//! * [`Segment`], [`Polyline`] — line segments and chains used for resonator crossing
//!   detection,
//! * [`BinGrid`] and [`FreeBinIndex`] — the "bin-aided" free-space index used by the
//!   integration-aware resonator legalizer (paper §III-D),
//! * [`SpatialGrid`] and [`count_overlapping_pairs`] — the uniform-cell candidate
//!   index and sort-by-x sweepline that make the qubit legalizer's violation sweeps
//!   and the placement overlap statistic near-linear instead of O(n²),
//! * [`SegmentGrid`] — the same candidate index generalised to line segments, the
//!   engine behind `qgdp-metrics`' near-linear resonator crossing detector,
//! * small numeric helpers shared by the placement and legalization crates.
//!
//! # Example
//!
//! ```
//! use qgdp_geometry::{Point, Rect};
//!
//! let q0 = Rect::from_center(Point::new(10.0, 10.0), 8.0, 8.0);
//! let q1 = Rect::from_center(Point::new(15.0, 10.0), 8.0, 8.0);
//! assert!(q0.overlaps(&q1));
//! assert_eq!(q0.overlap_area(&q1), 3.0 * 8.0);
//! ```
//!
//! # Paper map
//!
//! §III preliminaries: the rectilinear layout model behind the non-overlap and
//! border constraints (Eq. 1–2) and the facing-length/centroid-distance terms of the
//! hotspot metric (Eq. 4), plus the §III-D "bin-aided" free-space index
//! ([`FreeBinIndex`]) that keeps the resonator legalizer's nearest-free-space
//! queries `O(log n)`, and the [`SpatialGrid`] candidate index behind the §III-C
//! qubit legalizer's near-linear separation sweeps.  This is the root of the
//! workspace crate graph: every other
//! crate builds on these primitives (`qgdp-netlist` for the component model,
//! `qgdp-placer`/`qgdp-legalize`/`qgdp` for the placement stages, `qgdp-metrics`
//! for crossing detection via [`Polyline`]).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod bins;
pub mod point;
pub mod polyline;
pub mod rect;
pub mod segment;
pub mod spatial;

pub use bins::{BinGrid, BinId, BinState, FreeBinIndex};
pub use point::{Point, Vector};
pub use polyline::Polyline;
pub use rect::Rect;
pub use segment::{segments_properly_intersect, Orientation, Segment};
pub use spatial::{count_overlapping_pairs, SegmentGrid, SpatialGrid};

/// Numerical tolerance used by geometric predicates throughout the workspace.
///
/// Coordinates in the qGDP flow are expressed in micrometres and are typically on the
/// order of `1e0`–`1e4`, so an absolute epsilon of `1e-9` is far below any meaningful
/// feature size while staying well above `f64` rounding noise.
pub const EPS: f64 = 1e-9;

/// Returns `true` when two floating point values are equal within [`EPS`].
///
/// # Example
///
/// ```
/// assert!(qgdp_geometry::approx_eq(0.1 + 0.2, 0.3));
/// assert!(!qgdp_geometry::approx_eq(1.0, 1.001));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// Clamps `value` into the inclusive interval `[lo, hi]`.
///
/// Unlike [`f64::clamp`], this helper tolerates an inverted interval (when `lo > hi`)
/// by returning the midpoint, which is the behaviour required when a component is wider
/// than the die and no legal position exists: the least-bad answer is the centre.
///
/// # Example
///
/// ```
/// assert_eq!(qgdp_geometry::clamp_interval(5.0, 0.0, 10.0), 5.0);
/// assert_eq!(qgdp_geometry::clamp_interval(-3.0, 0.0, 10.0), 0.0);
/// // inverted interval: component wider than the die
/// assert_eq!(qgdp_geometry::clamp_interval(2.0, 6.0, 4.0), 5.0);
/// ```
#[must_use]
pub fn clamp_interval(value: f64, lo: f64, hi: f64) -> f64 {
    if lo > hi {
        (lo + hi) * 0.5
    } else {
        value.clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_respects_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
    }

    #[test]
    fn clamp_interval_regular_and_inverted() {
        assert_eq!(clamp_interval(11.0, 0.0, 10.0), 10.0);
        assert_eq!(clamp_interval(-1.0, 0.0, 10.0), 0.0);
        assert_eq!(clamp_interval(3.0, 0.0, 10.0), 3.0);
        assert_eq!(clamp_interval(100.0, 8.0, 2.0), 5.0);
    }
}
