//! Line segments and the intersection predicate used for resonator-crossing detection.

use crate::{Point, EPS};
use std::fmt;

/// Orientation of an ordered point triple, used by the segment-intersection predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// The three points are (numerically) collinear.
    Collinear,
    /// Counter-clockwise turn.
    CounterClockwise,
    /// Clockwise turn.
    Clockwise,
}

impl Orientation {
    /// Computes the orientation of the ordered triple `(a, b, c)`.
    ///
    /// # Example
    ///
    /// ```
    /// use qgdp_geometry::{Orientation, Point};
    ///
    /// let o = Orientation::of(Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(1.0, 1.0));
    /// assert_eq!(o, Orientation::CounterClockwise);
    /// ```
    #[must_use]
    pub fn of(a: Point, b: Point, c: Point) -> Orientation {
        let cross = (b - a).cross(c - a);
        if cross.abs() <= EPS {
            Orientation::Collinear
        } else if cross > 0.0 {
            Orientation::CounterClockwise
        } else {
            Orientation::Clockwise
        }
    }
}

/// A straight line segment between two points.
///
/// Resonator routes are modelled as chains of segments; a pairwise *proper* intersection
/// between segments of two different resonators corresponds to a physical crossing that
/// would require an airbridge on the chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a new segment.
    #[must_use]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    #[must_use]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint of the segment.
    #[must_use]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// Returns `true` if the segment degenerates to a single point.
    #[must_use]
    pub fn is_degenerate(&self) -> bool {
        self.length() <= EPS
    }

    /// Returns `true` if `p` lies on the segment (within tolerance).
    #[must_use]
    pub fn contains_point(&self, p: Point) -> bool {
        if Orientation::of(self.a, self.b, p) != Orientation::Collinear {
            return false;
        }
        p.x >= self.a.x.min(self.b.x) - EPS
            && p.x <= self.a.x.max(self.b.x) + EPS
            && p.y >= self.a.y.min(self.b.y) - EPS
            && p.y <= self.a.y.max(self.b.y) + EPS
    }

    /// Returns `true` if the two segments intersect at all, including shared endpoints
    /// and collinear overlap.
    #[must_use]
    pub fn intersects(&self, other: &Segment) -> bool {
        let o1 = Orientation::of(self.a, self.b, other.a);
        let o2 = Orientation::of(self.a, self.b, other.b);
        let o3 = Orientation::of(other.a, other.b, self.a);
        let o4 = Orientation::of(other.a, other.b, self.b);

        if o1 != o2
            && o3 != o4
            && o1 != Orientation::Collinear
            && o2 != Orientation::Collinear
            && o3 != Orientation::Collinear
            && o4 != Orientation::Collinear
        {
            return true;
        }
        // Collinear / endpoint cases.
        (o1 == Orientation::Collinear && self.contains_point(other.a))
            || (o2 == Orientation::Collinear && self.contains_point(other.b))
            || (o3 == Orientation::Collinear && other.contains_point(self.a))
            || (o4 == Orientation::Collinear && other.contains_point(self.b))
    }

    /// Returns `true` if the two segments *properly* cross: they intersect at exactly
    /// one interior point of each.  Shared endpoints (resonators meeting at the same
    /// qubit pad) and collinear overlaps do **not** count as crossings.
    #[must_use]
    pub fn properly_intersects(&self, other: &Segment) -> bool {
        segments_properly_intersect(self.a, self.b, other.a, other.b)
    }

    /// The intersection point of the supporting lines, if the segments properly cross.
    ///
    /// Returns `None` when the segments do not properly intersect (parallel, collinear,
    /// disjoint, or touching only at endpoints).
    #[must_use]
    pub fn crossing_point(&self, other: &Segment) -> Option<Point> {
        if !self.properly_intersects(other) {
            return None;
        }
        let r = self.b - self.a;
        let s = other.b - other.a;
        let denom = r.cross(s);
        if denom.abs() <= EPS {
            return None;
        }
        let t = (other.a - self.a).cross(s) / denom;
        Some(self.a + r * t)
    }
}

/// Returns `true` if segment `(p1, p2)` properly crosses segment `(p3, p4)`.
///
/// "Properly" means the intersection point is interior to both segments; touching at an
/// endpoint or overlapping collinearly is not a proper crossing.  This is the predicate
/// used to count airbridge crossings between resonator routes.
///
/// # Example
///
/// ```
/// use qgdp_geometry::{segments_properly_intersect, Point};
///
/// let p = |x, y| Point::new(x, y);
/// assert!(segments_properly_intersect(p(0.0, 0.0), p(2.0, 2.0), p(0.0, 2.0), p(2.0, 0.0)));
/// // Sharing an endpoint is not a proper crossing.
/// assert!(!segments_properly_intersect(p(0.0, 0.0), p(2.0, 2.0), p(0.0, 0.0), p(2.0, 0.0)));
/// ```
#[must_use]
pub fn segments_properly_intersect(p1: Point, p2: Point, p3: Point, p4: Point) -> bool {
    let o1 = Orientation::of(p1, p2, p3);
    let o2 = Orientation::of(p1, p2, p4);
    let o3 = Orientation::of(p3, p4, p1);
    let o4 = Orientation::of(p3, p4, p2);
    o1 != o2
        && o3 != o4
        && o1 != Orientation::Collinear
        && o2 != Orientation::Collinear
        && o3 != Orientation::Collinear
        && o4 != Orientation::Collinear
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -- {}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn orientation_basic() {
        assert_eq!(
            Orientation::of(p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0)),
            Orientation::Collinear
        );
        assert_eq!(
            Orientation::of(p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            Orientation::of(p(0.0, 0.0), p(1.0, 0.0), p(1.0, -1.0)),
            Orientation::Clockwise
        );
    }

    #[test]
    fn proper_crossing_detected() {
        let s1 = Segment::new(p(0.0, 0.0), p(4.0, 4.0));
        let s2 = Segment::new(p(0.0, 4.0), p(4.0, 0.0));
        assert!(s1.properly_intersects(&s2));
        let x = s1.crossing_point(&s2).expect("segments cross");
        assert!((x.x - 2.0).abs() < 1e-12 && (x.y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shared_endpoint_is_not_proper() {
        let s1 = Segment::new(p(0.0, 0.0), p(4.0, 4.0));
        let s2 = Segment::new(p(0.0, 0.0), p(4.0, 0.0));
        assert!(!s1.properly_intersects(&s2));
        assert!(s1.intersects(&s2));
        assert!(s1.crossing_point(&s2).is_none());
    }

    #[test]
    fn collinear_overlap_is_not_proper() {
        let s1 = Segment::new(p(0.0, 0.0), p(4.0, 0.0));
        let s2 = Segment::new(p(2.0, 0.0), p(6.0, 0.0));
        assert!(!s1.properly_intersects(&s2));
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn disjoint_segments() {
        let s1 = Segment::new(p(0.0, 0.0), p(1.0, 0.0));
        let s2 = Segment::new(p(0.0, 1.0), p(1.0, 1.0));
        assert!(!s1.intersects(&s2));
        assert!(!s1.properly_intersects(&s2));
    }

    #[test]
    fn t_junction_touching_is_intersecting_but_not_proper() {
        // s2 ends exactly on the interior of s1.
        let s1 = Segment::new(p(0.0, 0.0), p(4.0, 0.0));
        let s2 = Segment::new(p(2.0, 0.0), p(2.0, 3.0));
        assert!(s1.intersects(&s2));
        assert!(!s1.properly_intersects(&s2));
    }

    #[test]
    fn contains_point_checks_bounds() {
        let s = Segment::new(p(0.0, 0.0), p(4.0, 0.0));
        assert!(s.contains_point(p(2.0, 0.0)));
        assert!(!s.contains_point(p(5.0, 0.0)));
        assert!(!s.contains_point(p(2.0, 0.1)));
    }

    #[test]
    fn degenerate_segment() {
        let s = Segment::new(p(1.0, 1.0), p(1.0, 1.0));
        assert!(s.is_degenerate());
        assert_eq!(s.length(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_proper_intersection_symmetric(
            ax in -10.0..10.0f64, ay in -10.0..10.0f64,
            bx in -10.0..10.0f64, by in -10.0..10.0f64,
            cx in -10.0..10.0f64, cy in -10.0..10.0f64,
            dx in -10.0..10.0f64, dy in -10.0..10.0f64,
        ) {
            let s1 = Segment::new(p(ax, ay), p(bx, by));
            let s2 = Segment::new(p(cx, cy), p(dx, dy));
            prop_assert_eq!(s1.properly_intersects(&s2), s2.properly_intersects(&s1));
            prop_assert_eq!(s1.intersects(&s2), s2.intersects(&s1));
        }

        #[test]
        fn prop_proper_implies_intersects(
            ax in -10.0..10.0f64, ay in -10.0..10.0f64,
            bx in -10.0..10.0f64, by in -10.0..10.0f64,
            cx in -10.0..10.0f64, cy in -10.0..10.0f64,
            dx in -10.0..10.0f64, dy in -10.0..10.0f64,
        ) {
            let s1 = Segment::new(p(ax, ay), p(bx, by));
            let s2 = Segment::new(p(cx, cy), p(dx, dy));
            if s1.properly_intersects(&s2) {
                prop_assert!(s1.intersects(&s2));
                let x = s1.crossing_point(&s2).expect("proper crossing has a point");
                prop_assert!(s1.contains_point(x) || x.distance(s1.a).min(x.distance(s1.b)) < 1e-6);
            }
        }

        #[test]
        fn prop_segment_never_properly_crosses_itself(
            ax in -10.0..10.0f64, ay in -10.0..10.0f64,
            bx in -10.0..10.0f64, by in -10.0..10.0f64,
        ) {
            let s = Segment::new(p(ax, ay), p(bx, by));
            prop_assert!(!s.properly_intersects(&s));
        }
    }
}
