//! Polylines (segment chains) modelling resonator routes for crossing detection.

use crate::{Point, Segment};
use std::fmt;

/// An open polyline: an ordered chain of points connected by straight segments.
///
/// In the qGDP metrics, a resonator's reserved space is summarised as a polyline that
/// starts at one endpoint qubit, passes through the centroids of its wire-block
/// clusters, and ends at the other endpoint qubit.  The number of *proper* pairwise
/// crossings between the polylines of different resonators is the paper's "coupler
/// crosses" metric (`X̄` in Fig. 9 and `X` in Table III).
///
/// # Example
///
/// ```
/// use qgdp_geometry::{Point, Polyline};
///
/// let a = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(4.0, 4.0)]);
/// let b = Polyline::new(vec![Point::new(0.0, 4.0), Point::new(4.0, 0.0)]);
/// assert_eq!(a.crossings_with(&b), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polyline {
    points: Vec<Point>,
}

impl Polyline {
    /// Creates a polyline from an ordered list of vertices.
    ///
    /// Fewer than two points yields a degenerate polyline with no segments, which is
    /// valid and simply never crosses anything.
    #[must_use]
    pub fn new(points: Vec<Point>) -> Self {
        Polyline { points }
    }

    /// The vertices of the polyline.
    #[must_use]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the polyline has no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Appends a vertex to the end of the polyline.
    pub fn push(&mut self, point: Point) {
        self.points.push(point);
    }

    /// Total Euclidean length of the polyline.
    #[must_use]
    pub fn length(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    /// Iterator over the constituent segments, skipping degenerate (zero-length) ones.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.points
            .windows(2)
            .map(|w| Segment::new(w[0], w[1]))
            .filter(|s| !s.is_degenerate())
    }

    /// Counts the proper crossings between this polyline and `other`.
    ///
    /// Endpoint touches and collinear overlaps are not counted, so two resonators that
    /// share a qubit anchor do not register a spurious crossing.
    #[must_use]
    pub fn crossings_with(&self, other: &Polyline) -> usize {
        let other_segments: Vec<Segment> = other.segments().collect();
        self.segments()
            .map(|s| {
                other_segments
                    .iter()
                    .filter(|o| s.properly_intersects(o))
                    .count()
            })
            .sum()
    }

    /// Returns all proper crossing points between this polyline and `other`.
    #[must_use]
    pub fn crossing_points_with(&self, other: &Polyline) -> Vec<Point> {
        let other_segments: Vec<Segment> = other.segments().collect();
        let mut out = Vec::new();
        for s in self.segments() {
            for o in &other_segments {
                if let Some(p) = s.crossing_point(o) {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Counts the proper self-crossings of the polyline (non-adjacent segment pairs
    /// only).
    #[must_use]
    pub fn self_crossings(&self) -> usize {
        let segs: Vec<Segment> = self.segments().collect();
        let mut count = 0;
        for i in 0..segs.len() {
            for j in (i + 2)..segs.len() {
                if segs[i].properly_intersects(&segs[j]) {
                    count += 1;
                }
            }
        }
        count
    }

    /// The axis-aligned bounding box of the polyline, or `None` when empty.
    #[must_use]
    pub fn bounding_box(&self) -> Option<crate::Rect> {
        let first = *self.points.first()?;
        let mut lo = first;
        let mut hi = first;
        for p in &self.points {
            lo.x = lo.x.min(p.x);
            lo.y = lo.y.min(p.y);
            hi.x = hi.x.max(p.x);
            hi.y = hi.y.max(p.y);
        }
        Some(crate::Rect::from_corners(lo, hi))
    }
}

impl FromIterator<Point> for Polyline {
    fn from_iter<T: IntoIterator<Item = Point>>(iter: T) -> Self {
        Polyline::new(iter.into_iter().collect())
    }
}

impl Extend<Point> for Polyline {
    fn extend<T: IntoIterator<Item = Point>>(&mut self, iter: T) {
        self.points.extend(iter);
    }
}

impl fmt::Display for Polyline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Polyline[{} pts, len {:.3}]", self.len(), self.length())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn length_of_l_shape() {
        let pl = Polyline::new(vec![p(0.0, 0.0), p(3.0, 0.0), p(3.0, 4.0)]);
        assert_eq!(pl.length(), 7.0);
        assert_eq!(pl.segments().count(), 2);
    }

    #[test]
    fn degenerate_segments_skipped() {
        let pl = Polyline::new(vec![p(0.0, 0.0), p(0.0, 0.0), p(3.0, 0.0)]);
        assert_eq!(pl.segments().count(), 1);
        assert_eq!(pl.length(), 3.0);
    }

    #[test]
    fn crossings_counted_once_per_pair() {
        let a = Polyline::new(vec![p(0.0, 0.0), p(10.0, 0.0)]);
        let b = Polyline::new(vec![p(1.0, -1.0), p(1.0, 1.0), p(2.0, 1.0), p(2.0, -1.0)]);
        // b crosses a twice (two vertical strokes).
        assert_eq!(a.crossings_with(&b), 2);
        assert_eq!(b.crossings_with(&a), 2);
        assert_eq!(a.crossing_points_with(&b).len(), 2);
    }

    #[test]
    fn shared_anchor_not_a_crossing() {
        // Two resonators fanning out of the same qubit at (0,0).
        let a = Polyline::new(vec![p(0.0, 0.0), p(5.0, 5.0)]);
        let b = Polyline::new(vec![p(0.0, 0.0), p(5.0, -5.0)]);
        assert_eq!(a.crossings_with(&b), 0);
    }

    #[test]
    fn self_crossing_detection() {
        // A figure that crosses itself once.
        let pl = Polyline::new(vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(2.0, -2.0)]);
        assert_eq!(pl.self_crossings(), 1);
        let straight = Polyline::new(vec![p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0)]);
        assert_eq!(straight.self_crossings(), 0);
    }

    #[test]
    fn bounding_box() {
        let pl = Polyline::new(vec![p(1.0, 2.0), p(-3.0, 5.0), p(4.0, 0.0)]);
        let bb = pl.bounding_box().expect("non-empty");
        assert_eq!(bb.lower_left(), p(-3.0, 0.0));
        assert_eq!(bb.upper_right(), p(4.0, 5.0));
        assert!(Polyline::default().bounding_box().is_none());
    }

    #[test]
    fn collect_and_extend() {
        let mut pl: Polyline = vec![p(0.0, 0.0), p(1.0, 0.0)].into_iter().collect();
        pl.extend(vec![p(2.0, 0.0)]);
        assert_eq!(pl.len(), 3);
        assert_eq!(pl.length(), 2.0);
    }

    proptest! {
        #[test]
        fn prop_crossings_symmetric(
            xs in proptest::collection::vec((-20.0..20.0f64, -20.0..20.0f64), 2..6),
            ys in proptest::collection::vec((-20.0..20.0f64, -20.0..20.0f64), 2..6),
        ) {
            let a: Polyline = xs.into_iter().map(|(x, y)| p(x, y)).collect();
            let b: Polyline = ys.into_iter().map(|(x, y)| p(x, y)).collect();
            prop_assert_eq!(a.crossings_with(&b), b.crossings_with(&a));
        }

        #[test]
        fn prop_length_nonnegative_and_additive(
            xs in proptest::collection::vec((-20.0..20.0f64, -20.0..20.0f64), 0..8),
        ) {
            let a: Polyline = xs.iter().map(|&(x, y)| p(x, y)).collect();
            prop_assert!(a.length() >= 0.0);
            let seg_sum: f64 = a.segments().map(|s| s.length()).sum();
            prop_assert!((a.length() - seg_sum).abs() < 1e-9);
        }
    }
}
