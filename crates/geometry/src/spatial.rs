//! Spatial indexing for near-linear overlap detection.
//!
//! Three complementary tools replace the workspace's O(n²) pairwise sweeps:
//!
//! * [`SpatialGrid`] — a uniform-cell candidate index over movable rectangles.  Each
//!   item is rasterised into every cell its rectangle covers, so any two overlapping
//!   rectangles are guaranteed to share at least one cell; a candidate query therefore
//!   returns a conservative superset of the true overlap partners.  Items can be
//!   re-inserted incrementally as they move ([`SpatialGrid::relocate`] is a no-op when
//!   the covered cell span is unchanged), and every query returns ids in ascending
//!   order, which lets callers replay pairwise algorithms in exactly the order a
//!   brute-force `(i, j)` double loop would visit them.
//! * [`SegmentGrid`] — the same idea generalised from rectangles to line segments:
//!   each segment is rasterised into the cells it passes through (a conservative
//!   column walk, not a bounding-box fill, so long diagonals stay `O(length/cell)`),
//!   guaranteeing that two *properly intersecting* segments share the cell containing
//!   their intersection point.  This is the candidate index behind the resonator
//!   crossing detector in `qgdp-metrics`.
//! * [`count_overlapping_pairs`] — a sort-by-x sweepline that counts overlapping
//!   rectangle pairs in `O(n log n + n·k)` (k = average x-overlap depth) with exactly
//!   the same [`Rect::overlaps`] predicate as the brute-force double loop.
//!
//! The macro legalizer (`qgdp-legalize`) drives [`SpatialGrid`] with
//! spacing-inflated rectangles so that "closer than the minimum spacing" becomes
//! plain rectangle overlap, and `qgdp_netlist::Placement::count_overlaps` is the
//! sweepline's main consumer.

use crate::{Point, Rect, Segment};

/// Covered cell range of one indexed item (inclusive on both ends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CellSpan {
    lo_col: u32,
    hi_col: u32,
    lo_row: u32,
    hi_row: u32,
}

/// A uniform-cell spatial hash over movable, indexable rectangles.
///
/// Unlike [`crate::BinGrid`] (which tracks per-bin *occupancy state* for the
/// free-space search of §III-D), `SpatialGrid` tracks *which items* cover each cell
/// and answers neighbour-candidate queries.  The guarantee callers rely on:
///
/// > If two inserted rectangles overlap (in the [`Rect::overlaps`] sense — their
/// > interiors intersect with positive measure), each appears in the candidate set
/// > of a query with the other's rectangle.
///
/// This holds for any rectangle positions — the positive-area overlap region always
/// lands inside some cell both rectangles rasterise into, and coordinates outside
/// the grid extent clamp monotonically to the boundary cells.  Rectangles that
/// merely *touch* may fall in adjacent cells when the shared edge lies exactly on a
/// cell boundary, so touching is **not** guaranteed to be reported.  Queries return
/// a **sorted, deduplicated** id list, making downstream iteration order
/// deterministic.
///
/// # Example
///
/// ```
/// use qgdp_geometry::{Point, Rect, SpatialGrid};
///
/// let bounds = Rect::from_lower_left(Point::ORIGIN, 100.0, 100.0);
/// let mut grid = SpatialGrid::new(&bounds, 10.0, 2);
/// grid.insert(0, &Rect::from_center(Point::new(20.0, 20.0), 8.0, 8.0));
/// grid.insert(1, &Rect::from_center(Point::new(24.0, 20.0), 8.0, 8.0)); // overlaps 0
/// let mut out = Vec::new();
/// grid.candidates(&Rect::from_center(Point::new(20.0, 20.0), 8.0, 8.0), &mut out);
/// assert_eq!(out, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    origin: Point,
    cell_size: f64,
    cols: usize,
    rows: usize,
    /// Item ids present in each cell (row-major), unsorted within a cell.
    cells: Vec<Vec<u32>>,
    /// Covered span per item id; `None` when the id is not currently inserted.
    spans: Vec<Option<CellSpan>>,
}

impl SpatialGrid {
    /// Creates an empty grid of square cells of side `cell_size` covering `bounds`.
    ///
    /// The grid extends past the top/right edges so that `bounds` is fully covered
    /// (at least one cell per axis); rectangles outside `bounds` clamp to the
    /// boundary cells.  `capacity` pre-sizes the per-item span table.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    #[must_use]
    pub fn new(bounds: &Rect, cell_size: f64, capacity: usize) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell size must be positive and finite (got {cell_size})"
        );
        let cols = ((bounds.width() / cell_size).ceil() as usize).max(1);
        let rows = ((bounds.height() / cell_size).ceil() as usize).max(1);
        SpatialGrid {
            origin: bounds.lower_left(),
            cell_size,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            spans: vec![None; capacity],
        }
    }

    /// Number of cell columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of cell rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Side length of each (square) cell.
    #[must_use]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Returns `true` if `item` is currently inserted.
    #[must_use]
    pub fn contains(&self, item: usize) -> bool {
        self.spans.get(item).is_some_and(Option::is_some)
    }

    /// The cell span covered by `rect`, clamped to the grid extent.
    fn span_of(&self, rect: &Rect) -> CellSpan {
        let max_col = self.cols as i64 - 1;
        let max_row = self.rows as i64 - 1;
        let lo_col =
            (((rect.left() - self.origin.x) / self.cell_size).floor() as i64).clamp(0, max_col);
        let hi_col = ((((rect.right() - self.origin.x) / self.cell_size).ceil() as i64) - 1)
            .clamp(lo_col, max_col);
        let lo_row =
            (((rect.bottom() - self.origin.y) / self.cell_size).floor() as i64).clamp(0, max_row);
        let hi_row = ((((rect.top() - self.origin.y) / self.cell_size).ceil() as i64) - 1)
            .clamp(lo_row, max_row);
        CellSpan {
            lo_col: lo_col as u32,
            hi_col: hi_col as u32,
            lo_row: lo_row as u32,
            hi_row: hi_row as u32,
        }
    }

    fn push_to_cells(&mut self, item: u32, span: CellSpan) {
        for row in span.lo_row..=span.hi_row {
            for col in span.lo_col..=span.hi_col {
                self.cells[row as usize * self.cols + col as usize].push(item);
            }
        }
    }

    fn remove_from_cells(&mut self, item: u32, span: CellSpan) {
        for row in span.lo_row..=span.hi_row {
            for col in span.lo_col..=span.hi_col {
                let cell = &mut self.cells[row as usize * self.cols + col as usize];
                if let Some(pos) = cell.iter().position(|&x| x == item) {
                    cell.swap_remove(pos);
                }
            }
        }
    }

    /// Inserts `item` covering `rect`.
    ///
    /// # Panics
    ///
    /// Panics if `item` is already inserted (use [`SpatialGrid::relocate`] to move it).
    pub fn insert(&mut self, item: usize, rect: &Rect) {
        if item >= self.spans.len() {
            self.spans.resize(item + 1, None);
        }
        assert!(
            self.spans[item].is_none(),
            "item {item} is already in the index"
        );
        let span = self.span_of(rect);
        self.spans[item] = Some(span);
        self.push_to_cells(item as u32, span);
    }

    /// Removes `item` from the index.  A no-op when the item is not inserted.
    pub fn remove(&mut self, item: usize) {
        if let Some(span) = self.spans.get_mut(item).and_then(Option::take) {
            self.remove_from_cells(item as u32, span);
        }
    }

    /// Re-inserts `item` at its new rectangle (incremental move).
    ///
    /// When the covered cell span is unchanged this is a no-op, so small moves — the
    /// common case in a separation sweep — cost nothing.  Items not yet inserted are
    /// simply inserted.
    pub fn relocate(&mut self, item: usize, rect: &Rect) {
        if item >= self.spans.len() {
            self.spans.resize(item + 1, None);
        }
        let new_span = self.span_of(rect);
        match self.spans[item] {
            Some(old) if old == new_span => {}
            Some(old) => {
                self.remove_from_cells(item as u32, old);
                self.spans[item] = Some(new_span);
                self.push_to_cells(item as u32, new_span);
            }
            None => {
                self.spans[item] = Some(new_span);
                self.push_to_cells(item as u32, new_span);
            }
        }
    }

    /// Collects into `out` the ids of every inserted item whose rectangle *may*
    /// overlap `rect` (all items sharing a cell with it), **sorted ascending and
    /// deduplicated**.  The query rectangle itself need not be inserted; an inserted
    /// item queried with its own rectangle appears in its own candidate list.
    pub fn candidates(&self, rect: &Rect, out: &mut Vec<u32>) {
        out.clear();
        let span = self.span_of(rect);
        for row in span.lo_row..=span.hi_row {
            for col in span.lo_col..=span.hi_col {
                out.extend_from_slice(&self.cells[row as usize * self.cols + col as usize]);
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Collects into `out` every unordered candidate pair `(i, j)` with `i < j` that
    /// shares at least one cell, sorted ascending by `(i, j)` and deduplicated — a
    /// conservative superset of all overlapping pairs, in exactly the order a
    /// brute-force double loop visits them.
    pub fn candidate_pairs(&self, out: &mut Vec<(u32, u32)>) {
        out.clear();
        for cell in &self.cells {
            for (a, &i) in cell.iter().enumerate() {
                for &j in &cell[a + 1..] {
                    out.push((i.min(j), i.max(j)));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }
}

/// A uniform-cell spatial hash over line segments.
///
/// The segment analogue of [`SpatialGrid`]: each inserted segment is rasterised into
/// the grid cells it passes through, walking column by column and covering only the
/// rows the segment's y-extent spans *within that column* — a long diagonal therefore
/// costs `O(length / cell_size)` cells, not the `O((length / cell_size)²)` a
/// bounding-box fill would.  The guarantee callers rely on:
///
/// > If two inserted segments **properly intersect** (in the
/// > [`Segment::properly_intersects`] sense — they cross at one interior point of
/// > each), both appear in each other's candidate set and in
/// > [`SegmentGrid::candidate_pairs`].
///
/// The crossing point lies on both segments, so both rasterise into the (clamped)
/// cell containing it: per column the covered y-interval is the segment's exact
/// y-extent over that column's x-interval, widened by a relative slack absorbing
/// interpolation round-off, and boundary columns extend their x-interval to infinity
/// so coordinates outside the grid clamp monotonically.  Touching or collinear
/// segment pairs are *not* guaranteed to share a cell — exactly the pairs the proper
/// intersection predicate rejects anyway.  Queries return **sorted, deduplicated**
/// ids like every index in this module.
///
/// # Example
///
/// ```
/// use qgdp_geometry::{Point, Rect, Segment, SegmentGrid};
///
/// let bounds = Rect::from_lower_left(Point::ORIGIN, 100.0, 100.0);
/// let mut grid = SegmentGrid::new(&bounds, 10.0, 2);
/// grid.insert(0, &Segment::new(Point::new(10.0, 10.0), Point::new(90.0, 90.0)));
/// grid.insert(1, &Segment::new(Point::new(10.0, 90.0), Point::new(90.0, 10.0)));
/// let mut pairs = Vec::new();
/// grid.candidate_pairs(&mut pairs);
/// assert_eq!(pairs, vec![(0, 1)]);
/// ```
#[derive(Debug, Clone)]
pub struct SegmentGrid {
    origin: Point,
    cell_size: f64,
    cols: usize,
    rows: usize,
    /// Item ids present in each cell (row-major), unsorted within a cell.
    cells: Vec<Vec<u32>>,
    /// Flat cell indices covered per item id; `None` when the id is not inserted.
    covered: Vec<Option<Vec<u32>>>,
}

impl SegmentGrid {
    /// Creates an empty grid of square cells of side `cell_size` covering `bounds`.
    ///
    /// The grid extends past the top/right edges so that `bounds` is fully covered
    /// (at least one cell per axis); segments outside `bounds` clamp to the boundary
    /// cells.  `capacity` pre-sizes the per-item coverage table.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    #[must_use]
    pub fn new(bounds: &Rect, cell_size: f64, capacity: usize) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell size must be positive and finite (got {cell_size})"
        );
        let cols = ((bounds.width() / cell_size).ceil() as usize).max(1);
        let rows = ((bounds.height() / cell_size).ceil() as usize).max(1);
        SegmentGrid {
            origin: bounds.lower_left(),
            cell_size,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            covered: vec![None; capacity],
        }
    }

    /// Number of cell columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of cell rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Side length of each (square) cell.
    #[must_use]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Returns `true` if `item` is currently inserted.
    #[must_use]
    pub fn contains(&self, item: usize) -> bool {
        self.covered.get(item).is_some_and(Option::is_some)
    }

    /// Calls `visit` with the flat index of every cell `segment` rasterises into.
    ///
    /// Column walk: the (clamped) column range comes from the segment's x-extent;
    /// within each column the covered rows come from the segment's y-extent over that
    /// column's x-interval, widened by a relative slack.  Boundary columns extend
    /// their x-interval to infinity so that clamped geometry stays covered; a column
    /// whose x-interval misses the segment entirely (possible only through clamping)
    /// conservatively falls back to the full y-extent.  Each cell is visited at most
    /// once — column/row pairs are unique by construction.
    fn for_each_cell(&self, segment: &Segment, mut visit: impl FnMut(usize)) {
        let (p, q) = if segment.a.x <= segment.b.x {
            (segment.a, segment.b)
        } else {
            (segment.b, segment.a)
        };
        let max_col = self.cols as i64 - 1;
        let max_row = self.rows as i64 - 1;
        let lo_col = (((p.x - self.origin.x) / self.cell_size).floor() as i64).clamp(0, max_col);
        let hi_col =
            (((q.x - self.origin.x) / self.cell_size).floor() as i64).clamp(lo_col, max_col);
        let dx = q.x - p.x;
        let dy = q.y - p.y;
        let magnitude = p.x.abs().max(p.y.abs()).max(q.x.abs()).max(q.y.abs());
        let y_slack = crate::EPS * (1.0 + magnitude);
        let (seg_y_lo, seg_y_hi) = (p.y.min(q.y), p.y.max(q.y));
        for col in lo_col..=hi_col {
            // Boundary columns absorb everything clamped onto them.
            let col_x0 = if col == 0 {
                f64::NEG_INFINITY
            } else {
                self.origin.x + col as f64 * self.cell_size
            };
            let col_x1 = if col == max_col {
                f64::INFINITY
            } else {
                self.origin.x + (col + 1) as f64 * self.cell_size
            };
            let (y_lo, y_hi) = if dx <= crate::EPS {
                (seg_y_lo, seg_y_hi)
            } else {
                let xl = p.x.max(col_x0);
                let xr = q.x.min(col_x1);
                if xl > xr {
                    (seg_y_lo, seg_y_hi)
                } else {
                    let yl = p.y + dy * ((xl - p.x) / dx);
                    let yr = p.y + dy * ((xr - p.x) / dx);
                    (yl.min(yr), yl.max(yr))
                }
            };
            let lo_row = (((y_lo - y_slack - self.origin.y) / self.cell_size).floor() as i64)
                .clamp(0, max_row);
            let hi_row = (((y_hi + y_slack - self.origin.y) / self.cell_size).floor() as i64)
                .clamp(lo_row, max_row);
            for row in lo_row..=hi_row {
                visit(row as usize * self.cols + col as usize);
            }
        }
    }

    /// Inserts `item` covering `segment`.
    ///
    /// # Panics
    ///
    /// Panics if `item` is already inserted (remove it first to move it).
    pub fn insert(&mut self, item: usize, segment: &Segment) {
        if item >= self.covered.len() {
            self.covered.resize(item + 1, None);
        }
        assert!(
            self.covered[item].is_none(),
            "item {item} is already in the index"
        );
        let mut cells_of_item = Vec::new();
        self.for_each_cell(segment, |cell| cells_of_item.push(cell as u32));
        for &cell in &cells_of_item {
            self.cells[cell as usize].push(item as u32);
        }
        self.covered[item] = Some(cells_of_item);
    }

    /// Removes `item` from the index.  A no-op when the item is not inserted.
    pub fn remove(&mut self, item: usize) {
        if let Some(cells_of_item) = self.covered.get_mut(item).and_then(Option::take) {
            for cell in cells_of_item {
                let cell = &mut self.cells[cell as usize];
                if let Some(pos) = cell.iter().position(|&x| x == item as u32) {
                    cell.swap_remove(pos);
                }
            }
        }
    }

    /// Collects into `out` the ids of every inserted item that *may* properly
    /// intersect `segment` (all items sharing a cell with it), **sorted ascending and
    /// deduplicated**.  The query segment itself need not be inserted; an inserted
    /// item queried with its own segment appears in its own candidate list.
    pub fn candidates(&self, segment: &Segment, out: &mut Vec<u32>) {
        out.clear();
        self.for_each_cell(segment, |cell| out.extend_from_slice(&self.cells[cell]));
        out.sort_unstable();
        out.dedup();
    }

    /// Collects into `out` every unordered candidate pair `(i, j)` with `i < j` that
    /// shares at least one cell, sorted ascending by `(i, j)` and deduplicated — a
    /// conservative superset of all properly-intersecting pairs, in exactly the order
    /// a brute-force double loop visits them.
    pub fn candidate_pairs(&self, out: &mut Vec<(u32, u32)>) {
        out.clear();
        for cell in &self.cells {
            for (a, &i) in cell.iter().enumerate() {
                for &j in &cell[a + 1..] {
                    out.push((i.min(j), i.max(j)));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }
}

/// Counts pairs of overlapping rectangles with a sort-by-x sweepline.
///
/// Exactly equivalent to the brute-force double loop over [`Rect::overlaps`] — the
/// sweep merely skips pairs whose x-projections are provably disjoint — but runs in
/// `O(n log n + n·k)` where `k` is the average number of x-overlapping neighbours,
/// instead of O(n²).  Legal or near-legal placements have small `k`, making the
/// overlap statistic near-linear.
///
/// # Example
///
/// ```
/// use qgdp_geometry::{count_overlapping_pairs, Point, Rect};
///
/// let rects = vec![
///     Rect::from_center(Point::new(0.0, 0.0), 10.0, 10.0),
///     Rect::from_center(Point::new(8.0, 0.0), 10.0, 10.0),  // overlaps the first
///     Rect::from_center(Point::new(30.0, 0.0), 10.0, 10.0), // disjoint
/// ];
/// assert_eq!(count_overlapping_pairs(&rects), 1);
/// ```
#[must_use]
pub fn count_overlapping_pairs(rects: &[Rect]) -> usize {
    let mut order: Vec<u32> = (0..rects.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        rects[a as usize]
            .left()
            .total_cmp(&rects[b as usize].left())
            .then(a.cmp(&b))
    });
    let mut active: Vec<u32> = Vec::new();
    let mut count = 0;
    for &i in &order {
        let rect = &rects[i as usize];
        // Anything whose right edge is at or before our left edge (within EPS) can
        // never overlap this rectangle or any later one (lefts are non-decreasing).
        active.retain(|&a| rects[a as usize].right() - rect.left() > crate::EPS);
        count += active
            .iter()
            .filter(|&&a| rects[a as usize].overlaps(rect))
            .count();
        active.push(i);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bounds(side: f64) -> Rect {
        Rect::from_lower_left(Point::ORIGIN, side, side)
    }

    fn brute_force_pairs(rects: &[Rect]) -> usize {
        let mut count = 0;
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                if rects[i].overlaps(&rects[j]) {
                    count += 1;
                }
            }
        }
        count
    }

    #[test]
    fn candidates_are_sorted_and_deduplicated() {
        let mut grid = SpatialGrid::new(&bounds(100.0), 10.0, 4);
        // A large rect covering many cells, inserted after the others, so raw cell
        // order would be interleaved.
        grid.insert(2, &Rect::from_center(Point::new(50.0, 50.0), 60.0, 60.0));
        grid.insert(0, &Rect::from_center(Point::new(45.0, 45.0), 8.0, 8.0));
        grid.insert(1, &Rect::from_center(Point::new(55.0, 55.0), 8.0, 8.0));
        let mut out = Vec::new();
        grid.candidates(
            &Rect::from_center(Point::new(50.0, 50.0), 30.0, 30.0),
            &mut out,
        );
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn relocate_moves_and_self_relocate_is_noop() {
        let mut grid = SpatialGrid::new(&bounds(100.0), 10.0, 1);
        let a = Rect::from_center(Point::new(15.0, 15.0), 8.0, 8.0);
        grid.insert(0, &a);
        let mut out = Vec::new();
        grid.candidates(&a, &mut out);
        assert_eq!(out, vec![0]);
        // Move far away: old location no longer reports it.
        let b = Rect::from_center(Point::new(85.0, 85.0), 8.0, 8.0);
        grid.relocate(0, &b);
        grid.candidates(&a, &mut out);
        assert!(out.is_empty());
        grid.candidates(&b, &mut out);
        assert_eq!(out, vec![0]);
        // Tiny move within the same cells keeps the entry intact.
        grid.relocate(0, &b.translated(crate::Vector::new(0.1, 0.1)));
        grid.candidates(&b, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn remove_clears_every_covered_cell() {
        let mut grid = SpatialGrid::new(&bounds(100.0), 10.0, 1);
        let big = Rect::from_center(Point::new(50.0, 50.0), 70.0, 70.0);
        grid.insert(0, &big);
        assert!(grid.contains(0));
        grid.remove(0);
        assert!(!grid.contains(0));
        let mut out = Vec::new();
        grid.candidates(&big, &mut out);
        assert!(out.is_empty());
        // Removing again is a no-op.
        grid.remove(0);
    }

    #[test]
    fn out_of_bounds_rects_clamp_to_boundary_cells() {
        let mut grid = SpatialGrid::new(&bounds(100.0), 10.0, 2);
        // Both rects live beyond the right edge and overlap each other.
        grid.insert(0, &Rect::from_center(Point::new(150.0, 50.0), 8.0, 8.0));
        grid.insert(1, &Rect::from_center(Point::new(153.0, 52.0), 8.0, 8.0));
        let mut out = Vec::new();
        grid.candidates(
            &Rect::from_center(Point::new(150.0, 50.0), 8.0, 8.0),
            &mut out,
        );
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn candidate_pairs_in_ascending_order() {
        let mut grid = SpatialGrid::new(&bounds(100.0), 10.0, 3);
        grid.insert(2, &Rect::from_center(Point::new(15.0, 15.0), 8.0, 8.0));
        grid.insert(0, &Rect::from_center(Point::new(18.0, 15.0), 8.0, 8.0));
        grid.insert(1, &Rect::from_center(Point::new(85.0, 85.0), 8.0, 8.0));
        let mut pairs = Vec::new();
        grid.candidate_pairs(&mut pairs);
        assert_eq!(pairs, vec![(0, 2)]);
    }

    #[test]
    fn segment_grid_reports_crossing_diagonals() {
        let mut grid = SegmentGrid::new(&bounds(100.0), 10.0, 2);
        let s0 = Segment::new(Point::new(10.0, 10.0), Point::new(90.0, 90.0));
        let s1 = Segment::new(Point::new(10.0, 90.0), Point::new(90.0, 10.0));
        grid.insert(0, &s0);
        grid.insert(1, &s1);
        let mut out = Vec::new();
        grid.candidates(&s0, &mut out);
        assert_eq!(out, vec![0, 1]);
        let mut pairs = Vec::new();
        grid.candidate_pairs(&mut pairs);
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn segment_grid_diagonal_covers_corridor_not_bounding_box() {
        // A main-diagonal segment across a 10×10 grid must stay O(n) cells — the
        // column walk covers a corridor, not the 100-cell bounding-box fill.
        let mut grid = SegmentGrid::new(&bounds(100.0), 10.0, 1);
        grid.insert(
            0,
            &Segment::new(Point::new(0.5, 0.5), Point::new(99.5, 99.5)),
        );
        let covered = grid.covered[0].as_ref().expect("inserted").len();
        assert!(
            (10..=30).contains(&covered),
            "diagonal should cover a thin corridor, got {covered} cells"
        );
        // A far-off-diagonal probe shares no cell with it.
        let mut out = Vec::new();
        grid.candidates(
            &Segment::new(Point::new(80.0, 5.0), Point::new(95.0, 10.0)),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn segment_grid_vertical_and_horizontal() {
        let mut grid = SegmentGrid::new(&bounds(100.0), 10.0, 2);
        let v = Segment::new(Point::new(50.0, 5.0), Point::new(50.0, 95.0));
        let h = Segment::new(Point::new(5.0, 50.0), Point::new(95.0, 50.0));
        grid.insert(0, &v);
        grid.insert(1, &h);
        let mut pairs = Vec::new();
        grid.candidate_pairs(&mut pairs);
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn segment_grid_out_of_bounds_clamps_to_boundary_cells() {
        let mut grid = SegmentGrid::new(&bounds(100.0), 10.0, 2);
        // Both segments cross far beyond the top-right corner of the grid.
        let s0 = Segment::new(Point::new(150.0, 120.0), Point::new(200.0, 180.0));
        let s1 = Segment::new(Point::new(150.0, 180.0), Point::new(200.0, 120.0));
        assert!(s0.properly_intersects(&s1));
        grid.insert(0, &s0);
        grid.insert(1, &s1);
        let mut pairs = Vec::new();
        grid.candidate_pairs(&mut pairs);
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn segment_grid_remove_clears_coverage() {
        let mut grid = SegmentGrid::new(&bounds(100.0), 10.0, 1);
        let s = Segment::new(Point::new(10.0, 10.0), Point::new(90.0, 90.0));
        grid.insert(0, &s);
        assert!(grid.contains(0));
        grid.remove(0);
        assert!(!grid.contains(0));
        let mut out = Vec::new();
        grid.candidates(&s, &mut out);
        assert!(out.is_empty());
        // Removing again is a no-op; re-insertion works.
        grid.remove(0);
        grid.insert(0, &s);
        grid.candidates(&s, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn sweepline_empty_and_single() {
        assert_eq!(count_overlapping_pairs(&[]), 0);
        assert_eq!(
            count_overlapping_pairs(&[Rect::from_center(Point::ORIGIN, 5.0, 5.0)]),
            0
        );
    }

    #[test]
    fn sweepline_touching_rects_do_not_count() {
        let a = Rect::from_center(Point::new(0.0, 0.0), 10.0, 10.0);
        let b = Rect::from_center(Point::new(10.0, 0.0), 10.0, 10.0); // abuts exactly
        assert_eq!(count_overlapping_pairs(&[a, b]), 0);
    }

    proptest! {
        #[test]
        fn prop_sweepline_matches_brute_force(
            rects in proptest::collection::vec(
                (0.0..200.0f64, 0.0..200.0f64, 0.5..40.0f64, 0.5..40.0f64),
                0..40,
            ),
        ) {
            let rects: Vec<Rect> = rects
                .into_iter()
                .map(|(x, y, w, h)| Rect::from_center(Point::new(x, y), w, h))
                .collect();
            prop_assert_eq!(count_overlapping_pairs(&rects), brute_force_pairs(&rects));
        }

        #[test]
        fn prop_candidates_cover_all_overlapping_pairs(
            rects in proptest::collection::vec(
                (-20.0..220.0f64, -20.0..220.0f64, 0.5..50.0f64, 0.5..50.0f64),
                1..30,
            ),
            cell in 5.0..60.0f64,
        ) {
            let rects: Vec<Rect> = rects
                .into_iter()
                .map(|(x, y, w, h)| Rect::from_center(Point::new(x, y), w, h))
                .collect();
            let mut grid = SpatialGrid::new(&bounds(200.0), cell, rects.len());
            for (k, r) in rects.iter().enumerate() {
                grid.insert(k, r);
            }
            let mut out = Vec::new();
            let mut pairs = Vec::new();
            grid.candidate_pairs(&mut pairs);
            for i in 0..rects.len() {
                grid.candidates(&rects[i], &mut out);
                // Deterministic ordering.
                let mut sorted = out.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(&out, &sorted);
                prop_assert!(out.contains(&(i as u32)));
                for j in (i + 1)..rects.len() {
                    if rects[i].overlaps(&rects[j]) {
                        prop_assert!(
                            out.contains(&(j as u32)),
                            "overlapping pair ({}, {}) missing from candidates", i, j
                        );
                        prop_assert!(
                            pairs.binary_search(&(i as u32, j as u32)).is_ok(),
                            "overlapping pair ({}, {}) missing from candidate_pairs", i, j
                        );
                    }
                }
            }
        }

        #[test]
        fn prop_segment_candidates_cover_all_proper_intersections(
            segs in proptest::collection::vec(
                (-30.0..230.0f64, -30.0..230.0f64, -30.0..230.0f64, -30.0..230.0f64),
                1..30,
            ),
            cell in 5.0..60.0f64,
        ) {
            let segs: Vec<Segment> = segs
                .into_iter()
                .map(|(ax, ay, bx, by)| Segment::new(Point::new(ax, ay), Point::new(bx, by)))
                .collect();
            let mut grid = SegmentGrid::new(&bounds(200.0), cell, segs.len());
            for (k, s) in segs.iter().enumerate() {
                grid.insert(k, s);
            }
            let mut out = Vec::new();
            let mut pairs = Vec::new();
            grid.candidate_pairs(&mut pairs);
            for i in 0..segs.len() {
                grid.candidates(&segs[i], &mut out);
                let mut sorted = out.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(&out, &sorted);
                prop_assert!(out.contains(&(i as u32)));
                for j in (i + 1)..segs.len() {
                    if segs[i].properly_intersects(&segs[j]) {
                        prop_assert!(
                            out.contains(&(j as u32)),
                            "properly intersecting pair ({}, {}) missing from candidates", i, j
                        );
                        prop_assert!(
                            pairs.binary_search(&(i as u32, j as u32)).is_ok(),
                            "properly intersecting pair ({}, {}) missing from candidate_pairs", i, j
                        );
                    }
                }
            }
        }

        #[test]
        fn prop_relocate_preserves_coverage(
            moves in proptest::collection::vec(
                (0usize..8, 0.0..200.0f64, 0.0..200.0f64),
                1..40,
            ),
        ) {
            // Eight items random-walking; after every move the index must still
            // answer exactly like a fresh insert of the current rectangles.
            let mut grid = SpatialGrid::new(&bounds(200.0), 25.0, 8);
            let mut current: Vec<Option<Rect>> = vec![None; 8];
            for (item, x, y) in moves {
                let rect = Rect::from_center(Point::new(x, y), 12.0, 12.0);
                grid.relocate(item, &rect);
                current[item] = Some(rect);
                let mut fresh = SpatialGrid::new(&bounds(200.0), 25.0, 8);
                for (k, r) in current.iter().enumerate() {
                    if let Some(r) = r {
                        fresh.insert(k, r);
                    }
                }
                let probe = Rect::from_center(Point::new(100.0, 100.0), 200.0, 200.0);
                let (mut a, mut b) = (Vec::new(), Vec::new());
                grid.candidates(&probe, &mut a);
                fresh.candidates(&probe, &mut b);
                prop_assert_eq!(a, b);
            }
        }
    }
}
