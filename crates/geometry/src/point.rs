//! Planar points and displacement vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point on the chip substrate, in micrometres.
///
/// # Example
///
/// ```
/// use qgdp_geometry::Point;
///
/// let a = Point::new(0.0, 3.0);
/// let b = Point::new(4.0, 0.0);
/// assert_eq!(a.distance(b), 5.0);
/// assert_eq!(a.manhattan_distance(b), 7.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A displacement between two [`Point`]s.
///
/// Kept distinct from [`Point`] so that positions and movements cannot be confused in
/// APIs (a `Vector` can be added to a `Point`, but two `Point`s cannot be added).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vector {
    /// Horizontal component.
    pub dx: f64,
    /// Vertical component.
    pub dy: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a new point.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[must_use]
    pub fn distance(self, other: Point) -> f64 {
        (self - other).length()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when only
    /// comparisons are needed).
    #[must_use]
    pub fn distance_squared(self, other: Point) -> f64 {
        let d = self - other;
        d.dx * d.dx + d.dy * d.dy
    }

    /// Manhattan (rectilinear) distance to `other`, the natural metric for
    /// displacement-minimising legalization.
    #[must_use]
    pub fn manhattan_distance(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Midpoint between `self` and `other`.
    #[must_use]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation from `self` (at `t = 0`) to `other` (at `t = 1`).
    #[must_use]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Returns `true` if both coordinates are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vector {
    /// The zero displacement.
    pub const ZERO: Vector = Vector { dx: 0.0, dy: 0.0 };

    /// Creates a new vector.
    #[must_use]
    pub const fn new(dx: f64, dy: f64) -> Self {
        Vector { dx, dy }
    }

    /// Euclidean length of the displacement.
    #[must_use]
    pub fn length(self) -> f64 {
        self.dx.hypot(self.dy)
    }

    /// Manhattan length of the displacement.
    #[must_use]
    pub fn manhattan_length(self) -> f64 {
        self.dx.abs() + self.dy.abs()
    }

    /// Dot product with `other`.
    #[must_use]
    pub fn dot(self, other: Vector) -> f64 {
        self.dx * other.dx + self.dy * other.dy
    }

    /// 2D cross product (z component) with `other`.
    #[must_use]
    pub fn cross(self, other: Vector) -> f64 {
        self.dx * other.dy - self.dy * other.dx
    }

    /// Returns the unit vector in the same direction, or [`Vector::ZERO`] if the length
    /// is (numerically) zero.
    #[must_use]
    pub fn normalized(self) -> Vector {
        let len = self.length();
        if len <= crate::EPS {
            Vector::ZERO
        } else {
            Vector::new(self.dx / len, self.dy / len)
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.3}, {:.3}>", self.dx, self.dy)
    }
}

impl Sub for Point {
    type Output = Vector;

    fn sub(self, rhs: Point) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vector> for Point {
    type Output = Point;

    fn add(self, rhs: Vector) -> Point {
        Point::new(self.x + rhs.dx, self.y + rhs.dy)
    }
}

impl Sub<Vector> for Point {
    type Output = Point;

    fn sub(self, rhs: Vector) -> Point {
        Point::new(self.x - rhs.dx, self.y - rhs.dy)
    }
}

impl AddAssign<Vector> for Point {
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.dx;
        self.y += rhs.dy;
    }
}

impl SubAssign<Vector> for Point {
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.dx;
        self.y -= rhs.dy;
    }
}

impl Add for Vector {
    type Output = Vector;

    fn add(self, rhs: Vector) -> Vector {
        Vector::new(self.dx + rhs.dx, self.dy + rhs.dy)
    }
}

impl Sub for Vector {
    type Output = Vector;

    fn sub(self, rhs: Vector) -> Vector {
        Vector::new(self.dx - rhs.dx, self.dy - rhs.dy)
    }
}

impl AddAssign for Vector {
    fn add_assign(&mut self, rhs: Vector) {
        self.dx += rhs.dx;
        self.dy += rhs.dy;
    }
}

impl SubAssign for Vector {
    fn sub_assign(&mut self, rhs: Vector) {
        self.dx -= rhs.dx;
        self.dy -= rhs.dy;
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;

    fn mul(self, rhs: f64) -> Vector {
        Vector::new(self.dx * rhs, self.dy * rhs)
    }
}

impl Div<f64> for Vector {
    type Output = Vector;

    fn div(self, rhs: f64) -> Vector {
        Vector::new(self.dx / rhs, self.dy / rhs)
    }
}

impl Neg for Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        Vector::new(-self.dx, -self.dy)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl From<(f64, f64)> for Vector {
    fn from((dx, dy): (f64, f64)) -> Self {
        Vector::new(dx, dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_and_manhattan() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_squared(b), 25.0);
        assert_eq!(a.manhattan_distance(b), 7.0);
    }

    #[test]
    fn point_vector_arithmetic() {
        let p = Point::new(1.0, 1.0);
        let v = Vector::new(2.0, -1.0);
        assert_eq!(p + v, Point::new(3.0, 0.0));
        assert_eq!((p + v) - p, v);
        assert_eq!(p - v, Point::new(-1.0, 2.0));
        assert_eq!(-v, Vector::new(-2.0, 1.0));
        assert_eq!(v * 2.0, Vector::new(4.0, -2.0));
        assert_eq!(v / 2.0, Vector::new(1.0, -0.5));
    }

    #[test]
    fn midpoint_and_lerp() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 4.0);
        assert_eq!(a.midpoint(b), Point::new(5.0, 2.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.25), Point::new(2.5, 1.0));
    }

    #[test]
    fn normalized_zero_vector_is_zero() {
        assert_eq!(Vector::ZERO.normalized(), Vector::ZERO);
        let v = Vector::new(3.0, 4.0).normalized();
        assert!((v.length() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_and_dot() {
        let a = Vector::new(1.0, 0.0);
        let b = Vector::new(0.0, 1.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
        assert_eq!(a.dot(b), 0.0);
    }

    #[test]
    fn conversions() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p, Point::new(1.0, 2.0));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.0, 2.0));
    }

    proptest! {
        #[test]
        fn prop_distance_is_symmetric(ax in -1e4..1e4f64, ay in -1e4..1e4f64,
                                      bx in -1e4..1e4f64, by in -1e4..1e4f64) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
            prop_assert!((a.manhattan_distance(b) - b.manhattan_distance(a)).abs() < 1e-9);
        }

        #[test]
        fn prop_triangle_inequality(ax in -1e3..1e3f64, ay in -1e3..1e3f64,
                                    bx in -1e3..1e3f64, by in -1e3..1e3f64,
                                    cx in -1e3..1e3f64, cy in -1e3..1e3f64) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        }

        #[test]
        fn prop_euclidean_le_manhattan(ax in -1e3..1e3f64, ay in -1e3..1e3f64,
                                       bx in -1e3..1e3f64, by in -1e3..1e3f64) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert!(a.distance(b) <= a.manhattan_distance(b) + 1e-9);
        }
    }
}
