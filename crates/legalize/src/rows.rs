//! Row / sub-row infrastructure shared by the standard-cell legalizers.
//!
//! Both Tetris and Abacus are row-based: the placeable area is cut into horizontal rows
//! of one cell height, and each row is further split into *sub-rows* by blockages (the
//! already-fixed qubit macros).  This module builds that geometry once so both engines
//! (and tests) agree on it.

use crate::LegalizeError;
use qgdp_geometry::Rect;

/// A maximal blockage-free interval of one placement row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubRow {
    /// Left end of the interval.
    pub x_start: f64,
    /// Right end of the interval.
    pub x_end: f64,
    /// Vertical centre of the row.
    pub y: f64,
}

impl SubRow {
    /// Usable width of the sub-row.
    #[must_use]
    pub fn width(&self) -> f64 {
        (self.x_end - self.x_start).max(0.0)
    }
}

/// The rows of the placeable area, each split into sub-rows around blockages.
///
/// # Example
///
/// ```
/// use qgdp_geometry::{Point, Rect};
/// use qgdp_legalize::RowGrid;
///
/// let die = Rect::from_lower_left(Point::ORIGIN, 100.0, 30.0);
/// let qubit = Rect::from_center(Point::new(50.0, 15.0), 20.0, 20.0);
/// let grid = RowGrid::new(&die, 10.0, &[qubit])?;
/// assert_eq!(grid.num_rows(), 3);
/// // The middle row is split in two by the qubit.
/// assert_eq!(grid.row(1).len(), 2);
/// # Ok::<(), qgdp_legalize::LegalizeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RowGrid {
    row_height: f64,
    die: Rect,
    rows: Vec<Vec<SubRow>>,
}

impl RowGrid {
    /// Builds the row grid for `die` with rows of `row_height`, splitting each row
    /// around the given `blockages`.
    ///
    /// # Errors
    ///
    /// Returns [`LegalizeError::InvalidRowHeight`] if `row_height` is not positive and
    /// finite.
    pub fn new(die: &Rect, row_height: f64, blockages: &[Rect]) -> Result<Self, LegalizeError> {
        if !(row_height > 0.0 && row_height.is_finite()) {
            return Err(LegalizeError::InvalidRowHeight { row_height });
        }
        let num_rows = ((die.height() / row_height) + qgdp_geometry::EPS).floor() as usize;
        let mut rows = Vec::with_capacity(num_rows);
        for r in 0..num_rows {
            let y_bottom = die.bottom() + r as f64 * row_height;
            let y_top = y_bottom + row_height;
            let y_center = y_bottom + row_height * 0.5;
            // Collect the x-intervals blocked in this row.
            let mut blocked: Vec<(f64, f64)> = blockages
                .iter()
                .filter(|b| {
                    b.bottom() < y_top - qgdp_geometry::EPS
                        && b.top() > y_bottom + qgdp_geometry::EPS
                })
                .map(|b| (b.left().max(die.left()), b.right().min(die.right())))
                .filter(|(l, r)| r > l)
                .collect();
            blocked.sort_by(|a, b| a.0.total_cmp(&b.0));
            // Merge overlapping blocked intervals.
            let mut merged: Vec<(f64, f64)> = Vec::new();
            for (l, r) in blocked {
                match merged.last_mut() {
                    Some(last) if l <= last.1 + qgdp_geometry::EPS => last.1 = last.1.max(r),
                    _ => merged.push((l, r)),
                }
            }
            // The free intervals are the complement inside the die.
            let mut subrows = Vec::new();
            let mut cursor = die.left();
            for (l, r) in merged {
                if l - cursor > qgdp_geometry::EPS {
                    subrows.push(SubRow {
                        x_start: cursor,
                        x_end: l,
                        y: y_center,
                    });
                }
                cursor = cursor.max(r);
            }
            if die.right() - cursor > qgdp_geometry::EPS {
                subrows.push(SubRow {
                    x_start: cursor,
                    x_end: die.right(),
                    y: y_center,
                });
            }
            rows.push(subrows);
        }
        Ok(RowGrid {
            row_height,
            die: *die,
            rows,
        })
    }

    /// The row height.
    #[must_use]
    pub fn row_height(&self) -> f64 {
        self.row_height
    }

    /// The die the grid covers.
    #[must_use]
    pub fn die(&self) -> &Rect {
        &self.die
    }

    /// Number of rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The sub-rows of row `r` (bottom to top).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn row(&self, r: usize) -> &[SubRow] {
        &self.rows[r]
    }

    /// All rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<SubRow>] {
        &self.rows
    }

    /// Vertical centre of row `r`.
    #[must_use]
    pub fn row_y(&self, r: usize) -> f64 {
        self.die.bottom() + (r as f64 + 0.5) * self.row_height
    }

    /// Index of the row whose centre is nearest to `y`.
    #[must_use]
    pub fn row_index_near(&self, y: f64) -> usize {
        if self.rows.is_empty() {
            return 0;
        }
        let idx = ((y - self.die.bottom()) / self.row_height - 0.5).round() as i64;
        idx.clamp(0, self.rows.len() as i64 - 1) as usize
    }

    /// Total free width over all sub-rows (a capacity measure used for feasibility
    /// checks).
    #[must_use]
    pub fn total_free_width(&self) -> f64 {
        self.rows
            .iter()
            .flat_map(|r| r.iter())
            .map(SubRow::width)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp_geometry::Point;

    fn die() -> Rect {
        Rect::from_lower_left(Point::ORIGIN, 100.0, 40.0)
    }

    #[test]
    fn rows_without_blockages_span_the_die() {
        let grid = RowGrid::new(&die(), 10.0, &[]).unwrap();
        assert_eq!(grid.num_rows(), 4);
        for r in 0..4 {
            assert_eq!(grid.row(r).len(), 1);
            assert_eq!(grid.row(r)[0].x_start, 0.0);
            assert_eq!(grid.row(r)[0].x_end, 100.0);
            assert_eq!(grid.row(r)[0].width(), 100.0);
        }
        assert_eq!(grid.row_y(0), 5.0);
        assert_eq!(grid.row_index_near(17.0), 1);
        assert_eq!(grid.row_index_near(-100.0), 0);
        assert_eq!(grid.row_index_near(500.0), 3);
        assert_eq!(grid.total_free_width(), 400.0);
    }

    #[test]
    fn blockage_splits_rows() {
        let qubit = Rect::from_center(Point::new(50.0, 20.0), 20.0, 20.0);
        let grid = RowGrid::new(&die(), 10.0, &[qubit]).unwrap();
        // The qubit spans rows 1 and 2 (y in [10, 30]).
        assert_eq!(grid.row(0).len(), 1);
        assert_eq!(grid.row(1).len(), 2);
        assert_eq!(grid.row(2).len(), 2);
        assert_eq!(grid.row(3).len(), 1);
        let left = grid.row(1)[0];
        let right = grid.row(1)[1];
        assert_eq!(left.x_end, 40.0);
        assert_eq!(right.x_start, 60.0);
    }

    #[test]
    fn touching_blockages_merge() {
        let a = Rect::from_lower_left(Point::new(10.0, 0.0), 10.0, 40.0);
        let b = Rect::from_lower_left(Point::new(20.0, 0.0), 10.0, 40.0);
        let grid = RowGrid::new(&die(), 10.0, &[a, b]).unwrap();
        for r in 0..4 {
            assert_eq!(grid.row(r).len(), 2, "row {r}");
            assert_eq!(grid.row(r)[0].x_end, 10.0);
            assert_eq!(grid.row(r)[1].x_start, 30.0);
        }
    }

    #[test]
    fn blockage_covering_whole_row_leaves_it_empty() {
        let full = Rect::from_lower_left(Point::new(0.0, 10.0), 100.0, 10.0);
        let grid = RowGrid::new(&die(), 10.0, &[full]).unwrap();
        assert!(grid.row(1).is_empty());
        assert_eq!(grid.row(0).len(), 1);
    }

    #[test]
    fn invalid_row_height_rejected() {
        assert!(matches!(
            RowGrid::new(&die(), 0.0, &[]),
            Err(LegalizeError::InvalidRowHeight { .. })
        ));
        assert!(matches!(
            RowGrid::new(&die(), f64::NAN, &[]),
            Err(LegalizeError::InvalidRowHeight { .. })
        ));
    }

    #[test]
    fn blockage_outside_die_is_clipped() {
        let outside = Rect::from_center(Point::new(-50.0, 20.0), 20.0, 20.0);
        let grid = RowGrid::new(&die(), 10.0, &[outside]).unwrap();
        for r in 0..4 {
            assert_eq!(grid.row(r).len(), 1);
            assert_eq!(grid.row(r)[0].width(), 100.0);
        }
    }
}
