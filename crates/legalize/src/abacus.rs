//! The Abacus row-cluster legalizer (baseline for resonator wire blocks).
//!
//! Abacus (Spindler et al., ISPD'08) legalizes standard cells row by row: cells are
//! processed in global-placement x order and, for each candidate row, the row's cells
//! are maintained as *clusters* whose optimal positions minimise total quadratic
//! displacement; inserting a cell may cause clusters to collapse (merge) until no two
//! overlap.  The cell is committed to the row with the cheapest resulting displacement.
//! Like Tetris it is quantum-unaware: it optimises displacement only and happily
//! splits a resonator's wire blocks across the die.

use crate::{CellLegalizer, LegalizeError, RowGrid, SubRow};
use qgdp_geometry::{Point, Rect};
use qgdp_netlist::{Placement, QuantumNetlist, SegmentId};

/// One Abacus cluster: a maximal run of abutting cells within a sub-row.
#[derive(Debug, Clone, PartialEq)]
struct Cluster {
    /// Left edge of the cluster.
    x: f64,
    /// Total width of the member cells.
    width: f64,
    /// Total weight of the member cells.
    weight: f64,
    /// Abacus `q` accumulator: Σ e_i (x'_i − offset_i).
    q: f64,
    /// Member cells in placement order: (segment, desired left edge, width).
    cells: Vec<(SegmentId, f64, f64)>,
}

impl Cluster {
    fn new_with(cell: (SegmentId, f64, f64)) -> Self {
        let (_, desired_left, width) = cell;
        Cluster {
            x: desired_left,
            width,
            weight: 1.0,
            q: desired_left,
            cells: vec![cell],
        }
    }

    fn add_cluster(&mut self, other: &Cluster) {
        self.q += other.q - other.weight * self.width;
        self.weight += other.weight;
        self.width += other.width;
        self.cells.extend(other.cells.iter().cloned());
    }

    /// Optimal (unclamped) left edge, then clamped into the sub-row.
    fn place(&mut self, sub: &SubRow) {
        let optimal = self.q / self.weight;
        self.x = optimal.clamp(sub.x_start, (sub.x_end - self.width).max(sub.x_start));
    }
}

/// The per-sub-row state of the Abacus algorithm.
#[derive(Debug, Clone, PartialEq, Default)]
struct SubRowState {
    clusters: Vec<Cluster>,
    used_width: f64,
}

impl SubRowState {
    /// Inserts a cell at the end of the sub-row, collapsing clusters as required, and
    /// returns the resulting centre position of the inserted cell.
    fn insert(&mut self, sub: &SubRow, cell: (SegmentId, f64, f64)) -> f64 {
        let (segment, _, width) = cell;
        let mut cluster = Cluster::new_with(cell);
        cluster.place(sub);
        // Collapse with predecessors while overlapping.
        while let Some(last) = self.clusters.last() {
            if last.x + last.width > cluster.x + qgdp_geometry::EPS {
                let mut merged = self.clusters.pop().expect("last exists");
                merged.add_cluster(&cluster);
                merged.place(sub);
                cluster = merged;
            } else {
                break;
            }
        }
        self.clusters.push(cluster);
        self.used_width += width;
        // Locate the inserted cell's final position.
        let last = self.clusters.last().expect("just pushed");
        let mut x = last.x;
        for &(s, _, w) in &last.cells {
            if s == segment {
                return x + w * 0.5;
            }
            x += w;
        }
        unreachable!("inserted cell must be in the final cluster");
    }

    /// Final centre positions of every cell in the sub-row.
    fn positions(&self, row_y: f64) -> Vec<(SegmentId, Point)> {
        let mut out = Vec::new();
        for cluster in &self.clusters {
            let mut x = cluster.x;
            for &(s, _, w) in &cluster.cells {
                out.push((s, Point::new(x + w * 0.5, row_y)));
                x += w;
            }
        }
        out
    }
}

/// The Abacus legalizer for resonator wire blocks.
#[derive(Debug, Clone, Copy, Default)]
pub struct AbacusLegalizer;

impl AbacusLegalizer {
    /// Creates an Abacus legalizer.
    #[must_use]
    pub fn new() -> Self {
        AbacusLegalizer
    }
}

impl CellLegalizer for AbacusLegalizer {
    fn name(&self) -> &'static str {
        "abacus"
    }

    fn legalize_cells(
        &self,
        netlist: &QuantumNetlist,
        die: &Rect,
        placement: &Placement,
    ) -> Result<Placement, LegalizeError> {
        let lb = netlist.geometry().wire_block_size;
        let blockages: Vec<Rect> = netlist
            .qubit_ids()
            .map(|q| netlist.qubit(q).rect_at(placement.qubit(q)))
            .collect();
        let grid = RowGrid::new(die, lb, &blockages)?;

        let mut states: Vec<Vec<SubRowState>> = grid
            .rows()
            .iter()
            .map(|row| vec![SubRowState::default(); row.len()])
            .collect();

        let mut order: Vec<SegmentId> = netlist.segment_ids().collect();
        order.sort_by(|&a, &b| {
            placement
                .segment(a)
                .x
                .total_cmp(&placement.segment(b).x)
                .then(a.cmp(&b))
        });

        for s in &order {
            let desired = placement.segment(*s);
            let desired_left = desired.x - lb * 0.5;
            // Candidate rows sorted by vertical distance; stop expanding once the
            // vertical distance alone exceeds the best cost found.
            let mut row_order: Vec<usize> = (0..grid.num_rows()).collect();
            row_order.sort_by(|&a, &b| {
                (grid.row_y(a) - desired.y)
                    .abs()
                    .total_cmp(&(grid.row_y(b) - desired.y).abs())
            });
            let mut best: Option<(f64, usize, usize)> = None;
            for &r in &row_order {
                let dy = (grid.row_y(r) - desired.y).abs();
                if let Some((bc, _, _)) = best {
                    if dy > bc {
                        break;
                    }
                }
                for (k, sub) in grid.rows()[r].iter().enumerate() {
                    if sub.width() - states[r][k].used_width < lb - qgdp_geometry::EPS {
                        continue;
                    }
                    // Trial insertion on a copy.
                    let mut trial = states[r][k].clone();
                    let center_x = trial.insert(sub, (*s, desired_left, lb));
                    let cost = (center_x - desired.x).abs() + dy;
                    if best.is_none_or(|(bc, ..)| cost < bc - qgdp_geometry::EPS) {
                        best = Some((cost, r, k));
                    }
                }
            }
            let Some((_, r, k)) = best else {
                return Err(LegalizeError::NoSpace {
                    component: format!("wire block {s}"),
                });
            };
            let sub = grid.rows()[r][k];
            states[r][k].insert(&sub, (*s, desired_left, lb));
        }

        let mut out = placement.clone();
        for (r, row) in grid.rows().iter().enumerate() {
            for (k, sub) in row.iter().enumerate() {
                for (s, p) in states[r][k].positions(sub.y) {
                    out.set_segment(s, p);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::is_legal;
    use crate::{MacroLegalizer, QubitLegalizer, TetrisLegalizer};
    use qgdp_netlist::{ComponentGeometry, NetlistBuilder, QubitId};

    fn setup() -> (QuantumNetlist, Rect, Placement) {
        let netlist = NetlistBuilder::new(ComponentGeometry::default())
            .qubits(4)
            .couple(0, 1)
            .couple(1, 2)
            .couple(2, 3)
            .couple(3, 0)
            .build()
            .unwrap();
        let die = netlist.suggested_die(0.4);
        let mut gp = Placement::new(&netlist);
        let side = die.width();
        let corners = [
            (0.25 * side, 0.25 * side),
            (0.75 * side, 0.25 * side),
            (0.75 * side, 0.75 * side),
            (0.25 * side, 0.75 * side),
        ];
        for (i, &(x, y)) in corners.iter().enumerate() {
            gp.set_qubit(QubitId(i), Point::new(x, y));
        }
        for s in netlist.segment_ids() {
            gp.set_segment(
                s,
                Point::new(
                    0.5 * side + (s.index() % 6) as f64 * 4.0 - 12.0,
                    0.5 * side + (s.index() % 4) as f64 * 4.0 - 8.0,
                ),
            );
        }
        let qubits_legal = MacroLegalizer::new()
            .legalize_qubits(&netlist, &die, &gp)
            .unwrap();
        (netlist, die, qubits_legal)
    }

    #[test]
    fn produces_a_fully_legal_layout() {
        let (netlist, die, placement) = setup();
        let out = AbacusLegalizer::new()
            .legalize_cells(&netlist, &die, &placement)
            .unwrap();
        assert!(is_legal(&netlist, &die, &out));
    }

    #[test]
    fn qubits_are_not_moved() {
        let (netlist, die, placement) = setup();
        let out = AbacusLegalizer::new()
            .legalize_cells(&netlist, &die, &placement)
            .unwrap();
        for q in netlist.qubit_ids() {
            assert_eq!(out.qubit(q), placement.qubit(q));
        }
    }

    #[test]
    fn abacus_displacement_not_worse_than_tetris_by_much() {
        // Abacus optimises displacement more carefully than Tetris; on this benign
        // input it should be no more than marginally worse.
        let (netlist, die, placement) = setup();
        let abacus = AbacusLegalizer::new()
            .legalize_cells(&netlist, &die, &placement)
            .unwrap();
        let tetris = TetrisLegalizer::new()
            .legalize_cells(&netlist, &die, &placement)
            .unwrap();
        let da = abacus.total_displacement_from(&placement);
        let dt = tetris.total_displacement_from(&placement);
        assert!(
            da <= dt * 1.5 + 1.0,
            "abacus displacement {da:.1} is much worse than tetris {dt:.1}"
        );
    }

    #[test]
    fn cluster_collapse_keeps_cells_in_order_and_abutting() {
        let sub = SubRow {
            x_start: 0.0,
            x_end: 100.0,
            y: 5.0,
        };
        let mut state = SubRowState::default();
        // Three cells that all want to sit around x = 40.
        state.insert(&sub, (SegmentId(0), 40.0, 10.0));
        state.insert(&sub, (SegmentId(1), 38.0, 10.0));
        state.insert(&sub, (SegmentId(2), 42.0, 10.0));
        let positions = state.positions(sub.y);
        assert_eq!(positions.len(), 3);
        // Cells are packed in insertion order with no overlap and no gap inside the
        // cluster.
        for w in positions.windows(2) {
            let gap = w[1].1.x - w[0].1.x;
            assert!((gap - 10.0).abs() < 1e-9, "cells not abutting: gap {gap}");
        }
        // The cluster is centred near the desired positions.
        let mean_x: f64 = positions.iter().map(|(_, p)| p.x).sum::<f64>() / 3.0;
        assert!((mean_x - 45.0).abs() < 6.0);
    }

    #[test]
    fn fails_cleanly_when_the_die_is_packed() {
        let netlist = NetlistBuilder::new(ComponentGeometry::default())
            .qubits(2)
            .couple(0, 1)
            .build()
            .unwrap();
        let die = Rect::from_lower_left(Point::ORIGIN, 100.0, 50.0);
        let mut gp = Placement::new(&netlist);
        gp.set_qubit(QubitId(0), Point::new(25.0, 25.0));
        gp.set_qubit(QubitId(1), Point::new(75.0, 25.0));
        let result = AbacusLegalizer::new().legalize_cells(&netlist, &die, &gp);
        assert!(matches!(result, Err(LegalizeError::NoSpace { .. })));
    }
}
