//! # qgdp-legalize
//!
//! Classical legalization engines and the shared infrastructure they run on.
//!
//! The paper compares its quantum legalizer against classical baselines assembled from
//! three well-known engines:
//!
//! * a **macro legalizer** (Tang-style constraint relaxation) for the qubit macros,
//! * the **Tetris** greedy standard-cell legalizer for resonator wire blocks,
//! * the **Abacus** row-cluster dynamic-programming legalizer for resonator wire
//!   blocks.
//!
//! This crate implements those baselines, the row/sub-row infrastructure they share
//! ([`RowGrid`]), and the [`QubitLegalizer`] / [`CellLegalizer`] traits that the qGDP
//! core crate uses to compose the five evaluated strategies (Tetris, Abacus, Q-Tetris,
//! Q-Abacus, qGDP-LG).
//!
//! # Example
//!
//! ```
//! use qgdp_legalize::{CellLegalizer, MacroLegalizer, QubitLegalizer, TetrisLegalizer};
//! use qgdp_netlist::{ComponentGeometry, NetlistBuilder, Placement};
//! use qgdp_geometry::{Point, Rect};
//!
//! let netlist = NetlistBuilder::new(ComponentGeometry::default())
//!     .qubits(2)
//!     .couple(0, 1)
//!     .build()?;
//! let die = Rect::from_lower_left(Point::ORIGIN, 400.0, 400.0);
//! let mut gp = Placement::new(&netlist);
//! gp.set_qubit(qgdp_netlist::QubitId(0), Point::new(100.0, 100.0));
//! gp.set_qubit(qgdp_netlist::QubitId(1), Point::new(120.0, 100.0)); // overlapping
//!
//! let qubits_legal = MacroLegalizer::new().legalize_qubits(&netlist, &die, &gp)?;
//! let all_legal = TetrisLegalizer::new().legalize_cells(&netlist, &die, &qubits_legal)?;
//! assert_eq!(all_legal.count_overlaps(&netlist), 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Paper map
//!
//! §IV evaluation baselines: the classical macro/Tetris/Abacus legalizers that the
//! paper's qGDP-LG (§III-C/D, implemented in the `qgdp` core crate) is compared
//! against in Tables II–III, plus the [`QubitLegalizer`]/[`CellLegalizer`] traits
//! and row infrastructure ([`RowGrid`]) both sides share.  Inputs are
//! [`qgdp_netlist::Placement`] solutions over the [`qgdp_netlist`] model (§III),
//! with geometric predicates from [`qgdp_geometry`].
//!
//! The §III-C macro engine ([`legalize_macros`]) runs its separation sweeps,
//! violator scans and repair `fits` tests against a
//! [`qgdp_geometry::SpatialGrid`] of spacing-inflated rectangles, visiting
//! candidate pairs in ascending `(i, j)` order so the result stays bit-identical
//! to the retained O(n²) executable specification
//! ([`legalize_macros_reference`]) while the Table II runtimes scale
//! near-linearly — see the design note in [`macros`].

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod abacus;
pub mod error;
pub mod macros;
pub mod rows;
pub mod tetris;
pub mod traits;

pub use abacus::AbacusLegalizer;
pub use error::LegalizeError;
pub use macros::{
    legalize_macros, legalize_macros_reference, macros_are_legal, scheduled_sweeps, MacroLegalizer,
    MIN_SCHEDULED_SWEEPS, SWEEP_SCHEDULE_THRESHOLD_MACROS,
};
pub use rows::{RowGrid, SubRow};
pub use tetris::TetrisLegalizer;
pub use traits::{is_legal, CellLegalizer, QubitLegalizer};
