//! Error type shared by all legalization engines.

use std::error::Error;
use std::fmt;

/// Errors produced by legalization engines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LegalizeError {
    /// A component could not be placed anywhere inside the die without violating the
    /// spacing constraints.
    NoSpace {
        /// Human-readable description of the component that failed.
        component: String,
    },
    /// The die is too small to hold the total component area at all.
    DieTooSmall {
        /// Total component area (µm²) that must fit.
        required_area: f64,
        /// Available die area (µm²).
        die_area: f64,
    },
    /// The requested row height or bin size does not divide the die.
    InvalidRowHeight {
        /// The offending row height.
        row_height: f64,
    },
}

impl fmt::Display for LegalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalizeError::NoSpace { component } => {
                write!(f, "no legal position found for {component}")
            }
            LegalizeError::DieTooSmall {
                required_area,
                die_area,
            } => write!(
                f,
                "die area {die_area:.1} µm² cannot hold {required_area:.1} µm² of components"
            ),
            LegalizeError::InvalidRowHeight { row_height } => {
                write!(f, "row height {row_height} must be positive and finite")
            }
        }
    }
}

impl Error for LegalizeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = LegalizeError::NoSpace {
            component: "qubit q3".into(),
        };
        assert!(e.to_string().contains("q3"));
        let e = LegalizeError::DieTooSmall {
            required_area: 100.0,
            die_area: 50.0,
        };
        assert!(e.to_string().contains("50.0"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LegalizeError>();
    }
}
