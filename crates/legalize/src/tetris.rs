//! The Tetris greedy standard-cell legalizer (baseline for resonator wire blocks).
//!
//! Tetris-style legalization processes cells in order of their global-placement x
//! coordinate and greedily commits each one to the row position that minimises its own
//! displacement, advancing a per-row frontier so previously placed cells are never
//! disturbed.  It is fast and displacement-aware but completely ignorant of quantum
//! constraints — in particular it freely scatters the wire blocks of one resonator over
//! distant rows, which is exactly the failure mode qGDP's integration-aware legalizer
//! addresses.

use crate::{CellLegalizer, LegalizeError, RowGrid};
use qgdp_geometry::{Point, Rect};
use qgdp_netlist::{Placement, QuantumNetlist, SegmentId};

/// The Tetris legalizer for resonator wire blocks.
#[derive(Debug, Clone, Copy, Default)]
pub struct TetrisLegalizer;

impl TetrisLegalizer {
    /// Creates a Tetris legalizer.
    #[must_use]
    pub fn new() -> Self {
        TetrisLegalizer
    }
}

impl CellLegalizer for TetrisLegalizer {
    fn name(&self) -> &'static str {
        "tetris"
    }

    fn legalize_cells(
        &self,
        netlist: &QuantumNetlist,
        die: &Rect,
        placement: &Placement,
    ) -> Result<Placement, LegalizeError> {
        let lb = netlist.geometry().wire_block_size;
        let blockages: Vec<Rect> = netlist
            .qubit_ids()
            .map(|q| netlist.qubit(q).rect_at(placement.qubit(q)))
            .collect();
        let grid = RowGrid::new(die, lb, &blockages)?;

        // Per-sub-row frontier: next free left-edge coordinate.
        let mut frontiers: Vec<Vec<f64>> = grid
            .rows()
            .iter()
            .map(|row| row.iter().map(|s| s.x_start).collect())
            .collect();

        // Cells sorted by desired x (the classic Tetris order).
        let mut order: Vec<SegmentId> = netlist.segment_ids().collect();
        order.sort_by(|&a, &b| {
            placement
                .segment(a)
                .x
                .total_cmp(&placement.segment(b).x)
                .then(a.cmp(&b))
        });

        let mut out = placement.clone();
        for s in order {
            let desired = placement.segment(s);
            let mut best: Option<(f64, usize, usize, f64)> = None; // (cost, row, subrow, left_x)
            for (r, row) in grid.rows().iter().enumerate() {
                for (k, sub) in row.iter().enumerate() {
                    let frontier = frontiers[r][k];
                    if sub.x_end - frontier < lb - qgdp_geometry::EPS {
                        continue; // no space left in this sub-row
                    }
                    let left = (desired.x - lb * 0.5)
                        .max(frontier)
                        .min((sub.x_end - lb).max(frontier));
                    let center = Point::new(left + lb * 0.5, sub.y);
                    let cost = center.manhattan_distance(desired);
                    if best.is_none_or(|(bc, ..)| cost < bc - qgdp_geometry::EPS) {
                        best = Some((cost, r, k, left));
                    }
                }
            }
            let Some((_, r, k, left)) = best else {
                return Err(LegalizeError::NoSpace {
                    component: format!("wire block {s}"),
                });
            };
            out.set_segment(s, Point::new(left + lb * 0.5, grid.rows()[r][k].y));
            frontiers[r][k] = left + lb;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::is_legal;
    use crate::{MacroLegalizer, QubitLegalizer};
    use qgdp_netlist::{ComponentGeometry, NetlistBuilder, QubitId};

    fn setup() -> (QuantumNetlist, Rect, Placement) {
        let netlist = NetlistBuilder::new(ComponentGeometry::default())
            .qubits(4)
            .couple(0, 1)
            .couple(1, 2)
            .couple(2, 3)
            .couple(3, 0)
            .build()
            .unwrap();
        let die = netlist.suggested_die(0.4);
        let mut gp = Placement::new(&netlist);
        // Qubits at the four corners region, blocks dumped near the middle.
        let side = die.width();
        let corners = [
            (0.2 * side, 0.2 * side),
            (0.8 * side, 0.2 * side),
            (0.8 * side, 0.8 * side),
            (0.2 * side, 0.8 * side),
        ];
        for (i, &(x, y)) in corners.iter().enumerate() {
            gp.set_qubit(QubitId(i), Point::new(x, y));
        }
        for s in netlist.segment_ids() {
            gp.set_segment(
                s,
                Point::new(
                    0.5 * side + (s.index() % 7) as f64 * 3.0,
                    0.5 * side + (s.index() % 5) as f64 * 3.0,
                ),
            );
        }
        let qubits_legal = MacroLegalizer::new()
            .legalize_qubits(&netlist, &die, &gp)
            .unwrap();
        (netlist, die, qubits_legal)
    }

    #[test]
    fn produces_a_fully_legal_layout() {
        let (netlist, die, placement) = setup();
        let out = TetrisLegalizer::new()
            .legalize_cells(&netlist, &die, &placement)
            .unwrap();
        assert!(is_legal(&netlist, &die, &out));
    }

    #[test]
    fn qubits_are_not_moved() {
        let (netlist, die, placement) = setup();
        let out = TetrisLegalizer::new()
            .legalize_cells(&netlist, &die, &placement)
            .unwrap();
        for q in netlist.qubit_ids() {
            assert_eq!(out.qubit(q), placement.qubit(q));
        }
    }

    #[test]
    fn blocks_land_on_row_centres() {
        let (netlist, die, placement) = setup();
        let lb = netlist.geometry().wire_block_size;
        let out = TetrisLegalizer::new()
            .legalize_cells(&netlist, &die, &placement)
            .unwrap();
        for s in netlist.segment_ids() {
            let y = out.segment(s).y;
            let row_offset = (y - die.bottom() - lb * 0.5) / lb;
            assert!(
                (row_offset - row_offset.round()).abs() < 1e-6,
                "block {s} not on a row centre (y = {y})"
            );
        }
    }

    #[test]
    fn displacement_is_moderate_for_sparse_layouts() {
        let (netlist, die, placement) = setup();
        let out = TetrisLegalizer::new()
            .legalize_cells(&netlist, &die, &placement)
            .unwrap();
        let per_block = out.total_displacement_from(&placement) / netlist.num_segments() as f64;
        // With 40% utilisation the average block should not need to travel more than a
        // few block sizes.
        assert!(
            per_block < 12.0 * netlist.geometry().wire_block_size,
            "average displacement {per_block:.1} µm is implausibly large"
        );
    }

    #[test]
    fn fails_cleanly_when_the_die_is_packed() {
        let netlist = NetlistBuilder::new(ComponentGeometry::default())
            .qubits(2)
            .couple(0, 1)
            .build()
            .unwrap();
        // A die that can hold the qubits but not the 12 wire blocks.
        let die = Rect::from_lower_left(Point::ORIGIN, 100.0, 50.0);
        let mut gp = Placement::new(&netlist);
        gp.set_qubit(QubitId(0), Point::new(25.0, 25.0));
        gp.set_qubit(QubitId(1), Point::new(75.0, 25.0));
        let result = TetrisLegalizer::new().legalize_cells(&netlist, &die, &gp);
        assert!(matches!(result, Err(LegalizeError::NoSpace { .. })));
    }
}
