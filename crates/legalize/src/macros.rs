//! Macro (qubit) legalization: the shared displacement-minimising engine and the
//! classical baseline wrapper.
//!
//! The paper's qubit legalization (§III-C) follows the classical macro-legalization
//! recipe — constraint graphs over the macros with displacement minimisation — and adds
//! a quantum-specific minimum-spacing term.  [`legalize_macros`] implements the shared
//! engine with an explicit `spacing` parameter:
//!
//! 1. an iterative pairwise-separation phase pushes overlapping macros apart along the
//!    axis that needs the smaller move, preserving the global-placement ordering and
//!    keeping total displacement small (the behaviour of the min-cost-flow formulation
//!    it substitutes for);
//! 2. a deterministic repair phase re-places any macro still in violation at the
//!    nearest legal site found by an outward ring search, guaranteeing legality
//!    whenever space exists.
//!
//! # Spatial-index design (§III-C at scale)
//!
//! Every inner check of the engine — the phase-1 separation sweeps, the violator
//! scan, and the repair phase's `fits` test — is a question of the form *"which
//! macros are closer than the minimum spacing to this one?"*.  The hot path answers
//! it with a [`qgdp_geometry::SpatialGrid`]: each macro is inserted with its
//! rectangle **inflated by the spacing** (width + `spacing`, height + `spacing`), so
//! "pair in violation" becomes plain rectangle overlap, and overlap implies sharing
//! a grid cell.  Macros are re-inserted incrementally as the sweep pushes them
//! (a no-op while they stay inside the same cells), and candidate queries return ids
//! in ascending order, so the indexed sweep visits exactly the pairs the brute-force
//! `(i, j)` double loop would visit, in the same order, with the same floating-point
//! arithmetic — the result is **bit-identical** to [`legalize_macros_reference`],
//! the retained O(n²) formulation that serves as the executable specification
//! (asserted in unit, property and golden tests, and by the `bench_legalize`
//! record).  This is the same locality argument Abacus makes with per-row clusters,
//! applied to 2-D macro legalization.
//!
//! The classical baseline [`MacroLegalizer`] simply calls the engine with zero extra
//! spacing; the quantum qubit legalizer in the `qgdp` crate calls it with the
//! one-standard-cell spacing and a greedy relaxation loop.

use crate::{LegalizeError, QubitLegalizer};
use qgdp_geometry::{Point, Rect, SpatialGrid};
use qgdp_netlist::{Placement, QuantumNetlist};

/// Maximum number of pairwise-separation sweeps before falling back to repair.
const MAX_SWEEPS: usize = 200;

/// Macro count up to which [`scheduled_sweeps`] is the identity (the full
/// `MAX_SWEEPS` budget).  An order of magnitude past Eagle's 127 macros and
/// past the synthetic-1600 bench row, so every committed golden is unaffected.
pub const SWEEP_SCHEDULE_THRESHOLD_MACROS: usize = 2048;

/// Floor [`scheduled_sweeps`] never goes below.
pub const MIN_SCHEDULED_SWEEPS: usize = 32;

/// Pairwise-separation sweep budget for `num_macros` macros: the full
/// `MAX_SWEEPS` up to [`SWEEP_SCHEDULE_THRESHOLD_MACROS`], then scaled by
/// `√(threshold / n)` with a floor of [`MIN_SCHEDULED_SWEEPS`].  In practice
/// the sweep loop converges (and returns early) long before the budget on
/// realistic densities; the budget only caps the pathological tail, so
/// shrinking it at roadmap scale bounds worst-case work without touching
/// converging runs.  A pure function of `num_macros`, shared by
/// [`legalize_macros`] and [`legalize_macros_reference`] so both engines make
/// identical sweep decisions at every size.
#[must_use]
pub fn scheduled_sweeps(num_macros: usize) -> usize {
    if num_macros <= SWEEP_SCHEDULE_THRESHOLD_MACROS {
        return MAX_SWEEPS;
    }
    let ratio = SWEEP_SCHEDULE_THRESHOLD_MACROS as f64 / num_macros as f64;
    let scaled = (MAX_SWEEPS as f64 * ratio.sqrt()).round() as usize;
    scaled.clamp(MIN_SCHEDULED_SWEEPS, MAX_SWEEPS)
}

/// Rejects inputs whose spacing-inflated macro area provably exceeds the die.
fn check_required_area(desired: &[Rect], die: &Rect, spacing: f64) -> Result<(), LegalizeError> {
    let required_area: f64 = desired
        .iter()
        .map(|r| (r.width() + spacing) * (r.height() + spacing))
        .sum();
    if required_area > die.area() * 1.000_001 {
        return Err(LegalizeError::DieTooSmall {
            required_area,
            die_area: die.area(),
        });
    }
    Ok(())
}

/// Desired centres clamped inside the die — the common starting point of both engines.
fn initial_centers(desired: &[Rect], die: &Rect) -> Vec<Point> {
    desired
        .iter()
        .map(|r| r.clamped_within(die).center())
        .collect()
}

/// Checks the ordered pair `(i, j)` against Eq. 1 + `spacing` and, when violating,
/// pushes the two macros apart along the axis needing the smaller move (order
/// preserved, ties broken by index) and re-clamps both inside the die.  Returns
/// `true` when a push happened.
///
/// Shared verbatim by the indexed hot path and [`legalize_macros_reference`], so the
/// two produce bit-identical centre sequences whenever they visit the same pairs in
/// the same order.
#[inline]
fn separate_pair(
    desired: &[Rect],
    die: &Rect,
    spacing: f64,
    centers: &mut [Point],
    i: usize,
    j: usize,
) -> bool {
    let sep_x = desired[i].min_separation_x(&desired[j]) + spacing;
    let sep_y = desired[i].min_separation_y(&desired[j]) + spacing;
    let dx = centers[j].x - centers[i].x;
    let dy = centers[j].y - centers[i].y;
    if dx.abs() >= sep_x - qgdp_geometry::EPS || dy.abs() >= sep_y - qgdp_geometry::EPS {
        return false;
    }
    let push_x = sep_x - dx.abs();
    let push_y = sep_y - dy.abs();
    if push_x <= push_y {
        // Separate along x, preserving order (ties broken by index).
        let dir = if dx > 0.0 || (dx == 0.0 && i < j) {
            1.0
        } else {
            -1.0
        };
        centers[i].x -= dir * push_x * 0.5;
        centers[j].x += dir * push_x * 0.5;
    } else {
        let dir = if dy > 0.0 || (dy == 0.0 && i < j) {
            1.0
        } else {
            -1.0
        };
        centers[i].y -= dir * push_y * 0.5;
        centers[j].y += dir * push_y * 0.5;
    }
    centers[i] = desired[i]
        .with_center(centers[i])
        .clamped_within(die)
        .center();
    centers[j] = desired[j]
        .with_center(centers[j])
        .clamped_within(die)
        .center();
    true
}

/// The violation test of [`separate_pair`] without the push — the predicate shared by
/// the violator scans of both engines.
#[inline]
fn pair_violates(desired: &[Rect], centers: &[Point], spacing: f64, i: usize, j: usize) -> bool {
    let sep_x = desired[i].min_separation_x(&desired[j]) + spacing;
    let sep_y = desired[i].min_separation_y(&desired[j]) + spacing;
    let dx = (centers[j].x - centers[i].x).abs();
    let dy = (centers[j].y - centers[i].y).abs();
    dx < sep_x - qgdp_geometry::EPS && dy < sep_y - qgdp_geometry::EPS
}

/// The spacing-inflated candidate index over the macro set.
///
/// Each macro `k` is tracked with the rectangle `(w_k + spacing) × (h_k + spacing)`
/// centred at its current position, so two macros violate the spacing constraint
/// exactly when their tracked rectangles overlap — which guarantees they share a
/// [`SpatialGrid`] cell and therefore appear in each other's candidate lists.
struct MacroIndex {
    grid: SpatialGrid,
    widths: Vec<f64>,
    heights: Vec<f64>,
}

impl MacroIndex {
    /// Builds an empty index sized for the macro set.  `bounds` only anchors the cell
    /// grid — rectangles outside it clamp to boundary cells and stay conservative.
    fn empty(desired: &[Rect], spacing: f64, bounds: &Rect) -> Self {
        let widths: Vec<f64> = desired.iter().map(|r| r.width() + spacing).collect();
        let heights: Vec<f64> = desired.iter().map(|r| r.height() + spacing).collect();
        let max_dim = widths
            .iter()
            .chain(heights.iter())
            .fold(0.0_f64, |acc, &d| acc.max(d));
        // Cells at least as large as the largest inflated macro (so overlap partners
        // are always in adjacent cells) but no finer than ~2 cells per macro.
        let occupancy_floor = (bounds.area() / (2 * desired.len() + 16) as f64).sqrt();
        let mut cell = max_dim.max(occupancy_floor);
        if !(cell > 0.0 && cell.is_finite()) {
            cell = 1.0;
        }
        MacroIndex {
            grid: SpatialGrid::new(bounds, cell, desired.len()),
            widths,
            heights,
        }
    }

    /// Builds the index with every macro inserted at its current centre.
    fn full(desired: &[Rect], centers: &[Point], spacing: f64, bounds: &Rect) -> Self {
        let mut index = MacroIndex::empty(desired, spacing, bounds);
        for (k, &c) in centers.iter().enumerate() {
            index.insert(k, c);
        }
        index
    }

    /// The tracked (spacing-inflated) rectangle of macro `k` at `center`.
    fn rect_at(&self, k: usize, center: Point) -> Rect {
        Rect::from_center(center, self.widths[k], self.heights[k])
    }

    fn insert(&mut self, k: usize, center: Point) {
        self.grid.insert(k, &self.rect_at(k, center));
    }

    fn relocate(&mut self, k: usize, center: Point) {
        self.grid.relocate(k, &self.rect_at(k, center));
    }

    /// Sorted, deduplicated ids of every indexed macro that may violate spacing
    /// against macro `k` placed at `center` (includes `k` itself when indexed).
    fn candidates_at(&self, k: usize, center: Point, out: &mut Vec<u32>) {
        self.grid.candidates(&self.rect_at(k, center), out);
    }
}

/// Legalizes a set of macros with a minimum edge-to-edge `spacing`, minimising
/// displacement from the desired positions.
///
/// `desired` holds each macro's desired rectangle (global-placement centre and its
/// dimensions).  The returned vector holds the legalized centres in the same order.
///
/// This is the spatial-index hot path: candidate pairs come from a
/// [`SpatialGrid`] over spacing-inflated rectangles and are visited in ascending
/// `(i, j)` order, so the result is bit-identical to
/// [`legalize_macros_reference`] at near-linear instead of quadratic cost (see the
/// module-level design note).
///
/// # Errors
///
/// Returns [`LegalizeError::DieTooSmall`] when the macro area (with spacing) provably
/// exceeds the die, and [`LegalizeError::NoSpace`] when the repair search cannot find a
/// legal site for some macro.
pub fn legalize_macros(
    desired: &[Rect],
    die: &Rect,
    spacing: f64,
) -> Result<Vec<Point>, LegalizeError> {
    if desired.is_empty() {
        return Ok(Vec::new());
    }
    check_required_area(desired, die, spacing)?;
    let mut centers = initial_centers(desired, die);

    // Phase 1: pairwise separation sweeps over index candidates only.  After every
    // push the moved macros are re-indexed and the scan resumes from the next index,
    // so the sequence of pushes matches the reference's exhaustive (i, j) loop.
    let mut index = MacroIndex::full(desired, &centers, spacing, die);
    let mut scratch: Vec<u32> = Vec::new();
    for _ in 0..scheduled_sweeps(desired.len()) {
        let mut any_violation = false;
        for i in 0..desired.len() {
            let mut next_j = i + 1;
            loop {
                index.candidates_at(i, centers[i], &mut scratch);
                let mut pushed = false;
                for &j in &scratch {
                    let j = j as usize;
                    if j < next_j {
                        continue;
                    }
                    if separate_pair(desired, die, spacing, &mut centers, i, j) {
                        index.relocate(i, centers[i]);
                        index.relocate(j, centers[j]);
                        any_violation = true;
                        next_j = j + 1;
                        pushed = true;
                        break;
                    }
                }
                if !pushed {
                    break;
                }
            }
        }
        if !any_violation {
            return Ok(centers);
        }
    }

    // Phase 2: deterministic repair of the remaining violators.
    repair_violations(desired, die, spacing, &mut centers)?;
    Ok(centers)
}

/// The original O(n²) formulation of [`legalize_macros`]: exhaustive pairwise
/// separation sweeps and linear-scan repair checks.
///
/// Kept as the executable specification of the engine — the equivalence tests and
/// the `bench_legalize` binary run it against the indexed hot path and assert the
/// outputs are bit-identical.
///
/// # Errors
///
/// Same contract as [`legalize_macros`].
pub fn legalize_macros_reference(
    desired: &[Rect],
    die: &Rect,
    spacing: f64,
) -> Result<Vec<Point>, LegalizeError> {
    if desired.is_empty() {
        return Ok(Vec::new());
    }
    check_required_area(desired, die, spacing)?;
    let mut centers = initial_centers(desired, die);

    // Phase 1: pairwise separation sweeps.
    for _ in 0..scheduled_sweeps(desired.len()) {
        let mut any_violation = false;
        for i in 0..desired.len() {
            for j in (i + 1)..desired.len() {
                if separate_pair(desired, die, spacing, &mut centers, i, j) {
                    any_violation = true;
                }
            }
        }
        if !any_violation {
            return Ok(centers);
        }
    }

    // Phase 2: deterministic repair of the remaining violators.
    repair_violations_reference(desired, die, spacing, &mut centers)?;
    Ok(centers)
}

/// Returns the indices of macros that violate spacing against any other macro,
/// collecting candidate pairs from a spacing-inflated index.
fn violating_indices(desired: &[Rect], centers: &[Point], spacing: f64) -> Vec<usize> {
    let mut bad = std::collections::BTreeSet::new();
    if desired.len() > 1 {
        let placed: Vec<Rect> = desired
            .iter()
            .zip(centers)
            .map(|(r, &c)| r.with_center(c))
            .collect();
        let bounds = Rect::bounding_box(placed.iter()).expect("non-empty macro set");
        let index = MacroIndex::full(desired, centers, spacing, &bounds);
        let mut scratch: Vec<u32> = Vec::new();
        for i in 0..desired.len() {
            index.candidates_at(i, centers[i], &mut scratch);
            for &j in &scratch {
                let j = j as usize;
                if j > i && pair_violates(desired, centers, spacing, i, j) {
                    bad.insert(i);
                    bad.insert(j);
                }
            }
        }
    }
    bad.into_iter().collect()
}

/// The O(n²) scan behind [`violating_indices`], retained for equivalence tests.
fn violating_indices_reference(desired: &[Rect], centers: &[Point], spacing: f64) -> Vec<usize> {
    let mut bad = std::collections::BTreeSet::new();
    for i in 0..desired.len() {
        for j in (i + 1)..desired.len() {
            if pair_violates(desired, centers, spacing, i, j) {
                bad.insert(i);
                bad.insert(j);
            }
        }
    }
    bad.into_iter().collect()
}

/// Violators sorted hardest-to-fit first (larger macros first, ties by index) — the
/// processing order of the repair phase, shared by both engines.
fn sorted_violators(desired: &[Rect], violators: Vec<usize>) -> Vec<usize> {
    let mut violators = violators;
    violators.sort_by(|&a, &b| {
        desired[b]
            .area()
            .total_cmp(&desired[a].area())
            .then(a.cmp(&b))
    });
    violators
}

/// Ring-search step size: half the smallest macro side, floored by the die resolution.
fn repair_step(desired: &[Rect], die: &Rect) -> f64 {
    let min_side = desired
        .iter()
        .map(|r| r.width().min(r.height()))
        .fold(f64::INFINITY, f64::min);
    (min_side * 0.5).max(die.width() / 512.0)
}

/// Candidate points on the square ring of radius `ring * step` around `target`,
/// nearest-to-target first.
///
/// Each ring corner is produced by two of the four edge loops, so exact duplicates
/// are removed after the deterministic sort (they are adjacent by then); the search
/// outcome is unchanged — only the redundant `fits` probes go away.
fn ring_candidates(target: Point, ring: i64, step: f64) -> Vec<Point> {
    let r = ring as f64 * step;
    let mut candidates = Vec::new();
    if ring == 0 {
        candidates.push(target);
    } else {
        let steps = 2 * ring;
        for k in 0..=steps {
            let t = -r + k as f64 * step;
            candidates.push(Point::new(target.x + t, target.y - r));
            candidates.push(Point::new(target.x + t, target.y + r));
            candidates.push(Point::new(target.x - r, target.y + t));
            candidates.push(Point::new(target.x + r, target.y + t));
        }
    }
    // Deterministic preference: nearest to target first.
    candidates.sort_by(|a, b| {
        a.distance_squared(target)
            .total_cmp(&b.distance_squared(target))
            .then(a.x.total_cmp(&b.x))
            .then(a.y.total_cmp(&b.y))
    });
    candidates.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    candidates
}

/// Runs the outward ring search for macro `v`, returning the first candidate centre
/// (die-clamped) accepted by `fits`.  The ring schedule and ordering are shared by
/// both repair implementations.
fn find_repair_site(
    desired: &[Rect],
    die: &Rect,
    v: usize,
    step: f64,
    mut fits: impl FnMut(Point) -> bool,
) -> Option<Point> {
    let target = desired[v].center();
    let max_radius_steps = ((die.width().max(die.height()) / step).ceil() as i64 + 1).max(1);
    for ring in 0..=max_radius_steps {
        for c in ring_candidates(target, ring, step) {
            let clamped = desired[v].with_center(c).clamped_within(die).center();
            if fits(clamped) {
                return Some(clamped);
            }
        }
    }
    None
}

fn no_space_error(desired: &[Rect], v: usize) -> LegalizeError {
    LegalizeError::NoSpace {
        component: format!(
            "macro #{v} ({:.0}x{:.0})",
            desired[v].width(),
            desired[v].height()
        ),
    }
}

/// Re-places every violating macro at the nearest legal site (outward ring search),
/// consulting the spacing-inflated index for the `fits` test.
fn repair_violations(
    desired: &[Rect],
    die: &Rect,
    spacing: f64,
    centers: &mut [Point],
) -> Result<(), LegalizeError> {
    let violators = sorted_violators(desired, violating_indices(desired, centers, spacing));
    let violator_set: std::collections::BTreeSet<usize> = violators.iter().copied().collect();
    let step = repair_step(desired, die);

    // Index the macros that already sit at legal positions; each repaired violator
    // joins them incrementally.
    let mut index = MacroIndex::empty(desired, spacing, die);
    for (k, &c) in centers.iter().enumerate() {
        if !violator_set.contains(&k) {
            index.insert(k, c);
        }
    }

    let mut scratch: Vec<u32> = Vec::new();
    for &v in &violators {
        let found = find_repair_site(desired, die, v, step, |candidate| {
            let rect = desired[v].with_center(candidate);
            if !die.contains_rect(&rect) {
                return false;
            }
            // Only indexed macros sharing a cell with the inflated candidate rect can
            // violate the separation condition; everything else passes trivially.
            index.candidates_at(v, candidate, &mut scratch);
            scratch.iter().all(|&p| {
                let p = p as usize;
                let dx = (centers[p].x - candidate.x).abs();
                let dy = (centers[p].y - candidate.y).abs();
                dx >= desired[v].min_separation_x(&desired[p]) + spacing - qgdp_geometry::EPS
                    || dy >= desired[v].min_separation_y(&desired[p]) + spacing - qgdp_geometry::EPS
            })
        });
        match found {
            Some(p) => {
                centers[v] = p;
                index.insert(v, p);
            }
            None => return Err(no_space_error(desired, v)),
        }
    }
    Ok(())
}

/// The linear-scan repair of [`legalize_macros_reference`]: identical ring search,
/// `fits` checked against every placed macro.
fn repair_violations_reference(
    desired: &[Rect],
    die: &Rect,
    spacing: f64,
    centers: &mut [Point],
) -> Result<(), LegalizeError> {
    let violators = sorted_violators(
        desired,
        violating_indices_reference(desired, centers, spacing),
    );
    let violator_set: std::collections::BTreeSet<usize> = violators.iter().copied().collect();
    let mut placed: Vec<usize> = (0..desired.len())
        .filter(|i| !violator_set.contains(i))
        .collect();
    let step = repair_step(desired, die);

    for &v in &violators {
        let found = find_repair_site(desired, die, v, step, |candidate| {
            let rect = desired[v].with_center(candidate);
            if !die.contains_rect(&rect) {
                return false;
            }
            placed.iter().all(|&p| {
                let dx = (centers[p].x - candidate.x).abs();
                let dy = (centers[p].y - candidate.y).abs();
                dx >= desired[v].min_separation_x(&desired[p]) + spacing - qgdp_geometry::EPS
                    || dy >= desired[v].min_separation_y(&desired[p]) + spacing - qgdp_geometry::EPS
            })
        });
        match found {
            Some(p) => {
                centers[v] = p;
                placed.push(v);
            }
            None => return Err(no_space_error(desired, v)),
        }
    }
    Ok(())
}

/// Returns `true` if the macro set satisfies pairwise spacing and the border constraint.
///
/// Deliberately runs the brute-force violator scan, not the spatial index: this is
/// the legality *oracle* the equivalence tests and benches trust, so it must stay
/// independent of the index machinery it validates.
#[must_use]
pub fn macros_are_legal(desired: &[Rect], centers: &[Point], die: &Rect, spacing: f64) -> bool {
    centers
        .iter()
        .enumerate()
        .all(|(i, &c)| die.contains_rect(&desired[i].with_center(c)))
        && violating_indices_reference(desired, centers, spacing).is_empty()
}

/// The classical macro legalizer baseline: displacement-minimising legalization of the
/// qubit macros with **no** quantum spacing term (the `Tetris`/`Abacus` baselines of
/// the paper use this for their qubit stage).
#[derive(Debug, Clone, Copy, Default)]
pub struct MacroLegalizer;

impl MacroLegalizer {
    /// Creates the baseline macro legalizer.
    #[must_use]
    pub fn new() -> Self {
        MacroLegalizer
    }
}

impl QubitLegalizer for MacroLegalizer {
    fn name(&self) -> &'static str {
        "macro-lg"
    }

    fn legalize_qubits(
        &self,
        netlist: &QuantumNetlist,
        die: &Rect,
        gp: &Placement,
    ) -> Result<Placement, LegalizeError> {
        let desired: Vec<Rect> = netlist
            .qubit_ids()
            .map(|q| netlist.qubit(q).rect_at(gp.qubit(q)))
            .collect();
        let centers = legalize_macros(&desired, die, 0.0)?;
        let mut out = gp.clone();
        for (q, c) in netlist.qubit_ids().zip(centers) {
            out.set_qubit(q, c);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn die(side: f64) -> Rect {
        Rect::from_lower_left(Point::ORIGIN, side, side)
    }

    #[test]
    fn sweep_schedule_is_identity_then_shrinks_to_floor() {
        for n in [0, 1, 127, 1600, SWEEP_SCHEDULE_THRESHOLD_MACROS] {
            assert_eq!(scheduled_sweeps(n), MAX_SWEEPS, "n = {n}");
        }
        let at_10k = scheduled_sweeps(10_000);
        assert!((MIN_SCHEDULED_SWEEPS..MAX_SWEEPS).contains(&at_10k));
        assert_eq!(scheduled_sweeps(100_000), MIN_SCHEDULED_SWEEPS);
    }

    fn squares(centers: &[(f64, f64)], size: f64) -> Vec<Rect> {
        centers
            .iter()
            .map(|&(x, y)| Rect::from_center(Point::new(x, y), size, size))
            .collect()
    }

    /// Runs both engines and asserts their outputs (or errors) are bit-identical,
    /// returning the optimized result.
    fn legalize_both(
        desired: &[Rect],
        d: &Rect,
        spacing: f64,
    ) -> Result<Vec<Point>, LegalizeError> {
        let optimized = legalize_macros(desired, d, spacing);
        let reference = legalize_macros_reference(desired, d, spacing);
        match (&optimized, &reference) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "indexed engine diverged from the reference"),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("engines disagree on outcome: optimized={a:?} reference={b:?}"),
        }
        optimized
    }

    #[test]
    fn already_legal_input_is_untouched() {
        let desired = squares(&[(20.0, 20.0), (60.0, 20.0), (20.0, 60.0)], 20.0);
        let out = legalize_both(&desired, &die(100.0), 0.0).unwrap();
        for (r, c) in desired.iter().zip(&out) {
            assert_eq!(r.center(), *c);
        }
    }

    #[test]
    fn overlapping_pair_gets_separated_minimally() {
        let desired = squares(&[(45.0, 50.0), (55.0, 50.0)], 20.0);
        let out = legalize_both(&desired, &die(100.0), 0.0).unwrap();
        assert!(macros_are_legal(&desired, &out, &die(100.0), 0.0));
        // The pair separates along x (the smaller push) and stays near y = 50.
        assert!((out[0].y - 50.0).abs() < 1e-6);
        assert!((out[1].y - 50.0).abs() < 1e-6);
        assert!(out[1].x - out[0].x >= 20.0 - 1e-9);
    }

    #[test]
    fn spacing_is_enforced() {
        let desired = squares(&[(40.0, 50.0), (60.0, 50.0)], 20.0);
        let out = legalize_both(&desired, &die(200.0), 10.0).unwrap();
        assert!(macros_are_legal(&desired, &out, &die(200.0), 10.0));
        assert!(
            (out[1].x - out[0].x).abs() >= 30.0 - 1e-9
                || (out[1].y - out[0].y).abs() >= 30.0 - 1e-9
        );
    }

    #[test]
    fn dense_cluster_is_repaired() {
        // Nine macros all dumped on the same spot in a die that can hold them: phase 1
        // cannot untangle a fully degenerate stack, so this exercises the repair phase
        // of both engines.
        let desired = squares(&[(50.0, 50.0); 9], 20.0);
        let d = die(200.0);
        let out = legalize_both(&desired, &d, 0.0).unwrap();
        assert!(macros_are_legal(&desired, &out, &d, 0.0));
    }

    #[test]
    fn die_too_small_is_reported() {
        let desired = squares(&[(10.0, 10.0), (20.0, 20.0)], 30.0);
        match legalize_both(&desired, &die(40.0), 0.0) {
            Err(LegalizeError::DieTooSmall { .. }) => {}
            other => panic!("expected DieTooSmall, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_ok() {
        assert!(legalize_macros(&[], &die(10.0), 0.0).unwrap().is_empty());
        assert!(legalize_macros_reference(&[], &die(10.0), 0.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn ring_candidates_have_no_duplicate_corners() {
        // Each ring corner used to be emitted by two of the four edge loops; the
        // candidate list must now be duplicate-free while still covering the ring.
        for ring in 0..4i64 {
            let candidates = ring_candidates(Point::new(10.0, 20.0), ring, 2.5);
            let expected = if ring == 0 { 1 } else { 8 * ring as usize };
            assert_eq!(
                candidates.len(),
                expected,
                "ring {ring} should have {expected} unique candidates"
            );
            for (a, idx) in candidates.iter().zip(0..) {
                for b in &candidates[idx + 1..] {
                    assert!(
                        a.x != b.x || a.y != b.y,
                        "duplicate candidate {a} on ring {ring}"
                    );
                }
            }
        }
    }

    #[test]
    fn violating_indices_match_reference_on_a_clump() {
        let desired = squares(
            &[(50.0, 50.0), (55.0, 50.0), (90.0, 90.0), (52.0, 55.0)],
            20.0,
        );
        let centers: Vec<Point> = desired.iter().map(Rect::center).collect();
        assert_eq!(
            violating_indices(&desired, &centers, 5.0),
            violating_indices_reference(&desired, &centers, 5.0)
        );
        assert_eq!(
            violating_indices(&desired, &centers, 0.0),
            violating_indices_reference(&desired, &centers, 0.0)
        );
    }

    #[test]
    fn macro_legalizer_trait_impl_fixes_qubits_only() {
        use qgdp_netlist::{ComponentGeometry, NetlistBuilder, QubitId, SegmentId};
        let netlist = NetlistBuilder::new(ComponentGeometry::default())
            .qubits(3)
            .couple(0, 1)
            .couple(1, 2)
            .build()
            .unwrap();
        let d = die(600.0);
        let mut gp = Placement::new(&netlist);
        gp.set_qubit(QubitId(0), Point::new(100.0, 100.0));
        gp.set_qubit(QubitId(1), Point::new(110.0, 100.0));
        gp.set_qubit(QubitId(2), Point::new(105.0, 110.0));
        gp.set_segment(SegmentId(0), Point::new(300.0, 300.0));
        let lg = MacroLegalizer::new();
        assert_eq!(lg.name(), "macro-lg");
        let out = lg.legalize_qubits(&netlist, &d, &gp).unwrap();
        // Qubits legal with zero spacing.
        let rects: Vec<Rect> = netlist
            .qubit_ids()
            .map(|q| netlist.qubit(q).rect_at(out.qubit(q)))
            .collect();
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                assert!(!rects[i].overlaps(&rects[j]));
            }
        }
        // Segments untouched.
        assert_eq!(out.segment(SegmentId(0)), Point::new(300.0, 300.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_output_is_always_legal(
            centers in proptest::collection::vec((30.0..370.0f64, 30.0..370.0f64), 1..12),
            spacing in 0.0..10.0f64,
        ) {
            let desired = squares(&centers, 40.0);
            let d = die(400.0);
            match legalize_macros(&desired, &d, spacing) {
                Ok(out) => prop_assert!(macros_are_legal(&desired, &out, &d, spacing)),
                Err(LegalizeError::DieTooSmall { .. }) | Err(LegalizeError::NoSpace { .. }) => {}
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            }
        }

        #[test]
        fn prop_indexed_engine_is_bit_identical_to_reference(
            centers in proptest::collection::vec((10.0..390.0f64, 10.0..390.0f64), 1..16),
            sizes in proptest::collection::vec(10.0..50.0f64, 1..16),
            spacing in 0.0..12.0f64,
        ) {
            // Mixed-size macro sets at arbitrary density: the indexed engine must
            // reproduce the reference bit for bit (including which error it returns),
            // and every accepted result must pass the legality oracle.
            let desired: Vec<Rect> = centers
                .iter()
                .zip(sizes.iter().cycle())
                .map(|(&(x, y), &s)| Rect::from_center(Point::new(x, y), s, s))
                .collect();
            let d = die(400.0);
            let optimized = legalize_macros(&desired, &d, spacing);
            let reference = legalize_macros_reference(&desired, &d, spacing);
            match (optimized, reference) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a, &b);
                    prop_assert!(macros_are_legal(&desired, &a, &d, spacing));
                }
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "outcomes disagree: {:?} vs {:?}", a, b),
            }
        }

        #[test]
        fn prop_violating_indices_match_reference(
            centers in proptest::collection::vec((0.0..200.0f64, 0.0..200.0f64), 2..20),
            spacing in 0.0..15.0f64,
        ) {
            let desired = squares(&centers, 25.0);
            let pts: Vec<Point> = desired.iter().map(Rect::center).collect();
            prop_assert_eq!(
                violating_indices(&desired, &pts, spacing),
                violating_indices_reference(&desired, &pts, spacing)
            );
        }

        #[test]
        fn prop_legal_inputs_are_fixed_points(
            xs in proptest::collection::vec(0usize..5, 1..5),
        ) {
            // Place macros on a coarse lattice: guaranteed legal input.
            let mut seen = std::collections::BTreeSet::new();
            let centers: Vec<(f64, f64)> = xs
                .iter()
                .enumerate()
                .map(|(i, &c)| ((c * 80 + 40) as f64, ((i % 5) * 80 + 40) as f64))
                .filter(|&(x, y)| seen.insert((x as i64, y as i64)))
                .collect();
            let desired = squares(&centers, 40.0);
            let d = die(400.0);
            let out = legalize_macros(&desired, &d, 0.0).unwrap();
            for (r, c) in desired.iter().zip(&out) {
                prop_assert!(r.center().distance(*c) < 1e-9);
            }
        }
    }
}
