//! Macro (qubit) legalization: the shared displacement-minimising engine and the
//! classical baseline wrapper.
//!
//! The paper's qubit legalization (§III-C) follows the classical macro-legalization
//! recipe — constraint graphs over the macros with displacement minimisation — and adds
//! a quantum-specific minimum-spacing term.  [`legalize_macros`] implements the shared
//! engine with an explicit `spacing` parameter:
//!
//! 1. an iterative pairwise-separation phase pushes overlapping macros apart along the
//!    axis that needs the smaller move, preserving the global-placement ordering and
//!    keeping total displacement small (the behaviour of the min-cost-flow formulation
//!    it substitutes for);
//! 2. a deterministic repair phase re-places any macro still in violation at the
//!    nearest legal site found by an outward ring search, guaranteeing legality
//!    whenever space exists.
//!
//! The classical baseline [`MacroLegalizer`] simply calls the engine with zero extra
//! spacing; the quantum qubit legalizer in the `qgdp` crate calls it with the
//! one-standard-cell spacing and a greedy relaxation loop.

use crate::{LegalizeError, QubitLegalizer};
use qgdp_geometry::{Point, Rect};
use qgdp_netlist::{Placement, QuantumNetlist};

/// Maximum number of pairwise-separation sweeps before falling back to repair.
const MAX_SWEEPS: usize = 200;

/// Legalizes a set of macros with a minimum edge-to-edge `spacing`, minimising
/// displacement from the desired positions.
///
/// `desired` holds each macro's desired rectangle (global-placement centre and its
/// dimensions).  The returned vector holds the legalized centres in the same order.
///
/// # Errors
///
/// Returns [`LegalizeError::DieTooSmall`] when the macro area (with spacing) provably
/// exceeds the die, and [`LegalizeError::NoSpace`] when the repair search cannot find a
/// legal site for some macro.
pub fn legalize_macros(
    desired: &[Rect],
    die: &Rect,
    spacing: f64,
) -> Result<Vec<Point>, LegalizeError> {
    if desired.is_empty() {
        return Ok(Vec::new());
    }
    let required_area: f64 = desired
        .iter()
        .map(|r| (r.width() + spacing) * (r.height() + spacing))
        .sum();
    if required_area > die.area() * 1.000_001 {
        return Err(LegalizeError::DieTooSmall {
            required_area,
            die_area: die.area(),
        });
    }

    let mut centers: Vec<Point> = desired
        .iter()
        .map(|r| r.clamped_within(die).center())
        .collect();

    // Phase 1: pairwise separation sweeps.
    for _ in 0..MAX_SWEEPS {
        let mut any_violation = false;
        for i in 0..desired.len() {
            for j in (i + 1)..desired.len() {
                let sep_x = desired[i].min_separation_x(&desired[j]) + spacing;
                let sep_y = desired[i].min_separation_y(&desired[j]) + spacing;
                let dx = centers[j].x - centers[i].x;
                let dy = centers[j].y - centers[i].y;
                if dx.abs() >= sep_x - qgdp_geometry::EPS || dy.abs() >= sep_y - qgdp_geometry::EPS
                {
                    continue;
                }
                any_violation = true;
                let push_x = sep_x - dx.abs();
                let push_y = sep_y - dy.abs();
                if push_x <= push_y {
                    // Separate along x, preserving order (ties broken by index).
                    let dir = if dx > 0.0 || (dx == 0.0 && i < j) {
                        1.0
                    } else {
                        -1.0
                    };
                    centers[i].x -= dir * push_x * 0.5;
                    centers[j].x += dir * push_x * 0.5;
                } else {
                    let dir = if dy > 0.0 || (dy == 0.0 && i < j) {
                        1.0
                    } else {
                        -1.0
                    };
                    centers[i].y -= dir * push_y * 0.5;
                    centers[j].y += dir * push_y * 0.5;
                }
                centers[i] = desired[i]
                    .with_center(centers[i])
                    .clamped_within(die)
                    .center();
                centers[j] = desired[j]
                    .with_center(centers[j])
                    .clamped_within(die)
                    .center();
            }
        }
        if !any_violation {
            return Ok(centers);
        }
    }

    // Phase 2: deterministic repair of the remaining violators.
    repair_violations(desired, die, spacing, &mut centers)?;
    Ok(centers)
}

/// Returns the indices of macros that violate spacing against any other macro.
fn violating_indices(desired: &[Rect], centers: &[Point], spacing: f64) -> Vec<usize> {
    let mut bad = std::collections::BTreeSet::new();
    for i in 0..desired.len() {
        for j in (i + 1)..desired.len() {
            let sep_x = desired[i].min_separation_x(&desired[j]) + spacing;
            let sep_y = desired[i].min_separation_y(&desired[j]) + spacing;
            let dx = (centers[j].x - centers[i].x).abs();
            let dy = (centers[j].y - centers[i].y).abs();
            if dx < sep_x - qgdp_geometry::EPS && dy < sep_y - qgdp_geometry::EPS {
                bad.insert(i);
                bad.insert(j);
            }
        }
    }
    bad.into_iter().collect()
}

/// Re-places every violating macro at the nearest legal site (outward ring search).
fn repair_violations(
    desired: &[Rect],
    die: &Rect,
    spacing: f64,
    centers: &mut [Point],
) -> Result<(), LegalizeError> {
    let mut violators = violating_indices(desired, centers, spacing);
    // Larger macros first: they are hardest to fit.
    violators.sort_by(|&a, &b| {
        desired[b]
            .area()
            .total_cmp(&desired[a].area())
            .then(a.cmp(&b))
    });
    let violator_set: std::collections::BTreeSet<usize> = violators.iter().copied().collect();
    let mut placed: Vec<usize> = (0..desired.len())
        .filter(|i| !violator_set.contains(i))
        .collect();

    let min_side = desired
        .iter()
        .map(|r| r.width().min(r.height()))
        .fold(f64::INFINITY, f64::min);
    let step = (min_side * 0.5).max(die.width() / 512.0);

    for &v in &violators {
        let target = desired[v].center();
        let fits = |candidate: Point| -> bool {
            let rect = desired[v].with_center(candidate);
            if !die.contains_rect(&rect) {
                return false;
            }
            placed.iter().all(|&p| {
                let dx = (centers[p].x - candidate.x).abs();
                let dy = (centers[p].y - candidate.y).abs();
                dx >= desired[v].min_separation_x(&desired[p]) + spacing - qgdp_geometry::EPS
                    || dy >= desired[v].min_separation_y(&desired[p]) + spacing - qgdp_geometry::EPS
            })
        };
        let max_radius_steps = ((die.width().max(die.height()) / step).ceil() as i64 + 1).max(1);
        let mut found = None;
        'search: for ring in 0..=max_radius_steps {
            // Candidates on the square ring of radius `ring * step` around the target.
            let r = ring as f64 * step;
            let mut candidates = Vec::new();
            if ring == 0 {
                candidates.push(target);
            } else {
                let steps = 2 * ring;
                for k in 0..=steps {
                    let t = -r + k as f64 * step;
                    candidates.push(Point::new(target.x + t, target.y - r));
                    candidates.push(Point::new(target.x + t, target.y + r));
                    candidates.push(Point::new(target.x - r, target.y + t));
                    candidates.push(Point::new(target.x + r, target.y + t));
                }
            }
            // Deterministic preference: nearest to target first.
            candidates.sort_by(|a, b| {
                a.distance_squared(target)
                    .total_cmp(&b.distance_squared(target))
                    .then(a.x.total_cmp(&b.x))
                    .then(a.y.total_cmp(&b.y))
            });
            for c in candidates {
                let clamped = desired[v].with_center(c).clamped_within(die).center();
                if fits(clamped) {
                    found = Some(clamped);
                    break 'search;
                }
            }
        }
        match found {
            Some(p) => {
                centers[v] = p;
                placed.push(v);
            }
            None => {
                return Err(LegalizeError::NoSpace {
                    component: format!(
                        "macro #{v} ({:.0}x{:.0})",
                        desired[v].width(),
                        desired[v].height()
                    ),
                })
            }
        }
    }
    Ok(())
}

/// Returns `true` if the macro set satisfies pairwise spacing and the border constraint.
#[must_use]
pub fn macros_are_legal(desired: &[Rect], centers: &[Point], die: &Rect, spacing: f64) -> bool {
    centers
        .iter()
        .enumerate()
        .all(|(i, &c)| die.contains_rect(&desired[i].with_center(c)))
        && violating_indices(desired, centers, spacing).is_empty()
}

/// The classical macro legalizer baseline: displacement-minimising legalization of the
/// qubit macros with **no** quantum spacing term (the `Tetris`/`Abacus` baselines of
/// the paper use this for their qubit stage).
#[derive(Debug, Clone, Copy, Default)]
pub struct MacroLegalizer;

impl MacroLegalizer {
    /// Creates the baseline macro legalizer.
    #[must_use]
    pub fn new() -> Self {
        MacroLegalizer
    }
}

impl QubitLegalizer for MacroLegalizer {
    fn name(&self) -> &'static str {
        "macro-lg"
    }

    fn legalize_qubits(
        &self,
        netlist: &QuantumNetlist,
        die: &Rect,
        gp: &Placement,
    ) -> Result<Placement, LegalizeError> {
        let desired: Vec<Rect> = netlist
            .qubit_ids()
            .map(|q| netlist.qubit(q).rect_at(gp.qubit(q)))
            .collect();
        let centers = legalize_macros(&desired, die, 0.0)?;
        let mut out = gp.clone();
        for (q, c) in netlist.qubit_ids().zip(centers) {
            out.set_qubit(q, c);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn die(side: f64) -> Rect {
        Rect::from_lower_left(Point::ORIGIN, side, side)
    }

    fn squares(centers: &[(f64, f64)], size: f64) -> Vec<Rect> {
        centers
            .iter()
            .map(|&(x, y)| Rect::from_center(Point::new(x, y), size, size))
            .collect()
    }

    #[test]
    fn already_legal_input_is_untouched() {
        let desired = squares(&[(20.0, 20.0), (60.0, 20.0), (20.0, 60.0)], 20.0);
        let out = legalize_macros(&desired, &die(100.0), 0.0).unwrap();
        for (r, c) in desired.iter().zip(&out) {
            assert_eq!(r.center(), *c);
        }
    }

    #[test]
    fn overlapping_pair_gets_separated_minimally() {
        let desired = squares(&[(45.0, 50.0), (55.0, 50.0)], 20.0);
        let out = legalize_macros(&desired, &die(100.0), 0.0).unwrap();
        assert!(macros_are_legal(&desired, &out, &die(100.0), 0.0));
        // The pair separates along x (the smaller push) and stays near y = 50.
        assert!((out[0].y - 50.0).abs() < 1e-6);
        assert!((out[1].y - 50.0).abs() < 1e-6);
        assert!(out[1].x - out[0].x >= 20.0 - 1e-9);
    }

    #[test]
    fn spacing_is_enforced() {
        let desired = squares(&[(40.0, 50.0), (60.0, 50.0)], 20.0);
        let out = legalize_macros(&desired, &die(200.0), 10.0).unwrap();
        assert!(macros_are_legal(&desired, &out, &die(200.0), 10.0));
        assert!(
            (out[1].x - out[0].x).abs() >= 30.0 - 1e-9
                || (out[1].y - out[0].y).abs() >= 30.0 - 1e-9
        );
    }

    #[test]
    fn dense_cluster_is_repaired() {
        // Nine macros all dumped on the same spot in a die that can hold them.
        let desired = squares(&[(50.0, 50.0); 9], 20.0);
        let d = die(200.0);
        let out = legalize_macros(&desired, &d, 0.0).unwrap();
        assert!(macros_are_legal(&desired, &out, &d, 0.0));
    }

    #[test]
    fn die_too_small_is_reported() {
        let desired = squares(&[(10.0, 10.0), (20.0, 20.0)], 30.0);
        match legalize_macros(&desired, &die(40.0), 0.0) {
            Err(LegalizeError::DieTooSmall { .. }) => {}
            other => panic!("expected DieTooSmall, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_ok() {
        assert!(legalize_macros(&[], &die(10.0), 0.0).unwrap().is_empty());
    }

    #[test]
    fn macro_legalizer_trait_impl_fixes_qubits_only() {
        use qgdp_netlist::{ComponentGeometry, NetlistBuilder, QubitId, SegmentId};
        let netlist = NetlistBuilder::new(ComponentGeometry::default())
            .qubits(3)
            .couple(0, 1)
            .couple(1, 2)
            .build()
            .unwrap();
        let d = die(600.0);
        let mut gp = Placement::new(&netlist);
        gp.set_qubit(QubitId(0), Point::new(100.0, 100.0));
        gp.set_qubit(QubitId(1), Point::new(110.0, 100.0));
        gp.set_qubit(QubitId(2), Point::new(105.0, 110.0));
        gp.set_segment(SegmentId(0), Point::new(300.0, 300.0));
        let lg = MacroLegalizer::new();
        assert_eq!(lg.name(), "macro-lg");
        let out = lg.legalize_qubits(&netlist, &d, &gp).unwrap();
        // Qubits legal with zero spacing.
        let rects: Vec<Rect> = netlist
            .qubit_ids()
            .map(|q| netlist.qubit(q).rect_at(out.qubit(q)))
            .collect();
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                assert!(!rects[i].overlaps(&rects[j]));
            }
        }
        // Segments untouched.
        assert_eq!(out.segment(SegmentId(0)), Point::new(300.0, 300.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_output_is_always_legal(
            centers in proptest::collection::vec((30.0..370.0f64, 30.0..370.0f64), 1..12),
            spacing in 0.0..10.0f64,
        ) {
            let desired = squares(&centers, 40.0);
            let d = die(400.0);
            match legalize_macros(&desired, &d, spacing) {
                Ok(out) => prop_assert!(macros_are_legal(&desired, &out, &d, spacing)),
                Err(LegalizeError::DieTooSmall { .. }) | Err(LegalizeError::NoSpace { .. }) => {}
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            }
        }

        #[test]
        fn prop_legal_inputs_are_fixed_points(
            xs in proptest::collection::vec(0usize..5, 1..5),
        ) {
            // Place macros on a coarse lattice: guaranteed legal input.
            let mut seen = std::collections::BTreeSet::new();
            let centers: Vec<(f64, f64)> = xs
                .iter()
                .enumerate()
                .map(|(i, &c)| ((c * 80 + 40) as f64, ((i % 5) * 80 + 40) as f64))
                .filter(|&(x, y)| seen.insert((x as i64, y as i64)))
                .collect();
            let desired = squares(&centers, 40.0);
            let d = die(400.0);
            let out = legalize_macros(&desired, &d, 0.0).unwrap();
            for (r, c) in desired.iter().zip(&out) {
                prop_assert!(r.center().distance(*c) < 1e-9);
            }
        }
    }
}
