//! Traits implemented by qubit and wire-block legalization engines.

use crate::LegalizeError;
use qgdp_geometry::Rect;
use qgdp_netlist::{Placement, QuantumNetlist};

/// A legalizer for the qubit macros.
///
/// Implementations take the global-placement positions and return a placement in which
/// the qubits are overlap-free and inside the die; wire-block positions are copied
/// through unchanged (they are legalized afterwards by a [`CellLegalizer`]).
pub trait QubitLegalizer {
    /// Short name used in reports and benchmark tables.
    fn name(&self) -> &'static str;

    /// Legalizes the qubit positions of `gp`.
    ///
    /// # Errors
    ///
    /// Returns a [`LegalizeError`] when no legal arrangement can be found inside `die`.
    fn legalize_qubits(
        &self,
        netlist: &QuantumNetlist,
        die: &Rect,
        gp: &Placement,
    ) -> Result<Placement, LegalizeError>;
}

/// A legalizer for the resonator wire blocks (standard cells).
///
/// Implementations receive a placement whose qubits are already legal and fixed, and
/// return a placement in which the wire blocks are additionally overlap-free, inside
/// the die, and clear of the qubit macros.  Qubit positions must not be modified.
pub trait CellLegalizer {
    /// Short name used in reports and benchmark tables.
    fn name(&self) -> &'static str;

    /// Legalizes the wire-block positions of `placement`.
    ///
    /// # Errors
    ///
    /// Returns a [`LegalizeError`] when a block cannot be placed inside `die`.
    fn legalize_cells(
        &self,
        netlist: &QuantumNetlist,
        die: &Rect,
        placement: &Placement,
    ) -> Result<Placement, LegalizeError>;
}

/// Verifies that `placement` is fully legal: every component inside the die and no two
/// component rectangles overlapping.  Intended for tests and debug assertions (O(n²)).
#[must_use]
pub fn is_legal(netlist: &QuantumNetlist, die: &Rect, placement: &Placement) -> bool {
    placement.is_within(netlist, die) && placement.count_overlaps(netlist) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp_geometry::Point;
    use qgdp_netlist::{ComponentGeometry, NetlistBuilder};

    #[test]
    fn is_legal_detects_overlap_and_out_of_die() {
        let netlist = NetlistBuilder::new(ComponentGeometry::default())
            .qubits(2)
            .couple(0, 1)
            .build()
            .unwrap();
        let die = Rect::from_lower_left(Point::ORIGIN, 1000.0, 1000.0);
        let mut p = Placement::new(&netlist);
        // Everything at origin: overlapping and partially outside.
        assert!(!is_legal(&netlist, &die, &p));
        // Spread far apart inside the die.
        for (i, id) in netlist.component_ids().enumerate() {
            p.set_component(
                id,
                Point::new(60.0 + 45.0 * (i % 20) as f64, 60.0 + 45.0 * (i / 20) as f64),
            );
        }
        assert!(is_legal(&netlist, &die, &p));
    }
}
