//! Criterion benches for the detailed-placement stage (Table III companion) and for
//! the end-to-end flow, plus an ablation of the resonator legalizer's frequency
//! awareness (a design choice called out in DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qgdp::prelude::*;
use qgdp::{DetailedPlacer, ResonatorLegalizer};
use qgdp_bench::EXPERIMENT_SEED;
use qgdp_legalize::{CellLegalizer, QubitLegalizer};

fn legalized(topology: StandardTopology) -> (QuantumNetlist, Rect, Placement) {
    let topo = topology.build();
    let netlist = topo
        .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
        .expect("netlist builds");
    let gp = GlobalPlacer::new(GlobalPlacerConfig::default().with_seed(EXPERIMENT_SEED))
        .place(&netlist, &topo);
    let qubits = qgdp::QuantumQubitLegalizer::new()
        .legalize_qubits(&netlist, &gp.die, &gp.placement)
        .expect("qubit legalization succeeds");
    let legal = ResonatorLegalizer::new()
        .legalize_cells(&netlist, &gp.die, &qubits)
        .expect("resonator legalization succeeds");
    (netlist, gp.die, legal)
}

fn bench_detailed_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("detailed_placement");
    group.sample_size(10);
    for topology in [
        StandardTopology::Grid,
        StandardTopology::Falcon,
        StandardTopology::Aspen11,
        StandardTopology::AspenM,
    ] {
        let (netlist, die, legal) = legalized(topology);
        group.bench_with_input(
            BenchmarkId::from_parameter(topology.name()),
            &(netlist, die, legal),
            |b, (netlist, die, legal)| {
                b.iter(|| DetailedPlacer::new().place(netlist, die, legal));
            },
        );
    }
    group.finish();
}

fn bench_full_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_flow_qgdp");
    group.sample_size(10);
    for topology in [StandardTopology::Grid, StandardTopology::Falcon] {
        let topo = topology.build();
        group.bench_with_input(
            BenchmarkId::from_parameter(topology.name()),
            &topo,
            |b, topo| {
                b.iter(|| {
                    run_flow(
                        topo,
                        LegalizationStrategy::Qgdp,
                        &FlowConfig::default()
                            .with_seed(EXPERIMENT_SEED)
                            .with_detailed_placement(true),
                    )
                    .expect("flow succeeds")
                });
            },
        );
    }
    group.finish();
}

/// Ablation: integration-aware legalization with and without the frequency-adjacency
/// penalty.  The runtime cost of frequency awareness is what this bench quantifies;
/// its quality benefit is reported by the `fig9` binary.
fn bench_frequency_awareness_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("resonator_lg_frequency_ablation");
    group.sample_size(10);
    let topo = StandardTopology::Aspen11.build();
    let netlist = topo
        .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
        .expect("netlist builds");
    let gp = GlobalPlacer::new(GlobalPlacerConfig::default().with_seed(EXPERIMENT_SEED))
        .place(&netlist, &topo);
    let qubits = qgdp::QuantumQubitLegalizer::new()
        .legalize_qubits(&netlist, &gp.die, &gp.placement)
        .expect("qubit legalization succeeds");
    for (name, penalty) in [("frequency_aware", 3.0), ("frequency_blind", 0.0)] {
        group.bench_function(name, |b| {
            let legalizer = ResonatorLegalizer::new().with_frequency_penalty(penalty);
            b.iter(|| {
                legalizer
                    .legalize_cells(&netlist, &gp.die, &qubits)
                    .expect("legal")
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_detailed_placement,
    bench_full_flow,
    bench_frequency_awareness_ablation
);
criterion_main!(benches);
