//! Criterion benches for the detailed-placement stage (Table III companion) and for
//! the end-to-end flow, plus an ablation of the resonator legalizer's frequency
//! awareness (a design choice called out in DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qgdp::prelude::*;
use qgdp::{DetailedPlacer, ResonatorLegalizer};
use qgdp_bench::EXPERIMENT_SEED;
use qgdp_legalize::CellLegalizer;

/// The qGDP-legalized artifact of one topology, staged through a [`Session`].
fn legalized(topology: StandardTopology) -> CellLegalized {
    Session::new(
        &topology.build(),
        FlowConfig::default().with_seed(EXPERIMENT_SEED),
    )
    .expect("session builds")
    .global_place()
    .legalize(LegalizationStrategy::Qgdp)
    .expect("legalization succeeds")
}

fn bench_detailed_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("detailed_placement");
    group.sample_size(10);
    for topology in [
        StandardTopology::Grid,
        StandardTopology::Falcon,
        StandardTopology::Aspen11,
        StandardTopology::AspenM,
    ] {
        let legal = legalized(topology);
        group.bench_with_input(
            BenchmarkId::from_parameter(topology.name()),
            &legal,
            |b, legal| {
                let die = legal.die();
                b.iter(|| DetailedPlacer::new().place(legal.netlist(), &die, legal.placement()));
            },
        );
    }
    group.finish();
}

fn bench_full_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_flow_qgdp");
    group.sample_size(10);
    for topology in [StandardTopology::Grid, StandardTopology::Falcon] {
        let topo = topology.build();
        group.bench_with_input(
            BenchmarkId::from_parameter(topology.name()),
            &topo,
            |b, topo| {
                b.iter(|| {
                    run_flow(
                        topo,
                        LegalizationStrategy::Qgdp,
                        &FlowConfig::default()
                            .with_seed(EXPERIMENT_SEED)
                            .with_detailed_placement(true),
                    )
                    .expect("flow succeeds")
                });
            },
        );
    }
    group.finish();
}

/// Ablation: integration-aware legalization with and without the frequency-adjacency
/// penalty.  The runtime cost of frequency awareness is what this bench quantifies;
/// its quality benefit is reported by the `fig9` binary.
fn bench_frequency_awareness_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("resonator_lg_frequency_ablation");
    group.sample_size(10);
    let qubits = Session::new(
        &StandardTopology::Aspen11.build(),
        FlowConfig::default().with_seed(EXPERIMENT_SEED),
    )
    .expect("session builds")
    .global_place()
    .legalize_qubits(LegalizationStrategy::Qgdp)
    .expect("qubit legalization succeeds");
    let die = qubits.die();
    for (name, penalty) in [("frequency_aware", 3.0), ("frequency_blind", 0.0)] {
        group.bench_function(name, |b| {
            let legalizer = ResonatorLegalizer::new().with_frequency_penalty(penalty);
            b.iter(|| {
                legalizer
                    .legalize_cells(qubits.netlist(), &die, qubits.placement())
                    .expect("legal")
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_detailed_placement,
    bench_full_flow,
    bench_frequency_awareness_ablation
);
criterion_main!(benches);
