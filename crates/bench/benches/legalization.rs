//! Criterion benches for the legalization stages (the Table II companion).
//!
//! For every standard topology the global placement is computed once; the bench then
//! measures the qubit-legalization and resonator-legalization stages of each strategy
//! on that fixed input, which is exactly what Table II's `t_q` / `t_e` columns report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qgdp::prelude::*;
use qgdp_bench::EXPERIMENT_SEED;
use qgdp_legalize::{CellLegalizer, QubitLegalizer};

struct Prepared {
    netlist: QuantumNetlist,
    die: Rect,
    gp: Placement,
    qubits_legal: Placement,
}

fn prepare(topology: StandardTopology) -> Prepared {
    let topo = topology.build();
    let netlist = topo
        .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
        .expect("netlist builds");
    let gp = GlobalPlacer::new(GlobalPlacerConfig::default().with_seed(EXPERIMENT_SEED))
        .place(&netlist, &topo);
    let qubits_legal = qgdp::QuantumQubitLegalizer::new()
        .legalize_qubits(&netlist, &gp.die, &gp.placement)
        .expect("qubit legalization succeeds");
    Prepared {
        netlist,
        die: gp.die,
        gp: gp.placement,
        qubits_legal,
    }
}

fn bench_qubit_legalization(c: &mut Criterion) {
    let mut group = c.benchmark_group("qubit_legalization");
    group.sample_size(10);
    for topology in StandardTopology::all() {
        let prepared = prepare(topology);
        for (name, legalizer) in [
            (
                "quantum",
                Box::new(qgdp::QuantumQubitLegalizer::new()) as Box<dyn QubitLegalizer>,
            ),
            (
                "macro",
                Box::new(MacroLegalizer::new()) as Box<dyn QubitLegalizer>,
            ),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, topology.name()),
                &prepared,
                |b, p| {
                    b.iter(|| {
                        legalizer
                            .legalize_qubits(&p.netlist, &p.die, &p.gp)
                            .expect("legal")
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_resonator_legalization(c: &mut Criterion) {
    let mut group = c.benchmark_group("resonator_legalization");
    group.sample_size(10);
    for topology in StandardTopology::all() {
        let prepared = prepare(topology);
        for (name, legalizer) in [
            (
                "qgdp",
                Box::new(qgdp::ResonatorLegalizer::new()) as Box<dyn CellLegalizer>,
            ),
            (
                "tetris",
                Box::new(TetrisLegalizer::new()) as Box<dyn CellLegalizer>,
            ),
            (
                "abacus",
                Box::new(AbacusLegalizer::new()) as Box<dyn CellLegalizer>,
            ),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, topology.name()),
                &prepared,
                |b, p| {
                    b.iter(|| {
                        legalizer
                            .legalize_cells(&p.netlist, &p.die, &p.qubits_legal)
                            .expect("legal")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_qubit_legalization,
    bench_resonator_legalization
);
criterion_main!(benches);
