//! Shared series computation behind the `fig8` and `fig9` binaries.
//!
//! The figure binaries only format and print; the actual sweeps live here so that
//! `cargo test -p qgdp-bench` covers them (with a small topology subset and mapping
//! count) and the generators cannot silently bit-rot between releases.
//!
//! # Parallelism
//!
//! Each topology's sweep forks one shared [`GlobalPlacement`] artifact (built once
//! per [`Session`] — the paper's "all comparisons are based on the same GP
//! positions", now structural rather than re-derived per strategy) and fans out
//! twice, splitting one `QGDP_THREADS` worker budget
//! ([`qgdp::metrics::worker_threads`]) between the levels rather than multiplying it:
//!
//! 1. the five legalization strategies run on concurrent workers (each legalization
//!    is an independent, deterministic function of the shared GP artifact),
//!    collected into [`LegalizationStrategy::all`] order regardless of completion
//!    order;
//! 2. inside each strategy worker, the mapping-set evaluation gets the budget left
//!    over after the strategy fan-out (`budget / strategy workers`, at least 1), so
//!    at most ~`QGDP_THREADS` evaluation threads ever run at once.
//!
//! Every number is computed by a deterministic function of (topology, strategy,
//! seed), and all collection points are index-ordered, so the emitted series are
//! byte-identical for every `QGDP_THREADS` value — CI diffs a `QGDP_THREADS=1`
//! against a `QGDP_THREADS=4` run to keep it that way.

use crate::{experiment_session, EXPERIMENT_SEED};
use qgdp::metrics::{parallel_map, worker_threads, FidelityEvaluator};
use qgdp::prelude::*;

/// One Fig. 8 series: the mean worst-case fidelity of every benchmark for a
/// (topology, strategy) combination.
#[derive(Debug, Clone)]
pub struct Fig8Series {
    /// The device topology of this panel.
    pub topology: StandardTopology,
    /// The legalization strategy of this series.
    pub strategy: LegalizationStrategy,
    /// Mean fidelity per benchmark, in [`Benchmark::all`] order.
    pub per_benchmark: Vec<(Benchmark, f64)>,
}

impl Fig8Series {
    /// The mean fidelity across the benchmark suite (the figure's `Mean` column).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.per_benchmark.is_empty() {
            return 0.0;
        }
        self.per_benchmark.iter().map(|&(_, f)| f).sum::<f64>() / self.per_benchmark.len() as f64
    }
}

/// One Fig. 9 data point: suite-averaged fidelity, hotspot proportion and crossings
/// for a (topology, strategy) combination.
#[derive(Debug, Clone)]
pub struct Fig9Point {
    /// The device topology.
    pub topology: StandardTopology,
    /// The legalization strategy.
    pub strategy: LegalizationStrategy,
    /// Mean program fidelity over the whole benchmark suite (panel a).
    pub fidelity: f64,
    /// Frequency-hotspot proportion `P_h` of the final layout, in percent (panel b).
    pub hotspot_percent: f64,
    /// Resonator coupler crossings `X` of the final layout (panel c).
    pub crossings: usize,
}

/// The per-benchmark mapping sets of one topology, shared across strategies so the
/// comparison isolates the legalizer (the paper's protocol).
fn mapping_sets(topo: &Topology, mappings: usize) -> Vec<(Benchmark, Vec<MappedCircuit>)> {
    Benchmark::all()
        .iter()
        .map(|b| {
            (
                *b,
                random_mappings(
                    &b.circuit(),
                    topo,
                    mappings,
                    EXPERIMENT_SEED ^ b.num_qubits() as u64,
                ),
            )
        })
        .collect()
}

/// One strategy's evaluation on a topology: the per-benchmark mean fidelities (in
/// [`Benchmark::all`] order) and the legalized artifact they were computed on.
struct StrategyEvaluation {
    strategy: LegalizationStrategy,
    per_benchmark: Vec<(Benchmark, f64)>,
    artifact: CellLegalized,
}

/// Evaluates every strategy on one topology.  Both figure series are thin
/// projections of this shared core, so they can never diverge on protocol details
/// (mapping seeds, flow configuration, evaluation order).
///
/// The global placement runs **once** per topology and its artifact is forked into
/// the five strategies, which are spread over [`worker_threads`] scoped workers
/// (each legalization is an independent deterministic computation) and collected
/// back into [`LegalizationStrategy::all`] order, so the output does not depend on
/// the worker count — see the [module-level notes](self#parallelism).
fn evaluate_strategies(topology: StandardTopology, mappings: usize) -> Vec<StrategyEvaluation> {
    let session = experiment_session(topology);
    let sets = mapping_sets(session.topology(), mappings);
    let gp = session.global_place();
    let strategies = LegalizationStrategy::all();
    // Split the worker budget between the strategy fan-out and the per-strategy
    // mapping-set evaluation instead of multiplying the two levels.
    let budget = worker_threads();
    let outer = budget.min(strategies.len());
    let inner = (budget / outer).max(1);
    parallel_map(&strategies, outer, |&strategy| {
        let artifact = gp
            .legalize(strategy)
            .unwrap_or_else(|e| panic!("{strategy} failed on {topology}: {e}"));
        let evaluator = FidelityEvaluator::new(
            session.netlist(),
            artifact.placement(),
            NoiseModel::default(),
            &session.config().crosstalk,
        );
        let per_benchmark = sets
            .iter()
            .map(|(b, maps)| (*b, evaluator.mean_with_threads(maps, inner)))
            .collect();
        StrategyEvaluation {
            strategy,
            per_benchmark,
            artifact,
        }
    })
}

/// Computes the Fig. 8 series for `topologies`, with `mappings` random qubit mappings
/// per benchmark.
///
/// Series are returned grouped by topology (in input order), then by strategy (in
/// [`LegalizationStrategy::all`] order).  The work is proportional to the topology
/// count, so callers that want incremental output (like the `fig8` binary) should
/// call this once per topology.
///
/// # Panics
///
/// Panics if a flow fails (it never should for the standard topologies).
#[must_use]
pub fn fig8_series(topologies: &[StandardTopology], mappings: usize) -> Vec<Fig8Series> {
    topologies
        .iter()
        .flat_map(|&topology| {
            evaluate_strategies(topology, mappings)
                .into_iter()
                .map(move |eval| Fig8Series {
                    topology,
                    strategy: eval.strategy,
                    per_benchmark: eval.per_benchmark,
                })
        })
        .collect()
}

/// Computes the Fig. 9 data points for `topologies`, with `mappings` random qubit
/// mappings per benchmark.
///
/// Points are returned grouped by topology (in input order), then by strategy (in
/// [`LegalizationStrategy::all`] order).
///
/// # Panics
///
/// Panics if a flow fails (it never should for the standard topologies).
#[must_use]
pub fn fig9_series(topologies: &[StandardTopology], mappings: usize) -> Vec<Fig9Point> {
    topologies
        .iter()
        .flat_map(|&topology| {
            evaluate_strategies(topology, mappings)
                .into_iter()
                .map(move |eval| {
                    let report = eval.artifact.report();
                    let series = Fig8Series {
                        topology,
                        strategy: eval.strategy,
                        per_benchmark: eval.per_benchmark,
                    };
                    Fig9Point {
                        topology,
                        strategy: series.strategy,
                        fidelity: series.mean(),
                        hotspot_percent: report.hotspot_proportion_percent,
                        crossings: report.crossings,
                    }
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke coverage for the Fig. 8 generator: every (strategy, benchmark) cell must
    /// exist and hold a finite probability, so `cargo test` catches a broken sweep
    /// without running the full 6-topology × 50-mapping binary.
    #[test]
    fn fig8_series_are_nonempty_and_finite() {
        let series = fig8_series(&[StandardTopology::Grid], 2);
        assert_eq!(series.len(), LegalizationStrategy::all().len());
        for s in &series {
            assert_eq!(s.per_benchmark.len(), Benchmark::all().len());
            for &(b, f) in &s.per_benchmark {
                assert!(
                    f.is_finite() && (0.0..=1.0).contains(&f),
                    "{} / {} / {}: fidelity {f} is not a finite probability",
                    s.topology.name(),
                    s.strategy.name(),
                    b.name()
                );
            }
            assert!(s.mean().is_finite());
        }
    }

    /// Smoke coverage for the Fig. 9 generator: one point per strategy with finite
    /// fidelity and hotspot metrics.
    #[test]
    fn fig9_series_are_nonempty_and_finite() {
        let points = fig9_series(&[StandardTopology::Grid], 2);
        assert_eq!(points.len(), LegalizationStrategy::all().len());
        for p in &points {
            assert!(
                p.fidelity.is_finite() && (0.0..=1.0).contains(&p.fidelity),
                "{} / {}: fidelity {} is not a finite probability",
                p.topology.name(),
                p.strategy.name(),
                p.fidelity
            );
            assert!(p.hotspot_percent.is_finite() && p.hotspot_percent >= 0.0);
        }
    }
}
