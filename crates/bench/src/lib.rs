//! # qgdp-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's evaluation.
//!
//! Each artifact has a dedicated binary (run with `--release`; all of them print the
//! same rows/series the paper reports):
//!
//! | paper artifact | binary | contents |
//! |----------------|--------|----------|
//! | Fig. 1 (concept) | `fig1` | layout quality after GP / classic LG / quantum LG / DP |
//! | Fig. 8 | `fig8` | mean worst-case fidelity per topology × benchmark × strategy |
//! | Fig. 9 | `fig9` | mean fidelity, hotspot proportion `P_h`, crossings `X̄` per topology × strategy |
//! | Table I | `table1` | topology and benchmark inventory |
//! | Table II | `table2` | qubit / resonator legalization runtimes (ms) |
//! | Table III | `table3` | qGDP-LG vs qGDP-DP: `I_edge`, `X`, `P_h`, `H_Q` |
//!
//! Criterion benches (`cargo bench -p qgdp-bench`) measure the legalization and
//! detailed-placement runtimes with statistical rigour (the Table II companion).
//!
//! The number of random mappings per benchmark defaults to the paper's 50 and can be
//! overridden with the `QGDP_MAPPINGS` environment variable (useful for quick runs).
//!
//! Additional binaries track this repository's own hot paths rather than a paper
//! artifact: `bench_fidelity` (serial vs parallel fidelity sweep →
//! `BENCH_fidelity.json`), `bench_placer` (optimized vs reference global placer →
//! `BENCH_placer.json`), `bench_legalize` (spatial-index legalization vs O(n²)
//! references → `BENCH_legalize.json`) and `bench_flow` (shared-GP
//! [`qgdp::Session`] batch vs independent `run_flow` calls → `BENCH_flow.json`).
//!
//! # Paper map
//!
//! Tables I–III and Figs. 8–9: the evaluation protocol itself.  Every run drives
//! the staged flow through [`qgdp::Session`] (§III-C/D/E via the `qgdp` core
//! crate): one session per topology, one shared [`qgdp::GlobalPlacement`] artifact
//! per sweep (seeded with [`EXPERIMENT_SEED`], so all strategies score the *same*
//! global placement — the paper's protocol — without recomputing it), and layouts
//! scored with `qgdp-metrics` (Eq. 4/7).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use qgdp::prelude::*;

pub mod figures;

pub use figures::{fig8_series, fig9_series, Fig8Series, Fig9Point};

/// The GP seed shared by every experiment, so all strategies and artifacts see the
/// same global placements (the paper's "all comparisons are based on the same GP
/// positions").
pub const EXPERIMENT_SEED: u64 = 20_250_331;

/// Number of random qubit mappings per benchmark (the paper uses 50).
///
/// Override with the `QGDP_MAPPINGS` environment variable.
#[must_use]
pub fn mappings_per_benchmark() -> usize {
    std::env::var("QGDP_MAPPINGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50)
}

/// The flow configuration used by every experiment.
#[must_use]
pub fn experiment_config() -> FlowConfig {
    FlowConfig::default().with_seed(EXPERIMENT_SEED)
}

/// Builds the staged [`Session`] every experiment drives: the topology's netlist is
/// constructed once and shared by every artifact forked from the session.
///
/// # Panics
///
/// Panics if the netlist cannot be built (it never can fail for the standard
/// topologies).
#[must_use]
pub fn experiment_session(topology: StandardTopology) -> Session {
    Session::new(&topology.build(), experiment_config())
        .unwrap_or_else(|e| panic!("session for {topology}: {e}"))
}

/// Runs one topology under one strategy with the shared experiment configuration,
/// returning the terminal staged artifact.
///
/// # Panics
///
/// Panics if the flow fails (it never should for the standard topologies).
#[must_use]
pub fn run_strategy(
    topology: StandardTopology,
    strategy: LegalizationStrategy,
    detailed_placement: bool,
) -> FlowArtifact {
    let session = Session::new(
        &topology.build(),
        experiment_config().with_detailed_placement(detailed_placement),
    )
    .unwrap_or_else(|e| panic!("session for {topology}: {e}"));
    session
        .run(strategy)
        .unwrap_or_else(|e| panic!("{strategy} failed on {topology}: {e}"))
}

/// Formats a fidelity value the way the paper's Fig. 8 prints it: values below `1e-4`
/// are reported as `<1e-4`.
#[must_use]
pub fn format_fidelity(f: f64) -> String {
    if f < 1e-4 {
        "<1e-4".to_string()
    } else {
        format!("{f:.4}")
    }
}

/// Mean worst-case fidelity of `benchmark` on the final layout of `artifact`,
/// averaged over `mappings` random mappings generated with the shared experiment
/// seed.
#[must_use]
pub fn benchmark_fidelity(artifact: &FlowArtifact, benchmark: Benchmark, mappings: usize) -> f64 {
    artifact.mean_benchmark_fidelity(
        benchmark,
        mappings,
        &NoiseModel::default(),
        EXPERIMENT_SEED ^ benchmark.num_qubits() as u64,
    )
}

/// Pretty-prints a Markdown-style table row.
#[must_use]
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join(" | ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_matches_paper_convention() {
        assert_eq!(format_fidelity(0.5063), "0.5063");
        assert_eq!(format_fidelity(5e-5), "<1e-4");
        assert_eq!(format_fidelity(0.0), "<1e-4");
    }

    #[test]
    fn mapping_count_defaults_to_fifty() {
        // The env var is not set in the test environment.
        if std::env::var("QGDP_MAPPINGS").is_err() {
            assert_eq!(mappings_per_benchmark(), 50);
        }
    }

    #[test]
    fn run_strategy_produces_legal_layouts() {
        let result = run_strategy(StandardTopology::Grid, LegalizationStrategy::Qgdp, false);
        assert!(result.is_legal());
        let f = benchmark_fidelity(&result, Benchmark::Bv4, 3);
        assert!(f > 0.0 && f <= 1.0);
    }

    #[test]
    fn row_formatting_pads_columns() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a |   bb");
    }
}
