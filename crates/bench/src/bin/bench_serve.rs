//! Measures the serving layer's warm-cache latency against the cold compute path
//! and records the result in `BENCH_serve.json`.
//!
//! ```bash
//! cargo run --release -p qgdp-bench --bin bench_serve
//! ```
//!
//! One record per benched topology.  The request mix is all five legalization
//! strategies, each at both stop-after-legalization and detailed-placement depth
//! (ten requests per topology).  Before any timing, every served artifact is
//! asserted **bit-identical** to a direct [`Session`] run of the same request
//! (placement fingerprint and full [`LayoutReport`]) — the serving layer must be
//! invisible in the outputs, warm or cold.
//!
//! Timing is serial per-request latency through [`ServeEngine::execute`]:
//!
//! * **cold** — a fresh engine per repetition; each request pays its own stage
//!   compute (the first also pays the shared global placement);
//! * **warm** — the same engine again; every request is an `Arc`-shared cache
//!   hit.
//!
//! Latencies are pooled across repetitions into p50/p99 summaries.  The record's
//! `reference_ms` is the cold p50, `optimized_ms` the warm p50, and the binary
//! itself asserts warm p50 < cold p50 — the cache must actually pay for itself,
//! not just exist (`scripts/bench_gate` re-checks the committed records).
//!
//! Override the output path with `QGDP_BENCH_OUT`, the topology panel with
//! `QGDP_BENCH_TOPOLOGIES` (comma-separated names) and repetitions with
//! `QGDP_BENCH_REPS`.
//!
//! [`LayoutReport`]: qgdp::metrics::LayoutReport
//! [`ServeEngine::execute`]: qgdp_serve::ServeEngine::execute

use qgdp::prelude::*;
use qgdp::{placement_fingerprint, DetailedPlacerConfig};
use qgdp_bench::experiment_config;
use qgdp_serve::engine::{JobRequest, ServeEngine, DEFAULT_QUEUE_DEPTH};
use qgdp_serve::store::StoreConfig;
use std::sync::Arc;
use std::time::Instant;

/// One measured warm-vs-cold serving record.
struct Record {
    topology: String,
    requests: usize,
    cold_p50_ms: f64,
    cold_p99_ms: f64,
    warm_p50_ms: f64,
    warm_p99_ms: f64,
}

impl Record {
    fn speedup(&self) -> f64 {
        self.cold_p50_ms / self.warm_p50_ms
    }
}

/// A deliberately small detail config so the ten-request mix stays fast while
/// still exercising the detailed-placement cache stage.
fn small_detail() -> DetailedPlacerConfig {
    DetailedPlacerConfig {
        max_windows: 6,
        passes: 1,
        ..DetailedPlacerConfig::new()
    }
}

/// The request mix for one topology: every strategy at both flow depths.
fn request_mix(topology: &Arc<Topology>) -> Vec<JobRequest> {
    let mut requests = Vec::new();
    for strategy in LegalizationStrategy::all() {
        for detail in [None, Some(small_detail())] {
            requests.push(JobRequest {
                topology: Arc::clone(topology),
                config: experiment_config(),
                strategy,
                detail,
            });
        }
    }
    requests
}

/// Asserts the served artifact of every request is bit-identical to a direct
/// staged-session run of the same inputs, cold and warm alike.
fn verify_bit_identity(topology: StandardTopology, requests: &[JobRequest]) {
    let session = Session::new(&topology.build(), experiment_config())
        .unwrap_or_else(|e| panic!("{topology}: session builds: {e}"));
    let engine = ServeEngine::new(StoreConfig::default(), DEFAULT_QUEUE_DEPTH);
    for pass in ["cold", "warm"] {
        for request in requests {
            let served = engine
                .execute(request)
                .unwrap_or_else(|e| panic!("{topology}: served request failed: {e}"));
            let cell = session
                .global_place()
                .legalize(request.strategy)
                .unwrap_or_else(|e| panic!("{topology}: direct legalization failed: {e}"));
            let (direct_fp, direct_report) = match &request.detail {
                None => (
                    placement_fingerprint(cell.placement()),
                    cell.report().clone(),
                ),
                Some(cfg) => {
                    let dp = cell.detail_with(*cfg);
                    (placement_fingerprint(dp.placement()), dp.report().clone())
                }
            };
            assert_eq!(
                placement_fingerprint(served.final_placement()),
                direct_fp,
                "{topology}/{}/{pass}: served placement must be bit-identical to direct",
                request.strategy.name(),
            );
            assert_eq!(
                *served.report(),
                direct_report,
                "{topology}/{}/{pass}: served report must match direct",
                request.strategy.name(),
            );
        }
    }
}

/// Nearest-rank percentile over an unsorted latency pool.
fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "empty latency pool");
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank]
}

fn bench_topology(topology: StandardTopology, reps: usize) -> Record {
    let topo = Arc::new(topology.build());
    let requests = request_mix(&topo);
    verify_bit_identity(topology, &requests);

    let mut cold = Vec::with_capacity(reps * requests.len());
    let mut warm = Vec::with_capacity(reps * requests.len());
    for _ in 0..reps.max(1) {
        // A fresh engine per rep so every cold request pays its own compute.
        let engine = ServeEngine::new(StoreConfig::default(), DEFAULT_QUEUE_DEPTH);
        for (pool, pass) in [(&mut cold, "cold"), (&mut warm, "warm")] {
            for request in &requests {
                let start = Instant::now();
                let served = engine.execute(request);
                let elapsed = start.elapsed().as_secs_f64() * 1e3;
                std::hint::black_box(
                    served.unwrap_or_else(|e| panic!("{topology}/{pass}: request failed: {e}")),
                );
                pool.push(elapsed);
            }
        }
    }

    let record = Record {
        topology: topology.name().to_string(),
        requests: requests.len(),
        cold_p50_ms: percentile(&cold, 0.50),
        cold_p99_ms: percentile(&cold, 0.99),
        warm_p50_ms: percentile(&warm, 0.50),
        warm_p99_ms: percentile(&warm, 0.99),
    };
    assert!(
        record.warm_p50_ms < record.cold_p50_ms,
        "{topology}: warm p50 ({:.4} ms) must beat cold p50 ({:.4} ms)",
        record.warm_p50_ms,
        record.cold_p50_ms,
    );
    record
}

fn main() {
    let reps = std::env::var("QGDP_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let default_panel = [
        StandardTopology::Grid,
        StandardTopology::Falcon,
        StandardTopology::Eagle,
    ];
    let all = StandardTopology::all();
    let topologies: Vec<StandardTopology> = match std::env::var("QGDP_BENCH_TOPOLOGIES") {
        Ok(names) => names
            .split(',')
            .map(|name| {
                *all.iter()
                    .find(|t| t.name().eq_ignore_ascii_case(name.trim()))
                    .unwrap_or_else(|| panic!("unknown topology {name:?}"))
            })
            .collect(),
        Err(_) => default_panel.to_vec(),
    };

    let records: Vec<Record> = topologies
        .iter()
        .map(|&t| bench_topology(t, reps))
        .collect();

    let mut rows = String::new();
    for r in &records {
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"kind\": \"serve-warm-vs-cold\", \"topology\": \"{}\", \
             \"requests\": {}, \"cold_p50_ms\": {:.4}, \"cold_p99_ms\": {:.4}, \
             \"warm_p50_ms\": {:.4}, \"warm_p99_ms\": {:.4}, \
             \"optimized_ms\": {:.4}, \"reference_ms\": {:.4}, \
             \"speedup\": {:.2}, \"bit_identical\": true }}",
            r.topology,
            r.requests,
            r.cold_p50_ms,
            r.cold_p99_ms,
            r.warm_p50_ms,
            r.warm_p99_ms,
            r.warm_p50_ms,
            r.cold_p50_ms,
            r.speedup(),
        ));
    }
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"benchmark\": \"serving layer: content-addressed artifact cache (warm \
         Arc-shared hits) vs the cold staged compute path, per-request latency\",\n  \
         \"reps\": {reps},\n  \"host_cpus\": {host_cpus},\n  \"records\": [\n{rows}\n  ]\n}}\n"
    );
    let out_path =
        std::env::var("QGDP_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{json}");
    for r in &records {
        println!(
            "{:>8} cold p50 {:>9.4}ms p99 {:>9.4}ms | warm p50 {:>8.4}ms p99 {:>8.4}ms ({:.0}x, bit-identical)",
            r.topology,
            r.cold_p50_ms,
            r.cold_p99_ms,
            r.warm_p50_ms,
            r.warm_p99_ms,
            r.speedup(),
        );
    }
    println!("recorded in {out_path}");
}
