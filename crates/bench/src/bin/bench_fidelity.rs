//! Measures the serial-vs-parallel wall-clock of the Fig. 8 fidelity sweep, verifies
//! the outputs are bit-identical, and records the result in `BENCH_fidelity.json`.
//!
//! ```bash
//! QGDP_MAPPINGS=10 cargo run --release -p qgdp-bench --bin bench_fidelity
//! ```
//!
//! The serial run pins `QGDP_THREADS=1`; the parallel run uses the machine's
//! available parallelism (or an explicit pre-set `QGDP_THREADS`).  Override the
//! output path with `QGDP_BENCH_OUT`, the topology panel with
//! `QGDP_BENCH_TOPOLOGIES` (comma-separated names), and repetitions with
//! `QGDP_BENCH_REPS` (fastest rep is reported, criterion-style).

use qgdp::prelude::*;
use qgdp_bench::{fig8_series, mappings_per_benchmark, Fig8Series};
use std::time::Instant;

fn sweep(topologies: &[StandardTopology], mappings: usize, reps: usize) -> (Vec<Fig8Series>, f64) {
    let mut best_ms = f64::INFINITY;
    let mut series = Vec::new();
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        series = fig8_series(topologies, mappings);
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (series, best_ms)
}

fn series_bits(series: &[Fig8Series]) -> Vec<u64> {
    series
        .iter()
        .flat_map(|s| s.per_benchmark.iter().map(|&(_, f)| f.to_bits()))
        .collect()
}

fn main() {
    let mappings = mappings_per_benchmark();
    let reps = std::env::var("QGDP_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let all = StandardTopology::all();
    let topologies: Vec<StandardTopology> = match std::env::var("QGDP_BENCH_TOPOLOGIES") {
        Ok(names) => names
            .split(',')
            .map(|name| {
                *all.iter()
                    .find(|t| t.name().eq_ignore_ascii_case(name.trim()))
                    .unwrap_or_else(|| panic!("unknown topology {name:?}"))
            })
            .collect(),
        Err(_) => all.to_vec(),
    };

    // Worker count for the parallel leg: a pre-set QGDP_THREADS wins; otherwise the
    // machine's available parallelism, but at least 4 workers so the pool path is
    // exercised (and its overhead measured) even on small hosts.
    let threads = match std::env::var("QGDP_THREADS") {
        Ok(_) => worker_threads(),
        Err(_) => worker_threads().max(4),
    };

    // Serial baseline: the exact code path, restricted to one worker.
    std::env::set_var("QGDP_THREADS", "1");
    let (serial_series, serial_ms) = sweep(&topologies, mappings, reps);

    // Parallel run.
    std::env::set_var("QGDP_THREADS", threads.to_string());
    let (parallel_series, parallel_ms) = sweep(&topologies, mappings, reps);

    let identical = series_bits(&serial_series) == series_bits(&parallel_series);
    assert!(
        identical,
        "parallel sweep is not bit-identical to the serial sweep"
    );
    let speedup = serial_ms / parallel_ms;

    let topology_names: Vec<String> = topologies
        .iter()
        .map(|t| format!("\"{}\"", t.name()))
        .collect();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"benchmark\": \"fig8 fidelity sweep (strategy fan-out + mapping-set worker pool)\",\n  \"topologies\": [{}],\n  \"mappings_per_benchmark\": {mappings},\n  \"reps\": {reps},\n  \"threads\": {threads},\n  \"host_cpus\": {host_cpus},\n  \"serial_ms\": {serial_ms:.1},\n  \"parallel_ms\": {parallel_ms:.1},\n  \"speedup\": {speedup:.2},\n  \"bit_identical\": {identical}\n}}\n",
        topology_names.join(", ")
    );
    let out_path =
        std::env::var("QGDP_BENCH_OUT").unwrap_or_else(|_| "BENCH_fidelity.json".to_string());
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{json}");
    println!(
        "serial {serial_ms:.1} ms -> parallel {parallel_ms:.1} ms on {threads} threads \
         ({speedup:.2}x, bit-identical), recorded in {out_path}"
    );
}
