//! Regenerates Table II: qubit (`t_q`) and resonator (`t_e`) legalization runtimes in
//! milliseconds for every topology and strategy.  Each topology builds one staged
//! [`Session`] whose global-placement artifact is shared by all five strategies (the
//! paper's "same GP positions" protocol — the GP is not re-run per strategy); each
//! legalization is repeated several times and the mean stage runtime is reported.
//! `cargo bench -p qgdp-bench` gives the same quantities with Criterion's statistical
//! treatment.
//!
//! ```bash
//! cargo run --release -p qgdp-bench --bin table2
//! ```

use qgdp::prelude::*;
use qgdp_bench::experiment_session;

const REPEATS: usize = 5;

fn main() {
    let topologies = StandardTopology::all();
    let strategies = LegalizationStrategy::all();
    println!("TABLE II: legalization runtime (ms), mean of {REPEATS} runs");
    println!();
    print!("{:<10}", "Topology");
    for s in strategies {
        print!(" | {:>8} {:>8}", format!("{} tq", s.name()), "te");
    }
    println!();
    println!("{}", "-".repeat(10 + strategies.len() * 21));

    let mut sums = vec![(0.0f64, 0.0f64); strategies.len()];
    for topology in topologies {
        let session = experiment_session(topology);
        let gp = session.global_place();
        print!("{:<10}", topology.name());
        for (i, strategy) in strategies.into_iter().enumerate() {
            let mut tq = 0.0;
            let mut te = 0.0;
            for _ in 0..REPEATS {
                let legalized = gp
                    .legalize(strategy)
                    .unwrap_or_else(|e| panic!("{strategy} failed on {topology}: {e}"));
                tq += legalized.qubit_stage().elapsed().as_secs_f64() * 1e3;
                te += legalized.elapsed().as_secs_f64() * 1e3;
            }
            tq /= REPEATS as f64;
            te /= REPEATS as f64;
            sums[i].0 += tq;
            sums[i].1 += te;
            print!(" | {:>8.2} {:>8.2}", tq, te);
        }
        println!();
    }
    print!("{:<10}", "Mean");
    for (tq, te) in &sums {
        print!(
            " | {:>8.2} {:>8.2}",
            tq / topologies.len() as f64,
            te / topologies.len() as f64
        );
    }
    println!();
    println!();
    println!("columns per strategy: tq = qubit legalization, te = resonator legalization");
}
