//! Regenerates Table I: the topology and benchmark inventory of the evaluation.
//!
//! ```bash
//! cargo run --release -p qgdp-bench --bin table1
//! ```

use qgdp::prelude::*;
use qgdp::topology::{multi_chip, roadmap_heavy_hex, Topology};

/// Netlist-cell budget above which the roadmap rows print "—" instead of
/// building the full component netlist (the inventory stays instant at 100k).
const NETLIST_CELL_CEILING: usize = 20_000;

fn roadmap_row(topo: &Topology, desc: &str) {
    let cells = if topo.num_qubits() <= NETLIST_CELL_CEILING {
        let netlist = topo
            .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
            .expect("netlist builds");
        netlist.num_components().to_string()
    } else {
        "—".to_string()
    };
    println!(
        "{:<28} {:>7} {:>9} {:>7}  {desc}",
        topo.name(),
        topo.num_qubits(),
        topo.num_couplings(),
        cells,
    );
}

fn main() {
    println!("TABLE I: TOPOLOGIES AND BENCHMARKS");
    println!();
    println!(
        "{:<10} {:>7} {:>9} {:>7}  description",
        "Topology", "Qubits", "Couplers", "Cells"
    );
    println!("{}", "-".repeat(76));
    let descriptions = [
        (
            StandardTopology::Grid,
            "Quantum error correction friendly architecture",
        ),
        (
            StandardTopology::Falcon,
            "Falcon processor from IBM (heavy hex)",
        ),
        (
            StandardTopology::Eagle,
            "Eagle processor from IBM (heavy hex)",
        ),
        (
            StandardTopology::Aspen11,
            "Aspen-11 processor from Rigetti (octagon)",
        ),
        (
            StandardTopology::AspenM,
            "Aspen-M processor from Rigetti (octagon)",
        ),
        (
            StandardTopology::Xtree,
            "Pauli-string efficient architecture, level 3",
        ),
    ];
    for (t, desc) in descriptions {
        let topo = t.build();
        let netlist = topo
            .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
            .expect("netlist builds");
        println!(
            "{:<10} {:>7} {:>9} {:>7}  {desc}",
            t.name(),
            topo.num_qubits(),
            topo.num_couplings(),
            netlist.num_components(),
        );
    }

    println!();
    println!(
        "{:<28} {:>7} {:>9} {:>7}  description",
        "Roadmap device", "Qubits", "Couplers", "Cells"
    );
    println!("{}", "-".repeat(76));
    for target in [1_000usize, 10_000, 100_000] {
        let topo = roadmap_heavy_hex(target);
        roadmap_row(&topo, "Vendor-roadmap heavy-hex tiling");
    }
    let module = multi_chip(&roadmap_heavy_hex(1_000), 2, 2, 8, 4.0);
    roadmap_row(
        &module,
        "Four chips stitched by inter-chip couplers (qLDPC multilayer model)",
    );

    println!();
    println!(
        "{:<10} {:>7} {:>9} {:>6}  description",
        "Benchmark", "Qubits", "2q gates", "depth"
    );
    println!("{}", "-".repeat(76));
    let descriptions = [
        (Benchmark::Bv4, "Bernstein-Vazirani algorithm"),
        (Benchmark::Bv9, "Bernstein-Vazirani algorithm"),
        (Benchmark::Bv16, "Bernstein-Vazirani algorithm"),
        (
            Benchmark::Qaoa4,
            "Quantum Approximate Optimization Algorithm",
        ),
        (
            Benchmark::Ising4,
            "Linear Ising model simulation of spin chain",
        ),
        (Benchmark::Qgan4, "Quantum Generative Adversarial Network"),
        (Benchmark::Qgan9, "Quantum Generative Adversarial Network"),
    ];
    for (b, desc) in descriptions {
        let circuit = b.circuit();
        println!(
            "{:<10} {:>7} {:>9} {:>6}  {desc}",
            b.name(),
            b.num_qubits(),
            circuit.two_qubit_gate_count(),
            circuit.depth(),
        );
    }
}
