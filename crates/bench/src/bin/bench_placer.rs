//! Measures the optimized global-placer hot path against the reference formulation
//! (per-iteration density rebuild + per-net clique expansion) and records the result
//! in `BENCH_placer.json`.
//!
//! ```bash
//! cargo run --release -p qgdp-bench --bin bench_placer
//! ```
//!
//! For every benched topology the two implementations run on identical inputs (same
//! netlist, same seed) and the final HPWL is compared: on the pseudo net model the
//! optimized path must be *bit-identical*, on the clique net model (star-decomposed
//! hypernets) it must agree within floating-point round-off.  Override the output
//! path with `QGDP_BENCH_OUT`, the topology panel with `QGDP_BENCH_TOPOLOGIES`
//! (comma-separated names) and repetitions with `QGDP_BENCH_REPS` (fastest rep is
//! reported, criterion-style).

use qgdp::prelude::*;
use qgdp_placer::hpwl;
use std::time::Instant;

/// One measured topology × net-model cell.
struct Record {
    topology: String,
    model: &'static str,
    components: usize,
    iterations: usize,
    optimized_ms: f64,
    reference_ms: f64,
    hpwl_rel_diff: f64,
}

impl Record {
    fn speedup(&self) -> f64 {
        self.reference_ms / self.optimized_ms
    }

    fn optimized_iters_per_sec(&self) -> f64 {
        self.iterations as f64 / (self.optimized_ms / 1e3)
    }

    fn reference_iters_per_sec(&self) -> f64 {
        self.iterations as f64 / (self.reference_ms / 1e3)
    }
}

fn best_of<F: FnMut() -> f64>(reps: usize, mut run: F) -> f64 {
    (0..reps.max(1))
        .map(|_| run())
        .fold(f64::INFINITY, f64::min)
}

fn bench_cell(
    topology: StandardTopology,
    model: NetModel,
    model_name: &'static str,
    reps: usize,
) -> Record {
    // The session builds (and would share) the netlist; the placer itself is
    // driven directly because the reference formulation `place_reference` is not
    // part of the staged artifact surface.
    let session = Session::new(
        &topology.build(),
        FlowConfig::default().with_net_model(model),
    )
    .unwrap_or_else(|e| panic!("session for {topology}: {e}"));
    let topo = session.topology();
    let netlist = session.netlist();
    let cfg = GlobalPlacerConfig::default();
    let placer = GlobalPlacer::new(cfg);

    let optimized_ms = best_of(reps, || {
        let start = Instant::now();
        std::hint::black_box(placer.place(netlist, topo));
        start.elapsed().as_secs_f64() * 1e3
    });
    let reference_ms = best_of(reps, || {
        let start = Instant::now();
        std::hint::black_box(placer.place_reference(netlist, topo));
        start.elapsed().as_secs_f64() * 1e3
    });

    let optimized = placer.place(netlist, topo);
    let reference = placer.place_reference(netlist, topo);
    let h_opt = hpwl(netlist, &optimized.placement);
    let h_ref = hpwl(netlist, &reference.placement);
    let hpwl_rel_diff = ((h_opt - h_ref) / h_ref).abs();
    match model {
        NetModel::Pseudo | NetModel::Chain => assert_eq!(
            optimized, reference,
            "optimized placer must be bit-identical to the reference on 2-pin nets \
             ({topology}, {model_name})"
        ),
        NetModel::Clique => assert!(
            hpwl_rel_diff < 1e-9,
            "star-decomposed placement drifted {hpwl_rel_diff:e} from the clique \
             reference on {topology}"
        ),
    }

    Record {
        topology: topology.name().to_string(),
        model: model_name,
        components: netlist.num_components(),
        iterations: cfg.iterations,
        optimized_ms,
        reference_ms,
        hpwl_rel_diff,
    }
}

fn main() {
    let reps = std::env::var("QGDP_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let default_panel = [
        StandardTopology::Grid,
        StandardTopology::Falcon,
        StandardTopology::Eagle,
    ];
    let all = StandardTopology::all();
    let topologies: Vec<StandardTopology> = match std::env::var("QGDP_BENCH_TOPOLOGIES") {
        Ok(names) => names
            .split(',')
            .map(|name| {
                *all.iter()
                    .find(|t| t.name().eq_ignore_ascii_case(name.trim()))
                    .unwrap_or_else(|| panic!("unknown topology {name:?}"))
            })
            .collect(),
        Err(_) => default_panel.to_vec(),
    };

    let mut records = Vec::new();
    for &topology in &topologies {
        records.push(bench_cell(topology, NetModel::Pseudo, "pseudo", reps));
        records.push(bench_cell(topology, NetModel::Clique, "clique-star", reps));
    }

    let mut rows = String::new();
    for r in &records {
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"topology\": \"{}\", \"net_model\": \"{}\", \"components\": {}, \
             \"iterations\": {}, \"optimized_ms\": {:.2}, \"reference_ms\": {:.2}, \
             \"speedup\": {:.2}, \"optimized_iters_per_sec\": {:.0}, \
             \"reference_iters_per_sec\": {:.0}, \"hpwl_rel_diff\": {:.3e} }}",
            r.topology,
            r.model,
            r.components,
            r.iterations,
            r.optimized_ms,
            r.reference_ms,
            r.speedup(),
            r.optimized_iters_per_sec(),
            r.reference_iters_per_sec(),
            r.hpwl_rel_diff,
        ));
    }
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"benchmark\": \"global placement: compiled star-net forces + \
         incremental density vs reference rebuild\",\n  \"reps\": {reps},\n  \
         \"host_cpus\": {host_cpus},\n  \"records\": [\n{rows}\n  ]\n}}\n"
    );
    let out_path =
        std::env::var("QGDP_BENCH_OUT").unwrap_or_else(|_| "BENCH_placer.json".to_string());
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{json}");
    for r in &records {
        println!(
            "{:>8} {:>11}: {:>7.2}ms -> {:>6.2}ms ({:.2}x, {:.0} -> {:.0} iters/s, \
             hpwl rel diff {:.1e})",
            r.topology,
            r.model,
            r.reference_ms,
            r.optimized_ms,
            r.speedup(),
            r.reference_iters_per_sec(),
            r.optimized_iters_per_sec(),
            r.hpwl_rel_diff,
        );
    }
    println!("recorded in {out_path}");
}
