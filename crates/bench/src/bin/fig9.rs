//! Regenerates Fig. 9: per-topology comparison of the legalization strategies on
//! (a) mean program fidelity across the benchmark suite, (b) frequency-hotspot
//! proportion `P_h`, and (c) resonator coupler crossings `X̄`.
//!
//! ```bash
//! cargo run --release -p qgdp-bench --bin fig9
//! ```

use qgdp::prelude::*;
use qgdp_bench::{fig9_series, mappings_per_benchmark, Fig9Point};
use std::collections::BTreeMap;

fn main() {
    let mappings = mappings_per_benchmark();
    let topologies = StandardTopology::all();
    let strategies = LegalizationStrategy::all();
    println!("FIG. 9: mean fidelity, hotspot proportion Ph and coupler crossings X per strategy");
    println!("({mappings} mappings per benchmark, averaged over the 7-benchmark suite)");

    let data: BTreeMap<(LegalizationStrategy, StandardTopology), Fig9Point> =
        fig9_series(&topologies, mappings)
            .into_iter()
            .map(|p| ((p.strategy, p.topology), p))
            .collect();

    let print_section = |title: &str, select: &dyn Fn(&Fig9Point) -> String| {
        println!();
        println!("--- {title} ---");
        print!("{:<10}", "strategy");
        for t in topologies {
            print!(" {:>9}", t.name());
        }
        println!(" {:>9}", "Mean");
        for strategy in strategies {
            print!("{:<10}", strategy.name());
            let mut numeric_mean = 0.0;
            for t in topologies {
                let point = &data[&(strategy, t)];
                print!(" {:>9}", select(point));
                numeric_mean += match title {
                    "Average program fidelity" => point.fidelity,
                    "Frequency hotspot proportion Ph (%)" => point.hotspot_percent,
                    _ => point.crossings as f64,
                };
            }
            println!(" {:>9.3}", numeric_mean / topologies.len() as f64);
        }
    };

    print_section("Average program fidelity", &|p| {
        format!("{:.4}", p.fidelity)
    });
    print_section("Frequency hotspot proportion Ph (%)", &|p| {
        format!("{:.2}", p.hotspot_percent)
    });
    print_section("Coupler crossings X", &|p| p.crossings.to_string());
}
