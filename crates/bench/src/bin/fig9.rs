//! Regenerates Fig. 9: per-topology comparison of the legalization strategies on
//! (a) mean program fidelity across the benchmark suite, (b) frequency-hotspot
//! proportion `P_h`, and (c) resonator coupler crossings `X̄`.
//!
//! ```bash
//! cargo run --release -p qgdp-bench --bin fig9
//! ```

use qgdp::metrics::FidelityEvaluator;
use qgdp::prelude::*;
use qgdp_bench::{experiment_config, mappings_per_benchmark, EXPERIMENT_SEED};
use std::collections::BTreeMap;

struct Row {
    fidelity: f64,
    ph: f64,
    crossings: usize,
}

fn main() {
    let mappings = mappings_per_benchmark();
    let noise = NoiseModel::default();
    let topologies = StandardTopology::all();
    let strategies = LegalizationStrategy::all();
    println!("FIG. 9: mean fidelity, hotspot proportion Ph and coupler crossings X per strategy");
    println!("({mappings} mappings per benchmark, averaged over the 7-benchmark suite)");

    let mut data: BTreeMap<(LegalizationStrategy, StandardTopology), Row> = BTreeMap::new();
    for topology in topologies {
        let topo = topology.build();
        let mapping_sets: Vec<Vec<MappedCircuit>> = Benchmark::all()
            .iter()
            .map(|b| {
                random_mappings(
                    &b.circuit(),
                    &topo,
                    mappings,
                    EXPERIMENT_SEED ^ b.num_qubits() as u64,
                )
            })
            .collect();
        for strategy in strategies {
            let result = run_flow(&topo, strategy, &experiment_config())
                .unwrap_or_else(|e| panic!("{strategy} failed on {topology}: {e}"));
            let evaluator = FidelityEvaluator::new(
                &result.netlist,
                result.final_placement(),
                noise,
                &result.crosstalk,
            );
            let fidelity = mapping_sets
                .iter()
                .map(|maps| evaluator.mean(maps))
                .sum::<f64>()
                / mapping_sets.len() as f64;
            let report = result.final_report();
            data.insert(
                (strategy, topology),
                Row {
                    fidelity,
                    ph: report.hotspot_proportion_percent,
                    crossings: report.crossings,
                },
            );
        }
    }

    let print_section = |title: &str, select: &dyn Fn(&Row) -> String| {
        println!();
        println!("--- {title} ---");
        print!("{:<10}", "strategy");
        for t in topologies {
            print!(" {:>9}", t.name());
        }
        println!(" {:>9}", "Mean");
        for strategy in strategies {
            print!("{:<10}", strategy.name());
            let mut numeric_mean = 0.0;
            for t in topologies {
                let row = &data[&(strategy, t)];
                print!(" {:>9}", select(row));
                numeric_mean += match title {
                    "Average program fidelity" => row.fidelity,
                    "Frequency hotspot proportion Ph (%)" => row.ph,
                    _ => row.crossings as f64,
                };
            }
            println!(" {:>9.3}", numeric_mean / topologies.len() as f64);
        }
    };

    print_section("Average program fidelity", &|r| format!("{:.4}", r.fidelity));
    print_section("Frequency hotspot proportion Ph (%)", &|r| {
        format!("{:.2}", r.ph)
    });
    print_section("Coupler crossings X", &|r| r.crossings.to_string());
}
