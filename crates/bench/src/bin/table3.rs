//! Regenerates Table III: the detailed-placement evaluation.  For every topology the
//! qGDP-LG layout and the qGDP-DP layout are compared on the number of unified
//! resonators (`I_edge`), coupler crossings (`X`), frequency-hotspot proportion
//! (`P_h`) and the number of qubits under hotspots (`H_Q`).
//!
//! Each flow is one staged [`qgdp::Session`] run whose [`Detailed`] artifact carries
//! both reports: the qGDP-LG columns come from the legalized artifact the DP stage
//! forked from, so nothing is recomputed.
//!
//! ```bash
//! cargo run --release -p qgdp-bench --bin table3
//! ```

use qgdp::prelude::*;
use qgdp_bench::run_strategy;

/// Runs the qGDP-DP flow for every topology on [`worker_threads`] scoped workers,
/// returning artifacts in [`StandardTopology::all`] order (each flow is an
/// independent seed-deterministic computation, so the table is identical for any
/// worker count).
fn run_all_topologies() -> Vec<(StandardTopology, FlowArtifact)> {
    let topologies = StandardTopology::all();
    let results = parallel_map(&topologies, worker_threads(), |&topology| {
        run_strategy(topology, LegalizationStrategy::Qgdp, true)
    });
    topologies.into_iter().zip(results).collect()
}

fn main() {
    println!("TABLE III: detailed placement evaluation (qGDP-LG vs qGDP-DP)");
    println!();
    println!(
        "{:<10} {:>6} | {:>8} {:>4} {:>7} {:>4} | {:>8} {:>4} {:>7} {:>4}",
        "Topology", "#Cells", "I_edge", "X", "Ph(%)", "HQ", "I_edge", "X", "Ph(%)", "HQ"
    );
    println!(
        "{:<10} {:>6} | {:^27} | {:^27}",
        "", "", "qGDP-LG", "qGDP-DP"
    );
    println!("{}", "-".repeat(78));
    for (topology, artifact) in run_all_topologies() {
        let lg = artifact.legalized().report();
        let dp = artifact.detailed().expect("DP ran").report();
        println!(
            "{:<10} {:>6} | {:>8} {:>4} {:>7.2} {:>4} | {:>8} {:>4} {:>7.2} {:>4}",
            topology.name(),
            artifact.netlist().num_components(),
            lg.integration_ratio(),
            lg.crossings,
            lg.hotspot_proportion_percent,
            lg.hotspot_qubits,
            dp.integration_ratio(),
            dp.crossings,
            dp.hotspot_proportion_percent,
            dp.hotspot_qubits,
        );
    }
    println!();
    println!("higher I_edge is better; lower X, Ph and HQ are better");
}
