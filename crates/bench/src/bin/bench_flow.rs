//! Measures the staged [`Session`] batch path against independent `run_flow` calls
//! and records the result in `BENCH_flow.json`.
//!
//! ```bash
//! cargo run --release -p qgdp-bench --bin bench_flow
//! ```
//!
//! For every benched topology the five-strategy matrix (Table II / Figs. 8–9 shape)
//! is produced two ways on identical inputs:
//!
//! * **independent** — five separate [`run_flow`] calls, each paying its own
//!   netlist build, global placement and eager reports (the pre-Session API cost);
//! * **session** — one [`Session`] whose single [`GlobalPlacement`] artifact is
//!   fanned over the strategies by [`Session::run_matrix`] on the `QGDP_THREADS`
//!   worker pool, with the shared GP report computed once and per-strategy reports
//!   forced afterwards (so both legs deliver the same data).
//!
//! Before timing, the binary asserts the session artifacts are **bit-identical** to
//! the `run_flow` results (placements and reports), and that the batch path is
//! bit-identical between 1 worker and a multi-worker pool.  A **fault-injection
//! scenario** then poisons one strategy of the five-strategy matrix via
//! [`FaultInjection`] and asserts the four surviving strategies still return
//! artifacts bit-identical to the all-success run, for 1 and 4 workers alike; the
//! outcome is recorded as a `"kind": "fault-injection"` record that
//! `scripts/bench_gate` requires.  Override the output path with `QGDP_BENCH_OUT`,
//! the topology panel with `QGDP_BENCH_TOPOLOGIES` (comma-separated names) and
//! repetitions with `QGDP_BENCH_REPS` (fastest rep is reported, criterion-style).

use qgdp::prelude::*;
use qgdp_bench::experiment_config;
use std::time::Instant;

/// One measured topology row.
struct Record {
    topology: String,
    components: usize,
    strategies: usize,
    independent_ms: f64,
    session_ms: f64,
    gp_ms: f64,
}

impl Record {
    fn speedup(&self) -> f64 {
        self.independent_ms / self.session_ms
    }
}

fn best_of<F: FnMut() -> f64>(reps: usize, mut run: F) -> f64 {
    (0..reps.max(1))
        .map(|_| run())
        .fold(f64::INFINITY, f64::min)
}

/// Asserts the staged artifacts equal the monolithic results bit for bit, and that
/// the batch fan-out is worker-count-invariant.
fn verify_bit_identity(topology: StandardTopology, strategies: &[LegalizationStrategy]) {
    let topo = topology.build();
    let session = Session::new(&topo, experiment_config()).expect("session builds");
    let serial = session
        .run_batch_with_threads(
            &strategies
                .iter()
                .map(|&s| FlowRequest::legalize(s))
                .collect::<Vec<_>>(),
            1,
        )
        .expect("serial batch succeeds");
    let parallel = session
        .run_batch_with_threads(
            &strategies
                .iter()
                .map(|&s| FlowRequest::legalize(s))
                .collect::<Vec<_>>(),
            4,
        )
        .expect("parallel batch succeeds");
    for ((&strategy, a), b) in strategies.iter().zip(&serial).zip(&parallel) {
        assert_eq!(
            a.final_placement(),
            b.final_placement(),
            "{topology}/{strategy}: batch path must be worker-count invariant"
        );
        assert_eq!(
            a.report(),
            b.report(),
            "{topology}/{strategy}: batch reports must be worker-count invariant"
        );
        let mono = run_flow(&topo, strategy, &experiment_config())
            .unwrap_or_else(|e| panic!("{strategy} failed on {topology}: {e}"));
        assert_eq!(
            a.legalized().global().placement(),
            &mono.gp_placement,
            "{topology}/{strategy}: shared GP must equal the per-flow GP"
        );
        assert_eq!(
            a.final_placement(),
            &mono.legalized,
            "{topology}/{strategy}: staged layout must equal run_flow"
        );
        assert_eq!(
            a.report(),
            &mono.legalized_report,
            "{topology}/{strategy}: staged report must equal run_flow"
        );
    }
}

/// Poisons one strategy of the matrix via [`FaultInjection`] and asserts the
/// surviving strategies still return artifacts **bit-identical** to the
/// all-success run, for 1 and 4 workers alike.  Returns the JSON record row.
fn fault_injection_scenario(topology: StandardTopology) -> String {
    let poisoned_strategy = LegalizationStrategy::QTetris;
    let topo = topology.build();
    let strategies = LegalizationStrategy::all();
    let requests: Vec<FlowRequest> = strategies
        .iter()
        .map(|&s| FlowRequest::legalize(s))
        .collect();

    let clean = Session::new(&topo, experiment_config()).expect("session builds");
    let baseline = clean
        .run_batch_with_threads(&requests, 1)
        .expect("all-success batch");

    let fault = FaultInjection {
        fail_legalization: Some(poisoned_strategy),
        panic_in_legalization: None,
    };
    let poisoned = Session::new(&topo, experiment_config().with_fault_injection(fault))
        .expect("session builds");
    let mut survivors = 0usize;
    for threads in [1, 4] {
        let results = poisoned.try_run_batch_with_threads(&requests, threads);
        assert_eq!(results.len(), requests.len());
        survivors = 0;
        for ((&strategy, result), clean_artifact) in strategies.iter().zip(&results).zip(&baseline)
        {
            if strategy == poisoned_strategy {
                let error = result
                    .as_ref()
                    .expect_err("the poisoned strategy must fail, not vanish");
                assert_eq!(
                    error.strategy(),
                    Some(poisoned_strategy),
                    "{topology}: fault attributed to the wrong strategy"
                );
                continue;
            }
            let artifact = result.as_ref().unwrap_or_else(|e| {
                panic!("{topology}/{strategy}: sibling lost to the injected fault: {e}")
            });
            assert_eq!(
                artifact.final_placement(),
                clean_artifact.final_placement(),
                "{topology}/{strategy}/threads={threads}: surviving placement must be \
                 bit-identical to the all-success run"
            );
            assert_eq!(
                artifact.report(),
                clean_artifact.report(),
                "{topology}/{strategy}/threads={threads}: surviving report must be \
                 bit-identical to the all-success run"
            );
            survivors += 1;
        }
    }
    assert_eq!(survivors, strategies.len() - 1);

    format!(
        "    {{ \"kind\": \"fault-injection\", \"topology\": \"{}\", \"strategies\": {}, \
         \"poisoned\": \"{poisoned_strategy}\", \"surviving\": {survivors}, \
         \"bit_identical\": true }}",
        topology.name(),
        strategies.len(),
    )
}

fn bench_topology(
    topology: StandardTopology,
    strategies: &[LegalizationStrategy],
    reps: usize,
) -> Record {
    let topo = topology.build();
    verify_bit_identity(topology, strategies);

    // Independent leg: one full run_flow per strategy (netlist + GP + eager reports
    // paid five times).
    let independent_ms = best_of(reps, || {
        let start = Instant::now();
        for &strategy in strategies {
            let result = run_flow(&topo, strategy, &experiment_config())
                .unwrap_or_else(|e| panic!("{strategy} failed on {topology}: {e}"));
            std::hint::black_box(&result.legalized_report);
        }
        start.elapsed().as_secs_f64() * 1e3
    });

    // Session leg: one netlist build, one GP, batched legalizations, shared GP
    // report computed once, per-strategy reports forced so both legs deliver the
    // same data to a Table II/III-style consumer.
    let session_ms = best_of(reps, || {
        let start = Instant::now();
        let session = Session::new(&topo, experiment_config()).expect("session builds");
        let artifacts = session
            .run_matrix(strategies, &[None])
            .expect("matrix succeeds");
        for artifact in &artifacts {
            std::hint::black_box(artifact.report());
        }
        std::hint::black_box(artifacts[0].legalized().global().report());
        start.elapsed().as_secs_f64() * 1e3
    });

    // A fresh session per rep: the session-level GP cache would otherwise make
    // every rep after the first (and hence the best-of) a ~0 ms cache hit.
    let gp_ms = best_of(reps, || {
        let session = Session::new(&topo, experiment_config()).expect("session builds");
        let start = Instant::now();
        std::hint::black_box(session.global_place());
        start.elapsed().as_secs_f64() * 1e3
    });

    let session = Session::new(&topo, experiment_config()).expect("session builds");

    Record {
        topology: topology.name().to_string(),
        components: session.netlist().num_components(),
        strategies: strategies.len(),
        independent_ms,
        session_ms,
        gp_ms,
    }
}

fn main() {
    let reps = std::env::var("QGDP_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let default_panel = [
        StandardTopology::Grid,
        StandardTopology::Falcon,
        StandardTopology::Eagle,
    ];
    let all = StandardTopology::all();
    let topologies: Vec<StandardTopology> = match std::env::var("QGDP_BENCH_TOPOLOGIES") {
        Ok(names) => names
            .split(',')
            .map(|name| {
                *all.iter()
                    .find(|t| t.name().eq_ignore_ascii_case(name.trim()))
                    .unwrap_or_else(|| panic!("unknown topology {name:?}"))
            })
            .collect(),
        Err(_) => default_panel.to_vec(),
    };
    let strategies = LegalizationStrategy::all();

    let records: Vec<Record> = topologies
        .iter()
        .map(|&t| bench_topology(t, &strategies, reps))
        .collect();

    let mut rows = String::new();
    for r in &records {
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"topology\": \"{}\", \"components\": {}, \"strategies\": {}, \
             \"independent_run_flow_ms\": {:.2}, \"session_matrix_ms\": {:.2}, \
             \"speedup\": {:.2}, \"gp_ms\": {:.2}, \"bit_identical\": true }}",
            r.topology,
            r.components,
            r.strategies,
            r.independent_ms,
            r.session_ms,
            r.speedup(),
            r.gp_ms,
        ));
    }
    // The fault-isolation contract rides in the same file: one poisoned strategy,
    // four bit-identical survivors (gated by scripts/bench_gate).
    let fault_row = fault_injection_scenario(topologies[0]);
    if !rows.is_empty() {
        rows.push_str(",\n");
    }
    rows.push_str(&fault_row);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = worker_threads();
    let json = format!(
        "{{\n  \"benchmark\": \"five-strategy matrix: staged Session batch (shared GP \
         warm start) vs independent run_flow calls\",\n  \"reps\": {reps},\n  \
         \"threads\": {threads},\n  \"host_cpus\": {host_cpus},\n  \"records\": [\n{rows}\n  ]\n}}\n"
    );
    let out_path =
        std::env::var("QGDP_BENCH_OUT").unwrap_or_else(|_| "BENCH_flow.json".to_string());
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{json}");
    for r in &records {
        println!(
            "{:>8} ({} strategies): {:>8.2}ms -> {:>7.2}ms ({:.2}x, one {:.2}ms GP \
             instead of {}, bit-identical)",
            r.topology,
            r.strategies,
            r.independent_ms,
            r.session_ms,
            r.speedup(),
            r.gp_ms,
            r.strategies,
        );
    }
    println!(
        "fault-injection: 1 poisoned strategy of {}, siblings bit-identical (1 and 4 workers)",
        strategies.len()
    );
    println!("recorded in {out_path}");
}
