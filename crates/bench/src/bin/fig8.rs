//! Regenerates Fig. 8: mean worst-case program fidelity for every combination of
//! topology (6) × benchmark (7) × legalization strategy (5), averaged over random
//! qubit mappings (50 by default, `QGDP_MAPPINGS` to override).
//!
//! ```bash
//! cargo run --release -p qgdp-bench --bin fig8
//! ```

use qgdp::prelude::*;
use qgdp_bench::{fig8_series, format_fidelity, mappings_per_benchmark};

fn main() {
    let mappings = mappings_per_benchmark();
    let benchmarks = Benchmark::all();
    println!(
        "FIG. 8: fidelity per topology x benchmark x legalization strategy ({mappings} mappings each)"
    );

    // Topologies in the paper's panel order.
    let panels = [
        StandardTopology::Grid,
        StandardTopology::Xtree,
        StandardTopology::Falcon,
        StandardTopology::Eagle,
        StandardTopology::Aspen11,
        StandardTopology::AspenM,
    ];
    // One fig8_series call per topology so each panel prints as soon as it is
    // computed (a full 50-mapping sweep runs for minutes).
    for topology in panels {
        println!();
        println!("=== {} ===", topology.name());
        print!("{:<10}", "strategy");
        for b in &benchmarks {
            print!(" {:>8}", b.name());
        }
        println!(" {:>8}", "Mean");
        for series in fig8_series(&[topology], mappings) {
            print!("{:<10}", series.strategy.name());
            for &(_, f) in &series.per_benchmark {
                print!(" {:>8}", format_fidelity(f));
            }
            println!(" {:>8}", format_fidelity(series.mean()));
        }
    }
}
