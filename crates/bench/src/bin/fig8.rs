//! Regenerates Fig. 8: mean worst-case program fidelity for every combination of
//! topology (6) × benchmark (7) × legalization strategy (5), averaged over random
//! qubit mappings (50 by default, `QGDP_MAPPINGS` to override).
//!
//! ```bash
//! cargo run --release -p qgdp-bench --bin fig8
//! ```

use qgdp::metrics::FidelityEvaluator;
use qgdp::prelude::*;
use qgdp_bench::{experiment_config, format_fidelity, mappings_per_benchmark, EXPERIMENT_SEED};

fn main() {
    let mappings = mappings_per_benchmark();
    let benchmarks = Benchmark::all();
    let noise = NoiseModel::default();
    println!(
        "FIG. 8: fidelity per topology x benchmark x legalization strategy ({mappings} mappings each)"
    );

    // Topologies in the paper's panel order.
    let panels = [
        StandardTopology::Grid,
        StandardTopology::Xtree,
        StandardTopology::Falcon,
        StandardTopology::Eagle,
        StandardTopology::Aspen11,
        StandardTopology::AspenM,
    ];
    for topology in panels {
        let topo = topology.build();
        // One set of mappings per (topology, benchmark), shared across strategies so
        // the comparison isolates the legalizer.
        let mapping_sets: Vec<Vec<MappedCircuit>> = benchmarks
            .iter()
            .map(|b| {
                random_mappings(
                    &b.circuit(),
                    &topo,
                    mappings,
                    EXPERIMENT_SEED ^ b.num_qubits() as u64,
                )
            })
            .collect();

        println!();
        println!("=== {} ===", topology.name());
        print!("{:<10}", "strategy");
        for b in &benchmarks {
            print!(" {:>8}", b.name());
        }
        println!(" {:>8}", "Mean");
        for strategy in LegalizationStrategy::all() {
            let result = run_flow(&topo, strategy, &experiment_config())
                .unwrap_or_else(|e| panic!("{strategy} failed on {topology}: {e}"));
            let evaluator = FidelityEvaluator::new(
                &result.netlist,
                result.final_placement(),
                noise,
                &result.crosstalk,
            );
            let fidelities: Vec<f64> = mapping_sets.iter().map(|maps| evaluator.mean(maps)).collect();
            let mean = fidelities.iter().sum::<f64>() / fidelities.len() as f64;
            print!("{:<10}", strategy.name());
            for f in &fidelities {
                print!(" {:>8}", format_fidelity(*f));
            }
            println!(" {:>8}", format_fidelity(mean));
        }
    }
}
