//! Measures the spatial-index overlap-detection stack against its retained O(n²)
//! references and records the result in `BENCH_legalize.json`.
//!
//! ```bash
//! cargo run --release -p qgdp-bench --bin bench_legalize
//! ```
//!
//! Three kinds of rows are recorded:
//!
//! * `qubit-lg` — the full quantum qubit-legalization path (§III-C relaxation loop)
//!   on the global placement of each benched topology: indexed engine vs
//!   [`qgdp::QuantumQubitLegalizer::legalize_with_spacing_reference`].
//! * `overlap-stats` — the placement overlap statistic on the same GP layout:
//!   sweepline `count_overlaps` vs the brute-force reference.
//! * `qubit-lg-synthetic` — the bare macro engine on uniform-random macro sets well
//!   beyond the paper's device sizes, demonstrating the super-quadratic scaling gap
//!   (the reference grows ~n², the indexed path near-linearly).
//!
//! Every row asserts the optimized and reference outputs are **bit-identical**
//! before timing is reported.  Override the output path with `QGDP_BENCH_OUT`, the
//! topology panel with `QGDP_BENCH_TOPOLOGIES` (comma-separated names) and
//! repetitions with `QGDP_BENCH_REPS` (fastest rep is reported, criterion-style).

use qgdp::legalize::{legalize_macros, legalize_macros_reference, macros_are_legal};
use qgdp::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// One measured workload.
struct Record {
    kind: &'static str,
    workload: String,
    /// Problem size: macros for legalization rows, components for overlap rows.
    size: usize,
    spacing: f64,
    optimized_ms: f64,
    reference_ms: f64,
}

impl Record {
    fn speedup(&self) -> f64 {
        self.reference_ms / self.optimized_ms
    }
}

fn best_of<F: FnMut() -> f64>(reps: usize, mut run: F) -> f64 {
    (0..reps.max(1))
        .map(|_| run())
        .fold(f64::INFINITY, f64::min)
}

fn time_ms<T, F: FnMut() -> T>(mut run: F) -> f64 {
    let start = Instant::now();
    std::hint::black_box(run());
    start.elapsed().as_secs_f64() * 1e3
}

/// GP input for one topology: the session and its GP artifact (cheap Arc-shared
/// handles — the benched engines borrow the netlist/die/positions from them).
struct GpCase {
    session: Session,
    placed: GlobalPlacement,
}

impl GpCase {
    fn netlist(&self) -> &QuantumNetlist {
        self.session.netlist()
    }

    fn gp(&self) -> &Placement {
        self.placed.placement()
    }
}

fn gp_case(topology: StandardTopology) -> GpCase {
    // One staged session per topology: the netlist is built once and the GP
    // artifact provides the die + positions every benched engine consumes.
    let session = Session::new(&topology.build(), FlowConfig::default())
        .unwrap_or_else(|e| panic!("session for {topology}: {e}"));
    let placed = session.global_place();
    GpCase { session, placed }
}

/// The §III-C qubit-LG path (relaxation loop + engine), optimized vs reference.
fn bench_qubit_lg(topology: StandardTopology, case: &GpCase, reps: usize) -> Record {
    let lg = QuantumQubitLegalizer::new();
    let optimized = lg
        .legalize_with_spacing(case.netlist(), &case.placed.die(), case.gp())
        .unwrap_or_else(|e| panic!("{topology}: qubit legalization failed: {e}"));
    let reference = lg
        .legalize_with_spacing_reference(case.netlist(), &case.placed.die(), case.gp())
        .unwrap_or_else(|e| panic!("{topology}: reference legalization failed: {e}"));
    assert_eq!(
        optimized, reference,
        "{topology}: indexed qubit-LG path must be bit-identical to the reference"
    );

    let optimized_ms = best_of(reps, || {
        time_ms(|| lg.legalize_with_spacing(case.netlist(), &case.placed.die(), case.gp()))
    });
    let reference_ms = best_of(reps, || {
        time_ms(|| {
            lg.legalize_with_spacing_reference(case.netlist(), &case.placed.die(), case.gp())
        })
    });
    Record {
        kind: "qubit-lg",
        workload: topology.name().to_string(),
        size: case.netlist().num_qubits(),
        spacing: optimized.1,
        optimized_ms,
        reference_ms,
    }
}

/// The GP overlap statistic (GpStats.overlaps), sweepline vs brute force.
fn bench_overlap_stats(topology: StandardTopology, case: &GpCase, reps: usize) -> Record {
    let fast = case.gp().count_overlaps(case.netlist());
    let brute = case.gp().count_overlaps_reference(case.netlist());
    assert_eq!(
        fast, brute,
        "{topology}: sweepline overlap count must equal the reference"
    );
    let optimized_ms = best_of(reps, || {
        time_ms(|| case.gp().count_overlaps(case.netlist()))
    });
    let reference_ms = best_of(reps, || {
        time_ms(|| case.gp().count_overlaps_reference(case.netlist()))
    });
    Record {
        kind: "overlap-stats",
        workload: topology.name().to_string(),
        size: case.netlist().num_components(),
        spacing: 0.0,
        optimized_ms,
        reference_ms,
    }
}

/// The bare macro engine on a uniform-random macro set of `n` 40×40 macros at ~35%
/// spacing-inflated utilization — the scaling row.
fn bench_synthetic(n: usize, reps: usize) -> Record {
    let size = 40.0;
    let spacing = 10.0;
    let side = ((n as f64) * (size + spacing) * (size + spacing) / 0.35).sqrt();
    let die = Rect::from_lower_left(Point::new(0.0, 0.0), side, side);
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE ^ n as u64);
    let desired: Vec<Rect> = (0..n)
        .map(|_| {
            let x = rng.gen_range(size * 0.5..side - size * 0.5);
            let y = rng.gen_range(size * 0.5..side - size * 0.5);
            Rect::from_center(Point::new(x, y), size, size)
        })
        .collect();

    let optimized = legalize_macros(&desired, &die, spacing)
        .unwrap_or_else(|e| panic!("synthetic-{n}: indexed engine failed: {e}"));
    let reference = legalize_macros_reference(&desired, &die, spacing)
        .unwrap_or_else(|e| panic!("synthetic-{n}: reference engine failed: {e}"));
    assert_eq!(
        optimized, reference,
        "synthetic-{n}: engines must be bit-identical"
    );
    assert!(
        macros_are_legal(&desired, &optimized, &die, spacing),
        "synthetic-{n}: result fails the legality oracle"
    );

    let optimized_ms = best_of(reps, || {
        time_ms(|| legalize_macros(&desired, &die, spacing))
    });
    let reference_ms = best_of(reps, || {
        time_ms(|| legalize_macros_reference(&desired, &die, spacing))
    });
    Record {
        kind: "qubit-lg-synthetic",
        workload: format!("synthetic-{n}"),
        size: n,
        spacing,
        optimized_ms,
        reference_ms,
    }
}

fn main() {
    let reps = std::env::var("QGDP_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let default_panel = [
        StandardTopology::Grid,
        StandardTopology::Falcon,
        StandardTopology::Eagle,
    ];
    let all = StandardTopology::all();
    let topologies: Vec<StandardTopology> = match std::env::var("QGDP_BENCH_TOPOLOGIES") {
        Ok(names) => names
            .split(',')
            .map(|name| {
                *all.iter()
                    .find(|t| t.name().eq_ignore_ascii_case(name.trim()))
                    .unwrap_or_else(|| panic!("unknown topology {name:?}"))
            })
            .collect(),
        Err(_) => default_panel.to_vec(),
    };

    let mut records = Vec::new();
    for &topology in &topologies {
        let case = gp_case(topology);
        records.push(bench_qubit_lg(topology, &case, reps));
        records.push(bench_overlap_stats(topology, &case, reps));
    }
    for n in [400, 800, 1600] {
        records.push(bench_synthetic(n, reps));
    }

    let mut rows = String::new();
    for r in &records {
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"kind\": \"{}\", \"workload\": \"{}\", \"size\": {}, \
             \"spacing\": {:.2}, \"optimized_ms\": {:.3}, \"reference_ms\": {:.3}, \
             \"speedup\": {:.2}, \"bit_identical\": true }}",
            r.kind,
            r.workload,
            r.size,
            r.spacing,
            r.optimized_ms,
            r.reference_ms,
            r.speedup(),
        ));
    }
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"benchmark\": \"qubit legalization + overlap stats: spatial index / \
         sweepline vs O(n^2) reference\",\n  \"reps\": {reps},\n  \
         \"host_cpus\": {host_cpus},\n  \"records\": [\n{rows}\n  ]\n}}\n"
    );
    let out_path =
        std::env::var("QGDP_BENCH_OUT").unwrap_or_else(|_| "BENCH_legalize.json".to_string());
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{json}");
    for r in &records {
        println!(
            "{:>18} {:>14} (n={:>5}): {:>9.3}ms -> {:>8.3}ms ({:.2}x, bit-identical)",
            r.kind,
            r.workload,
            r.size,
            r.reference_ms,
            r.optimized_ms,
            r.speedup(),
        );
    }
    println!("recorded in {out_path}");
}
