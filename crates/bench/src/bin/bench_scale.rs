//! Roadmap-scale wall-clock curves: runs the staged flow on the 1k/10k-qubit
//! heavy-hex generators, fits a log-log slope per stage, and records the result
//! in `BENCH_scale.json` for `scripts/bench_gate` to hold sub-quadratic.
//!
//! ```bash
//! cargo run --release -p qgdp-bench --bin bench_scale
//! ```
//!
//! Three kinds of rows are recorded:
//!
//! * `scale` — one row per (device size, stage) with the best-of-reps wall
//!   clock.  Stages: `gp` (global placement), `qubit-lg` (§III-C relaxation
//!   loop), `report` ([`LayoutReport::evaluate`] on the legalized layout) and
//!   `end-to-end` (netlist build → GP → qubit-LG → report).  At sizes below
//!   `QGDP_SCALE_REFERENCE_CEILING` (default 2500) the retained reference
//!   engine also runs: qubit-LG and the report's violation scan must be
//!   **bit-identical**, GP records its `hpwl_rel_diff` against the quadratic
//!   reference (the placer contract is ULP-level agreement, not bit equality).
//! * `scale-distance` — the distance-provider attestation: after mapping a
//!   benchmark circuit on each device the row records which tier served the
//!   distances and whether the dense O(n²) matrix was ever materialized.  The
//!   binary **panics** if a roadmap-scale device (above the lazy threshold)
//!   materializes the dense matrix — that allocation is the thing this PR
//!   removes.
//! * `scale-slope` — per stage, the least-squares slope of ln(wall-clock)
//!   against ln(size) over the heavy-hex ladder.  `scripts/bench_gate` holds
//!   each slope under its ceiling (default 2.0: sub-quadratic).
//!
//! A multi-chip module (2×2 heavy-hex tiles stitched by inter-chip couplers)
//! runs the end-to-end stage once as an extra `scale` row; it is excluded from
//! the slope fits, which use the single-chip ladder only.
//!
//! Override the size ladder with `QGDP_SCALE_SIZES` (comma-separated target
//! qubit counts), the reference ceiling with `QGDP_SCALE_REFERENCE_CEILING`,
//! the output path with `QGDP_BENCH_OUT` and repetitions with
//! `QGDP_BENCH_REPS` (fastest rep is reported, criterion-style).

use qgdp::metrics::{find_violations, find_violations_reference, CrosstalkConfig, LayoutReport};
use qgdp::prelude::*;
use qgdp::topology::{
    distance_settings_from_env, multi_chip, resolve_tier, roadmap_heavy_hex, DistanceTier, Topology,
};
use std::time::Instant;

/// One measured (size, stage) point.
struct ScaleRow {
    stage: &'static str,
    workload: String,
    size: usize,
    wall_ms: f64,
    /// Reference-engine wall clock, when the size is under the ceiling.
    reference_ms: Option<f64>,
    /// Bit-identity verdict, for stages whose reference contract is exact.
    bit_identical: Option<bool>,
    /// GP-only: relative HPWL disagreement with the quadratic reference.
    hpwl_rel_diff: Option<f64>,
}

/// The distance-provider attestation for one device.
struct DistanceRow {
    workload: String,
    size: usize,
    map_ms: f64,
    tier: DistanceTier,
    dense_materialized: bool,
    rows_materialized: usize,
}

fn best_of<F: FnMut() -> f64>(reps: usize, mut run: F) -> f64 {
    (0..reps.max(1))
        .map(|_| run())
        .fold(f64::INFINITY, f64::min)
}

fn time_ms<T, F: FnMut() -> T>(mut run: F) -> f64 {
    let start = Instant::now();
    std::hint::black_box(run());
    start.elapsed().as_secs_f64() * 1e3
}

/// Least-squares slope of ln(y) on ln(x).  Points with non-positive wall clock
/// are clamped to 1 µs so a timer-resolution zero cannot poison the fit.
fn log_log_slope(points: &[(usize, f64)]) -> f64 {
    assert!(points.len() >= 2, "slope fit needs at least two sizes");
    let xs: Vec<f64> = points.iter().map(|&(n, _)| (n as f64).ln()).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, ms)| ms.max(1e-3).ln()).collect();
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let var: f64 = xs.iter().map(|x| (x - mean_x) * (x - mean_x)).sum();
    cov / var
}

/// Runs the four benched stages on one device and pushes their rows.
fn bench_device(
    topology: &Topology,
    reps: usize,
    reference_ceiling: usize,
    rows: &mut Vec<ScaleRow>,
) {
    let workload = topology.name().to_string();
    let size = topology.num_qubits();
    let with_reference = size <= reference_ceiling;
    let geometry = ComponentGeometry::default();
    let crosstalk = CrosstalkConfig::default();
    let netlist = topology
        .to_netlist(geometry, NetModel::Pseudo)
        .unwrap_or_else(|e| panic!("{workload}: netlist build failed: {e}"));
    let placer = GlobalPlacer::default();

    // --- gp ---
    let gp = placer.place(&netlist, topology);
    let gp_ms = best_of(reps, || time_ms(|| placer.place(&netlist, topology)));
    let (gp_reference_ms, hpwl_rel_diff) = if with_reference {
        let reference = placer.place_reference(&netlist, topology);
        let diff = (gp.stats.hpwl - reference.stats.hpwl).abs() / reference.stats.hpwl.abs();
        let ms = time_ms(|| placer.place_reference(&netlist, topology));
        (Some(ms), Some(diff))
    } else {
        (None, None)
    };
    rows.push(ScaleRow {
        stage: "gp",
        workload: workload.clone(),
        size,
        wall_ms: gp_ms,
        reference_ms: gp_reference_ms,
        bit_identical: None,
        hpwl_rel_diff,
    });

    // --- qubit-lg ---
    let lg = QuantumQubitLegalizer::new();
    let legalized = lg
        .legalize_with_spacing(&netlist, &gp.die, &gp.placement)
        .unwrap_or_else(|e| panic!("{workload}: qubit legalization failed: {e}"));
    let lg_ms = best_of(reps, || {
        time_ms(|| lg.legalize_with_spacing(&netlist, &gp.die, &gp.placement))
    });
    let (lg_reference_ms, lg_identical) = if with_reference {
        let reference = lg
            .legalize_with_spacing_reference(&netlist, &gp.die, &gp.placement)
            .unwrap_or_else(|e| panic!("{workload}: reference legalization failed: {e}"));
        assert_eq!(
            legalized, reference,
            "{workload}: indexed qubit-LG must be bit-identical to the reference"
        );
        let ms = time_ms(|| lg.legalize_with_spacing_reference(&netlist, &gp.die, &gp.placement));
        (Some(ms), Some(true))
    } else {
        (None, None)
    };
    rows.push(ScaleRow {
        stage: "qubit-lg",
        workload: workload.clone(),
        size,
        wall_ms: lg_ms,
        reference_ms: lg_reference_ms,
        bit_identical: lg_identical,
        hpwl_rel_diff: None,
    });

    // --- report ---
    let report_ms = best_of(reps, || {
        time_ms(|| LayoutReport::evaluate(&netlist, &legalized.0, &crosstalk))
    });
    let (report_reference_ms, report_identical) = if with_reference {
        let fast = find_violations(&netlist, &legalized.0, &crosstalk);
        let reference = find_violations_reference(&netlist, &legalized.0, &crosstalk);
        assert_eq!(
            fast, reference,
            "{workload}: flat violation scan must be bit-identical to the reference"
        );
        let ms = time_ms(|| find_violations_reference(&netlist, &legalized.0, &crosstalk));
        (Some(ms), Some(true))
    } else {
        (None, None)
    };
    rows.push(ScaleRow {
        stage: "report",
        workload: workload.clone(),
        size,
        wall_ms: report_ms,
        reference_ms: report_reference_ms,
        bit_identical: report_identical,
        hpwl_rel_diff: None,
    });

    // --- end-to-end (netlist build -> GP -> qubit-LG -> report) ---
    let e2e_ms = best_of(reps, || {
        time_ms(|| {
            let netlist = topology
                .to_netlist(geometry, NetModel::Pseudo)
                .expect("netlist build");
            let gp = placer.place(&netlist, topology);
            let legalized = lg
                .legalize_with_spacing(&netlist, &gp.die, &gp.placement)
                .expect("qubit legalization");
            LayoutReport::evaluate(&netlist, &legalized.0, &crosstalk)
        })
    });
    rows.push(ScaleRow {
        stage: "end-to-end",
        workload,
        size,
        wall_ms: e2e_ms,
        reference_ms: None,
        bit_identical: None,
        hpwl_rel_diff: None,
    });
}

/// Maps a benchmark circuit on the device and attests which distance tier
/// served it.  Panics when a device above the lazy threshold materializes the
/// dense O(n²) matrix.
fn attest_distances(topology: &Topology) -> DistanceRow {
    let circuit = Benchmark::Bv9.circuit();
    let map_ms = time_ms(|| map_circuit(&circuit, topology, 0xBEEF));
    let dist = topology.distances();
    let (mode, threshold, _) = distance_settings_from_env();
    let expected = resolve_tier(mode, threshold, topology.num_qubits());
    assert_eq!(
        dist.tier(),
        expected,
        "{}: distance tier does not match the policy",
        topology.name()
    );
    if dist.tier() == DistanceTier::Lazy {
        assert!(
            !topology.dense_distances_materialized(),
            "{}: lazy-tier device materialized the dense distance matrix",
            topology.name()
        );
    }
    DistanceRow {
        workload: topology.name().to_string(),
        size: topology.num_qubits(),
        map_ms,
        tier: dist.tier(),
        dense_materialized: topology.dense_distances_materialized(),
        rows_materialized: dist.rows_materialized(),
    }
}

fn main() {
    let reps: usize = std::env::var("QGDP_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let reference_ceiling: usize = std::env::var("QGDP_SCALE_REFERENCE_CEILING")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2500);
    let sizes: Vec<usize> = std::env::var("QGDP_SCALE_SIZES")
        .unwrap_or_else(|_| "1000,2000,4000,10000".to_string())
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("QGDP_SCALE_SIZES: bad size {s:?}"))
        })
        .collect();

    let mut rows = Vec::new();
    let mut distance_rows = Vec::new();
    let mut ladder: Vec<(String, usize)> = Vec::new();
    for &target in &sizes {
        let topology = roadmap_heavy_hex(target);
        eprintln!(
            "bench_scale: {} ({} qubits, target {target})",
            topology.name(),
            topology.num_qubits()
        );
        bench_device(&topology, reps, reference_ceiling, &mut rows);
        distance_rows.push(attest_distances(&topology));
        ladder.push((topology.name().to_string(), topology.num_qubits()));
    }

    // One multi-chip module through the end-to-end stage (not part of the fits).
    // Gap is in canonical lattice units (pitch 1.0): a few pitches of street
    // between tiles, as on real multi-chip carriers.
    let chip = roadmap_heavy_hex(*sizes.first().expect("at least one size"));
    let module = multi_chip(&chip, 2, 2, 8, 4.0);
    eprintln!(
        "bench_scale: {} ({} qubits)",
        module.name(),
        module.num_qubits()
    );
    bench_device(&module, reps, reference_ceiling, &mut rows);
    distance_rows.push(attest_distances(&module));

    // Per-stage log-log slopes over the single-chip ladder.
    let ladder_names: Vec<&str> = ladder.iter().map(|(name, _)| name.as_str()).collect();
    let stages = ["gp", "qubit-lg", "report", "end-to-end"];
    let mut slopes: Vec<(&str, f64, usize, usize, usize)> = Vec::new();
    for stage in stages {
        let points: Vec<(usize, f64)> = rows
            .iter()
            .filter(|r| r.stage == stage && ladder_names.contains(&r.workload.as_str()))
            .map(|r| (r.size, r.wall_ms))
            .collect();
        if points.len() >= 2 {
            let slope = log_log_slope(&points);
            let min = points.iter().map(|p| p.0).min().unwrap();
            let max = points.iter().map(|p| p.0).max().unwrap();
            slopes.push((stage, slope, points.len(), min, max));
        }
    }

    // --- JSON ---
    let mut out = String::new();
    for r in &rows {
        if !out.is_empty() {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{ \"kind\": \"scale\", \"stage\": \"{}\", \"workload\": \"{}\", \
             \"size\": {}, \"wall_ms\": {:.3}",
            r.stage, r.workload, r.size, r.wall_ms
        ));
        if let Some(ms) = r.reference_ms {
            out.push_str(&format!(", \"reference_ms\": {ms:.3}"));
        }
        if let Some(ok) = r.bit_identical {
            out.push_str(&format!(", \"bit_identical\": {ok}"));
        }
        if let Some(diff) = r.hpwl_rel_diff {
            out.push_str(&format!(", \"hpwl_rel_diff\": {diff:.3e}"));
        }
        out.push_str(" }");
    }
    for r in &distance_rows {
        out.push_str(&format!(
            ",\n    {{ \"kind\": \"scale-distance\", \"workload\": \"{}\", \"size\": {}, \
             \"map_ms\": {:.3}, \"distance_tier\": \"{}\", \"dense_materialized\": {}, \
             \"rows_materialized\": {} }}",
            r.workload, r.size, r.map_ms, r.tier, r.dense_materialized, r.rows_materialized
        ));
    }
    for (stage, slope, points, min, max) in &slopes {
        out.push_str(&format!(
            ",\n    {{ \"kind\": \"scale-slope\", \"stage\": \"{stage}\", \"slope\": {slope:.3}, \
             \"points\": {points}, \"min_size\": {min}, \"max_size\": {max} }}"
        ));
    }
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"benchmark\": \"roadmap-scale wall-clock curves: staged flow on \
         heavy-hex 1k..10k devices, log-log slope per stage\",\n  \"reps\": {reps},\n  \
         \"host_cpus\": {host_cpus},\n  \"records\": [\n{out}\n  ]\n}}\n"
    );
    let out_path =
        std::env::var("QGDP_BENCH_OUT").unwrap_or_else(|_| "BENCH_scale.json".to_string());
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{json}");
    for (stage, slope, points, min, max) in &slopes {
        println!("{stage:>12}: slope {slope:+.3} over {points} sizes ({min}..{max})");
    }
    println!("recorded in {out_path}");
}
