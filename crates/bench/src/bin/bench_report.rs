//! Measures the incremental metrics engine against the from-scratch reference paths
//! and records the result in `BENCH_report.json`.
//!
//! ```bash
//! cargo run --release -p qgdp-bench --bin bench_report
//! ```
//!
//! Three record kinds per benched topology, each an optimized-vs-reference pair on
//! identical inputs whose outputs are asserted **bit-identical** before timing:
//!
//! * **`crossings`** — the [`SegmentGrid`]-indexed crossing detector
//!   ([`crossing_pairs`]) vs the O(n²) pairwise reference
//!   ([`crossing_pairs_reference`]);
//! * **`report-scan-cache`** — assembling a [`LayoutReport`] *and* a
//!   [`FidelityEvaluator`] from one shared [`LayoutScan`] (the session-artifact
//!   cache path) vs paying the layout walk twice with [`LayoutReport::evaluate`] and
//!   [`FidelityEvaluator::new`];
//! * **`delta-moves`** — scoring a deterministic move sequence through one
//!   [`ReportDelta`] (construction amortised over the moves) vs a full
//!   [`LayoutReport::evaluate`] after every move.
//!
//! On the real (legalized) topologies both crossing legs are dominated by the shared
//! route construction, so additional **`crossings-synthetic`** rows measure serpentine
//! chain netlists of growing resonator count, where the reference's quadratic
//! route-pair walk dominates and the index's near-linear behaviour shows.
//!
//! Override the output path with `QGDP_BENCH_OUT`, the topology panel with
//! `QGDP_BENCH_TOPOLOGIES` (comma-separated names) and repetitions with
//! `QGDP_BENCH_REPS` (fastest rep is reported, criterion-style).
//!
//! [`SegmentGrid`]: qgdp::geometry::SegmentGrid
//! [`crossing_pairs`]: qgdp::metrics::crossing_pairs
//! [`crossing_pairs_reference`]: qgdp::metrics::crossing_pairs_reference
//! [`LayoutReport`]: qgdp::metrics::LayoutReport
//! [`LayoutReport::evaluate`]: qgdp::metrics::LayoutReport::evaluate
//! [`FidelityEvaluator`]: qgdp::metrics::FidelityEvaluator
//! [`FidelityEvaluator::new`]: qgdp::metrics::FidelityEvaluator::new
//! [`LayoutScan`]: qgdp::metrics::LayoutScan
//! [`ReportDelta`]: qgdp::metrics::ReportDelta

use qgdp::metrics::{
    crossing_pairs, crossing_pairs_reference, CrosstalkConfig, FidelityEvaluator, LayoutReport,
    LayoutScan, NoiseModel, ReportDelta,
};
use qgdp::prelude::*;
use qgdp_bench::experiment_config;
use qgdp_geometry::Point;
use qgdp_netlist::{ComponentGeometry, ComponentId, NetlistBuilder, Placement, QuantumNetlist};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Number of moves in the `delta-moves` sequence.
const MOVES: usize = 32;

/// One measured optimized-vs-reference pair.
struct Record {
    kind: &'static str,
    topology: String,
    components: usize,
    resonators: usize,
    optimized_ms: f64,
    reference_ms: f64,
}

impl Record {
    fn speedup(&self) -> f64 {
        self.reference_ms / self.optimized_ms
    }
}

fn best_of<F: FnMut() -> f64>(reps: usize, mut run: F) -> f64 {
    (0..reps.max(1))
        .map(|_| run())
        .fold(f64::INFINITY, f64::min)
}

/// The legalized qGDP layout of one topology — the placement every record measures on.
fn legalized_layout(topology: StandardTopology) -> (Session, Placement) {
    let topo = topology.build();
    let session = Session::new(&topo, experiment_config()).expect("session builds");
    let cell = session
        .global_place()
        .legalize(LegalizationStrategy::Qgdp)
        .unwrap_or_else(|e| panic!("qGDP legalization failed on {topology}: {e}"));
    let placement = cell.placement().clone();
    (session, placement)
}

/// The deterministic `delta-moves` sequence: every k-th segment nudged by a small
/// index-derived offset (seed-free, so the verify and timing phases replay it
/// exactly).
fn move_sequence(netlist: &QuantumNetlist, placement: &Placement) -> Vec<(ComponentId, Point)> {
    let segments: Vec<ComponentId> = netlist.segment_ids().map(ComponentId::Segment).collect();
    (0..MOVES)
        .map(|k| {
            let id = segments[(k * 13) % segments.len()];
            let from = placement.component(id);
            let dx = ((k * 37) % 21) as f64 - 10.0;
            let dy = ((k * 53) % 21) as f64 - 10.0;
            (id, Point::new(from.x + dx, from.y + dy))
        })
        .collect()
}

/// Asserts every optimized path is bit-identical to its reference on this layout.
fn verify_bit_identity(
    topology: StandardTopology,
    netlist: &QuantumNetlist,
    placement: &Placement,
    config: &CrosstalkConfig,
) {
    // Indexed crossing detector vs pairwise reference.
    assert_eq!(
        crossing_pairs(netlist, placement),
        crossing_pairs_reference(netlist, placement),
        "{topology}: indexed crossing detector must match the reference"
    );

    // Scan-cached report + evaluator vs the from-scratch pair.
    let scan = LayoutScan::scan(netlist, placement, config);
    let cached_report = LayoutReport::from_scan(netlist, &scan);
    let fresh_report = LayoutReport::evaluate(netlist, placement, config);
    assert_eq!(
        cached_report, fresh_report,
        "{topology}: scan-cached report"
    );
    assert_eq!(
        cached_report.hotspot_proportion_percent.to_bits(),
        fresh_report.hotspot_proportion_percent.to_bits(),
        "{topology}: P_h must be bit-identical"
    );
    let noise = NoiseModel::default();
    let cached_eval = FidelityEvaluator::from_scan(netlist, noise, &scan);
    let fresh_eval = FidelityEvaluator::new(netlist, placement, noise, config);
    assert_eq!(
        cached_eval.violations(),
        fresh_eval.violations(),
        "{topology}: scan-cached evaluator violations"
    );
    assert_eq!(
        cached_eval.crossings(),
        fresh_eval.crossings(),
        "{topology}: scan-cached evaluator crossings"
    );

    // Delta engine vs a full evaluate after every move.
    let mut delta = ReportDelta::new(netlist, placement, config);
    let mut scratch = placement.clone();
    for (id, to) in move_sequence(netlist, placement) {
        delta.apply_move(id, to);
        scratch.set_component(id, to);
        let fresh = LayoutReport::evaluate(netlist, &scratch, config);
        let incremental = delta.report();
        assert_eq!(incremental, fresh, "{topology}: delta report after a move");
        assert_eq!(
            incremental.hotspot_proportion_percent.to_bits(),
            fresh.hotspot_proportion_percent.to_bits(),
            "{topology}: delta P_h must be bit-identical"
        );
    }
}

fn bench_topology(topology: StandardTopology, reps: usize) -> Vec<Record> {
    let (session, placement) = legalized_layout(topology);
    let netlist = session.netlist();
    let config = experiment_config().crosstalk;
    verify_bit_identity(topology, netlist, &placement, &config);

    let components = netlist.num_components();
    let resonators = netlist.num_resonators();
    let row = |kind: &'static str, optimized_ms: f64, reference_ms: f64| Record {
        kind,
        topology: topology.name().to_string(),
        components,
        resonators,
        optimized_ms,
        reference_ms,
    };

    // --- crossings: indexed detector vs pairwise reference.
    let crossings_opt = best_of(reps, || {
        let start = Instant::now();
        std::hint::black_box(crossing_pairs(netlist, &placement));
        start.elapsed().as_secs_f64() * 1e3
    });
    let crossings_ref = best_of(reps, || {
        let start = Instant::now();
        std::hint::black_box(crossing_pairs_reference(netlist, &placement));
        start.elapsed().as_secs_f64() * 1e3
    });

    // --- report-scan-cache: report + fidelity evaluator off one shared scan vs
    // paying the layout walk once per consumer.
    let noise = NoiseModel::default();
    let scan_opt = best_of(reps, || {
        let start = Instant::now();
        let scan = LayoutScan::scan(netlist, &placement, &config);
        std::hint::black_box(LayoutReport::from_scan(netlist, &scan));
        std::hint::black_box(FidelityEvaluator::from_scan(netlist, noise, &scan));
        start.elapsed().as_secs_f64() * 1e3
    });
    let scan_ref = best_of(reps, || {
        let start = Instant::now();
        std::hint::black_box(LayoutReport::evaluate(netlist, &placement, &config));
        std::hint::black_box(FidelityEvaluator::new(netlist, &placement, noise, &config));
        start.elapsed().as_secs_f64() * 1e3
    });

    // --- delta-moves: one ReportDelta scoring the whole sequence (construction
    // amortised) vs a from-scratch evaluate per move.
    let moves = move_sequence(netlist, &placement);
    let delta_opt = best_of(reps, || {
        let start = Instant::now();
        let mut delta = ReportDelta::new(netlist, &placement, &config);
        for &(id, to) in &moves {
            delta.apply_move(id, to);
            std::hint::black_box(delta.report());
        }
        start.elapsed().as_secs_f64() * 1e3
    });
    let delta_ref = best_of(reps, || {
        let start = Instant::now();
        let mut scratch = placement.clone();
        for &(id, to) in &moves {
            scratch.set_component(id, to);
            std::hint::black_box(LayoutReport::evaluate(netlist, &scratch, &config));
        }
        start.elapsed().as_secs_f64() * 1e3
    });

    vec![
        row("crossings", crossings_opt, crossings_ref),
        row("report-scan-cache", scan_opt, scan_ref),
        row("delta-moves", delta_opt, delta_ref),
    ]
}

/// A serpentine chain of `n` resonators well beyond the paper's device sizes, each
/// route jittered but locally confined — the regime where the reference's quadratic
/// route-pair walk dominates while the grid stays near-linear (the real topologies
/// are too small for the detectors to separate from shared route construction).
fn serpentine_chain(n: usize) -> (QuantumNetlist, Placement) {
    let netlist = NetlistBuilder::new(ComponentGeometry::new())
        .qubits(n + 1)
        .couple_all((0..n).map(|i| (i, i + 1)))
        .build()
        .unwrap_or_else(|e| panic!("synthetic-{n}: netlist build failed: {e}"));

    // Qubits on a boustrophedon grid so chain neighbours stay physically adjacent.
    let pitch = 250.0;
    let cols = ((n + 1) as f64).sqrt().ceil() as usize;
    let qubit_at = |k: usize| {
        let row = k / cols;
        let col = if row % 2 == 0 {
            k % cols
        } else {
            cols - 1 - (k % cols)
        };
        Point::new(col as f64 * pitch, row as f64 * pitch)
    };

    // Each resonator's blocks spread along its qubit–qubit axis with enough jitter
    // to fragment the route into a short wiggly polyline near that axis.
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED ^ n as u64);
    let mut placement = Placement::new(&netlist);
    for k in 0..=n {
        placement.set_component(ComponentId::Qubit(qgdp_netlist::QubitId(k)), qubit_at(k));
    }
    for r in 0..n {
        let (a, b) = (qubit_at(r), qubit_at(r + 1));
        let segments = netlist.resonator(qgdp_netlist::ResonatorId(r)).segments();
        let steps = (segments.len() + 1) as f64;
        for (j, &s) in segments.iter().enumerate() {
            let t = (j + 1) as f64 / steps;
            let base = Point::new(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y));
            let jx = rng.gen_range(-30.0..30.0);
            let jy = rng.gen_range(-30.0..30.0);
            placement.set_component(
                ComponentId::Segment(s),
                Point::new(base.x + jx, base.y + jy),
            );
        }
    }
    (netlist, placement)
}

fn bench_synthetic_crossings(n: usize, reps: usize) -> Record {
    let (netlist, placement) = serpentine_chain(n);
    let optimized = crossing_pairs(&netlist, &placement);
    let reference = crossing_pairs_reference(&netlist, &placement);
    assert_eq!(
        optimized, reference,
        "synthetic-{n}: indexed crossing detector must match the reference"
    );

    let optimized_ms = best_of(reps, || {
        let start = Instant::now();
        std::hint::black_box(crossing_pairs(&netlist, &placement));
        start.elapsed().as_secs_f64() * 1e3
    });
    let reference_ms = best_of(reps, || {
        let start = Instant::now();
        std::hint::black_box(crossing_pairs_reference(&netlist, &placement));
        start.elapsed().as_secs_f64() * 1e3
    });
    Record {
        kind: "crossings-synthetic",
        topology: format!("synthetic-{n}"),
        components: netlist.num_components(),
        resonators: netlist.num_resonators(),
        optimized_ms,
        reference_ms,
    }
}

fn main() {
    let reps = std::env::var("QGDP_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let default_panel = [
        StandardTopology::Grid,
        StandardTopology::Falcon,
        StandardTopology::Eagle,
    ];
    let all = StandardTopology::all();
    let topologies: Vec<StandardTopology> = match std::env::var("QGDP_BENCH_TOPOLOGIES") {
        Ok(names) => names
            .split(',')
            .map(|name| {
                *all.iter()
                    .find(|t| t.name().eq_ignore_ascii_case(name.trim()))
                    .unwrap_or_else(|| panic!("unknown topology {name:?}"))
            })
            .collect(),
        Err(_) => default_panel.to_vec(),
    };

    let mut records: Vec<Record> = topologies
        .iter()
        .flat_map(|&t| bench_topology(t, reps))
        .collect();
    if std::env::var("QGDP_BENCH_TOPOLOGIES").is_err() {
        records.extend([4000, 8000, 16000].map(|n| bench_synthetic_crossings(n, reps)));
    }

    let mut rows = String::new();
    for r in &records {
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"kind\": \"{}\", \"topology\": \"{}\", \"components\": {}, \
             \"resonators\": {}, \"moves\": {}, \"optimized_ms\": {:.3}, \
             \"reference_ms\": {:.3}, \"speedup\": {:.2}, \"bit_identical\": true }}",
            r.kind,
            r.topology,
            r.components,
            r.resonators,
            if r.kind == "delta-moves" { MOVES } else { 0 },
            r.optimized_ms,
            r.reference_ms,
            r.speedup(),
        ));
    }
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"benchmark\": \"incremental metrics engine: indexed crossings, shared \
         layout scans and delta reports vs from-scratch reference paths\",\n  \
         \"reps\": {reps},\n  \"host_cpus\": {host_cpus},\n  \"records\": [\n{rows}\n  ]\n}}\n"
    );
    let out_path =
        std::env::var("QGDP_BENCH_OUT").unwrap_or_else(|_| "BENCH_report.json".to_string());
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{json}");
    for r in &records {
        println!(
            "{:>8} / {:<18} {:>9.3}ms -> {:>8.3}ms ({:.2}x, bit-identical)",
            r.topology,
            r.kind,
            r.reference_ms,
            r.optimized_ms,
            r.speedup(),
        );
    }
    println!("recorded in {out_path}");
}
