//! Regenerates the conceptual Fig. 1: layout quality versus placement-optimisation
//! stage, contrasting a quantum-aware legalizer with a classic one.  Quality is
//! measured as the mean qaoa-4 fidelity and (negated) hotspot proportion after each
//! stage: global placement, legalization (classic = Tetris vs quantum-aware = qGDP-LG)
//! and detailed placement.
//!
//! Both legalizers fork the *same* [`GlobalPlacement`] artifact of one staged
//! [`qgdp::Session`], so the contrast isolates the legalizer exactly.
//!
//! ```bash
//! cargo run --release -p qgdp-bench --bin fig1
//! ```

use qgdp::metrics::{FidelityEvaluator, LayoutReport};
use qgdp::prelude::*;
use qgdp_bench::{experiment_session, mappings_per_benchmark, EXPERIMENT_SEED};

fn main() {
    let topology = StandardTopology::Grid;
    let session = experiment_session(topology);
    let mappings = mappings_per_benchmark();
    let noise = NoiseModel::default();
    let maps = random_mappings(
        &Benchmark::Qaoa4.circuit(),
        session.topology(),
        mappings,
        EXPERIMENT_SEED,
    );

    println!(
        "FIG. 1: layout quality vs placement stage on {} (qaoa-4, {mappings} mappings)",
        topology.name()
    );
    println!();
    println!(
        "{:<28} {:>10} {:>9} {:>12}",
        "stage", "fidelity", "Ph (%)", "runtime (ms)"
    );
    println!("{}", "-".repeat(64));

    let gp = session.global_place();
    let quantum = gp
        .legalize(LegalizationStrategy::Qgdp)
        .expect("qGDP legalization");
    let classic = gp
        .legalize(LegalizationStrategy::Tetris)
        .expect("Tetris legalization");
    let detailed = quantum.detail();

    let evaluate = |placement: &Placement| -> (f64, f64) {
        let report =
            LayoutReport::evaluate(session.netlist(), placement, &session.config().crosstalk);
        let fidelity = FidelityEvaluator::new(
            session.netlist(),
            placement,
            noise,
            &session.config().crosstalk,
        )
        .mean(&maps);
        (fidelity, report.hotspot_proportion_percent)
    };

    let (f, ph) = evaluate(gp.placement());
    println!(
        "{:<28} {:>10.4} {:>9.2} {:>12.1}",
        "global placement (GP)",
        f,
        ph,
        gp.elapsed().as_secs_f64() * 1e3
    );
    let (f, ph) = evaluate(classic.placement());
    println!(
        "{:<28} {:>10.4} {:>9.2} {:>12.2}",
        "classic LG (Tetris)",
        f,
        ph,
        (classic.qubit_stage().elapsed() + classic.elapsed()).as_secs_f64() * 1e3
    );
    let (f, ph) = evaluate(quantum.placement());
    println!(
        "{:<28} {:>10.4} {:>9.2} {:>12.2}",
        "quantum-aware LG (qGDP-LG)",
        f,
        ph,
        (quantum.qubit_stage().elapsed() + quantum.elapsed()).as_secs_f64() * 1e3
    );
    let (f, ph) = evaluate(detailed.placement());
    println!(
        "{:<28} {:>10.4} {:>9.2} {:>12.2}",
        "detailed placement (qGDP-DP)",
        f,
        ph,
        detailed.elapsed().as_secs_f64() * 1e3
    );
    println!();
    println!("the gap between the two LG rows is the quality a classic legalizer loses and DP cannot recover");
}
