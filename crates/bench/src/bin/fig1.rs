//! Regenerates the conceptual Fig. 1: layout quality versus placement-optimisation
//! stage, contrasting a quantum-aware legalizer with a classic one.  Quality is
//! measured as the mean qaoa-4 fidelity and (negated) hotspot proportion after each
//! stage: global placement, legalization (classic = Tetris vs quantum-aware = qGDP-LG)
//! and detailed placement.
//!
//! ```bash
//! cargo run --release -p qgdp-bench --bin fig1
//! ```

use qgdp::metrics::{FidelityEvaluator, LayoutReport};
use qgdp::prelude::*;
use qgdp_bench::{experiment_config, mappings_per_benchmark, EXPERIMENT_SEED};

fn main() {
    let topology = StandardTopology::Grid;
    let topo = topology.build();
    let mappings = mappings_per_benchmark();
    let noise = NoiseModel::default();
    let maps = random_mappings(
        &Benchmark::Qaoa4.circuit(),
        &topo,
        mappings,
        EXPERIMENT_SEED,
    );

    println!(
        "FIG. 1: layout quality vs placement stage on {} (qaoa-4, {mappings} mappings)",
        topology.name()
    );
    println!();
    println!(
        "{:<28} {:>10} {:>9} {:>12}",
        "stage", "fidelity", "Ph (%)", "runtime (ms)"
    );
    println!("{}", "-".repeat(64));

    let quantum = run_flow(
        &topo,
        LegalizationStrategy::Qgdp,
        &experiment_config().with_detailed_placement(true),
    )
    .expect("qGDP flow");
    let classic =
        run_flow(&topo, LegalizationStrategy::Tetris, &experiment_config()).expect("Tetris flow");

    let evaluate = |placement: &Placement, result: &FlowResult| -> (f64, f64) {
        let report = LayoutReport::evaluate(&result.netlist, placement, &result.crosstalk);
        let fidelity = FidelityEvaluator::new(&result.netlist, placement, noise, &result.crosstalk)
            .mean(&maps);
        (fidelity, report.hotspot_proportion_percent)
    };

    let (f, ph) = evaluate(&quantum.gp_placement, &quantum);
    println!(
        "{:<28} {:>10.4} {:>9.2} {:>12.1}",
        "global placement (GP)",
        f,
        ph,
        quantum.timing.global_placement.as_secs_f64() * 1e3
    );
    let (f, ph) = evaluate(&classic.legalized, &classic);
    println!(
        "{:<28} {:>10.4} {:>9.2} {:>12.2}",
        "classic LG (Tetris)",
        f,
        ph,
        (classic.timing.qubit_legalization + classic.timing.resonator_legalization).as_secs_f64()
            * 1e3
    );
    let (f, ph) = evaluate(&quantum.legalized, &quantum);
    println!(
        "{:<28} {:>10.4} {:>9.2} {:>12.2}",
        "quantum-aware LG (qGDP-LG)",
        f,
        ph,
        (quantum.timing.qubit_legalization + quantum.timing.resonator_legalization).as_secs_f64()
            * 1e3
    );
    if let Some(dp) = &quantum.detailed {
        let (f, ph) = evaluate(dp, &quantum);
        println!(
            "{:<28} {:>10.4} {:>9.2} {:>12.2}",
            "detailed placement (qGDP-DP)",
            f,
            ph,
            quantum
                .timing
                .detailed_placement
                .map_or(0.0, |d| d.as_secs_f64() * 1e3)
        );
    }
    println!();
    println!("the gap between the two LG rows is the quality a classic legalizer loses and DP cannot recover");
}
