//! The content-addressed artifact store: an LRU map from [`ArtifactKey`] to
//! `Arc`-shared stage artifacts, bounded by **both** an entry count and an
//! estimated byte budget.
//!
//! Keys are full canonical byte encodings (see [`qgdp::digest`]) — two requests
//! collide in the store **iff** their stage prefixes are byte-identical, so a
//! digest collision between differing configurations is impossible by
//! construction: the 64-bit digest only buckets, the bytes decide.
//!
//! The store itself is value-agnostic (`ArtifactStore<V>`); the serving engine
//! instantiates it with its cache-value enum.  [`ArtifactStore::insert`] has
//! *get-or-insert winner semantics*: racing inserts of the same key converge on
//! the first value in, so every caller walks away holding a handle to **one**
//! shared allocation — the pointer-sharing contract the service layer tests.

use qgdp::ArtifactKey;
use std::collections::HashMap;

/// Default entry budget when `QGDP_CACHE_ENTRIES` is unset.
pub const DEFAULT_MAX_ENTRIES: usize = 256;
/// Default estimated-byte budget when `QGDP_CACHE_BYTES` is unset (64 MiB).
pub const DEFAULT_MAX_BYTES: usize = 64 * 1024 * 1024;

/// Capacity budgets of an [`ArtifactStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Maximum number of live entries (LRU-evicted beyond this).
    pub max_entries: usize,
    /// Maximum total *estimated* bytes across live entries.  Estimates are the
    /// caller's sizings (placements plus the netlist and cached reports an
    /// artifact keeps alive), not allocator truth.
    pub max_bytes: usize,
}

impl StoreConfig {
    /// Budgets from the environment: `QGDP_CACHE_ENTRIES` / `QGDP_CACHE_BYTES`,
    /// each falling back to its default when unset, unparsable or zero.
    #[must_use]
    pub fn from_env() -> Self {
        let read = |var: &str, default: usize| -> usize {
            match std::env::var(var)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
            {
                Some(n) if n >= 1 => n,
                _ => default,
            }
        };
        StoreConfig {
            max_entries: read("QGDP_CACHE_ENTRIES", DEFAULT_MAX_ENTRIES),
            max_bytes: read("QGDP_CACHE_BYTES", DEFAULT_MAX_BYTES),
        }
    }
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_entries: DEFAULT_MAX_ENTRIES,
            max_bytes: DEFAULT_MAX_BYTES,
        }
    }
}

/// Observability counters of one store (monotonic since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// `get` calls that found their key.
    pub hits: u64,
    /// `get` calls that did not.
    pub misses: u64,
    /// `insert` calls that added a new entry.
    pub insertions: u64,
    /// Entries dropped to respect a budget.
    pub evictions: u64,
}

/// Sentinel slab index for the ends of the intrusive LRU list.
const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry<V> {
    key: ArtifactKey,
    value: V,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// A strict-LRU, doubly-budgeted map from [`ArtifactKey`] to shared artifact
/// handles (see the [module docs](self)).
///
/// Recency order: `get` and `insert` both mark the touched entry most-recently
/// used; eviction always removes the least-recently-used entry.  Eviction never
/// removes the entry being inserted, so a single artifact larger than
/// `max_bytes` still caches (alone) rather than thrashing.
#[derive(Debug)]
pub struct ArtifactStore<V> {
    config: StoreConfig,
    /// Key → slab index.  `ArtifactKey` hashes by digest and compares by full
    /// bytes, so digest collisions land in one bucket but never conflate.
    index: HashMap<ArtifactKey, usize>,
    slab: Vec<Option<Entry<V>>>,
    free: Vec<usize>,
    /// Most-recently-used slab index (NIL when empty).
    head: usize,
    /// Least-recently-used slab index (NIL when empty).
    tail: usize,
    total_bytes: usize,
    stats: StoreStats,
}

impl<V: Clone> ArtifactStore<V> {
    /// An empty store with the given budgets.
    #[must_use]
    pub fn new(config: StoreConfig) -> Self {
        ArtifactStore {
            config,
            index: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            total_bytes: 0,
            stats: StoreStats::default(),
        }
    }

    /// The configured budgets.
    #[must_use]
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no entries are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total estimated bytes across live entries.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// The observability counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Looks `key` up; a hit marks the entry most-recently used and returns a
    /// clone of the stored handle (an `Arc` bump for the engine's values).
    pub fn get(&mut self, key: &ArtifactKey) -> Option<V> {
        match self.index.get(key).copied() {
            Some(slot) => {
                self.stats.hits += 1;
                self.touch(slot);
                Some(self.entry(slot).value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts `value` under `key` with the caller's byte estimate, evicting
    /// least-recently-used entries until both budgets hold, and returns the
    /// handle now cached under the key.
    ///
    /// **Winner semantics**: when the key is already present, the *existing*
    /// value is kept (and marked most-recently used) and returned — the caller's
    /// freshly-computed duplicate is dropped.  Every racer therefore ends up
    /// pointing at one shared allocation.
    pub fn insert(&mut self, key: ArtifactKey, value: V, bytes: usize) -> V {
        if let Some(slot) = self.index.get(&key).copied() {
            self.touch(slot);
            return self.entry(slot).value.clone();
        }
        self.stats.insertions += 1;
        let slot = self.allocate(Entry {
            key: key.clone(),
            value: value.clone(),
            bytes,
            prev: NIL,
            next: NIL,
        });
        self.index.insert(key, slot);
        self.total_bytes += bytes;
        self.link_front(slot);
        // Evict from the LRU end until both budgets hold — but never the entry
        // just inserted (`len() > 1` keeps at least it).
        // An entry budget of 0 is clamped to "the newest entry survives", and an
        // over-budget singleton likewise stays (documented above).
        while self.len() > 1
            && (self.len() > self.config.max_entries || self.total_bytes > self.config.max_bytes)
        {
            self.evict_lru();
        }
        value
    }

    /// Drops every entry (budgets and counters are kept).
    pub fn clear(&mut self) {
        self.index.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.total_bytes = 0;
    }

    /// Visits every live entry, most-recently used first.
    pub fn for_each(&self, mut visit: impl FnMut(&ArtifactKey, &V)) {
        let mut slot = self.head;
        while slot != NIL {
            let entry = self.entry(slot);
            visit(&entry.key, &entry.value);
            slot = entry.next;
        }
    }

    fn entry(&self, slot: usize) -> &Entry<V> {
        self.slab[slot].as_ref().expect("live slab slot")
    }

    fn entry_mut(&mut self, slot: usize) -> &mut Entry<V> {
        self.slab[slot].as_mut().expect("live slab slot")
    }

    fn allocate(&mut self, entry: Entry<V>) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Some(entry);
                slot
            }
            None => {
                self.slab.push(Some(entry));
                self.slab.len() - 1
            }
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = {
            let e = self.entry(slot);
            (e.prev, e.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.entry_mut(prev).next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.entry_mut(next).prev = prev;
        }
    }

    fn link_front(&mut self, slot: usize) {
        let old_head = self.head;
        {
            let e = self.entry_mut(slot);
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.entry_mut(old_head).prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn touch(&mut self, slot: usize) {
        if self.head != slot {
            self.unlink(slot);
            self.link_front(slot);
        }
    }

    fn evict_lru(&mut self) {
        let victim = self.tail;
        if victim == NIL {
            return;
        }
        self.unlink(victim);
        let entry = self.slab[victim].take().expect("live LRU tail");
        self.index.remove(&entry.key);
        self.total_bytes -= entry.bytes;
        self.free.push(victim);
        self.stats.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp::{ArtifactKey, FlowConfig, LegalizationStrategy};
    use qgdp_topology::StandardTopology;

    fn keys(n: u64) -> Vec<ArtifactKey> {
        let topo = StandardTopology::Grid.build();
        (0..n)
            .map(|seed| ArtifactKey::session(&topo, &FlowConfig::default().with_seed(seed)))
            .collect()
    }

    fn store(max_entries: usize, max_bytes: usize) -> ArtifactStore<u64> {
        ArtifactStore::new(StoreConfig {
            max_entries,
            max_bytes,
        })
    }

    #[test]
    fn entry_budget_evicts_least_recently_used() {
        let ks = keys(4);
        let mut s = store(3, usize::MAX);
        for (i, k) in ks.iter().take(3).enumerate() {
            s.insert(k.clone(), i as u64, 1);
        }
        // Touch k0 so k1 becomes the LRU victim.
        assert_eq!(s.get(&ks[0]), Some(0));
        s.insert(ks[3].clone(), 3, 1);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(&ks[1]), None, "LRU entry was evicted");
        assert_eq!(s.get(&ks[0]), Some(0));
        assert_eq!(s.get(&ks[2]), Some(2));
        assert_eq!(s.get(&ks[3]), Some(3));
        assert_eq!(s.stats().evictions, 1);
    }

    #[test]
    fn byte_budget_evicts_until_it_holds() {
        let ks = keys(3);
        let mut s = store(usize::MAX, 100);
        s.insert(ks[0].clone(), 0, 60);
        s.insert(ks[1].clone(), 1, 30);
        assert_eq!(s.total_bytes(), 90);
        s.insert(ks[2].clone(), 2, 50);
        // 60 + 30 + 50 > 100: evict k0 (LRU) → 80 holds.
        assert_eq!(s.total_bytes(), 80);
        assert_eq!(s.get(&ks[0]), None);
        assert_eq!(s.get(&ks[1]), Some(1));
    }

    #[test]
    fn oversized_singleton_still_caches() {
        let ks = keys(2);
        let mut s = store(8, 10);
        s.insert(ks[0].clone(), 7, 1_000);
        assert_eq!(s.len(), 1, "the newest entry always survives");
        assert_eq!(s.get(&ks[0]), Some(7));
        s.insert(ks[1].clone(), 9, 2_000);
        assert_eq!(s.len(), 1, "the old oversized entry made room");
        assert_eq!(s.get(&ks[1]), Some(9));
    }

    #[test]
    fn insert_has_winner_semantics() {
        let ks = keys(1);
        let mut s = store(8, usize::MAX);
        assert_eq!(s.insert(ks[0].clone(), 1, 1), 1);
        // A racing duplicate insert keeps (and returns) the first value.
        assert_eq!(s.insert(ks[0].clone(), 2, 1), 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&ks[0]), Some(1));
        assert_eq!(s.stats().insertions, 1);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let ks = keys(2);
        let mut s = store(8, usize::MAX);
        s.insert(ks[0].clone(), 1, 1);
        let _ = s.get(&ks[0]);
        let _ = s.get(&ks[1]);
        let _ = s.get(&ks[1]);
        let stats = s.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn distinct_stage_levels_never_conflate() {
        let topo = StandardTopology::Grid.build();
        let session = ArtifactKey::session(&topo, &FlowConfig::default());
        let mut s = store(8, usize::MAX);
        s.insert(session.clone(), 1, 1);
        s.insert(session.for_strategy(LegalizationStrategy::Qgdp), 2, 1);
        s.insert(session.for_strategy(LegalizationStrategy::Tetris), 3, 1);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(&session), Some(1));
        assert_eq!(
            s.get(&session.for_strategy(LegalizationStrategy::Qgdp)),
            Some(2)
        );
    }

    #[test]
    fn for_each_walks_mru_to_lru() {
        let ks = keys(3);
        let mut s = store(8, usize::MAX);
        for (i, k) in ks.iter().enumerate() {
            s.insert(k.clone(), i as u64, 1);
        }
        let _ = s.get(&ks[0]); // order now: k0, k2, k1
        let mut seen = Vec::new();
        s.for_each(|_, &v| seen.push(v));
        assert_eq!(seen, vec![0, 2, 1]);
    }
}
