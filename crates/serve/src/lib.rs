//! # qgdp-serve
//!
//! The long-lived serving layer over the staged [`qgdp::Session`] pipeline: a
//! **content-addressed artifact store** that shares global placements,
//! legalizations and detailed placements across requests, a **hand-rolled
//! binary snapshot codec** that persists the cache across restarts, and a
//! **work-stealing job queue** with admission control, fronted by the
//! `qgdp serve` / `qgdp submit` binaries speaking line-delimited JSON.
//!
//! # The contracts
//!
//! Every layer is held to the repo's bit-identity discipline, and every
//! contract ships with tests in this crate / the `serve_equivalence` suite:
//!
//! * **Cache** ([`store`], [`engine`]) — a warm hit is *pointer-equal*
//!   (`Arc`-shared) to the artifact the cold path produced, and therefore
//!   bit-identical; keys ([`qgdp::ArtifactKey`]) compare by full canonical
//!   content encoding, so digest collisions are impossible by construction.
//!   Fault-injected configurations never read or populate the cache.
//! * **Snapshots** ([`snapshot`]) — encoding is canonical (byte-stable across
//!   cache insertion order), loads are checksum-rejecting, version-gated, and
//!   never panic on malformed bytes; a restored artifact serves byte-identical
//!   responses without recomputing any stage.
//! * **Queue** ([`engine`], [`server`]) — one `Result` per request, in request
//!   order, identical for every worker count; a poisoned request answers
//!   `ok:false` in its slot while its siblings and the server survive.
//!
//! # Quickstart
//!
//! ```
//! use qgdp_serve::engine::{JobRequest, ServeEngine};
//! use qgdp::{FlowConfig, LegalizationStrategy};
//! use qgdp_topology::StandardTopology;
//! use std::sync::Arc;
//!
//! let engine = ServeEngine::from_env();
//! let request = JobRequest {
//!     topology: Arc::new(StandardTopology::Grid.build()),
//!     config: FlowConfig::default().with_seed(7),
//!     strategy: LegalizationStrategy::Qgdp,
//!     detail: None,
//! };
//! let cold = engine.execute(&request)?;
//! let warm = engine.execute(&request)?;   // Arc-shared cache hit
//! assert_eq!(
//!     qgdp::placement_fingerprint(cold.legalized().placement()),
//!     qgdp::placement_fingerprint(warm.legalized().placement()),
//! );
//! # Ok::<(), qgdp_serve::engine::ServeError>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod engine;
pub mod server;
pub mod snapshot;
pub mod store;
pub mod wire;

pub use engine::{JobRequest, RestoreStats, ServeEngine, ServeError};
pub use server::{serve_stdin, serve_tcp, ServerOptions};
pub use snapshot::{Snapshot, SnapshotError};
pub use store::{ArtifactStore, StoreConfig, StoreStats};
