//! The serving engine: stage-level artifact reuse over the content-addressed
//! [`ArtifactStore`], plus batch execution with admission control and
//! work-stealing fan-out.
//!
//! # Cache discipline
//!
//! Every request is content-addressed with [`qgdp::ArtifactKey`]: the session
//! level keys on the topology plus the GP stage prefix of the [`FlowConfig`],
//! the legalization level nests the strategy under it, and the detail level
//! nests the [`DetailedPlacerConfig`].  Two requests that share a prefix share
//! the cached artifact — *pointer-equal* (`Arc`-shared) on a warm hit, and
//! bit-identical to a cold run by the determinism contract of the staged
//! pipeline.
//!
//! Fault-injected configurations ([`FlowConfig::is_cacheable`] is `false`)
//! **bypass the cache entirely**, in both directions: they never read a cached
//! artifact and never publish one, so a poisoned request cannot contaminate
//! warm state.
//!
//! # Concurrency
//!
//! The store sits behind one mutex, but the heavy stages run *outside* it: a
//! miss releases the lock, computes, then re-locks to publish.  Two threads
//! racing the same key both compute; [`ArtifactStore::insert`]'s first-writer-
//! wins semantics make them converge on one shared artifact (both results are
//! bit-identical, so dropping the loser is free).

use crate::snapshot::{
    DetailedSnapshot, GpSnapshot, LegalizedSnapshot, PlacementData, SessionSnapshot, Snapshot,
};
use crate::store::{ArtifactStore, StoreConfig, StoreStats};
use qgdp::{
    ArtifactKey, DetailedPlacerConfig, FlowArtifact, FlowConfig, FlowError, LegalizationStrategy,
    Session,
};
use qgdp_geometry::Rect;
use qgdp_metrics::parallel_try_map_stealing;
use qgdp_netlist::{Placement, QuantumNetlist, QubitId, SegmentId};
use qgdp_topology::Topology;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default bound on how many requests one batch may admit.
pub const DEFAULT_QUEUE_DEPTH: usize = 1024;

/// One placement job: which device, which flow configuration, which strategy,
/// and optionally a detailed-placement refinement.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// The device topology (shared handles keep batch fan-out cheap).
    pub topology: Arc<Topology>,
    /// The flow configuration (GP stage prefix + optional fault hooks).
    pub config: FlowConfig,
    /// The legalization strategy to run.
    pub strategy: LegalizationStrategy,
    /// Detailed-placement configuration; `None` stops after legalization.
    pub detail: Option<DetailedPlacerConfig>,
}

/// A serving-layer failure for one request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The placement pipeline itself failed (or a worker panicked inside it).
    Flow(FlowError),
    /// The batch exceeded the admission bound; this request was never started.
    QueueFull {
        /// The configured admission bound.
        depth: usize,
        /// This request's position in the submitted batch.
        position: usize,
    },
    /// A serving worker panicked outside the pipeline's own containment.
    Worker(String),
    /// A snapshot being restored described data inconsistent with its netlist.
    Restore(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Flow(e) => write!(f, "{e}"),
            ServeError::QueueFull { depth, position } => write!(
                f,
                "queue full: request {position} exceeds the admission bound of {depth}"
            ),
            ServeError::Worker(msg) => write!(f, "serving worker panicked: {msg}"),
            ServeError::Restore(msg) => write!(f, "snapshot restore rejected: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<FlowError> for ServeError {
    fn from(e: FlowError) -> Self {
        ServeError::Flow(e)
    }
}

/// What the cache stores at each stage level.
#[derive(Debug, Clone)]
enum CacheValue {
    /// Session level: netlist built, GP memoised inside the session.
    Session(Session),
    /// Legalization level: one strategy's fully-legalized layout.
    Legalized(qgdp::CellLegalized),
    /// Detail level: one refinement, with the config that produced it (the
    /// artifact itself does not record it, and snapshot export needs it).
    Detailed {
        artifact: qgdp::Detailed,
        config: DetailedPlacerConfig,
    },
}

/// Counts of what a snapshot restore rebuilt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RestoreStats {
    /// Sessions rebuilt (netlist constructed, GP cache seeded when present).
    pub sessions: usize,
    /// Legalized artifacts rehydrated.
    pub legalized: usize,
    /// Detailed artifacts rehydrated.
    pub detailed: usize,
}

/// The serving engine: one content-addressed artifact store plus the execution
/// paths that populate and reuse it.
#[derive(Debug)]
pub struct ServeEngine {
    store: Mutex<ArtifactStore<CacheValue>>,
    queue_depth: usize,
}

impl Default for ServeEngine {
    fn default() -> Self {
        ServeEngine::new(StoreConfig::from_env(), queue_depth_from_env())
    }
}

/// Reads the batch admission bound from `QGDP_QUEUE_DEPTH` (default
/// [`DEFAULT_QUEUE_DEPTH`]; unparsable or zero values fall back).
#[must_use]
pub fn queue_depth_from_env() -> usize {
    match std::env::var("QGDP_QUEUE_DEPTH")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => DEFAULT_QUEUE_DEPTH,
    }
}

/// Rough live-memory estimate of one placement, in bytes.
fn placement_bytes(netlist: &QuantumNetlist) -> usize {
    (netlist.num_qubits() + netlist.num_segments()) * 16
}

/// Rough live-memory estimate of the netlist an artifact keeps alive (Arc
/// shared, but the cache is what keeps it live): component structs, the
/// coupling graph and the net pin lists.  On roadmap-scale devices this
/// dominates a single placement, so leaving it out made large artifacts look
/// almost free to the byte budget.
fn netlist_bytes(netlist: &QuantumNetlist) -> usize {
    let pins: usize = netlist.nets().iter().map(|n| n.components().len()).sum();
    netlist.num_qubits() * 64
        + netlist.num_segments() * 48
        + netlist.num_resonators() * 64
        + pins * 8
}

/// Rough live-memory estimate of one cached [`qgdp_metrics::LayoutReport`] +
/// its backing layout scan (violation and crossing lists scale with the
/// component count).
fn report_bytes(netlist: &QuantumNetlist) -> usize {
    netlist.num_components() * 8 + netlist.num_resonators() * 32
}

/// Byte estimate for a cached [`CacheValue::Session`]: the shared netlist, the
/// lazily cached GP placement (plus seed/scratch headroom) and its report.
fn session_value_bytes(netlist: &QuantumNetlist) -> usize {
    netlist_bytes(netlist) + placement_bytes(netlist) * 3 + report_bytes(netlist)
}

/// Byte estimate for a cached [`CacheValue::Legalized`]: qubit- and cell-stage
/// placements and their lazily cached stage reports (the netlist is charged to
/// the session entry that shares it).
fn legalized_value_bytes(netlist: &QuantumNetlist) -> usize {
    placement_bytes(netlist) * 2 + report_bytes(netlist) * 2
}

/// Byte estimate for a cached [`CacheValue::Detailed`]: one placement and its
/// lazily cached report.
fn detailed_value_bytes(netlist: &QuantumNetlist) -> usize {
    placement_bytes(netlist) + report_bytes(netlist)
}

fn to_data(p: &Placement) -> PlacementData {
    PlacementData {
        qubits: (0..p.num_qubits()).map(|i| p.qubit(QubitId(i))).collect(),
        segments: (0..p.num_segments())
            .map(|i| p.segment(SegmentId(i)))
            .collect(),
    }
}

fn from_data(netlist: &QuantumNetlist, data: &PlacementData) -> Result<Placement, ServeError> {
    let mut p = Placement::new(netlist);
    if data.qubits.len() != p.num_qubits() || data.segments.len() != p.num_segments() {
        return Err(ServeError::Restore(format!(
            "placement has {} qubits / {} segments; netlist expects {} / {}",
            data.qubits.len(),
            data.segments.len(),
            p.num_qubits(),
            p.num_segments()
        )));
    }
    for (i, &q) in data.qubits.iter().enumerate() {
        p.set_qubit(QubitId(i), q);
    }
    for (i, &s) in data.segments.iter().enumerate() {
        p.set_segment(SegmentId(i), s);
    }
    Ok(p)
}

impl ServeEngine {
    /// Creates an engine with an explicit store configuration and admission
    /// bound.
    #[must_use]
    pub fn new(store: StoreConfig, queue_depth: usize) -> Self {
        ServeEngine {
            store: Mutex::new(ArtifactStore::new(store)),
            queue_depth: queue_depth.max(1),
        }
    }

    /// Creates an engine configured from the environment (`QGDP_CACHE_ENTRIES`,
    /// `QGDP_CACHE_BYTES`, `QGDP_QUEUE_DEPTH`).
    #[must_use]
    pub fn from_env() -> Self {
        ServeEngine::default()
    }

    /// The batch admission bound.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Point-in-time cache counters.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned by a panicking store operation
    /// (store operations do not run user code, so this does not happen in
    /// practice).
    #[must_use]
    pub fn store_stats(&self) -> StoreStats {
        self.store.lock().expect("store mutex").stats()
    }

    /// Number of cached artifacts across all stage levels.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned (see [`ServeEngine::store_stats`]).
    #[must_use]
    pub fn cached_artifacts(&self) -> usize {
        self.store.lock().expect("store mutex").len()
    }

    fn store(&self) -> std::sync::MutexGuard<'_, ArtifactStore<CacheValue>> {
        self.store.lock().expect("store mutex")
    }

    /// Executes one request through the cache.
    ///
    /// Warm hits return `Arc`-shared handles (pointer-equal placements across
    /// requests); cold paths compute outside the store lock and publish with
    /// first-writer-wins semantics.  Fault-injected configurations bypass the
    /// cache entirely.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Flow`] when a pipeline stage fails (or panics, on
    /// the fault-isolated batch surface underneath).
    pub fn execute(&self, request: &JobRequest) -> Result<FlowArtifact, ServeError> {
        if !request.config.is_cacheable() {
            // Fault hooks active: run on a throwaway session, never touching the
            // cache.  The `try_` batch surface contains injected panics so a
            // poisoned request reports instead of unwinding through the server.
            let session = Session::over(Arc::clone(&request.topology), request.config)?;
            let req = qgdp::FlowRequest {
                strategy: request.strategy,
                detail: request.detail,
            };
            let mut results = session.try_run_batch_with_threads(&[req], 1);
            return results
                .pop()
                .expect("one result per request")
                .map_err(ServeError::Flow);
        }

        let session_key = ArtifactKey::session(&request.topology, &request.config);
        let session = self.session_for(&session_key, request)?;

        let legalized_key = session_key.for_strategy(request.strategy);
        let legalized = self.legalized_for(&legalized_key, &session, request.strategy)?;

        let Some(detail) = request.detail else {
            return Ok(FlowArtifact::Legalized(legalized));
        };
        let detail_key = legalized_key.for_detail(&detail);
        let detailed = self.detailed_for(&detail_key, &legalized, detail);
        Ok(FlowArtifact::Detailed(detailed))
    }

    fn session_for(&self, key: &ArtifactKey, request: &JobRequest) -> Result<Session, ServeError> {
        if let Some(CacheValue::Session(s)) = self.store().get(key) {
            return Ok(s);
        }
        let built = Session::over(Arc::clone(&request.topology), request.config)?;
        let bytes = session_value_bytes(built.netlist());
        match self
            .store()
            .insert(key.clone(), CacheValue::Session(built.clone()), bytes)
        {
            CacheValue::Session(winner) => Ok(winner),
            _ => Ok(built),
        }
    }

    fn legalized_for(
        &self,
        key: &ArtifactKey,
        session: &Session,
        strategy: LegalizationStrategy,
    ) -> Result<qgdp::CellLegalized, ServeError> {
        if let Some(CacheValue::Legalized(cell)) = self.store().get(key) {
            return Ok(cell);
        }
        let cell = session.global_place().legalize(strategy)?;
        let bytes = legalized_value_bytes(session.netlist());
        match self
            .store()
            .insert(key.clone(), CacheValue::Legalized(cell.clone()), bytes)
        {
            CacheValue::Legalized(winner) => Ok(winner),
            _ => Ok(cell),
        }
    }

    fn detailed_for(
        &self,
        key: &ArtifactKey,
        legalized: &qgdp::CellLegalized,
        config: DetailedPlacerConfig,
    ) -> qgdp::Detailed {
        if let Some(CacheValue::Detailed { artifact, .. }) = self.store().get(key) {
            return artifact;
        }
        let dp = legalized.detail_with(config);
        let bytes = detailed_value_bytes(legalized.netlist());
        match self.store().insert(
            key.clone(),
            CacheValue::Detailed {
                artifact: dp.clone(),
                config,
            },
            bytes,
        ) {
            CacheValue::Detailed { artifact, .. } => artifact,
            _ => dp,
        }
    }

    /// Executes a batch with admission control and work-stealing fan-out:
    /// one `Result` per request, **in request order**, identical for every
    /// worker count.
    ///
    /// Requests beyond the admission bound are refused with
    /// [`ServeError::QueueFull`] without being started; admitted requests run
    /// on `threads` workers over a work-stealing deal, each worker's panics
    /// contained to its own slot.
    #[must_use]
    pub fn run_batch(
        &self,
        requests: &[JobRequest],
        threads: usize,
    ) -> Vec<Result<FlowArtifact, ServeError>> {
        let admitted = requests.len().min(self.queue_depth);
        let mut results: Vec<Result<FlowArtifact, ServeError>> =
            parallel_try_map_stealing(&requests[..admitted], threads, |req| self.execute(req))
                .into_iter()
                .map(|slot| match slot {
                    Ok(outcome) => outcome,
                    Err(panic_msg) => Err(ServeError::Worker(panic_msg)),
                })
                .collect();
        for position in admitted..requests.len() {
            results.push(Err(ServeError::QueueFull {
                depth: self.queue_depth,
                position,
            }));
        }
        results
    }

    /// Clears every cached artifact (counters survive).
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned (see [`ServeEngine::store_stats`]).
    pub fn clear(&self) {
        self.store().clear();
    }

    /// Exports the cache as a persistable [`Snapshot`].
    ///
    /// Artifacts are grouped per session identity; a cached detailed placement
    /// drags its legalized parent into the snapshot (restore needs the chain),
    /// and GP state is only exported when it was actually computed — export
    /// never runs a placer.
    ///
    /// # Panics
    ///
    /// Panics if the store mutex was poisoned (see [`ServeEngine::store_stats`]).
    #[must_use]
    pub fn export_snapshot(&self) -> Snapshot {
        use std::collections::BTreeMap;
        // Keyed by session content identity so grouping is deterministic.
        let mut groups: BTreeMap<Vec<u8>, SessionSnapshot> = BTreeMap::new();
        let group_of = |topology: &Topology,
                        config: &FlowConfig,
                        groups: &mut BTreeMap<Vec<u8>, SessionSnapshot>|
         -> Vec<u8> {
            let key = ArtifactKey::session(topology, config);
            groups
                .entry(key.bytes().to_vec())
                .or_insert_with(|| SessionSnapshot {
                    topology: topology.clone(),
                    config: *config,
                    gp: None,
                    legalized: Vec::new(),
                    detailed: Vec::new(),
                });
            key.bytes().to_vec()
        };
        let gp_snapshot = |gp: &qgdp::GlobalPlacement| GpSnapshot {
            die: (gp.die().lower_left(), gp.die().width(), gp.die().height()),
            placement: to_data(gp.placement()),
            stats: gp.stats(),
            elapsed_ns: gp.elapsed().as_nanos() as u64,
        };
        let legalized_snapshot = |cell: &qgdp::CellLegalized| LegalizedSnapshot {
            strategy: cell.strategy(),
            qubit_placement: to_data(cell.qubit_stage().placement()),
            qubit_ns: cell.qubit_stage().elapsed().as_nanos() as u64,
            cell_placement: to_data(cell.placement()),
            cell_ns: cell.elapsed().as_nanos() as u64,
        };

        let store = self.store();
        store.for_each(|_, value| match value {
            CacheValue::Session(session) => {
                let k = group_of(session.topology(), session.config(), &mut groups);
                let group = groups.get_mut(&k).expect("group just created");
                if group.gp.is_none() {
                    if let Some(gp) = session.cached_global() {
                        group.gp = Some(gp_snapshot(&gp));
                    }
                }
            }
            CacheValue::Legalized(cell) => {
                let k = group_of(cell.topology(), cell.config(), &mut groups);
                let group = groups.get_mut(&k).expect("group just created");
                if group.gp.is_none() {
                    group.gp = Some(gp_snapshot(cell.global()));
                }
                if !group
                    .legalized
                    .iter()
                    .any(|l| l.strategy == cell.strategy())
                {
                    group.legalized.push(legalized_snapshot(cell));
                }
            }
            CacheValue::Detailed { artifact, config } => {
                let cell = artifact.legalized();
                let k = group_of(cell.topology(), cell.config(), &mut groups);
                let group = groups.get_mut(&k).expect("group just created");
                if group.gp.is_none() {
                    group.gp = Some(gp_snapshot(cell.global()));
                }
                if !group
                    .legalized
                    .iter()
                    .any(|l| l.strategy == cell.strategy())
                {
                    group.legalized.push(legalized_snapshot(cell));
                }
                group.detailed.push(DetailedSnapshot {
                    strategy: artifact.strategy(),
                    detail: *config,
                    placement: to_data(artifact.placement()),
                    windows_processed: artifact.windows_processed() as u64,
                    windows_accepted: artifact.windows_accepted() as u64,
                    elapsed_ns: artifact.elapsed().as_nanos() as u64,
                });
            }
        });
        drop(store);
        Snapshot {
            sessions: groups.into_values().collect(),
        }
    }

    /// Rehydrates a snapshot into the cache: sessions are rebuilt (netlist
    /// constructed once, GP cache seeded from the persisted run), legalized and
    /// detailed artifacts are restored without re-running any placer, and every
    /// entry is published under its content identity.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Restore`] when a session's placement data is
    /// inconsistent with the netlist its topology and config produce, and
    /// [`ServeError::Flow`] when a netlist cannot be rebuilt at all.  Entries
    /// restored before the failure remain cached.
    pub fn restore_snapshot(&self, snapshot: &Snapshot) -> Result<RestoreStats, ServeError> {
        let mut stats = RestoreStats::default();
        for entry in &snapshot.sessions {
            if !entry.config.is_cacheable() {
                // Fault-injected configs are never cached, so a well-formed
                // snapshot cannot contain one; refuse rather than cache it now.
                return Err(ServeError::Restore(
                    "snapshot contains a fault-injected configuration".into(),
                ));
            }
            let topology = Arc::new(entry.topology.clone());
            let session = Session::over(Arc::clone(&topology), entry.config)?;
            let session_key = ArtifactKey::session(&topology, &entry.config);
            let session_bytes = session_value_bytes(session.netlist());
            let session = match self.store().insert(
                session_key.clone(),
                CacheValue::Session(session.clone()),
                session_bytes,
            ) {
                CacheValue::Session(winner) => winner,
                _ => session,
            };
            stats.sessions += 1;

            let Some(gp_snap) = &entry.gp else {
                continue;
            };
            let die = Rect::from_lower_left(gp_snap.die.0, gp_snap.die.1, gp_snap.die.2);
            let gp_placement = from_data(session.netlist(), &gp_snap.placement)?;
            let gp = session.restore_global(
                die,
                gp_placement,
                gp_snap.stats,
                Duration::from_nanos(gp_snap.elapsed_ns),
            );

            for leg in &entry.legalized {
                let qubit = from_data(session.netlist(), &leg.qubit_placement)?;
                let cell = from_data(session.netlist(), &leg.cell_placement)?;
                let restored = gp.restore_legalized(
                    leg.strategy,
                    qubit,
                    Duration::from_nanos(leg.qubit_ns),
                    cell,
                    Duration::from_nanos(leg.cell_ns),
                );
                let key = session_key.for_strategy(leg.strategy);
                let bytes = legalized_value_bytes(session.netlist());
                let restored =
                    match self
                        .store()
                        .insert(key, CacheValue::Legalized(restored.clone()), bytes)
                    {
                        CacheValue::Legalized(winner) => winner,
                        _ => restored,
                    };
                stats.legalized += 1;

                for det in entry.detailed.iter().filter(|d| d.strategy == leg.strategy) {
                    let placement = from_data(session.netlist(), &det.placement)?;
                    let artifact = restored.restore_detailed(
                        placement,
                        det.windows_processed as usize,
                        det.windows_accepted as usize,
                        Duration::from_nanos(det.elapsed_ns),
                    );
                    let key = session_key
                        .for_strategy(leg.strategy)
                        .for_detail(&det.detail);
                    let bytes = detailed_value_bytes(session.netlist());
                    self.store().insert(
                        key,
                        CacheValue::Detailed {
                            artifact,
                            config: det.detail,
                        },
                        bytes,
                    );
                    stats.detailed += 1;
                }
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot;
    use qgdp_topology::StandardTopology;

    fn grid_request(seed: u64, strategy: LegalizationStrategy) -> JobRequest {
        JobRequest {
            topology: Arc::new(StandardTopology::Grid.build()),
            config: FlowConfig::default().with_seed(seed),
            strategy,
            detail: None,
        }
    }

    fn placement_of(artifact: &FlowArtifact) -> &Placement {
        match artifact {
            FlowArtifact::Legalized(cell) => cell.placement(),
            FlowArtifact::Detailed(dp) => dp.placement(),
        }
    }

    #[test]
    fn warm_hits_are_pointer_equal_and_bit_identical() {
        let engine = ServeEngine::new(StoreConfig::default(), 64);
        let req = grid_request(3, LegalizationStrategy::Qgdp);
        let cold = engine.execute(&req).unwrap();
        let warm = engine.execute(&req).unwrap();
        // The placements live behind shared `Arc`s: a warm hit hands back the
        // same allocation, so plain address equality is the witness.
        assert!(
            std::ptr::eq(placement_of(&cold), placement_of(&warm)),
            "warm hit must share the cold artifact's placement allocation"
        );
        assert_eq!(
            qgdp::placement_fingerprint(placement_of(&cold)),
            qgdp::placement_fingerprint(placement_of(&warm))
        );
        let stats = engine.store_stats();
        assert!(stats.hits >= 2, "warm run should hit session + legalized");
    }

    #[test]
    fn fault_injected_requests_never_touch_the_cache() {
        let engine = ServeEngine::new(StoreConfig::default(), 64);
        let mut req = grid_request(3, LegalizationStrategy::Qgdp);
        req.config = req.config.with_fault_injection(qgdp::FaultInjection {
            panic_in_legalization: Some(LegalizationStrategy::Qgdp),
            ..Default::default()
        });
        let out = engine.execute(&req);
        assert!(matches!(
            out,
            Err(ServeError::Flow(FlowError::Worker { .. }))
        ));
        assert_eq!(engine.cached_artifacts(), 0, "fault path must not cache");
        let stats = engine.store_stats();
        assert_eq!(stats.hits + stats.misses, 0, "fault path must not probe");
    }

    #[test]
    fn queue_admission_rejects_overflow_in_position_order() {
        let engine = ServeEngine::new(StoreConfig::default(), 2);
        let reqs: Vec<JobRequest> = (0..4)
            .map(|_| grid_request(3, LegalizationStrategy::Qgdp))
            .collect();
        let results = engine.run_batch(&reqs, 2);
        assert_eq!(results.len(), 4);
        assert!(results[0].is_ok() && results[1].is_ok());
        for (i, r) in results.iter().enumerate().skip(2) {
            match r {
                Err(ServeError::QueueFull { depth, position }) => {
                    assert_eq!((*depth, *position), (2, i));
                }
                other => panic!("expected QueueFull at {i}, got {other:?}"),
            }
        }
    }

    #[test]
    fn snapshot_round_trip_restores_bit_identical_artifacts() {
        let engine = ServeEngine::new(StoreConfig::default(), 64);
        let mut req = grid_request(3, LegalizationStrategy::Qgdp);
        req.detail = Some(DetailedPlacerConfig::new());
        let original = engine.execute(&req).unwrap();
        let snap = engine.export_snapshot();
        let bytes = snapshot::encode(&snap);

        let restored_engine = ServeEngine::new(StoreConfig::default(), 64);
        let stats = restored_engine
            .restore_snapshot(&snapshot::decode(&bytes).unwrap())
            .unwrap();
        assert_eq!((stats.sessions, stats.legalized, stats.detailed), (1, 1, 1));

        let served = restored_engine.execute(&req).unwrap();
        assert_eq!(
            qgdp::placement_fingerprint(placement_of(&original)),
            qgdp::placement_fingerprint(placement_of(&served)),
        );
        // The restored artifact must have been served from cache, not recomputed.
        let s = restored_engine.store_stats();
        assert_eq!(s.misses, 0, "restored cache should serve without misses");
        // And its lazily-recomputed report must match the live one bit for bit.
        let (FlowArtifact::Detailed(live), FlowArtifact::Detailed(back)) = (&original, &served)
        else {
            panic!("expected detailed artifacts");
        };
        assert_eq!(live.report(), back.report());
        assert_eq!(live.elapsed(), back.elapsed(), "persisted stage timing");
    }

    #[test]
    fn export_is_deterministic_regardless_of_insertion_order() {
        let forward = ServeEngine::new(StoreConfig::default(), 64);
        let backward = ServeEngine::new(StoreConfig::default(), 64);
        let reqs = [
            grid_request(3, LegalizationStrategy::Qgdp),
            grid_request(3, LegalizationStrategy::Tetris),
            grid_request(9, LegalizationStrategy::Abacus),
        ];
        for r in &reqs {
            forward.execute(r).unwrap();
        }
        for r in reqs.iter().rev() {
            backward.execute(r).unwrap();
        }
        // Stage timings are wall-clock and differ between live runs; zero them
        // so the comparison isolates the canonical ordering contract.
        let normalized = |engine: &ServeEngine| {
            let mut snap = engine.export_snapshot();
            for session in &mut snap.sessions {
                if let Some(gp) = &mut session.gp {
                    gp.elapsed_ns = 0;
                }
                for l in &mut session.legalized {
                    l.qubit_ns = 0;
                    l.cell_ns = 0;
                }
                for d in &mut session.detailed {
                    d.elapsed_ns = 0;
                }
            }
            snapshot::encode(&snap)
        };
        assert_eq!(normalized(&forward), normalized(&backward));
    }
}
